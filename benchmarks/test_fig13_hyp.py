"""Figure 13 — HYP performance versus the number of cells p.

Expected shape: more cells mean smaller source/target cells and fewer
hyper-edges between them, so the proof shrinks with p (Fig. 13a);
construction time grows with p as the border set grows (Fig. 13b) —
the paper reports sublinear growth.
"""

import pytest

from benchmarks.conftest import emit

CELL_COUNTS = [25, 49, 100, 225, 400, 625]


@pytest.fixture(scope="module")
def fig13_runs(ctx):
    return {p: ctx.measure("HYP", num_cells=p)[1] for p in CELL_COUNTS}


def test_fig13a_overhead(ctx, fig13_runs, results, benchmark):
    rows = []
    for p in CELL_COUNTS:
        run = fig13_runs[p]
        rows.append([p, run.s_prf_kb, run.t_prf_kb, run.total_kb,
                     round(run.s_items)])
        results.add("fig13a", p=p, s_prf_kb=run.s_prf_kb,
                    t_prf_kb=run.t_prf_kb, total_kb=run.total_kb,
                    s_items=run.s_items)
    emit("Fig 13a — HYP communication overhead vs #cells",
         ["p", "S-prf KB", "T-prf KB", "total KB", "S-items"], rows)

    # The S-prf (cell tuples + hyper-edge tuples) shrinks as cells shrink.
    assert fig13_runs[625].s_prf_kb < fig13_runs[25].s_prf_kb
    assert fig13_runs[225].s_prf_kb < fig13_runs[25].s_prf_kb

    method = ctx.method("HYP", num_cells=625)
    vs, vt = ctx.workload().queries[0]
    benchmark(method.answer, vs, vt)


def test_fig13b_construction(ctx, fig13_runs, results, benchmark):
    rows = []
    for p in CELL_COUNTS:
        run = fig13_runs[p]
        rows.append([p, run.construction_seconds])
        results.add("fig13b", p=p,
                    construction_seconds=run.construction_seconds)
    emit("Fig 13b — HYP hint construction time vs #cells [s]",
         ["p", "construction s"], rows)

    assert (fig13_runs[625].construction_seconds
            > fig13_runs[25].construction_seconds)

    from repro.core.hyp import HypMethod

    small = ctx.dataset(scale=1 / 64)
    benchmark.pedantic(
        lambda: HypMethod.build(small, ctx.signer, num_cells=25),
        rounds=1, iterations=1,
    )
