"""Figure 11 — effect of the Merkle tree fanout and of the query range.

* Fig. 11a — proof size grows with fanout (more sibling digests per
  level); every method is best at fanout 2; relative order stable.
* Fig. 11b — proof size grows with query range for every method; the
  HYP/FULL gap narrows as range grows while LDM/FULL widens; DIJ
  explodes towards whole-graph disclosure.
"""

import pytest

from benchmarks.conftest import emit

FANOUTS = [2, 4, 8, 16, 32]
RANGES = [250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0]
METHODS = ["DIJ", "FULL", "LDM", "HYP"]


@pytest.fixture(scope="module")
def fanout_runs(ctx):
    return {
        (fanout, name): ctx.measure(name, fanout=fanout)[1]
        for fanout in FANOUTS
        for name in METHODS
    }


def test_fig11a_fanout(ctx, fanout_runs, results, benchmark):
    rows = []
    for fanout in FANOUTS:
        for name in METHODS:
            run = fanout_runs[(fanout, name)]
            rows.append([fanout, name, run.t_prf_kb, run.total_kb])
            results.add("fig11a", fanout=fanout, method=name,
                        t_prf_kb=run.t_prf_kb, total_kb=run.total_kb)
    emit("Fig 11a — communication overhead by Merkle fanout [KB]",
         ["fanout", "method", "T-prf KB", "total KB"], rows)

    for name in METHODS:
        # Fanout 2 is optimal, and the largest fanout is clearly worse.
        assert (fanout_runs[(2, name)].t_prf_kb
                <= min(fanout_runs[(f, name)].t_prf_kb for f in FANOUTS) + 1e-9)
        assert (fanout_runs[(32, name)].t_prf_kb
                > fanout_runs[(2, name)].t_prf_kb)
    for fanout in FANOUTS:
        assert (fanout_runs[(fanout, "DIJ")].total_kb
                > fanout_runs[(fanout, "FULL")].total_kb)

    method = ctx.method("FULL", fanout=32)
    vs, vt = ctx.workload().queries[0]
    benchmark(method.answer, vs, vt)


@pytest.fixture(scope="module")
def range_runs(ctx):
    return {
        (query_range, name): ctx.measure(name, query_range=query_range)[1]
        for query_range in RANGES
        for name in METHODS
    }


def test_fig11b_query_range(ctx, range_runs, results, benchmark):
    rows = []
    for query_range in RANGES:
        for name in METHODS:
            run = range_runs[(query_range, name)]
            rows.append([int(query_range), name, run.total_kb])
            results.add("fig11b", query_range=query_range, method=name,
                        total_kb=run.total_kb)
    emit("Fig 11b — communication overhead by query range [KB]",
         ["range", "method", "total KB"], rows)

    for name in METHODS:
        small = range_runs[(250.0, name)].total_kb
        large = range_runs[(8000.0, name)].total_kb
        assert large > small, f"{name} proof did not grow with range"
    # DIJ grows much faster than FULL.
    dij_growth = (range_runs[(8000.0, "DIJ")].total_kb
                  / range_runs[(250.0, "DIJ")].total_kb)
    full_growth = (range_runs[(8000.0, "FULL")].total_kb
                   / range_runs[(250.0, "FULL")].total_kb)
    assert dij_growth > 3 * full_growth
    # Paper: the LDM/FULL ratio widens as the range grows.
    ldm_ratio_small = (range_runs[(1000.0, "LDM")].total_kb
                       / range_runs[(1000.0, "FULL")].total_kb)
    ldm_ratio_large = (range_runs[(8000.0, "LDM")].total_kb
                       / range_runs[(8000.0, "FULL")].total_kb)
    assert ldm_ratio_large > ldm_ratio_small

    method = ctx.method("DIJ")
    vs, vt = ctx.workload(query_range=8000.0).queries[0]
    benchmark(method.answer, vs, vt)
