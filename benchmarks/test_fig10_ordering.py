"""Figure 10 — effect of the graph-node ordering on proof size.

Paper: five orderings (bfs, dfs, hbt, kd, rand) under otherwise default
settings.  Expected shape: ``rand`` is the worst, ``bfs`` second worst;
``hbt``/``kd``/``dfs`` are similar and the best because they preserve
network proximity, so proof items share sibling digests.
"""

import statistics

import pytest

from benchmarks.conftest import emit

ORDERINGS = ["bfs", "dfs", "hbt", "kd", "rand"]
METHODS = ["DIJ", "FULL", "LDM", "HYP"]


@pytest.fixture(scope="module")
def fig10_runs(ctx):
    return {
        (ordering, name): ctx.measure(name, ordering=ordering)[1]
        for ordering in ORDERINGS
        for name in METHODS
    }


def test_fig10_ordering_effect(ctx, fig10_runs, results, benchmark):
    rows = []
    for ordering in ORDERINGS:
        for name in METHODS:
            run = fig10_runs[(ordering, name)]
            rows.append([ordering, name, run.s_prf_kb, run.t_prf_kb, run.total_kb])
            results.add("fig10", ordering=ordering, method=name,
                        s_prf_kb=run.s_prf_kb, t_prf_kb=run.t_prf_kb,
                        total_kb=run.total_kb)
    emit("Fig 10 — communication overhead by node ordering [KB]",
         ["ordering", "method", "S-prf KB", "T-prf KB", "total KB"], rows)

    # The ordering only moves the integrity proof ΓT (ΓS content is the
    # same set of tuples), so compare T-prf sizes summed over methods.
    def t_total(ordering):
        return sum(fig10_runs[(ordering, name)].t_prf_kb for name in METHODS)

    t_sizes = {ordering: t_total(ordering) for ordering in ORDERINGS}
    locality = [t_sizes["hbt"], t_sizes["kd"], t_sizes["dfs"]]
    assert t_sizes["rand"] == max(t_sizes.values())
    assert t_sizes["rand"] > 1.5 * min(locality)
    assert t_sizes["bfs"] > min(locality)
    # hbt / kd / dfs are "similar" per the paper: within ~2x of each other.
    assert max(locality) < 2.0 * min(locality) + 0.5

    method = ctx.method("DIJ", ordering="rand")
    vs, vt = ctx.workload().queries[0]
    benchmark(method.answer, vs, vt)
