"""Serving throughput — the heavy-traffic scenario beyond the paper.

The paper measures per-query proof cost; a production provider serves
the same popular queries to many clients.  This benchmark replays the
default workload through a :class:`~repro.service.server.ProofServer`
(cold cache, then warm) and records QPS, latency percentiles, hit rate
and proof bytes per pass into ``benchmarks/results/``.

Expected shape: the warm pass hits the cache on (essentially) every
request and is at least an order of magnitude faster than cold proving;
every served proof — cached or fresh — passes client verification.
"""

import pytest

from benchmarks.conftest import DEFAULT_DATASET, DEFAULT_RANGE, DEFAULT_SCALE, emit
from repro.bench.serving import LoadtestReport, run_loadtest

#: Two batchable methods (coalesced bursts) and one constant-size method.
METHODS = ["DIJ", "LDM", "FULL"]


@pytest.fixture(scope="module")
def serving_reports(ctx) -> "dict[str, LoadtestReport]":
    reports = {}
    for name in METHODS:
        method = ctx.method(name)
        queries = list(ctx.workload())
        # One direct answer outside the measured server warms process
        # state (lazy imports, compiled graph index) without touching
        # the load test's proof cache: the "cold" pass measures a cold
        # cache, not interpreter first-touch costs.
        method.answer(*queries[0])
        reports[name] = run_loadtest(
            method, queries, ctx.signer.verify, passes=3,
            coalesce=method.supports_batching,
        )
    return reports


def test_serving_throughput(ctx, serving_reports, results, benchmark):
    graph = ctx.dataset()
    rows = []
    for name in METHODS:
        report = serving_reports[name]
        for p in report.passes:
            s = p.snapshot
            rows.append([name, p.label, s.requests, s.qps, s.p50_ms,
                         s.p95_ms, 100.0 * s.hit_rate, s.proof_kbytes])
            results.add(
                "serving", method=name, dataset=DEFAULT_DATASET,
                scale=DEFAULT_SCALE, nodes=graph.num_nodes,
                query_range=DEFAULT_RANGE, label=p.label,
                speedup=report.speedup, **s.as_dict(),
            )
    emit(
        f"Serving throughput — cold vs warm cache "
        f"({DEFAULT_DATASET}-like, |V|={graph.num_nodes}, range={DEFAULT_RANGE:g})",
        ["method", "pass", "requests", "QPS", "p50 ms", "p95 ms",
         "hit %", "proof KB"],
        rows,
    )
    for name in METHODS:
        report = serving_reports[name]
        assert report.all_verified, report.warm.failures
        assert report.warm.snapshot.hit_rate >= 0.9
        assert report.warm.snapshot.qps > report.cold.snapshot.qps

    # Representative serving op: a warm-cache hit on the DIJ server.
    from repro.service.server import ProofServer

    server = ProofServer(ctx.method("DIJ"))
    vs, vt = ctx.workload().queries[0]
    server.answer(vs, vt)
    benchmark(server.answer, vs, vt)


def test_concurrent_serving(ctx, results, benchmark):
    """Thread-pool mode: same answers, order preserved, all verified."""
    method = ctx.method("DIJ")
    queries = list(ctx.workload())
    report = run_loadtest(method, queries, ctx.signer.verify,
                          passes=2, workers=4)
    assert report.all_verified
    assert report.warm.snapshot.hit_rate >= 0.9
    for p in report.passes:
        results.add("serving-concurrent", method="DIJ", workers=4,
                    label=p.label, **p.snapshot.as_dict())
    emit("Concurrent serving (4 workers) — cold vs warm",
         [h for h in LoadtestReport.TABLE_HEADERS], report.table_rows())

    from repro.service.server import ProofServer

    server = ProofServer(method, max_workers=4)
    benchmark(server.answer_concurrent, queries[:4])
