"""Artifact cold-start vs rebuild-from-graph — the pack's raison d'être.

The paper's owner builds once, offline; every serving process after
that should pay only I/O, not reconstruction.  This benchmark packs
each hint-bearing method on the DE dataset, then measures

* **rebuild** — what a naive serving box pays at boot: parse the graph
  file, then ``build`` with the user-facing publish parameters
  (landmark selection, all-pairs materialization, hyper-edge
  Dijkstras, Merkle hashing), and
* **cold start** — ``load_method`` from the ``.rspv`` file, including
  full section-digest verification and graph rehydration.

Both sides start from a file on disk — the deployment question is
"what does bringing up one more serving process cost", and a process
has neither a parsed graph nor built hints until it pays for them.
The load side reports the minimum of three runs (the standard
noise-free estimate for a cheap repeatable operation); the rebuild
side runs once, since seconds-long builds self-average.

Gate: cold start is at least 10x faster than rebuild for FULL / LDM /
HYP (DIJ precomputes nothing, so its rebuild is just the network tree;
it is reported but not gated).  Loaded methods must answer
byte-identically, which the gate run re-checks on a workload sample.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import DEFAULT_DATASET, DEFAULT_SCALE, emit
from repro.core.method import get_method
from repro.store import load_method, save_method
from repro.store.pack import file_digest

#: Methods whose construction cost the artifact amortizes (the gate);
#: DIJ rides along for the report.
GATED_METHODS = ("FULL", "LDM", "HYP")
METHODS = ("DIJ",) + GATED_METHODS

#: Required cold-start advantage over rebuild-from-graph.
MIN_SPEEDUP = 10.0


@pytest.fixture(scope="module")
def artifact_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("coldstart")


def _measure(ctx, name: str, artifact_dir, graph_file: str) -> dict:
    from repro.graph.io import read_graph

    method = ctx.method(name)
    path = os.path.join(str(artifact_dir), f"{name.lower()}.rspv")

    start = time.perf_counter()
    save_method(method, path)
    pack_seconds = time.perf_counter() - start

    # Rebuild: the boot path of a serving box without artifacts —
    # parse the network file, then publish with the user-facing
    # parameters (LDM re-selects its landmarks exactly like a fresh
    # `DataOwner.publish` would).
    start = time.perf_counter()
    rebuilt = get_method(name).build(read_graph(graph_file), ctx.signer,
                                     **method._publish_params)
    rebuild_seconds = time.perf_counter() - start

    load_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        loaded = load_method(path)
        load_seconds = min(load_seconds, time.perf_counter() - start)

    queries = list(ctx.workload())[:5]
    for vs, vt in queries:
        assert loaded.answer(vs, vt).encode() == \
            method.answer(vs, vt).encode(), (name, vs, vt)
    assert loaded.descriptor.encode() == method.descriptor.encode()
    # The rebuild is an independent build of the same deterministic
    # state: its descriptor must agree too (sanity for the comparison).
    assert rebuilt.descriptor.encode() == method.descriptor.encode()

    return dict(
        method=name,
        artifact_bytes=os.path.getsize(path),
        artifact_digest=file_digest(path).hex(),
        pack_seconds=pack_seconds,
        rebuild_seconds=rebuild_seconds,
        load_seconds=load_seconds,
        speedup=rebuild_seconds / load_seconds if load_seconds else 0.0,
    )


def test_artifact_coldstart(ctx, results, artifact_dir):
    from repro.graph.io import write_graph

    graph = ctx.dataset()
    graph_file = os.path.join(str(artifact_dir), "network.txt")
    write_graph(graph, graph_file)
    rows = []
    measurements = {}
    for name in METHODS:
        record = _measure(ctx, name, artifact_dir, graph_file)
        measurements[name] = record
        rows.append([
            name, record["artifact_bytes"] / 1024.0,
            record["pack_seconds"], record["rebuild_seconds"],
            1000.0 * record["load_seconds"], record["speedup"],
        ])
        results.add(
            "artifact_coldstart", dataset=DEFAULT_DATASET,
            scale=DEFAULT_SCALE, nodes=graph.num_nodes,
            gated=name in GATED_METHODS, min_speedup=MIN_SPEEDUP,
            **record,
        )
    emit(
        f"Artifact cold-start vs rebuild ({DEFAULT_DATASET}-like, "
        f"|V|={graph.num_nodes})",
        ["method", "artifact KB", "pack s", "rebuild s", "load ms",
         "speedup"],
        rows,
    )
    for name in GATED_METHODS:
        assert measurements[name]["speedup"] >= MIN_SPEEDUP, (
            f"{name}: cold start {measurements[name]['load_seconds']:.3f}s "
            f"is less than {MIN_SPEEDUP:g}x faster than rebuild "
            f"{measurements[name]['rebuild_seconds']:.3f}s"
        )


def test_artifact_determinism_at_scale(ctx, results, artifact_dir):
    """Same graph + build params + seed => byte-identical artifact.

    The second pack comes from an *independent* build (same seeded
    publish parameters), so the digest equality certifies the whole
    pipeline — landmark selection, quantization, compression scan,
    Merkle construction, pack layout — is reproducible end to end.
    """
    method = ctx.method("LDM")
    rebuilt = get_method("LDM").build(ctx.dataset(), ctx.signer,
                                      **method._publish_params)
    path_a = os.path.join(str(artifact_dir), "det_a.rspv")
    path_b = os.path.join(str(artifact_dir), "det_b.rspv")
    save_method(method, path_a)
    save_method(rebuilt, path_b)
    digest_a = file_digest(path_a).hex()
    assert digest_a == file_digest(path_b).hex()
    results.add("artifact_determinism", method="LDM",
                dataset=DEFAULT_DATASET, scale=DEFAULT_SCALE,
                digest=digest_a)
