"""Digest throughput: the construction-time cost of the hash primitive.

Index construction is digest-bound — the authenticated structures hash
millions of short rows (Merkle leaves/internal nodes, MB-tree entries)
at build and re-hash subtrees on every owner update.  This benchmark
measures each supported :class:`~repro.crypto.hashing.HashFunction` on
exactly that shape of work: many small messages through the bound
``factory`` constructor (the hot-loop idiom) plus a streaming pass for
context, recording digests/second and MB/second per primitive.

blake3 is the optional fast path (satellite of the async-serving PR):
when the wheel is present its numbers land in the same table and it
must at least keep pace with sha256; when absent, the run records the
primitive as unavailable and asserts the *typed* refusal instead —
never a skip that hides a broken optional path.

Correctness rides along: every measured primitive is pinned to a known
test vector first, so a wheel that returned wrong digests fast would
fail before it could post a throughput number.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import emit
from repro.crypto.hashing import HashFunction
from repro.errors import CryptoError

#: Known-answer vectors: digest of b"abc" per primitive.
PINNED = {
    "sha1": "a9993e364706816aba3e25717850c26c9cd0d89d",
    "sha256":
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
    "blake3":
        "6437b3ac38465133ffb63b75273a8db548c558465d79db03fd359c6cd5bd9d85",
}

#: Merkle-node-sized messages (two digests + a little framing).
SMALL_MESSAGE = b"\xa5" * 72
SMALL_ROUNDS = 50_000

#: One streaming pass for MB/s context (artifact-section sized chunks).
STREAM_CHUNK = b"\x5a" * 65536
STREAM_CHUNKS = 256


def _blake3_available() -> bool:
    try:
        import blake3  # noqa: F401
    except ImportError:
        return False
    return True


def _measure(h: HashFunction) -> "tuple[float, float]":
    """(small digests/s, streaming MB/s) for one primitive."""
    factory = h.factory  # the hot-loop binding construction uses
    start = time.perf_counter()
    for _ in range(SMALL_ROUNDS):
        factory(SMALL_MESSAGE).digest()
    small_elapsed = time.perf_counter() - start
    hasher = factory()
    start = time.perf_counter()
    for _ in range(STREAM_CHUNKS):
        hasher.update(STREAM_CHUNK)
    hasher.digest()
    stream_elapsed = time.perf_counter() - start
    digests_per_s = SMALL_ROUNDS / small_elapsed if small_elapsed else 0.0
    mb = STREAM_CHUNKS * len(STREAM_CHUNK) / (1024.0 * 1024.0)
    mb_per_s = mb / stream_elapsed if stream_elapsed else 0.0
    return digests_per_s, mb_per_s


def test_digest_throughput(results):
    have_blake3 = _blake3_available()
    rows = []
    measured: dict[str, tuple[float, float]] = {}
    for name in ("sha1", "sha256", "blake3"):
        if name == "blake3" and not have_blake3:
            # The absence itself is the asserted behaviour: a typed
            # CryptoError naming the wheel, not an ImportError.
            try:
                HashFunction("blake3")
            except CryptoError as exc:
                assert "blake3" in str(exc)
            else:
                raise AssertionError(
                    "blake3 without the wheel must raise CryptoError")
            rows.append([name, "-", "-", "unavailable (no wheel)"])
            results.add("digest_throughput", hash=name, available=False,
                        cpu_count=os.cpu_count())
            continue
        h = HashFunction(name)
        assert h.digest(b"abc").hex() == PINNED[name], name
        digests_per_s, mb_per_s = _measure(h)
        measured[name] = (digests_per_s, mb_per_s)
        rows.append([name, digests_per_s, mb_per_s, "ok"])
        results.add(
            "digest_throughput", hash=name, available=True,
            digest_size=h.digest_size, small_message_bytes=len(SMALL_MESSAGE),
            small_digests_per_s=digests_per_s, stream_mb_per_s=mb_per_s,
            cpu_count=os.cpu_count(),
        )
    emit(
        f"Digest throughput ({SMALL_ROUNDS} x {len(SMALL_MESSAGE)}-byte "
        f"Merkle-node messages; {STREAM_CHUNKS} x 64 KB stream; "
        f"{os.cpu_count()} CPUs)",
        ["hash", "small digests/s", "stream MB/s", "status"],
        rows,
    )
    # Sanity floor, not a race: hashlib on any supported machine clears
    # this by orders of magnitude; 0 would mean a broken timer.
    for name, (digests_per_s, _mb) in measured.items():
        assert digests_per_s > 1000, (name, digests_per_s)
    if have_blake3:
        # The whole point of carrying the optional wheel: it must not
        # be slower than the portable fallback with the same digest
        # size on the construction-shaped workload.
        assert measured["blake3"][0] >= measured["sha256"][0], measured
