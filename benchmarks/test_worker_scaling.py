"""Multi-process serving: wire QPS of 1 vs N SO_REUSEPORT workers.

CPython's GIL caps one process at roughly a core of proof computation;
the pre-forked worker pool (``serve --artifact --http --workers N``)
is the escape hatch.  This benchmark packs the DE DIJ method, then
replays the default workload concurrently against a 1-worker and a
2-worker pool on the same machine, reporting client-observed wire QPS
and how the kernel spread requests across the workers.  The driver
holds one **persistent** connection per client thread across all
passes (``HttpTransport`` keep-alive); the old dial-per-frame client
buried proof serving under TCP setup, which is exactly the artifact
the recorded baselines used to carry.

The scaling *gate* (2 workers beat 1 worker's warm QPS) needs real
parallel hardware: on a single core two processes time-slice one CPU,
so there is nothing to scale into.  On such machines the wire test
records both configurations, asserts correctness (all frames
well-formed, the sampled response verifies, every worker reports its
final metrics) and then **skips** — a skip is visible in CI where a
silent pass at 0.80x "scaling" was not.  ``test_process_scaling``
additionally pins the ≥1.15x floor at the process level (raw proof
computation, no HTTP in the way) whenever two cores exist.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import DEFAULT_DATASET, DEFAULT_SCALE, emit
from repro.bench.serving import run_worker_loadtest
from repro.store import save_method

WORKER_COUNTS = (1, 2)

#: Required warm-QPS advantage of 2 workers over 1 (multi-core only;
#: conservative — perfect scaling would be ~2x).
MIN_SCALING = 1.15


@pytest.fixture(scope="module")
def dij_artifact(ctx, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("pool") / "dij.rspv")
    save_method(ctx.method("DIJ"), path)
    return path


def test_worker_scaling(ctx, results, dij_artifact):
    import socket

    if not hasattr(socket, "SO_REUSEPORT"):
        pytest.skip("platform has no SO_REUSEPORT")
    graph = ctx.dataset()
    queries = list(ctx.workload())
    reports = {}
    rows = []
    for workers in WORKER_COUNTS:
        report = run_worker_loadtest(
            dij_artifact, queries, workers=workers, passes=3,
            client_threads=4, verify_signature=ctx.signer.verify,
        )
        assert report.all_verified, report.warm.failures
        # Every worker must report in; how evenly SO_REUSEPORT spread
        # the handful of connections is recorded, not asserted — the
        # kernel balances by connection hash, so a small run can land
        # lopsided without anything being wrong.
        assert len(report.worker_requests) == workers
        assert sum(report.worker_requests) >= len(queries)
        reports[workers] = report
        for p in report.passes:
            rows.append([workers, p.label, p.requests, p.qps,
                         p.wire_bytes / 1024.0])
        results.add(
            "worker_scaling", dataset=DEFAULT_DATASET, scale=DEFAULT_SCALE,
            nodes=graph.num_nodes, workers=workers,
            cold_qps=report.cold.qps, warm_qps=report.warm.qps,
            worker_requests=list(report.worker_requests),
            server_requests=report.aggregate_metrics.get("requests"),
            cpu_count=os.cpu_count(),
        )
    scaling = reports[2].warm.qps / reports[1].warm.qps \
        if reports[1].warm.qps else 0.0
    results.add(
        "worker_scaling_summary", dataset=DEFAULT_DATASET,
        scale=DEFAULT_SCALE, scaling=scaling, min_scaling=MIN_SCALING,
        cpu_count=os.cpu_count(),
        gated=(os.cpu_count() or 1) >= 2,
    )
    emit(
        f"Worker-pool wire QPS ({DEFAULT_DATASET}-like, "
        f"|V|={graph.num_nodes}, 4 client threads, "
        f"2-worker/1-worker warm scaling {scaling:.2f}x, "
        f"{os.cpu_count()} CPUs)",
        ["workers", "pass", "requests", "wire QPS", "wire KB"],
        rows,
    )
    if (os.cpu_count() or 1) < 2:
        # The run above still recorded and asserted correctness; only
        # the *scaling* claim is meaningless here.  Skip loudly instead
        # of passing silently at whatever time-slicing produced.
        pytest.skip(
            f"scaling gate needs >= 2 cores (this runner has "
            f"{os.cpu_count()}; measured {scaling:.2f}x is time-slicing, "
            f"not scaling)"
        )
    assert scaling >= MIN_SCALING, (
        f"2 workers scaled wire QPS only {scaling:.2f}x over 1 worker "
        f"(required {MIN_SCALING:g}x on a {os.cpu_count()}-core machine)"
    )


def _scaling_worker(artifact_path, queries, rounds, ready, go, done):
    """Child of ``test_process_scaling``: pure proof computation."""
    from repro.service.server import ProofServer
    from repro.store import load_method

    # cache_size=1 with a multi-query workload: every answer is a real
    # proof computation, not an LRU hit — the CPU-bound work scaling is
    # supposed to parallelize.
    server = ProofServer(load_method(artifact_path), cache_size=1)
    ready.put(None)
    go.wait()
    ok = True
    for _ in range(rounds):
        for vs, vt in queries:
            ok = ok and server.answer(vs, vt).ok
    done.put(ok)


@pytest.mark.skipif((os.cpu_count() or 1) < 2,
                    reason="process-level scaling needs >= 2 cores")
def test_process_scaling(ctx, results, dij_artifact):
    """Two proof processes must beat one by >= 1.15x on >= 2 cores.

    Strips HTTP, sockets and SO_REUSEPORT out of the picture: the same
    total proof workload runs in one process (2N rounds) and split
    across two (N rounds each), timed from a shared start signal after
    both children finish loading the artifact.  What remains is the
    claim the worker pool exists for — proof computation scales across
    processes.
    """
    import multiprocessing as mp

    queries = list(ctx.workload())
    rounds = 3  # per process in the dual config; single runs 2x rounds

    def run(processes: int, rounds_each: int) -> float:
        spawn = mp.get_context("spawn")
        ready, done = spawn.Queue(), spawn.Queue()
        go = spawn.Event()
        children = [
            spawn.Process(target=_scaling_worker,
                          args=(dij_artifact, queries, rounds_each,
                                ready, go, done),
                          daemon=True)
            for _ in range(processes)
        ]
        for child in children:
            child.start()
        for _ in children:
            ready.get(timeout=300)
        start = time.perf_counter()
        go.set()
        outcomes = [done.get(timeout=600) for _ in children]
        elapsed = time.perf_counter() - start
        for child in children:
            child.join(timeout=30)
        assert all(outcomes), "a scaling child saw a failed answer"
        return elapsed

    single = run(1, 2 * rounds)
    dual = run(2, rounds)
    scaling = single / dual if dual else 0.0
    results.add(
        "process_scaling", dataset=DEFAULT_DATASET, scale=DEFAULT_SCALE,
        single_seconds=single, dual_seconds=dual, scaling=scaling,
        min_scaling=MIN_SCALING, cpu_count=os.cpu_count(),
    )
    emit(
        f"Process-level proof scaling ({os.cpu_count()} CPUs)",
        ["config", "seconds"],
        [["1 process x %d rounds" % (2 * rounds), single],
         ["2 processes x %d rounds" % rounds, dual],
         ["scaling", scaling]],
    )
    assert scaling >= MIN_SCALING, (
        f"two proof processes ran only {scaling:.2f}x faster than one "
        f"(required {MIN_SCALING:g}x on a {os.cpu_count()}-core machine)"
    )
