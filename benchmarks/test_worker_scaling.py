"""Multi-process serving: wire QPS of 1 vs N SO_REUSEPORT workers.

CPython's GIL caps one process at roughly a core of proof computation;
the pre-forked worker pool (``serve --artifact --http --workers N``)
is the escape hatch.  This benchmark packs the DE DIJ method, then
replays the default workload concurrently against a 1-worker and a
2-worker pool on the same machine, reporting client-observed wire QPS
and how the kernel spread requests across the workers.

The scaling *gate* (2 workers beat 1 worker's warm QPS) only runs on
multi-core machines: on a single core two processes time-slice one
CPU, so there is nothing to scale into — the run still reports both
configurations and asserts correctness (all frames well-formed, the
sampled response verifies, every worker reports its final metrics).
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import DEFAULT_DATASET, DEFAULT_SCALE, emit
from repro.bench.serving import run_worker_loadtest
from repro.store import save_method

WORKER_COUNTS = (1, 2)

#: Required warm-QPS advantage of 2 workers over 1 (multi-core only;
#: conservative — perfect scaling would be ~2x).
MIN_SCALING = 1.15


@pytest.fixture(scope="module")
def dij_artifact(ctx, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("pool") / "dij.rspv")
    save_method(ctx.method("DIJ"), path)
    return path


def test_worker_scaling(ctx, results, dij_artifact):
    import socket

    if not hasattr(socket, "SO_REUSEPORT"):
        pytest.skip("platform has no SO_REUSEPORT")
    graph = ctx.dataset()
    queries = list(ctx.workload())
    reports = {}
    rows = []
    for workers in WORKER_COUNTS:
        report = run_worker_loadtest(
            dij_artifact, queries, workers=workers, passes=3,
            client_threads=4, verify_signature=ctx.signer.verify,
        )
        assert report.all_verified, report.warm.failures
        # Every worker must report in; how evenly SO_REUSEPORT spread
        # the handful of connections is recorded, not asserted — the
        # kernel balances by connection hash, so a small run can land
        # lopsided without anything being wrong.
        assert len(report.worker_requests) == workers
        assert sum(report.worker_requests) >= len(queries)
        reports[workers] = report
        for p in report.passes:
            rows.append([workers, p.label, p.requests, p.qps,
                         p.wire_bytes / 1024.0])
        results.add(
            "worker_scaling", dataset=DEFAULT_DATASET, scale=DEFAULT_SCALE,
            nodes=graph.num_nodes, workers=workers,
            cold_qps=report.cold.qps, warm_qps=report.warm.qps,
            worker_requests=list(report.worker_requests),
            server_requests=report.aggregate_metrics.get("requests"),
            cpu_count=os.cpu_count(),
        )
    scaling = reports[2].warm.qps / reports[1].warm.qps \
        if reports[1].warm.qps else 0.0
    results.add(
        "worker_scaling_summary", dataset=DEFAULT_DATASET,
        scale=DEFAULT_SCALE, scaling=scaling, min_scaling=MIN_SCALING,
        cpu_count=os.cpu_count(),
        gated=(os.cpu_count() or 1) >= 2,
    )
    emit(
        f"Worker-pool wire QPS ({DEFAULT_DATASET}-like, "
        f"|V|={graph.num_nodes}, 4 client threads, "
        f"2-worker/1-worker warm scaling {scaling:.2f}x, "
        f"{os.cpu_count()} CPUs)",
        ["workers", "pass", "requests", "wire QPS", "wire KB"],
        rows,
    )
    if (os.cpu_count() or 1) >= 2:
        assert scaling >= MIN_SCALING, (
            f"2 workers scaled wire QPS only {scaling:.2f}x over 1 worker "
            f"(required {MIN_SCALING:g}x on a {os.cpu_count()}-core machine)"
        )
