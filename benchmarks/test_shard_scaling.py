"""Sharded serving: wire QPS of a 1-shard vs 2-shard router fleet.

Both configurations run the *same* topology — per-shard worker
processes behind a :class:`~repro.service.router.ShardRouter` behind
HTTP — so the k=1 number already pays the proxy hop and the comparison
isolates what sharding buys: proof computation spread across worker
processes, with the router's fan-out threads overlapping the shard
round trips.  Cross-shard pairs additionally pay stitching (two
sub-proofs instead of one), which is the honest price of the topology
and is included in the measured QPS rather than edited out.

Like ``test_worker_scaling``, the scaling gate is only meaningful on
real parallel hardware: a single core time-slices the worker processes
and measures scheduler noise, not scaling.  Such runners record both
configurations, assert correctness (every sampled response — plain and
composite — verifies; the router saw cross-shard traffic), and then
skip **loudly** so CI shows where the gate did not run.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import DEFAULT_DATASET, DEFAULT_SCALE, emit
from repro.bench.serving import run_router_loadtest

SHARD_COUNTS = (1, 2)

#: Required warm-QPS advantage of the 2-shard fleet over 1 shard
#: (multi-core only; conservative — the stitch overhead on cross-shard
#: pairs makes perfect 2x unreachable by design).
MIN_SCALING = 1.15


def test_shard_scaling(ctx, results):
    graph = ctx.dataset()
    queries = list(ctx.workload())
    reports = {}
    rows = []
    for num_shards in SHARD_COUNTS:
        report = run_router_loadtest(
            graph, ctx.signer, queries, num_shards=num_shards, passes=3,
            client_threads=4, verify_signature=ctx.signer.verify,
        )
        assert report.all_verified, report.warm.failures
        assert report.num_shards == num_shards
        if num_shards > 1:
            assert report.cross_shard > 0, \
                "workload never crossed a shard; the gate measured nothing"
        fleet = (report.router_metrics or {}).get("fleet", {})
        reports[num_shards] = report
        for p in report.passes:
            rows.append([num_shards, p.label, p.requests, p.qps,
                         p.wire_bytes / 1024.0])
        results.add(
            "shard_scaling", dataset=DEFAULT_DATASET, scale=DEFAULT_SCALE,
            nodes=graph.num_nodes, shards=num_shards,
            cold_qps=report.cold.qps, warm_qps=report.warm.qps,
            cross_shard=report.cross_shard,
            fleet_requests=fleet.get("requests"),
            cpu_count=os.cpu_count(),
        )
    scaling = reports[2].warm.qps / reports[1].warm.qps \
        if reports[1].warm.qps else 0.0
    results.add(
        "shard_scaling_summary", dataset=DEFAULT_DATASET,
        scale=DEFAULT_SCALE, scaling=scaling, min_scaling=MIN_SCALING,
        cross_shard=reports[2].cross_shard,
        cpu_count=os.cpu_count(),
        gated=(os.cpu_count() or 1) >= 2,
    )
    emit(
        f"Sharded router wire QPS ({DEFAULT_DATASET}-like, "
        f"|V|={graph.num_nodes}, 4 client threads, "
        f"{reports[2].cross_shard} cross-shard pairs, "
        f"2-shard/1-shard warm scaling {scaling:.2f}x, "
        f"{os.cpu_count()} CPUs)",
        ["shards", "pass", "requests", "wire QPS", "wire KB"],
        rows,
    )
    if (os.cpu_count() or 1) < 2:
        pytest.skip(
            f"scaling gate needs >= 2 cores (this runner has "
            f"{os.cpu_count()}; measured {scaling:.2f}x is time-slicing, "
            f"not scaling)"
        )
    assert scaling >= MIN_SCALING, (
        f"2 shards scaled wire QPS only {scaling:.2f}x over 1 shard "
        f"(required {MIN_SCALING:g}x on a {os.cpu_count()}-core machine)"
    )
