"""Live-update pipeline — incremental re-authentication vs rebuild.

The paper's owner re-signs a static snapshot; the live-update pipeline
(`apply_update`) absorbs edge mutations by patching only the touched
hint tuples and Merkle leaves.  This benchmark quantifies the payoff on
the DE network and pins the correctness contract at benchmark scale:

* ``test_update_incremental_vs_rebuild`` — median latency of absorbing
  a single edge re-weight incrementally versus re-publishing from
  scratch (the owner's only alternative without the pipeline).
  Acceptance: at least 5x for DIJ and LDM.
* ``test_update_equivalence_after_n_random`` — after N random mixed
  updates, signed roots and full query responses are byte-identical to
  a from-scratch rebuild.
* ``test_update_aware_serving`` — a :class:`ProofServer` replaying the
  default workload with owner re-weights interleaved mid-pass: every
  chunk verifies under the descriptor version it was served at.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import DEFAULT_SCALE, SWEEP_SCALE, emit, method_params
from repro.bench.serving import LoadtestReport, run_loadtest
from repro.core.method import get_method
from repro.workload.updates import (
    UPDATE_WEIGHT,
    generate_update_workload,
)

#: (method, dataset scale, updates measured) — FULL runs at the sweep
#: scale: its quadratic matrix dominates otherwise.
UPDATE_CONFIGS = [
    ("DIJ", DEFAULT_SCALE, 10),
    ("LDM", DEFAULT_SCALE, 10),
    ("HYP", DEFAULT_SCALE, 5),
    ("FULL", SWEEP_SCALE, 5),
]

#: Acceptance floor (ISSUE 3): incremental absorption of one edge
#: re-weight must beat a from-scratch re-publish by at least this
#: factor for the no-hint method and the landmark method.
MIN_SPEEDUP = {"DIJ": 5.0, "LDM": 5.0}


def _fresh_method(ctx, name, scale):
    """A private (mutable) copy of the cached dataset + a built method."""
    graph = ctx.dataset(scale=scale).copy()
    graph.to_csr()
    method = get_method(name).build(graph, ctx.signer,
                                    **method_params(name))
    return graph, method


def test_update_incremental_vs_rebuild(ctx, results):
    rows = []
    for name, scale, count in UPDATE_CONFIGS:
        graph, method = _fresh_method(ctx, name, scale)
        workload = generate_update_workload(graph, count, seed=2010,
                                            kinds=(UPDATE_WEIGHT,))
        latencies = []
        patched = 0
        for update in workload:
            update.apply(graph)
            start = time.perf_counter()
            report = method.apply_update(ctx.signer)
            latencies.append(time.perf_counter() - start)
            assert report.mode != "full-rebuild"
            patched += report.leaves_patched
        median = sorted(latencies)[len(latencies) // 2]

        start = time.perf_counter()
        type(method).build(graph, ctx.signer, **method._publish_params)
        rebuild = time.perf_counter() - start
        speedup = rebuild / median if median > 0 else 0.0

        results.add(
            "update_incremental_vs_rebuild",
            method=name,
            nodes=graph.num_nodes,
            edges=graph.num_edges,
            updates=count,
            update_ms_median=median * 1000.0,
            update_ms_mean=sum(latencies) / count * 1000.0,
            leaves_patched_total=patched,
            rebuild_seconds=rebuild,
            speedup=speedup,
        )
        rows.append([name, graph.num_nodes, count, median * 1000.0,
                     rebuild * 1000.0, speedup])
        floor = MIN_SPEEDUP.get(name)
        if floor is not None:
            assert speedup >= floor, (
                f"{name}: incremental update is only {speedup:.1f}x faster "
                f"than a rebuild (need >= {floor:g}x)"
            )
    emit("incremental apply_update vs full re-publish (single re-weight)",
         ["method", "nodes", "updates", "update ms (median)", "rebuild ms",
          "speedup"], rows)


def test_update_equivalence_after_n_random(ctx, results):
    """Acceptance: responses after N random updates are byte-identical
    to a fresh rebuild on the mutated graph."""
    n_updates = 20
    rows = []
    for name, scale, _ in UPDATE_CONFIGS:
        graph, method = _fresh_method(ctx, name, scale)
        generate_update_workload(graph, n_updates, seed=777,
                                 kinds=(UPDATE_WEIGHT,)).apply_all(graph)
        method.apply_update(ctx.signer)
        fresh = type(method).build(graph, ctx.signer,
                                   **method._build_params)
        assert method.descriptor.encode() == fresh.descriptor.encode()
        queries = list(ctx.workload(scale=scale))[:5]
        identical = 0
        for vs, vt in queries:
            assert method.answer(vs, vt).encode() == \
                fresh.answer(vs, vt).encode()
            identical += 1
        results.add(
            "update_equivalence",
            method=name,
            updates=n_updates,
            queries_compared=identical,
            byte_identical=True,
        )
        rows.append([name, n_updates, identical, "yes"])
    emit(f"byte-identity after {n_updates} random re-weights",
         ["method", "updates", "responses compared", "identical"], rows)


@pytest.mark.parametrize("name", ["DIJ", "LDM"])
def test_update_aware_serving(ctx, results, name):
    graph = ctx.dataset().copy()
    graph.to_csr()
    method = get_method(name).build(graph, ctx.signer, **method_params(name))
    queries = list(ctx.workload())
    method.answer(*queries[0])  # absorb first-touch costs
    report = run_loadtest(
        method, queries, ctx.signer.verify, passes=3,
        coalesce=method.supports_batching,
        updates_per_pass=3, update_signer=ctx.signer,
    )
    assert report.all_verified, report.warm.failures[:3]
    for loadtest_pass in report.passes:
        assert loadtest_pass.snapshot.updates == 3
        results.add(
            "update_aware_serving",
            method=name,
            label=loadtest_pass.label,
            **loadtest_pass.snapshot.as_dict(),
        )
    emit(f"{name} serving with 3 owner re-weights per pass",
         list(LoadtestReport.TABLE_HEADERS), report.table_rows())
