"""SLO soak benchmark: the steady-burst scenario against the DE method.

This is the serving stack's production-realism gate: Zipf-skewed bursty
traffic with batches, garbage and mid-soak owner pushes, driven through
a live HTTP server, with every response verified client-side.  The
resulting per-phase latency/locality/saturation numbers land in
``benchmarks/results/test_slo_soak.json`` and the run is held against
the checked-in SLO floor (``benchmarks/slo_baseline.json``) — p99,
saturation QPS, cache hit rate and the two zero-tolerance correctness
counters.

The soak *mutates* its graph (owner re-weights mid-run), so it builds a
private method on a copy of the session dataset rather than sharing
``ctx.method`` with the other benchmarks.
"""

from __future__ import annotations

import os

from benchmarks.conftest import DEFAULT_DATASET, DEFAULT_SCALE, emit
from repro.bench.slo import SloReport, check_slo, load_slo_policy, run_slo_soak
from repro.core.method import get_method
from repro.workload.traffic import get_scenario

BASELINE = os.path.join(os.path.dirname(__file__), "slo_baseline.json")

#: Event scale for CI: the full scenario's shape at a smoke-test size.
EVENTS_SCALE = float(os.environ.get("REPRO_SOAK_SCALE", "0.5"))


def test_slo_soak(ctx, results):
    graph = ctx.dataset().copy()
    method = get_method("DIJ").build(graph, ctx.signer)
    scenario = get_scenario("steady-burst").scaled(EVENTS_SCALE)
    report = run_slo_soak(
        method, scenario,
        verify_signature=ctx.signer.verify, update_signer=ctx.signer,
        clients=2, client_mode="thread", seed=2010, time_scale=0.25,
    )

    policy = load_slo_policy(BASELINE)
    results.add(
        "slo_soak", dataset=DEFAULT_DATASET, scale=DEFAULT_SCALE,
        nodes=graph.num_nodes, events_scale=EVENTS_SCALE,
        policy=policy.as_dict(), **report.as_dict(),
    )
    emit(
        f"SLO soak '{scenario.name}' ({DEFAULT_DATASET}-like, "
        f"|V|={graph.num_nodes}, seed 2010, trace {report.trace_digest}, "
        f"{os.cpu_count()} CPUs)",
        list(SloReport.TABLE_HEADERS),
        report.table_rows(),
    )
    emit(
        "SLO summary vs baseline",
        ["objective", "measured", "floor"],
        [
            ["worst non-warmup p99 ms",
             max((p.p99_ms for p in report.phases if p.name != "warmup"),
                 default=0.0),
             policy.max_p99_ms],
            ["saturation QPS", report.saturation_qps,
             policy.min_saturation_qps],
            ["best hit rate",
             max((p.hit_rate for p in report.phases), default=0.0),
             policy.min_hit_rate],
            ["verification failures", report.verification_failures,
             policy.max_verification_failures],
            ["untyped garbage", report.untyped_garbage,
             policy.max_untyped_garbage],
        ],
    )

    # Correctness is unconditional: every response (including those
    # served after the mid-soak version pushes) verified client-side.
    assert report.all_verified, [p.failures for p in report.phases]
    assert report.untyped_garbage == 0
    assert report.updates_pushed >= 1, "soak never pushed an owner update"

    violations = check_slo(report, policy)
    assert not violations, violations
