"""Async frontend benchmark: wire QPS at C=256 and a C=1000 hold soak.

Two claims earn the event-loop frontend its place next to the threaded
one, and this module gates both against the ``async_driver`` block of
``benchmarks/slo_baseline.json``:

* **Throughput under connection pressure** — at 256 concurrent
  keep-alive clients the async frontend must out-serve the threaded
  frontend by ``min_qps_ratio`` (the threaded server pays a stack +
  scheduler for every connection; the event loop pays a coroutine).
  Like the worker-scaling gate, the ratio only means something on real
  parallel hardware: on a single core both frontends time-slice one
  CPU and the measurement is scheduler noise, so the run still records
  both configurations and verifies every response, then **skips
  loudly** instead of passing (or failing) on noise.
* **A thousand held connections cost ~nothing** — an
  :class:`~repro.bench.aioclient.AsyncClientPool` opens
  ``hold_connections`` persistent connections, trickles verified
  traffic over them for ``hold_rounds`` rounds, and process RSS must
  stay flat (``max_rss_growth_mb``).  A per-connection leak — buffered
  frames, un-reaped tasks, handler state — shows up here multiplied by
  a thousand, long before it would trip any per-request test.

Both runs verify every single wire response client-side, so these are
end-to-end soundness checks before they are performance checks.
"""

from __future__ import annotations

import gc
import json
import os

import pytest

from benchmarks.conftest import DEFAULT_DATASET, DEFAULT_SCALE, emit
from repro.bench.serving import run_http_loadtest

BASELINE = os.path.join(os.path.dirname(__file__), "slo_baseline.json")


def _async_policy() -> dict:
    with open(BASELINE, "r", encoding="utf-8") as infile:
        return json.load(infile)["async_driver"]


def _rss_mb() -> float:
    """Current (not peak) resident set size of this process, in MB."""
    with open("/proc/self/status", "r", encoding="ascii") as status:
        for line in status:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) / 1024.0
    raise OSError("no VmRSS in /proc/self/status")


def test_async_frontend(ctx, results):
    """Event-loop vs threaded frontend at C=256 persistent clients."""
    policy = _async_policy()
    clients = int(policy["clients"])
    min_ratio = float(policy["min_qps_ratio"])
    method = ctx.method("DIJ")
    graph = ctx.dataset()
    # Enough work that every client gets several queries per pass.
    base = list(ctx.workload())
    queries = (base * ((8 * clients) // len(base) + 1))[:8 * clients]

    reports = {}
    rows = []
    for label, async_frontend in (("threaded", False), ("async", True)):
        report = run_http_loadtest(
            method, queries, ctx.signer.verify,
            passes=2, async_clients=clients, async_frontend=async_frontend,
        )
        assert report.all_verified, report.warm.failures
        reports[label] = report
        for p in report.passes:
            rows.append([label, p.label, p.requests, p.qps,
                         p.wire_bytes / 1024.0])
        results.add(
            "async_frontend", dataset=DEFAULT_DATASET, scale=DEFAULT_SCALE,
            nodes=graph.num_nodes, frontend=label, clients=clients,
            cold_qps=report.cold.qps, warm_qps=report.warm.qps,
            server_requests=(report.server_metrics or {}).get("requests"),
            cpu_count=os.cpu_count(),
        )
    ratio = (reports["async"].warm.qps / reports["threaded"].warm.qps
             if reports["threaded"].warm.qps else 0.0)
    results.add(
        "async_frontend_summary", dataset=DEFAULT_DATASET,
        scale=DEFAULT_SCALE, clients=clients, qps_ratio=ratio,
        min_qps_ratio=min_ratio, cpu_count=os.cpu_count(),
        gated=(os.cpu_count() or 1) >= 2,
    )
    emit(
        f"Async vs threaded frontend wire QPS ({DEFAULT_DATASET}-like, "
        f"|V|={graph.num_nodes}, C={clients} persistent async clients, "
        f"async/threaded warm ratio {ratio:.2f}x, {os.cpu_count()} CPUs)",
        ["frontend", "pass", "requests", "wire QPS", "wire KB"],
        rows,
    )
    if (os.cpu_count() or 1) < 2:
        # Everything above still ran and verified; only the throughput
        # *comparison* is meaningless when both frontends time-slice a
        # single CPU.  Skip loudly — a silent pass here once hid a
        # worker-scaling regression for weeks.
        pytest.skip(
            f"QPS-ratio gate needs >= 2 cores (this runner has "
            f"{os.cpu_count()}; measured {ratio:.2f}x is time-slicing, "
            f"not event-loop advantage)"
        )
    assert ratio >= min_ratio, (
        f"async frontend served only {ratio:.2f}x the threaded frontend's "
        f"warm wire QPS at C={clients} (required {min_ratio:g}x on a "
        f"{os.cpu_count()}-core machine)"
    )


def test_connection_hold_soak(ctx, results):
    """C=1000 held connections: verified traffic, flat process RSS."""
    from repro.bench.aioclient import AsyncClientPool
    from repro.service.aio import AsyncProofHttpServer
    from repro.service.server import ProofServer

    policy = _async_policy()
    holders = int(policy["hold_connections"])
    rounds = int(policy["hold_rounds"])
    rss_ceiling = float(policy["max_rss_growth_mb"])
    method = ctx.method("DIJ")
    graph = ctx.dataset()
    base = list(ctx.workload())
    # One query per held connection per round — the point is the held
    # sockets, not throughput.
    chunk = (base * (holders // len(base) + 1))[:holders]

    dispatcher = ProofServer(method, cache_size=256).dispatcher()
    rows = []
    failures = 0
    with AsyncProofHttpServer(dispatcher) as server, \
            AsyncClientPool(server.url, ctx.signer.verify,
                            clients=holders, timeout=120.0) as pool:
        pool.hello()  # all C connections established and handshaken
        gc.collect()
        baseline_mb = _rss_mb()
        grown = 0.0
        for round_index in range(rounds):
            outcomes = pool.run_chunk(chunk)
            failures += sum(1 for r in outcomes if not r.ok)
            gc.collect()
            grown = _rss_mb() - baseline_mb
            rows.append([round_index + 1, len(outcomes),
                         sum(1 for r in outcomes if r.ok), grown])
        metrics = dispatcher.metrics_json()
    results.add(
        "connection_hold_soak", dataset=DEFAULT_DATASET, scale=DEFAULT_SCALE,
        nodes=graph.num_nodes, connections=holders, rounds=rounds,
        requests=metrics.get("requests"), verification_failures=failures,
        baseline_rss_mb=baseline_mb, rss_growth_mb=grown,
        max_rss_growth_mb=rss_ceiling, cpu_count=os.cpu_count(),
    )
    emit(
        f"Connection-hold soak (C={holders} persistent connections, "
        f"baseline RSS {baseline_mb:.0f} MB, {os.cpu_count()} CPUs)",
        ["round", "queries", "verified", "RSS growth MB"],
        rows,
    )
    assert failures <= int(policy["max_verification_failures"]), failures
    assert metrics.get("requests", 0) >= rounds * holders
    assert grown <= rss_ceiling, (
        f"RSS grew {grown:.1f} MB over {rounds} rounds with {holders} held "
        f"connections (ceiling {rss_ceiling:g} MB) — a per-connection leak "
        f"multiplied a thousandfold"
    )
