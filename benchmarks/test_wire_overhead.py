"""Wire-protocol overhead — bytes-on-wire versus the paper's proof sizes.

The paper (Fig. 8a) reports communication overhead as serialized proof
bytes; the wire API adds an envelope (frame magic, version, message
type, length prefixes) and, over HTTP, transport framing.  This
benchmark replays the default workload through a real localhost HTTP
service via :class:`~repro.api.client.RemoteClient` and records what
the protocol costs on top of the proofs themselves.

Expected shape: the envelope adds a fixed ~12 bytes per response, so
the overhead ratio stays within a fraction of a percent of 1.0 for
every method — the wire protocol does not distort the paper's
proof-size story.  Every wire response must verify.
"""

import pytest

from benchmarks.conftest import DEFAULT_DATASET, DEFAULT_RANGE, DEFAULT_SCALE, emit
from repro.bench.serving import HttpLoadtestReport, run_http_loadtest

METHODS = ["DIJ", "FULL", "LDM", "HYP"]

#: The envelope must stay under this fraction of the proof bytes on the
#: default workload (measured ~0.5%; 5% leaves headroom for tiny
#: graphs where fixed framing weighs more).
MAX_OVERHEAD_RATIO = 1.05


@pytest.fixture(scope="module")
def wire_reports(ctx) -> "dict[str, HttpLoadtestReport]":
    reports = {}
    for name in METHODS:
        method = ctx.method(name)
        queries = list(ctx.workload())
        method.answer(*queries[0])  # warm process state, not the cache
        reports[name] = run_http_loadtest(
            method, queries, ctx.signer.verify, passes=2,
        )
    return reports


def test_wire_overhead(ctx, wire_reports, results):
    graph = ctx.dataset()
    rows = []
    for name in METHODS:
        report = wire_reports[name]
        assert report.all_verified, f"{name}: wire responses failed verification"
        assert report.wire_overhead_ratio < MAX_OVERHEAD_RATIO, (
            f"{name}: wire framing costs "
            f"{100.0 * (report.wire_overhead_ratio - 1):.2f}% "
            f"over proof bytes"
        )
        cold = report.cold
        rows.append([
            name, cold.requests, cold.qps,
            cold.proof_bytes / 1024.0, cold.wire_bytes / 1024.0,
            100.0 * (report.wire_overhead_ratio - 1.0),
        ])
        results.add(
            "wire_overhead", dataset=DEFAULT_DATASET,
            scale=DEFAULT_SCALE, nodes=graph.num_nodes,
            query_range=DEFAULT_RANGE, **report.as_dict(),
        )
    emit(
        f"Wire overhead — HTTP frames vs standalone proofs "
        f"({DEFAULT_DATASET}-like, |V|={graph.num_nodes}, range={DEFAULT_RANGE:g})",
        ["method", "requests", "wire QPS", "proof KB", "wire KB",
         "overhead %"],
        rows,
    )
