"""Wire-protocol overhead — bytes-on-wire versus the paper's proof sizes.

The paper (Fig. 8a) reports communication overhead as serialized proof
bytes; the wire API adds an envelope (frame magic, version, message
type, length prefixes) and, over HTTP, transport framing.  This
benchmark replays the default workload through a real localhost HTTP
service via :class:`~repro.api.client.RemoteClient` and records what
the protocol costs on top of the proofs themselves.

Expected shape: the envelope adds a fixed ~12 bytes per response, so
the overhead ratio stays within a fraction of a percent of 1.0 for
every method — the wire protocol does not distort the paper's
proof-size story.  Every wire response must verify.
"""

import pytest

from benchmarks.conftest import DEFAULT_DATASET, DEFAULT_RANGE, DEFAULT_SCALE, emit
from repro.api.client import RemoteClient
from repro.api.transport import InProcessTransport
from repro.bench.serving import HttpLoadtestReport, run_http_loadtest
from repro.service.server import ProofServer

METHODS = ["DIJ", "FULL", "LDM", "HYP"]

#: The envelope must stay under this fraction of the proof bytes on the
#: default workload (measured ~0.5%; 5% leaves headroom for tiny
#: graphs where fixed framing weighs more).
MAX_OVERHEAD_RATIO = 1.05

#: Queries per multiproof BATCH frame in the dedup benchmark.
BATCH_K = 16

#: A BATCH of ``BATCH_K`` range-2000 queries must ship at least this
#: fraction fewer reply bytes per query than the same queries served as
#: independent QUERY frames (measured 45–55% across the four methods;
#: the gate holds the architectural win, not the best case).
MIN_BATCH_SAVINGS = 0.25

#: Warm wire QPS of the persistent-connection client over the
#: dial-per-frame baseline (measured ~1.5–1.6x on the short-range
#: workload below once TCP_NODELAY removed the delayed-ACK stalls; 1.3x
#: is the floor that keeps the per-query reconnect defect from ever
#: coming back).
MIN_KEEPALIVE_SPEEDUP = 1.3

#: Query range for the connection-cost gate: short-range queries keep
#: per-query proof and verification work small, so the measured gap is
#: dominated by what is under test — connection setup per frame.  At
#: the default range 2000 the proof work itself (~5ms/query at this
#: scale) would dilute the ratio below any meaningful gate.
KEEPALIVE_QUERY_RANGE = 500.0


@pytest.fixture(scope="module")
def wire_reports(ctx) -> "dict[str, HttpLoadtestReport]":
    reports = {}
    for name in METHODS:
        method = ctx.method(name)
        queries = list(ctx.workload())
        method.answer(*queries[0])  # warm process state, not the cache
        reports[name] = run_http_loadtest(
            method, queries, ctx.signer.verify, passes=2,
        )
    return reports


def test_wire_overhead(ctx, wire_reports, results):
    graph = ctx.dataset()
    rows = []
    for name in METHODS:
        report = wire_reports[name]
        assert report.all_verified, f"{name}: wire responses failed verification"
        assert report.wire_overhead_ratio < MAX_OVERHEAD_RATIO, (
            f"{name}: wire framing costs "
            f"{100.0 * (report.wire_overhead_ratio - 1):.2f}% "
            f"over proof bytes"
        )
        cold = report.cold
        rows.append([
            name, cold.requests, cold.qps,
            cold.proof_bytes / 1024.0, cold.wire_bytes / 1024.0,
            100.0 * (report.wire_overhead_ratio - 1.0),
        ])
        results.add(
            "wire_overhead", dataset=DEFAULT_DATASET,
            scale=DEFAULT_SCALE, nodes=graph.num_nodes,
            query_range=DEFAULT_RANGE, **report.as_dict(),
        )
    emit(
        f"Wire overhead — HTTP frames vs standalone proofs "
        f"({DEFAULT_DATASET}-like, |V|={graph.num_nodes}, range={DEFAULT_RANGE:g})",
        ["method", "requests", "wire QPS", "proof KB", "wire KB",
         "overhead %"],
        rows,
    )


def test_multiproof_batch_savings(ctx, results):
    """One BATCH frame vs k QUERY frames: the Merkle dedup dividend.

    Range-2000 queries on one network disclose heavily overlapping
    subgraphs, so their Merkle covers share most digests; the multiproof
    BATCH layout ships the union once.  Frame sizes are measured on the
    in-process transport — identical bytes to HTTP minus the transport
    framing, which the ratio cancels anyway.
    """
    graph = ctx.dataset()
    queries = list(ctx.workload())[:BATCH_K]
    assert len(queries) == BATCH_K
    rows = []
    for name in METHODS:
        method = ctx.method(name)
        server = ProofServer(method, cache_size=256)
        transport = InProcessTransport(server.dispatcher(), log_frames=True)
        client = RemoteClient(transport, ctx.signer.verify)

        for vs, vt in queries:
            assert client.query(vs, vt).ok
        independent = sum(reply for _, reply in transport.wire_log)

        transport.wire_log.clear()
        batch = client.query_batch(queries)
        assert all(r.ok for r in batch), \
            [f"{r.verdict.reason} {r.verdict.detail}" for r in batch if not r.ok]
        (_, batched), = transport.wire_log

        savings = 1.0 - batched / independent
        assert savings >= MIN_BATCH_SAVINGS, (
            f"{name}: BATCH of {BATCH_K} ships only "
            f"{100.0 * savings:.1f}% fewer reply bytes per query than "
            f"{BATCH_K} independent QUERY frames "
            f"(gate {100.0 * MIN_BATCH_SAVINGS:.0f}%)"
        )
        rows.append([
            name, BATCH_K, independent / BATCH_K / 1024.0,
            batched / BATCH_K / 1024.0, 100.0 * savings,
        ])
        results.add(
            "multiproof_batch_savings", method=name, dataset=DEFAULT_DATASET,
            scale=DEFAULT_SCALE, nodes=graph.num_nodes,
            query_range=DEFAULT_RANGE, batch_k=BATCH_K,
            independent_reply_bytes=independent, batch_reply_bytes=batched,
            savings=savings, gate=MIN_BATCH_SAVINGS,
        )
    emit(
        f"Multiproof BATCH savings — one shared ΓT for k={BATCH_K} queries "
        f"({DEFAULT_DATASET}-like, |V|={graph.num_nodes}, range={DEFAULT_RANGE:g})",
        ["method", "k", "KB/query solo", "KB/query batch", "savings %"],
        rows,
    )


def test_persistent_connection_speedup(ctx, results):
    """Keep-alive vs dial-per-frame: the wire-path defect gate.

    Both runs drive the identical workload through the identical server;
    the only difference is ``keep_alive``.  The warm passes compare
    steady-state throughput with the method cache hot, so the measured
    gap is pure connection cost.

    The measurement pair retries up to three times and gates on the
    best attempt: if the per-query reconnect defect were back the
    speedup would collapse toward 1.0x on *every* attempt, whereas a
    noisy neighbor on a loaded single-core runner can sink any one
    timing sample.
    """
    graph = ctx.dataset()
    method = ctx.method("DIJ")
    # Replicate the workload so each timed pass is ~100 requests — long
    # enough that a single-core box's scheduling jitter cannot fake (or
    # hide) a 1.3x throughput difference.
    queries = list(ctx.workload(query_range=KEEPALIVE_QUERY_RANGE)) * 5
    persistent = redial = None
    speedup = 0.0
    for _ in range(3):
        persistent = run_http_loadtest(method, queries, ctx.signer.verify,
                                       passes=3)
        redial = run_http_loadtest(method, queries, ctx.signer.verify,
                                   passes=3, keep_alive=False)
        assert persistent.all_verified and redial.all_verified
        speedup = persistent.warm.qps / redial.warm.qps
        if speedup >= MIN_KEEPALIVE_SPEEDUP:
            break
    assert speedup >= MIN_KEEPALIVE_SPEEDUP, (
        f"persistent connections serve {persistent.warm.qps:.0f} QPS vs "
        f"{redial.warm.qps:.0f} QPS dial-per-frame — only {speedup:.2f}x "
        f"(gate {MIN_KEEPALIVE_SPEEDUP}x); the per-query reconnect "
        f"defect is back"
    )
    results.add(
        "persistent_connection_speedup", method="DIJ",
        dataset=DEFAULT_DATASET, scale=DEFAULT_SCALE, nodes=graph.num_nodes,
        query_range=KEEPALIVE_QUERY_RANGE, requests=len(queries),
        persistent_warm_qps=persistent.warm.qps,
        redial_warm_qps=redial.warm.qps,
        speedup=speedup, gate=MIN_KEEPALIVE_SPEEDUP,
    )
    emit(
        f"Persistent-connection serving — warm wire QPS, DIJ "
        f"({DEFAULT_DATASET}-like, |V|={graph.num_nodes}, "
        f"{len(queries)} requests/pass)",
        ["client", "warm QPS", "speedup"],
        [["keep-alive", persistent.warm.qps, f"{speedup:.2f}x"],
         ["dial-per-frame", redial.warm.qps, "1.00x"]],
    )
