"""Figure 8 — performance comparison under the default setting.

Paper: DE dataset, query range 2,000, Hilbert ordering, fanout 2,
c=100 landmarks, p=100 cells.

* Fig. 8a — communication overhead (KBytes), split into S-prf / T-prf;
* Fig. 8b — number of items in ΓS and ΓT;
* Fig. 8c — offline construction time of the authenticated hints
  (DIJ omitted: it pre-computes none).

Expected shape: DIJ ≫ LDM > HYP > FULL in proof size; FULL ≫ HYP >
LDM in construction time.
"""

import pytest

from benchmarks.conftest import DEFAULT_DATASET, DEFAULT_RANGE, DEFAULT_SCALE, emit

METHODS = ["DIJ", "FULL", "LDM", "HYP"]


@pytest.fixture(scope="module")
def fig8_runs(ctx):
    return {name: ctx.measure(name)[1] for name in METHODS}


def test_fig8a_communication_overhead(ctx, fig8_runs, results, benchmark):
    graph = ctx.dataset()
    rows = []
    for name in METHODS:
        run = fig8_runs[name]
        rows.append([name, run.s_prf_kb, run.t_prf_kb, run.total_kb])
        results.add(
            "fig8a", method=name, dataset=DEFAULT_DATASET, scale=DEFAULT_SCALE,
            nodes=graph.num_nodes, query_range=DEFAULT_RANGE,
            s_prf_kb=run.s_prf_kb, t_prf_kb=run.t_prf_kb, total_kb=run.total_kb,
        )
    emit(
        f"Fig 8a — communication overhead [KB] "
        f"({DEFAULT_DATASET}-like, |V|={graph.num_nodes}, range={DEFAULT_RANGE:g})",
        ["method", "S-prf KB", "T-prf KB", "total KB"],
        rows,
    )
    # Robust paper claims at this scale: DIJ is by far the largest and
    # FULL the smallest.  The LDM-vs-HYP gap is a graph-size effect (the
    # LDM cone grows with |V| while HYP's two cells do not) and is only
    # weakly separated at 1/16 scale; the table reports both.
    totals = {name: run.total_kb for name, run in fig8_runs.items()}
    assert totals["DIJ"] > totals["LDM"] > totals["FULL"]
    assert totals["DIJ"] > totals["HYP"] > totals["FULL"]

    # Representative per-query op for the timing harness.
    method = ctx.method("LDM")
    vs, vt = ctx.workload().queries[0]
    benchmark(method.answer, vs, vt)


def test_fig8b_item_counts(ctx, fig8_runs, results, benchmark):
    rows = []
    for name in METHODS:
        run = fig8_runs[name]
        rows.append([name, round(run.s_items), round(run.t_items)])
        results.add("fig8b", method=name, s_items=run.s_items, t_items=run.t_items)
    emit("Fig 8b — number of items in the proofs",
         ["method", "S-prf items", "T-prf items"], rows)
    assert fig8_runs["DIJ"].s_items > fig8_runs["LDM"].s_items
    assert fig8_runs["LDM"].s_items > fig8_runs["FULL"].s_items

    method = ctx.method("DIJ")
    vs, vt = ctx.workload().queries[0]
    benchmark(method.answer, vs, vt)


def test_fig8c_construction_time(ctx, fig8_runs, results, benchmark):
    rows = []
    for name in ("FULL", "LDM", "HYP"):
        run = fig8_runs[name]
        rows.append([name, run.construction_seconds])
        results.add("fig8c", method=name,
                    construction_seconds=run.construction_seconds)
    emit("Fig 8c — offline hint construction time [s] (DIJ: none)",
         ["method", "construction s"], rows)
    assert (fig8_runs["FULL"].construction_seconds
            > fig8_runs["HYP"].construction_seconds)
    assert (fig8_runs["FULL"].construction_seconds
            > 5 * fig8_runs["LDM"].construction_seconds)

    # Benchmark a cheap owner-side build (LDM hints on a small dataset).
    from repro.core.ldm import LdmMethod

    small = ctx.dataset(scale=DEFAULT_SCALE / 8)
    benchmark.pedantic(
        lambda: LdmMethod.build(small, ctx.signer, c=20), rounds=1, iterations=1
    )


def test_verification_wall_times(ctx, fig8_runs, results, benchmark):
    """§VI text: client verification cost per method (DIJ slowest)."""
    rows = []
    for name in METHODS:
        run = fig8_runs[name]
        rows.append([name, run.prove_ms, run.verify_ms])
        results.add("verify-time", method=name,
                    prove_ms=run.prove_ms, verify_ms=run.verify_ms)
    emit("§VI — proof generation / client verification wall time [ms]",
         ["method", "prove ms", "verify ms"], rows)
    assert fig8_runs["DIJ"].verify_ms > fig8_runs["FULL"].verify_ms

    from repro.core.method import get_method

    method = ctx.method("FULL")
    vs, vt = ctx.workload().queries[0]
    response = method.answer(vs, vt)
    benchmark(get_method("FULL").verify, vs, vt, response, ctx.signer.verify)
