"""Figure 9 — effect of the data distribution (four datasets).

Paper: DE, ARG, IND, NA at their natural sizes; here the synthetic
stand-ins run at SWEEP_SCALE (1/64 by default) because FULL's
materialization is quadratic in memory.  Expected shape: the relative
ordering of methods is stable across datasets (Fig. 9a), and FULL's
construction time explodes with |V| while LDM/HYP grow gently
(Fig. 9b).
"""

import pytest

from benchmarks.conftest import SWEEP_SCALE, emit
from repro.workload.datasets import dataset_names

METHODS = ["DIJ", "FULL", "LDM", "HYP"]


@pytest.fixture(scope="module")
def fig9_runs(ctx):
    runs = {}
    for dataset in dataset_names():
        for name in METHODS:
            runs[(dataset, name)] = ctx.measure(name, dataset=dataset,
                                                scale=SWEEP_SCALE)[1]
    return runs


def test_fig9a_communication_overhead(ctx, fig9_runs, results, benchmark):
    rows = []
    for dataset in dataset_names():
        nodes = ctx.dataset(dataset, SWEEP_SCALE).num_nodes
        for name in METHODS:
            run = fig9_runs[(dataset, name)]
            rows.append([dataset, nodes, name, run.s_prf_kb, run.t_prf_kb,
                         run.total_kb])
            results.add("fig9a", dataset=dataset, nodes=nodes, method=name,
                        s_prf_kb=run.s_prf_kb, t_prf_kb=run.t_prf_kb,
                        total_kb=run.total_kb)
    emit(f"Fig 9a — communication overhead by dataset [KB] (scale={SWEEP_SCALE:g})",
         ["dataset", "|V|", "method", "S-prf KB", "T-prf KB", "total KB"], rows)
    # DIJ dominates FULL everywhere; DIJ overtakes LDM clearly on the
    # larger datasets (on the ~450-node DE stand-in, LDM's fixed vector
    # payload is comparable to DIJ's small ball — a scale artifact).
    for dataset in dataset_names():
        assert (fig9_runs[(dataset, "DIJ")].total_kb
                > fig9_runs[(dataset, "FULL")].total_kb * 2)
    for dataset in ("IND", "NA"):
        assert (fig9_runs[(dataset, "DIJ")].total_kb
                > fig9_runs[(dataset, "LDM")].total_kb)

    method = ctx.method("HYP", dataset="DE", scale=SWEEP_SCALE)
    vs, vt = ctx.workload("DE", SWEEP_SCALE).queries[0]
    benchmark(method.answer, vs, vt)


def test_fig9b_construction_time(ctx, fig9_runs, results, benchmark):
    rows = []
    for dataset in dataset_names():
        nodes = ctx.dataset(dataset, SWEEP_SCALE).num_nodes
        for name in ("FULL", "LDM", "HYP"):
            run = fig9_runs[(dataset, name)]
            rows.append([dataset, nodes, name, run.construction_seconds])
            results.add("fig9b", dataset=dataset, nodes=nodes, method=name,
                        construction_seconds=run.construction_seconds)
    emit("Fig 9b — hint construction time by dataset [s]",
         ["dataset", "|V|", "method", "construction s"], rows)

    # FULL's growth from the smallest to the largest dataset must exceed
    # LDM's by a wide margin (the O(V^2)+ blowup).
    def growth(name):
        small = fig9_runs[("DE", name)].construction_seconds
        large = fig9_runs[("NA", name)].construction_seconds
        return large / max(small, 1e-9)

    assert growth("FULL") > growth("LDM")
    for dataset in dataset_names():
        assert (fig9_runs[(dataset, "FULL")].construction_seconds
                > fig9_runs[(dataset, "LDM")].construction_seconds)

    method = ctx.method("LDM", dataset="DE", scale=SWEEP_SCALE)
    vs, vt = ctx.workload("DE", SWEEP_SCALE).queries[0]
    benchmark(method.answer, vs, vt)
