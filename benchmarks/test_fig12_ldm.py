"""Figure 12 — LDM performance versus the number of landmarks c.

Paper shape: more landmarks tighten the lower bound, shrinking the A*
search space and hence the proof (Fig. 12a); construction time grows
slightly superlinearly in c (Fig. 12b).

Scale note (see EXPERIMENTS.md): the *mechanism* — tighter bounds →
fewer disclosed tuples — reproduces in the S-item counts.  The total
KB trend inverts at 1/16 scale because each uncompressed tuple carries
``c*b`` bits of vector payload and our scaled networks have ~8x longer
edges than the paper's, which leaves the ξ=50 compression clusters
nearly empty.  Both series are reported.
"""

import pytest

from benchmarks.conftest import emit

LANDMARK_COUNTS = [50, 100, 200, 400, 800]
#: A wider range leaves the cone room to shrink as bounds tighten.
SWEEP_RANGE = 4000.0


@pytest.fixture(scope="module")
def fig12_runs(ctx):
    return {
        c: ctx.measure("LDM", query_range=SWEEP_RANGE, c=c)[1]
        for c in LANDMARK_COUNTS
    }


def test_fig12a_overhead(ctx, fig12_runs, results, benchmark):
    rows = []
    for c in LANDMARK_COUNTS:
        run = fig12_runs[c]
        rows.append([c, run.s_prf_kb, run.t_prf_kb, run.total_kb,
                     round(run.s_items)])
        results.add("fig12a", c=c, s_prf_kb=run.s_prf_kb,
                    t_prf_kb=run.t_prf_kb, total_kb=run.total_kb,
                    s_items=run.s_items)
    emit(f"Fig 12a — LDM proof vs #landmarks (range={SWEEP_RANGE:g})",
         ["c", "S-prf KB", "T-prf KB", "total KB", "S-items"], rows)

    # The paper's mechanism: more landmarks -> tighter bound -> smaller
    # disclosed search space.  (Total KB inverts at this scale; see the
    # module docstring.)
    assert fig12_runs[800].s_items <= fig12_runs[50].s_items
    assert fig12_runs[200].s_items <= fig12_runs[50].s_items

    method = ctx.method("LDM", c=800)
    vs, vt = ctx.workload(query_range=SWEEP_RANGE).queries[0]
    benchmark(method.answer, vs, vt)


def test_fig12b_construction(ctx, fig12_runs, results, benchmark):
    rows = []
    for c in LANDMARK_COUNTS:
        run = fig12_runs[c]
        rows.append([c, run.construction_seconds])
        results.add("fig12b", c=c,
                    construction_seconds=run.construction_seconds)
    emit("Fig 12b — LDM hint construction time vs #landmarks [s]",
         ["c", "construction s"], rows)

    assert (fig12_runs[800].construction_seconds
            > fig12_runs[50].construction_seconds)
    # 16x the landmarks must cost clearly more time.  The paper reports
    # slightly superlinear growth; with the probe-pruned compressor and
    # the compiled graph index the pipeline is linear in c and the c=50
    # point measures in tens of milliseconds, so the guard is 3x with
    # headroom for timer noise rather than a strict superlinearity bound.
    assert (fig12_runs[800].construction_seconds
            > 3 * fig12_runs[50].construction_seconds)

    from repro.core.ldm import LdmMethod

    small = ctx.dataset(scale=1 / 64)
    benchmark.pedantic(
        lambda: LdmMethod.build(small, ctx.signer, c=50), rounds=1, iterations=1
    )
