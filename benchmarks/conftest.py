"""Shared benchmark infrastructure.

Heavy artifacts (datasets, built methods, workloads) are cached at
session scope so that e.g. the default-configuration FULL build is paid
once across all figures.  Environment knobs:

* ``REPRO_BENCH_QUERIES`` — queries per workload (default 20; the paper
  uses 100, which roughly quintuples runtime).
* ``REPRO_BENCH_SCALE`` — dataset scale for the default dataset
  (default 1/16 of the paper's node counts).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import run_workload
from repro.bench.reporting import ResultsLog, format_table
from repro.core.method import get_method
from repro.crypto.signer import NullSigner
from repro.workload.datasets import load_dataset
from repro.workload.queries import generate_workload

#: Paper defaults (Table II; bold values).
DEFAULT_DATASET = "DE"
DEFAULT_RANGE = 2000.0
DEFAULT_FANOUT = 2
DEFAULT_ORDERING = "hbt"
LDM_DEFAULTS = dict(c=100, bits=12, xi=50.0)
HYP_DEFAULTS = dict(num_cells=100)

DEFAULT_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", 1.0 / 16.0))
#: The four-dataset sweep includes FULL (quadratic memory), so it runs
#: at a smaller scale; see DESIGN.md §4.
SWEEP_SCALE = DEFAULT_SCALE / 4.0

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def method_params(name: str, **overrides) -> dict:
    """Default build parameters for a method, with overrides."""
    params = dict(fanout=DEFAULT_FANOUT, ordering=DEFAULT_ORDERING)
    if name == "LDM":
        params.update(LDM_DEFAULTS)
    elif name == "HYP":
        params.update(HYP_DEFAULTS)
    params.update(overrides)
    return params


class BenchContext:
    """Session-wide caches plus convenience runners."""

    def __init__(self, num_queries: int) -> None:
        self.signer = NullSigner()
        self.num_queries = num_queries
        self._methods: dict = {}
        self._workloads: dict = {}
        self._datasets: dict = {}

    # -- caching ------------------------------------------------------
    def dataset(self, name: str = DEFAULT_DATASET, scale: float = DEFAULT_SCALE):
        key = (name, scale)
        if key not in self._datasets:
            graph = load_dataset(name, scale=scale)
            # Warm the derived caches (compiled index + SciPy matrix) so
            # whichever method happens to build first doesn't absorb
            # their one-time cost into its measured construction window.
            graph.to_csr()
            self._datasets[key] = graph
        return self._datasets[key]

    def method(self, method_name: str, dataset: str = DEFAULT_DATASET,
               scale: float = DEFAULT_SCALE, **overrides):
        params = method_params(method_name, **overrides)
        key = (method_name, dataset, scale, tuple(sorted(params.items())))
        if key not in self._methods:
            graph = self.dataset(dataset, scale)
            self._methods[key] = get_method(method_name).build(
                graph, self.signer, **params
            )
        return self._methods[key]

    def workload(self, dataset: str = DEFAULT_DATASET, scale: float = DEFAULT_SCALE,
                 query_range: float = DEFAULT_RANGE):
        key = (dataset, scale, query_range, self.num_queries)
        if key not in self._workloads:
            graph = self.dataset(dataset, scale)
            # tolerance=1.0 implements the paper's "as close to the query
            # range as possible" semantics even near the network diameter.
            self._workloads[key] = generate_workload(
                graph, query_range, count=self.num_queries, seed=2010,
                tolerance=1.0,
            )
        return self._workloads[key]

    # -- runners -------------------------------------------------------
    def measure(self, method_name: str, dataset: str = DEFAULT_DATASET,
                scale: float = DEFAULT_SCALE, query_range: float = DEFAULT_RANGE,
                **overrides):
        method = self.method(method_name, dataset, scale, **overrides)
        workload = self.workload(dataset, scale, query_range)
        return method, run_workload(method, workload, self.signer.verify)


@pytest.fixture(scope="session")
def ctx() -> BenchContext:
    import gc

    # The benchmarks share a process with hundreds of unit tests whose
    # long-lived objects would otherwise be rescanned by every cyclic-GC
    # pass triggered inside allocation-heavy timed loops (the Merkle
    # builds allocate millions of digests).  Freezing moves the existing
    # heap into the permanent generation — new garbage is still
    # collected, but timed sections stop paying for the suite's history.
    gc.collect()
    gc.freeze()
    num_queries = int(os.environ.get("REPRO_BENCH_QUERIES", "20"))
    return BenchContext(num_queries)


@pytest.fixture()
def results(request) -> ResultsLog:
    """Per-test JSON results file under benchmarks/results/."""
    name = request.node.name.replace("[", "_").replace("]", "")
    log = ResultsLog(os.path.join(RESULTS_DIR, f"{name}.json"))
    yield log
    log.save()


def emit(title: str, headers, rows) -> None:
    """Print a paper-style table (shown with pytest -s and in CI logs)."""
    print()
    print(format_table(headers, rows, title=title))
