"""Ablations beyond the paper's figures.

The paper fixes ξ=50 and b=12 and writes: *"Due to lack of space, the
effect of ξ and b on the performance of LDM is not studied here."*
These benchmarks supply that study, plus three design ablations the
reproduction surfaced:

* landmark selection strategy (random vs farthest);
* the cost of HYP's cell-directory ADS (our soundness fix);
* the real RSA signer vs the keyed-hash stub (crypto cost isolation);
* accuracy of the proof-size estimation model (the paper's future work).
"""

import time

import pytest

from benchmarks.conftest import DEFAULT_RANGE, emit
from repro.bench.harness import run_workload
from repro.core.estimate import ProofSizeModel
from repro.core.ldm import LdmMethod
from repro.core.proofs import DIRECTORY_TREE


BITS_SWEEP = [4, 8, 12, 16]
XI_SWEEP = [0.0, 50.0, 200.0, 800.0]


def test_ablation_quantization_bits(ctx, results, benchmark):
    """Fewer bits -> smaller vectors but looser bounds -> bigger cones."""
    graph = ctx.dataset()
    workload = ctx.workload()
    rows = []
    runs = {}
    for bits in BITS_SWEEP:
        method = LdmMethod.build(graph, ctx.signer, c=100, bits=bits, xi=50.0)
        run = run_workload(method, workload, ctx.signer.verify)
        runs[bits] = run
        rows.append([bits, run.total_kb, round(run.s_items)])
        results.add("ablation-bits", bits=bits, total_kb=run.total_kb,
                    s_items=run.s_items)
    emit("Ablation — LDM quantization bits b (c=100, ξ=50)",
         ["b", "total KB", "S-items"], rows)

    # Coarser codes can only enlarge the disclosed cone.
    assert runs[4].s_items >= runs[16].s_items
    # All variants still verify (run_workload raises otherwise).

    vs, vt = workload.queries[0]
    method = LdmMethod.build(graph, ctx.signer, c=100, bits=4, xi=50.0)
    benchmark(method.answer, vs, vt)


def test_ablation_compression_threshold(ctx, results, benchmark):
    """Larger ξ compresses more vectors but loosens the Lemma-4 bound."""
    graph = ctx.dataset()
    workload = ctx.workload()
    rows = []
    runs = {}
    for xi in XI_SWEEP:
        method = LdmMethod.build(graph, ctx.signer, c=100, bits=12, xi=xi)
        run = run_workload(method, workload, ctx.signer.verify)
        compressed = method._compressed.num_compressed
        runs[xi] = (run, compressed)
        rows.append([xi, compressed, run.total_kb, round(run.s_items)])
        results.add("ablation-xi", xi=xi, compressed_nodes=compressed,
                    total_kb=run.total_kb, s_items=run.s_items)
    emit("Ablation — LDM compression threshold ξ (c=100, b=12)",
         ["ξ", "compressed nodes", "total KB", "S-items"], rows)

    # Monotone compression count; looser bound can only grow the cone.
    counts = [runs[xi][1] for xi in XI_SWEEP]
    assert counts == sorted(counts)
    assert runs[800.0][0].s_items >= runs[0.0][0].s_items

    vs, vt = workload.queries[0]
    method = LdmMethod.build(graph, ctx.signer, c=100, bits=12, xi=800.0)
    benchmark(method.answer, vs, vt)


def test_ablation_landmark_selection(ctx, results, benchmark):
    """Farthest landmarks give bounds at least as tight as random ones."""
    graph = ctx.dataset()
    workload = ctx.workload()
    rows = []
    items = {}
    for strategy in ("random", "farthest"):
        method = LdmMethod.build(graph, ctx.signer, c=50,
                                 landmark_strategy=strategy)
        run = run_workload(method, workload, ctx.signer.verify)
        items[strategy] = run.s_items
        rows.append([strategy, run.total_kb, round(run.s_items)])
        results.add("ablation-selection", strategy=strategy,
                    total_kb=run.total_kb, s_items=run.s_items)
    emit("Ablation — LDM landmark selection (c=50)",
         ["strategy", "total KB", "S-items"], rows)
    assert items["farthest"] <= items["random"] * 1.1

    vs, vt = workload.queries[0]
    method = LdmMethod.build(graph, ctx.signer, c=50,
                             landmark_strategy="random")
    benchmark(method.answer, vs, vt)


def test_ablation_directory_overhead(ctx, results, benchmark):
    """The HYP cell directory (our soundness fix) must cost ~nothing."""
    workload = ctx.workload()
    method = ctx.method("HYP")
    directory_bytes = []
    total_bytes = []
    for vs, vt in workload:
        response = method.answer(vs, vt)
        section = response.section(DIRECTORY_TREE)
        directory_bytes.append(section.s_prf_bytes() + section.t_prf_bytes())
        total_bytes.append(response.sizes().total_bytes)
    share = sum(directory_bytes) / sum(total_bytes)
    emit("Ablation — HYP cell-directory overhead",
         ["mean directory bytes", "mean total bytes", "share %"],
         [[sum(directory_bytes) / len(workload),
           sum(total_bytes) / len(workload), 100 * share]])
    results.add("ablation-directory", share=share)
    assert share < 0.15, "directory ADS should be a minor fraction of the proof"

    vs, vt = workload.queries[0]
    benchmark(method.answer, vs, vt)


def test_ablation_signer_cost(ctx, results, benchmark):
    """RSA signing is one-off (owner side); verification adds ~ms."""
    from repro.crypto.signer import RsaSigner

    graph = ctx.dataset(scale=1 / 64)
    rsa = RsaSigner(bits=1024, seed=77)
    start = time.perf_counter()
    method = LdmMethod.build(graph, rsa, c=20)
    rsa_build = time.perf_counter() - start

    workload_graph = ctx.workload("DE", 1 / 64, DEFAULT_RANGE)
    vs, vt = workload_graph.queries[0]
    response = method.answer(vs, vt)

    from repro.core.method import get_method

    start = time.perf_counter()
    for _ in range(20):
        assert get_method("LDM").verify(vs, vt, response, rsa.verify).ok
    rsa_verify_ms = (time.perf_counter() - start) / 20 * 1000

    emit("Ablation — signature scheme cost",
         ["scheme", "owner build s", "client verify ms"],
         [["RSA-1024 (FDH)", rsa_build, rsa_verify_ms]])
    results.add("ablation-signer", rsa_build=rsa_build,
                rsa_verify_ms=rsa_verify_ms)
    assert rsa_verify_ms < 100.0

    benchmark(rsa.verify, response.descriptor.message(),
              response.descriptor.signature)


def test_ablation_batch_savings(ctx, results, benchmark):
    """Batched proofs: one Merkle cover for a burst of queries."""
    from repro.core.batch import answer_batch, verify_batch

    workload = ctx.workload()
    queries = list(workload.queries[: min(10, len(workload))])
    rows = []
    for name in ("DIJ", "LDM"):
        method = ctx.method(name)
        batch = answer_batch(method, queries)
        assert all(r.ok for r in verify_batch(batch, ctx.signer.verify))
        individual = sum(len(method.answer(vs, vt).encode())
                         for vs, vt in queries)
        saving = 1 - batch.total_bytes / individual
        rows.append([name, individual / 1024, batch.total_bytes / 1024,
                     100 * saving])
        results.add("ablation-batch", method=name,
                    individual_kb=individual / 1024,
                    batch_kb=batch.total_bytes / 1024, saving=saving)
        assert batch.total_bytes < individual
    emit(f"Extension — batched proofs over {len(queries)} queries",
         ["method", "individual KB", "batched KB", "saving %"], rows)

    method = ctx.method("DIJ")
    benchmark.pedantic(lambda: answer_batch(method, queries[:5]),
                       rounds=2, iterations=1)


def test_estimator_accuracy(ctx, results, benchmark):
    """The sizing model predicts measured proof sizes within ~2.5x."""
    graph = ctx.dataset()
    model = ProofSizeModel.for_graph(graph)
    rows = []
    worst = 0.0
    for name in ("DIJ", "FULL", "LDM", "HYP"):
        _, run = ctx.measure(name)
        predicted_kb = model.predict(name, DEFAULT_RANGE) / 1024
        ratio = max(predicted_kb / run.total_kb, run.total_kb / predicted_kb)
        worst = max(worst, ratio)
        rows.append([name, run.total_kb, predicted_kb, ratio])
        results.add("estimator", method=name, actual_kb=run.total_kb,
                    predicted_kb=predicted_kb, off_by=ratio)
    emit("Future work — proof-size estimation model accuracy",
         ["method", "actual KB", "predicted KB", "off-by x"], rows)
    assert worst < 2.5

    benchmark(model.predict, "HYP", DEFAULT_RANGE)
