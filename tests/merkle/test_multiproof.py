"""Merkle multiproofs: one deduplicated ΓT for several disclosure sets.

The two facts the wire-level BATCH layout rests on are proved here as
byte-level equivalences, not just verification verdicts:

* the shared multiproof is exactly ``prove(union)`` — and is assemblable
  from the k *independent* per-set proofs (:func:`merge_entries`), which
  is how the server builds it without touching the tree;
* expansion recovers every per-set cover **byte-identical** to the
  standalone ``prove(set)``, so per-query verification is unchanged.

The tamper battery then checks that the deduplication does not open a
forgery seam: a wrong digest moves the root, an omitted one is a typed
structural failure, and reordering the shared entries is benign (lookup
is by coordinate).
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.crypto.hashing import get_hash
from repro.errors import MerkleError
from repro.merkle import (
    MerkleBTree,
    MerkleTree,
    cover_indices,
    expand_multi,
    merge_entries,
    union_indices,
    verify_multi,
)

HASH = "sha1"


def payloads(n):
    return [f"payload-{i}".encode() for i in range(n)]


def leaf_map(tree, indices):
    return {i: f"payload-{i}".encode() for i in indices}


def make_tree(n, fanout=4):
    return MerkleTree(payloads(n), fanout=fanout, hash_fn=HASH)


def random_sets(n, k, rng):
    return [sorted(rng.sample(range(n), rng.randint(1, max(1, n // 3))))
            for _ in range(k)]


class TestUnionAndCovers:
    def test_union_sorted_deduplicated(self):
        assert union_indices([[3, 1], [1, 7], [3]]) == [1, 3, 7]

    def test_union_of_nothing_rejected(self):
        with pytest.raises(MerkleError):
            union_indices([])
        with pytest.raises(MerkleError):
            union_indices([[], []])

    def test_cover_indices_match_prove_coordinates(self):
        tree = make_tree(33, fanout=3)
        disclosed = [0, 5, 17, 32]
        entries = tree.prove(disclosed)
        assert [(e.level, e.index) for e in entries] == \
            cover_indices(tree.num_leaves, tree.fanout, disclosed)


class TestMultiproofEquivalence:
    @pytest.mark.parametrize("n,fanout", [(1, 2), (2, 2), (7, 2), (16, 4),
                                          (33, 3), (100, 8)])
    def test_shared_proof_is_union_proof(self, n, fanout):
        tree = make_tree(n, fanout)
        rng = random.Random(n * 31 + fanout)
        sets = random_sets(n, 5, rng)
        union, shared = tree.prove_multi(sets)
        assert union == union_indices(sets)
        assert shared == tree.prove(union)

    @pytest.mark.parametrize("n,fanout", [(7, 2), (16, 4), (33, 3), (100, 8)])
    def test_merged_independent_proofs_equal_shared(self, n, fanout):
        """The server-side path: pool k standalone proofs, no tree."""
        tree = make_tree(n, fanout)
        rng = random.Random(n * 17 + fanout)
        sets = random_sets(n, 4, rng)
        union, shared = tree.prove_multi(sets)
        pooled = {}
        for disclosed in sets:
            for entry in tree.prove(disclosed):
                pooled[(entry.level, entry.index)] = entry.digest
        merged = merge_entries(tree.num_leaves, tree.fanout, union, pooled)
        assert merged == shared

    @pytest.mark.parametrize("n,fanout", [(1, 2), (7, 2), (16, 4), (33, 3),
                                          (100, 8)])
    def test_expansion_recovers_standalone_covers(self, n, fanout):
        tree = make_tree(n, fanout)
        rng = random.Random(n * 13 + fanout)
        sets = random_sets(n, 5, rng)
        union, shared = tree.prove_multi(sets)
        root, covers = expand_multi(tree.num_leaves, tree.fanout, HASH,
                                    leaf_map(tree, union), shared, sets)
        assert root == tree.root
        for disclosed, cover in zip(sets, covers):
            assert cover == tree.prove(disclosed)

    def test_verify_multi_returns_root(self):
        tree = make_tree(40, 4)
        sets = [[0, 9], [9, 22, 39], [3]]
        union, shared = tree.prove_multi(sets)
        assert verify_multi(tree.num_leaves, tree.fanout, HASH,
                            leaf_map(tree, union), shared) == tree.root

    def test_btree_multiproof_matches_key_lookup(self):
        keys = [k * 10 for k in range(25)]
        btree = MerkleBTree(keys, [f"v{k}".encode() for k in keys],
                            fanout=4, hash_fn=HASH)
        key_sets = [[0, 100], [100, 240], [50]]
        index_sets, union, shared = btree.prove_multi(key_sets)
        assert index_sets == [btree.indices_of(ks) for ks in key_sets]
        assert (union, shared) == btree._tree.prove_multi(index_sets)


class TestBatchShapes:
    def test_singleton_batch_degenerates_to_plain_proof(self):
        tree = make_tree(20, 4)
        union, shared = tree.prove_multi([[2, 11]])
        assert union == [2, 11]
        assert shared == tree.prove([2, 11])

    def test_duplicate_sets_share_everything(self):
        tree = make_tree(20, 4)
        sets = [[4, 7], [4, 7], [4, 7]]
        union, shared = tree.prove_multi(sets)
        assert union == [4, 7]
        _, covers = expand_multi(tree.num_leaves, tree.fanout, HASH,
                                 leaf_map(tree, union), shared, sets)
        assert covers[0] == covers[1] == covers[2] == tree.prove([4, 7])

    def test_all_leaves_disclosed_needs_no_entries(self):
        tree = make_tree(9, 3)
        union, shared = tree.prove_multi([list(range(9))])
        assert shared == []
        root, covers = expand_multi(tree.num_leaves, tree.fanout, HASH,
                                    leaf_map(tree, union), shared,
                                    [list(range(9))])
        assert root == tree.root and covers == [[]]

    def test_leaf_set_outside_disclosure_rejected(self):
        tree = make_tree(20, 4)
        union, shared = tree.prove_multi([[2, 11]])
        with pytest.raises(MerkleError):
            expand_multi(tree.num_leaves, tree.fanout, HASH,
                         leaf_map(tree, union), shared, [[2, 12]])


class TestTamperBattery:
    @pytest.fixture()
    def setting(self):
        tree = make_tree(48, 4)
        sets = [[1, 30], [7, 30, 42], [19]]
        union, shared = tree.prove_multi(sets)
        return tree, sets, union, shared

    def test_tampered_digest_moves_the_root(self, setting):
        tree, sets, union, shared = setting
        for position in range(len(shared)):
            bad = list(shared)
            entry = bad[position]
            flipped = bytes([entry.digest[0] ^ 0x01]) + entry.digest[1:]
            bad[position] = replace(entry, digest=flipped)
            root, _ = expand_multi(tree.num_leaves, tree.fanout, HASH,
                                   leaf_map(tree, union), bad, sets)
            assert root != tree.root

    def test_digest_swap_between_entries_moves_the_root(self, setting):
        tree, sets, union, shared = setting
        assert len(shared) >= 2
        a, b = shared[0], shared[1]
        swapped = [replace(a, digest=b.digest), replace(b, digest=a.digest),
                   *shared[2:]]
        root, _ = expand_multi(tree.num_leaves, tree.fanout, HASH,
                               leaf_map(tree, union), swapped, sets)
        assert root != tree.root

    def test_tampered_payload_moves_the_root(self, setting):
        tree, sets, union, shared = setting
        leaves = leaf_map(tree, union)
        leaves[union[0]] = leaves[union[0]] + b"!"
        root, _ = expand_multi(tree.num_leaves, tree.fanout, HASH,
                               leaves, shared, sets)
        assert root != tree.root

    def test_omitted_entry_is_structural_failure(self, setting):
        tree, sets, union, shared = setting
        for position in range(len(shared)):
            bad = shared[:position] + shared[position + 1:]
            with pytest.raises(MerkleError):
                expand_multi(tree.num_leaves, tree.fanout, HASH,
                             leaf_map(tree, union), bad, sets)
            with pytest.raises(MerkleError):
                verify_multi(tree.num_leaves, tree.fanout, HASH,
                             leaf_map(tree, union), bad)

    def test_conflicting_duplicate_entries_rejected(self, setting):
        tree, sets, union, shared = setting
        entry = shared[0]
        flipped = bytes([entry.digest[0] ^ 0x01]) + entry.digest[1:]
        doubled = [*shared, replace(entry, digest=flipped)]
        with pytest.raises(MerkleError):
            verify_multi(tree.num_leaves, tree.fanout, HASH,
                         leaf_map(tree, union), doubled)

    def test_benign_duplicate_entries_tolerated(self, setting):
        tree, sets, union, shared = setting
        assert verify_multi(tree.num_leaves, tree.fanout, HASH,
                            leaf_map(tree, union),
                            [*shared, shared[0]]) == tree.root

    def test_reordered_entries_are_benign(self, setting):
        """Lookup is by (level, index): shuffling cannot weaken anything
        — the recovered covers stay canonical and byte-identical."""
        tree, sets, union, shared = setting
        shuffled = list(shared)
        random.Random(5).shuffle(shuffled)
        root, covers = expand_multi(tree.num_leaves, tree.fanout, HASH,
                                    leaf_map(tree, union), shuffled, sets)
        assert root == tree.root
        assert covers == [tree.prove(s) for s in sets]

    def test_merge_with_missing_pooled_entry_rejected(self, setting):
        tree, sets, union, shared = setting
        pooled = {(e.level, e.index): e.digest for e in shared}
        pooled.pop(next(iter(pooled)))
        with pytest.raises(MerkleError):
            merge_entries(tree.num_leaves, tree.fanout, union, pooled)


class TestSavings:
    def test_union_cover_never_larger_than_concatenation(self):
        rng = random.Random(2010)
        for n, fanout in [(16, 2), (50, 4), (100, 8)]:
            tree = make_tree(n, fanout)
            sets = random_sets(n, 6, rng)
            _, shared = tree.prove_multi(sets)
            independent = sum(len(tree.prove(s)) for s in sets)
            assert len(shared) <= independent

    def test_overlapping_sets_actually_save(self):
        tree = make_tree(64, 2)
        sets = [[0, 1, i] for i in range(2, 10)]
        _, shared = tree.prove_multi(sets)
        independent = sum(len(tree.prove(s)) for s in sets)
        assert len(shared) < independent / 2
