"""Tests for the f-ary Merkle tree, covers and reconstruction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import HashFunction
from repro.errors import MerkleError
from repro.merkle.proof import MerkleProofEntry
from repro.merkle.tree import MerkleTree, leaf_digest, reconstruct_root


def payloads(n):
    return [f"payload-{i}".encode() for i in range(n)]


class TestConstruction:
    def test_root_deterministic(self):
        a = MerkleTree(payloads(10))
        b = MerkleTree(payloads(10))
        assert a.root == b.root

    def test_root_depends_on_order(self):
        a = MerkleTree(payloads(4))
        b = MerkleTree(list(reversed(payloads(4))))
        assert a.root != b.root

    def test_root_depends_on_fanout(self):
        a = MerkleTree(payloads(9), fanout=2)
        b = MerkleTree(payloads(9), fanout=3)
        assert a.root != b.root

    def test_single_leaf(self):
        tree = MerkleTree(payloads(1))
        assert tree.num_leaves == 1
        assert tree.num_levels == 1
        assert tree.root == leaf_digest(b"payload-0", "sha1")

    def test_empty_rejected(self):
        with pytest.raises(MerkleError):
            MerkleTree([])

    def test_bad_fanout_rejected(self):
        with pytest.raises(MerkleError):
            MerkleTree(payloads(4), fanout=1)

    def test_level_sizes_fanout2(self):
        tree = MerkleTree(payloads(5), fanout=2)
        assert [tree.level_size(i) for i in range(tree.num_levels)] == [5, 3, 2, 1]

    def test_level_sizes_fanout4(self):
        tree = MerkleTree(payloads(17), fanout=4)
        assert [tree.level_size(i) for i in range(tree.num_levels)] == [17, 5, 2, 1]

    def test_from_leaf_digests(self):
        ps = payloads(6)
        digests = b"".join(leaf_digest(p, "sha1") for p in ps)
        a = MerkleTree(ps)
        b = MerkleTree(leaf_digests=digests)
        assert a.root == b.root

    def test_both_inputs_rejected(self):
        with pytest.raises(MerkleError):
            MerkleTree(payloads(2), leaf_digests=b"\x00" * 40)

    def test_misaligned_leaf_digests_rejected(self):
        with pytest.raises(MerkleError):
            MerkleTree(leaf_digests=b"\x00" * 21)

    def test_sha256_digests(self):
        tree = MerkleTree(payloads(3), hash_fn="sha256")
        assert len(tree.root) == 32

    def test_domain_separation(self):
        # A leaf digest must never collide with an internal digest over the
        # same bytes.
        h = HashFunction("sha1")
        data = b"\x01" * 20
        assert h.digest(b"\x00", data) != h.digest(b"\x01", data)

    def test_digest_at_bounds(self):
        tree = MerkleTree(payloads(4))
        with pytest.raises(MerkleError):
            tree.digest_at(0, 4)
        with pytest.raises(MerkleError):
            tree.digest_at(9, 0)


class TestProveAndReconstruct:
    @pytest.mark.parametrize("fanout", [2, 3, 4, 8, 32])
    @pytest.mark.parametrize("n", [1, 2, 5, 16, 33])
    def test_single_leaf_proofs(self, fanout, n):
        ps = payloads(n)
        tree = MerkleTree(ps, fanout=fanout)
        for index in {0, n // 2, n - 1}:
            entries = tree.prove([index])
            root = reconstruct_root(n, fanout, "sha1", {index: ps[index]}, entries)
            assert root == tree.root

    @given(
        st.integers(min_value=1, max_value=60).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.sets(st.integers(min_value=0, max_value=n - 1), min_size=1),
                st.sampled_from([2, 3, 4, 16]),
            )
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_multi_leaf_proofs(self, case):
        n, disclosed, fanout = case
        ps = payloads(n)
        tree = MerkleTree(ps, fanout=fanout)
        entries = tree.prove(disclosed)
        root = reconstruct_root(
            n, fanout, "sha1", {i: ps[i] for i in disclosed}, entries
        )
        assert root == tree.root

    def test_proof_minimality_rule(self):
        # No proof entry's subtree may contain a disclosed leaf, and no two
        # entries may be nested.
        n, fanout = 37, 2
        tree = MerkleTree(payloads(n), fanout=fanout)
        disclosed = [0, 5, 21]
        entries = tree.prove(disclosed)

        def leaf_range(level, index):
            return (index * fanout**level, min(n, (index + 1) * fanout**level))

        for entry in entries:
            lo, hi = leaf_range(entry.level, entry.index)
            assert not any(lo <= d < hi for d in disclosed)
        ranges = sorted(leaf_range(e.level, e.index) for e in entries)
        for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
            assert hi1 <= lo2  # disjoint

    def test_full_disclosure_needs_no_entries(self):
        ps = payloads(8)
        tree = MerkleTree(ps)
        entries = tree.prove(range(8))
        assert entries == []
        root = reconstruct_root(8, 2, "sha1", dict(enumerate(ps)), [])
        assert root == tree.root

    def test_empty_disclosure_rejected(self):
        tree = MerkleTree(payloads(4))
        with pytest.raises(MerkleError):
            tree.prove([])

    def test_out_of_range_disclosure_rejected(self):
        tree = MerkleTree(payloads(4))
        with pytest.raises(MerkleError):
            tree.prove([4])
        with pytest.raises(MerkleError):
            tree.prove([-1])


class TestTamperDetection:
    def test_tampered_payload_changes_root(self):
        ps = payloads(12)
        tree = MerkleTree(ps)
        entries = tree.prove([3])
        bad = reconstruct_root(12, 2, "sha1", {3: b"evil"}, entries)
        assert bad != tree.root

    def test_tampered_entry_changes_root(self):
        ps = payloads(12)
        tree = MerkleTree(ps)
        entries = tree.prove([3])
        flipped = [
            MerkleProofEntry(e.level, e.index, bytes([e.digest[0] ^ 1]) + e.digest[1:])
            for e in entries
        ]
        assert reconstruct_root(12, 2, "sha1", {3: ps[3]}, flipped) != tree.root

    def test_missing_entry_raises(self):
        ps = payloads(12)
        tree = MerkleTree(ps)
        entries = tree.prove([3])[:-1]
        with pytest.raises(MerkleError):
            reconstruct_root(12, 2, "sha1", {3: ps[3]}, entries)

    def test_wrong_position_rejected(self):
        # Presenting the payload at the wrong leaf position must fail:
        # either the cover no longer lines up (MerkleError) or the root
        # differs.  Position 2 shares its sibling group with position 3,
        # so the cover structure stays valid and the root must mismatch.
        ps = payloads(12)
        tree = MerkleTree(ps)
        entries = tree.prove([3])
        with pytest.raises(MerkleError):
            reconstruct_root(12, 2, "sha1", {4: ps[3]}, entries)
        entries_for_2 = [e for e in entries if (e.level, e.index) != (0, 2)]
        entries_for_2.append(MerkleProofEntry(0, 3, tree.digest_at(0, 3)))
        assert (
            reconstruct_root(12, 2, "sha1", {2: ps[3]}, entries_for_2) != tree.root
        )

    def test_reconstruct_validates_inputs(self):
        with pytest.raises(MerkleError):
            reconstruct_root(0, 2, "sha1", {0: b"x"}, [])
        with pytest.raises(MerkleError):
            reconstruct_root(4, 1, "sha1", {0: b"x"}, [])
        with pytest.raises(MerkleError):
            reconstruct_root(4, 2, "sha1", {}, [])
        with pytest.raises(MerkleError):
            reconstruct_root(4, 2, "sha1", {9: b"x"}, [])


class TestLargeTree:
    def test_hundred_thousand_leaves(self):
        n = 100_000
        tree = MerkleTree((b"%d" % i for i in range(n)), fanout=16)
        disclosed = {0, 777, 54_321, n - 1}
        entries = tree.prove(disclosed)
        root = reconstruct_root(
            n, 16, "sha1", {i: b"%d" % i for i in disclosed}, entries
        )
        assert root == tree.root
        # Proof stays logarithmic-ish.
        assert len(entries) < 4 * 16 * 6
