"""Merkle dump_state/load_state: byte-identical proofs after reload."""

from __future__ import annotations

import pytest

from repro.errors import MerkleError
from repro.merkle.btree import MerkleBTree
from repro.merkle.tree import MerkleTree


def _payloads(count: int) -> list[bytes]:
    return [f"payload-{i}".encode() for i in range(count)]


class TestTreeState:
    @pytest.mark.parametrize("fanout", [2, 3, 8])
    @pytest.mark.parametrize("count", [1, 2, 7, 33])
    def test_prove_is_byte_identical_after_reload(self, fanout, count):
        tree = MerkleTree(_payloads(count), fanout=fanout)
        clone = MerkleTree.load_state(tree.dump_state(),
                                      num_leaves=count, fanout=fanout)
        assert clone.root == tree.root
        assert clone.num_levels == tree.num_levels
        disclosures = [[0], [count - 1], list(range(count))[:3]]
        for disclosed in disclosures:
            disclosed = [i for i in disclosed if i < count]
            if not disclosed:
                continue
            assert clone.prove(disclosed) == tree.prove(disclosed)

    def test_reloaded_tree_accepts_updates(self):
        tree = MerkleTree(_payloads(9), fanout=2)
        clone = MerkleTree.load_state(tree.dump_state(),
                                      num_leaves=9, fanout=2)
        tree.update_leaf(4, b"changed")
        clone.update_leaf(4, b"changed")
        assert clone.root == tree.root
        assert clone.dump_state() == tree.dump_state()

    def test_wrong_blob_length_is_rejected(self):
        tree = MerkleTree(_payloads(5), fanout=2)
        blob = tree.dump_state()
        for bad in (blob[:-1], blob + b"\x00" * 20):
            with pytest.raises(MerkleError):
                MerkleTree.load_state(bad, num_leaves=5, fanout=2)
        with pytest.raises(MerkleError):
            MerkleTree.load_state(blob, num_leaves=6, fanout=2)
        with pytest.raises(MerkleError):
            MerkleTree.load_state(blob, num_leaves=5, fanout=3)

    def test_invalid_shape_is_rejected(self):
        with pytest.raises(MerkleError):
            MerkleTree.load_state(b"", num_leaves=0, fanout=2)
        with pytest.raises(MerkleError):
            MerkleTree.load_state(b"", num_leaves=1, fanout=1)

    def test_level_sizes_match_construction(self):
        for count in (1, 2, 5, 16, 17):
            for fanout in (2, 4):
                tree = MerkleTree(_payloads(count), fanout=fanout)
                sizes = MerkleTree.level_sizes(count, fanout)
                assert sizes == [tree.level_size(level)
                                 for level in range(tree.num_levels)]


class TestBTreeState:
    def test_roundtrip(self):
        keys = [3, 7, 11, 40, 41]
        btree = MerkleBTree(keys, _payloads(5), fanout=3)
        keys_state, tree_state = btree.dump_state()
        clone = MerkleBTree.load_state(keys_state, tree_state, fanout=3)
        assert clone.root == btree.root
        assert clone.prove([7, 40]) == btree.prove([7, 40])
        assert clone.index_of(11) == btree.index_of(11)

    def test_invalid_keys_rejected(self):
        btree = MerkleBTree([1, 2, 3], _payloads(3))
        _, tree_state = btree.dump_state()
        with pytest.raises(MerkleError):
            MerkleBTree.load_state([3, 2, 1], tree_state)
        with pytest.raises(MerkleError):
            MerkleBTree.load_state([1, 2], tree_state)
