"""Tests for the Merkle B-tree (authenticated dictionary)."""

import numpy as np
import pytest

from repro.errors import MerkleError
from repro.merkle.btree import MerkleBTree, pair_key
from repro.merkle.tree import reconstruct_root


def build(n=50, fanout=4):
    keys = [3 * i for i in range(n)]
    payloads = [f"value-{k}".encode() for k in keys]
    return keys, payloads, MerkleBTree(keys, payloads, fanout=fanout)


class TestConstruction:
    def test_num_entries(self):
        _, _, tree = build(17)
        assert tree.num_entries == 17

    def test_keys_must_increase(self):
        with pytest.raises(MerkleError):
            MerkleBTree([1, 1], [b"a", b"b"])
        with pytest.raises(MerkleError):
            MerkleBTree([2, 1], [b"a", b"b"])

    def test_empty_rejected(self):
        with pytest.raises(MerkleError):
            MerkleBTree([], [])

    def test_payload_count_mismatch(self):
        with pytest.raises(MerkleError):
            MerkleBTree([1, 2], [b"a"])

    def test_numpy_keys_accepted(self):
        tree = MerkleBTree(np.array([1, 5, 9]), [b"a", b"b", b"c"])
        assert tree.index_of(5) == 1


class TestLookups:
    def test_index_of(self):
        keys, _, tree = build()
        assert tree.index_of(keys[0]) == 0
        assert tree.index_of(keys[-1]) == len(keys) - 1

    def test_absent_key_rejected(self):
        _, _, tree = build()
        with pytest.raises(MerkleError):
            tree.index_of(1)  # between 0 and 3
        with pytest.raises(MerkleError):
            tree.index_of(10**9)

    def test_prove_and_reconstruct(self):
        keys, payloads, tree = build(40, fanout=4)
        lookup = [keys[5], keys[17], keys[39]]
        indices, entries = tree.prove(lookup)
        disclosed = {i: payloads[i] for i in indices}
        root = reconstruct_root(40, 4, "sha1", disclosed, entries)
        assert root == tree.root

    def test_point_proof_size_logarithmic(self):
        keys, payloads, tree = build(1024, fanout=2)
        _, entries = tree.prove([keys[500]])
        assert len(entries) == 10  # exactly log2(1024) siblings


class TestPairKey:
    def test_lexicographic_order_preserved(self):
        n = 1000
        assert pair_key(1, 2, n) < pair_key(1, 3, n) < pair_key(2, 0, n)

    def test_bounds_checked(self):
        with pytest.raises(MerkleError):
            pair_key(1000, 0, 1000)
        with pytest.raises(MerkleError):
            pair_key(-1, 0, 1000)

    def test_bijective_on_small_universe(self):
        n = 30
        seen = {pair_key(a, b, n) for a in range(n) for b in range(n)}
        assert len(seen) == n * n
