"""Iterative vs recursive Merkle prove/reconstruct (tentpole acceptance).

``MerkleTree.prove`` and ``reconstruct_root`` were rewritten from
per-node recursion into iterative range-frontier sweeps.  These tests
pin the rewrite against a reference implementation of the original
recursion across fanouts 2–32, plus golden digests so the tree layout
itself can never drift silently.
"""

import random
from bisect import bisect_left

import pytest

from repro.merkle.proof import MerkleProofEntry
from repro.merkle.tree import MerkleTree, reconstruct_root


def recursive_prove(tree: MerkleTree, disclosed) -> "list[MerkleProofEntry]":
    """The original recursive inclusion walk, kept as the reference."""
    indices = sorted(set(disclosed))
    entries: list[MerkleProofEntry] = []
    f = tree.fanout
    top = tree.num_levels - 1

    def intersects(level: int, index: int) -> bool:
        lo = index * (f ** level)
        hi = min(tree.num_leaves, (index + 1) * (f ** level))
        pos = bisect_left(indices, lo)
        return pos < len(indices) and indices[pos] < hi

    def walk(level: int, index: int) -> None:
        if not intersects(level, index):
            entries.append(
                MerkleProofEntry(level, index, tree.digest_at(level, index))
            )
            return
        if level == 0:
            return
        child_count = tree.level_size(level - 1)
        for child in range(index * f, min((index + 1) * f, child_count)):
            walk(level - 1, child)

    walk(top, 0)
    return entries


def payloads(n):
    return [b"payload-%d" % i for i in range(n)]


class TestProveMatchesRecursion:
    @pytest.mark.parametrize("fanout", [2, 3, 4, 5, 8, 16, 32])
    def test_entry_sequences_identical(self, fanout):
        rng = random.Random(fanout)
        for _ in range(25):
            n = rng.randint(1, 300)
            tree = MerkleTree(payloads(n), fanout=fanout)
            disclosed = rng.sample(range(n), rng.randint(1, min(n, 15)))
            assert tree.prove(disclosed) == recursive_prove(tree, disclosed)

    @pytest.mark.parametrize("fanout", [2, 3, 4, 8, 32])
    def test_reconstructed_root_matches(self, fanout):
        rng = random.Random(1000 + fanout)
        for _ in range(15):
            n = rng.randint(1, 200)
            ps = payloads(n)
            tree = MerkleTree(ps, fanout=fanout)
            disclosed = rng.sample(range(n), rng.randint(1, min(n, 10)))
            entries = tree.prove(disclosed)
            root = reconstruct_root(
                n, fanout, "sha1", {i: ps[i] for i in disclosed}, entries
            )
            assert root == tree.root

    def test_boundary_shapes(self):
        # Shapes that stress the short trailing group at every level.
        for fanout, n in [(2, 1), (2, 2), (2, 3), (3, 9), (3, 10),
                          (32, 31), (32, 32), (32, 33), (32, 1025)]:
            tree = MerkleTree(payloads(n), fanout=fanout)
            for disclosed in ([0], [n - 1], list(range(n))[:7]):
                assert tree.prove(disclosed) == recursive_prove(tree, disclosed)


class TestGoldenDigests:
    """Frozen hex digests: any layout or hashing change breaks these."""

    def test_known_roots(self):
        golden = {
            (2, 1): "8869033247d97497faa5b408d2e17f9942af0327",
            (2, 7): "d169680363c8462d15da4ef45170e3d50f44d68c",
            (3, 7): "628e10d7f87ad54558afb20bf08af2ff55d3a914",
            (16, 40): "9dde3567534aa9c37ae39ffb47d66f84ed144423",
            (32, 100): "b221e054a130cc73b420a4b6808340e773fdd115",
        }
        for (fanout, n), expected in golden.items():
            tree = MerkleTree(payloads(n), fanout=fanout)
            assert tree.root.hex() == expected, (fanout, n)

    def test_known_proof_shape(self):
        tree = MerkleTree(payloads(12), fanout=2)
        entries = tree.prove([3, 10])
        assert [(e.level, e.index) for e in entries] == [
            (1, 0), (0, 2), (2, 1), (1, 4), (0, 11),
        ]

    def test_update_leaf_consistent_with_rebuild(self):
        ps = payloads(20)
        tree = MerkleTree(ps, fanout=3)
        tree.update_leaf(7, b"replacement")
        ps[7] = b"replacement"
        assert tree.root == MerkleTree(ps, fanout=3).root
