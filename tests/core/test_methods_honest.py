"""End-to-end honest-provider tests, shared across all four methods."""

import pytest

from repro.core.method import get_method
from repro.core.proofs import QueryResponse
from repro.shortestpath.dijkstra import dijkstra

METHOD_NAMES = ["DIJ", "FULL", "LDM", "HYP"]


@pytest.mark.parametrize("name", METHOD_NAMES)
class TestHonestProvider:
    def test_every_query_verifies(self, name, methods, workload, signer):
        method = methods[name]
        for vs, vt in workload:
            response = method.answer(vs, vt)
            result = get_method(name).verify(vs, vt, response, signer.verify)
            assert result.ok, (vs, vt, result.reason, result.detail)

    def test_reported_path_is_optimal(self, name, methods, workload, road300):
        method = methods[name]
        for vs, vt in workload:
            response = method.answer(vs, vt)
            expected = dijkstra(road300, vs, target=vt).dist[vt]
            assert response.path_cost == pytest.approx(expected)
            assert response.path_nodes[0] == vs
            assert response.path_nodes[-1] == vt

    def test_wire_roundtrip_verifies(self, name, methods, workload, signer):
        method = methods[name]
        vs, vt = workload.queries[0]
        response = QueryResponse.decode(method.answer(vs, vt).encode())
        result = get_method(name).verify(vs, vt, response, signer.verify)
        assert result.ok, (result.reason, result.detail)

    def test_verify_is_stateless_and_repeatable(self, name, methods, workload, signer):
        method = methods[name]
        vs, vt = workload.queries[1]
        response = method.answer(vs, vt)
        first = get_method(name).verify(vs, vt, response, signer.verify)
        second = get_method(name).verify(vs, vt, response, signer.verify)
        assert first.ok and second.ok

    def test_response_for_other_query_rejected(self, name, methods, workload, signer):
        method = methods[name]
        (vs, vt), (vs2, vt2) = workload.queries[0], workload.queries[2]
        response = method.answer(vs, vt)
        assert (vs, vt) != (vs2, vt2)
        result = get_method(name).verify(vs2, vt2, response, signer.verify)
        assert not result.ok

    def test_descriptor_is_method_specific(self, name, methods):
        assert methods[name].descriptor.method == name

    def test_sizes_positive(self, name, methods, workload):
        method = methods[name]
        vs, vt = workload.queries[0]
        sizes = method.answer(vs, vt).sizes()
        assert sizes.total_bytes > 0
        assert sizes.s_items >= 1


class TestCrossMethodShape:
    """The paper's headline ordering holds even on this small fixture."""

    def test_proof_size_ordering(self, methods, workload):
        # The robust relations at this tiny fixture scale; the full paper
        # ordering (DIJ >> LDM > HYP > FULL) is asserted by the benchmark
        # suite on the paper-scale datasets.
        totals = {}
        for name, method in methods.items():
            sizes = [method.answer(vs, vt).sizes().total_bytes for vs, vt in workload]
            totals[name] = sum(sizes) / len(sizes)
        assert totals["DIJ"] > totals["LDM"]
        assert totals["DIJ"] > 2 * totals["FULL"]
        assert totals["LDM"] > totals["FULL"]
        assert totals["HYP"] > totals["FULL"]

    def test_construction_time_ordering(self, methods):
        assert methods["FULL"].construction_seconds > methods["LDM"].construction_seconds
        assert methods["DIJ"].construction_seconds == 0.0


class TestRsaEndToEnd:
    """One full pass with the real RSA signer (others use the fast stub)."""

    def test_ldm_with_rsa(self, road300, rsa_signer, workload):
        from repro.core.ldm import LdmMethod

        method = LdmMethod.build(road300, rsa_signer, c=10)
        vs, vt = workload.queries[0]
        response = method.answer(vs, vt)
        assert get_method("LDM").verify(vs, vt, response, rsa_signer.verify).ok
        # Verification must also work from the public key alone.
        verifier = rsa_signer.verifier_for_public_key()
        assert get_method("LDM").verify(vs, vt, response, verifier.verify).ok
        # And reject under a different key.
        from repro.crypto.signer import RsaSigner

        other = RsaSigner(bits=768, seed=4242)
        result = get_method("LDM").verify(vs, vt, response, other.verify)
        assert not result.ok and result.reason == "bad-signature"
