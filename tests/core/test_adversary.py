"""Adversarial integration tests: every attack must be rejected.

These are the security claims of the paper: a malicious or compromised
provider cannot make a client accept a wrong answer.
"""

import pytest

from repro.core import adversary
from repro.core.method import get_method
from repro.errors import MethodError

METHOD_NAMES = ["DIJ", "FULL", "LDM", "HYP"]


def verify(name, vs, vt, response, signer):
    return get_method(name).verify(vs, vt, response, signer.verify)


@pytest.mark.parametrize("name", METHOD_NAMES)
class TestUniversalAttacks:
    """Attacks that apply to every method."""

    def test_suboptimal_path_rejected(self, name, methods, road300, workload, signer):
        method = methods[name]
        rejected = 0
        for vs, vt in workload.queries[:4]:
            try:
                response = adversary.suboptimal_path(method, road300, vs, vt)
            except MethodError:
                continue  # no detour exists for this pair
            result = verify(name, vs, vt, response, signer)
            assert not result.ok, f"suboptimal path accepted for ({vs},{vt})"
            rejected += 1
        assert rejected > 0, "workload offered no detours at all"

    def test_tampered_weight_rejected(self, name, methods, workload, signer):
        vs, vt = workload.queries[0]
        response = adversary.tamper_weight(methods[name].answer(vs, vt))
        result = verify(name, vs, vt, response, signer)
        assert not result.ok
        assert result.reason == "root-mismatch"

    def test_stripped_signature_rejected(self, name, methods, workload, signer):
        vs, vt = workload.queries[0]
        response = adversary.strip_signature(methods[name].answer(vs, vt))
        result = verify(name, vs, vt, response, signer)
        assert not result.ok
        assert result.reason == "bad-signature"

    def test_inflated_cost_rejected(self, name, methods, workload, signer):
        vs, vt = workload.queries[0]
        response = adversary.inflate_cost(methods[name].answer(vs, vt))
        assert not verify(name, vs, vt, response, signer).ok

    def test_replayed_response_rejected(self, name, methods, workload, signer):
        (vs, vt), (vs2, vt2) = workload.queries[0], workload.queries[3]
        response = methods[name].answer(vs, vt)
        assert not verify(name, vs2, vt2, response, signer).ok

    def test_descriptor_swap_rejected(self, name, methods, workload, signer):
        # Graft another method's (validly signed) descriptor onto the
        # response: the method binding must catch it.
        import copy

        vs, vt = workload.queries[0]
        response = copy.deepcopy(methods[name].answer(vs, vt))
        other = methods["FULL" if name != "FULL" else "DIJ"]
        response.descriptor = other.descriptor
        assert not verify(name, vs, vt, response, signer).ok

    def test_truncated_wire_bytes_rejected(self, name, methods, workload):
        from repro.core.proofs import QueryResponse
        from repro.errors import EncodingError, MerkleError

        vs, vt = workload.queries[0]
        data = methods[name].answer(vs, vt).encode()
        with pytest.raises((EncodingError, MerkleError)):
            QueryResponse.decode(data[: len(data) // 2])


@pytest.mark.parametrize("name", ["DIJ", "LDM"])
class TestSubgraphDropAttack:
    """§IV-A: drop ΓS tuples and patch ΓT so the root still matches."""

    def test_concealed_shortcut_rejected(self, name, methods, road300,
                                         workload, signer):
        """Report a detour AND withhold the true shortest path's tuples.

        This is the attack the validity check exists for: the Merkle root
        still reconstructs, the reported path is genuine, and the only
        evidence of the shorter route is the withheld tuples.
        """
        from repro.shortestpath.dijkstra import dijkstra

        attacks = 0
        for vs, vt in workload.queries[:4]:
            true_path = dijkstra(road300, vs, target=vt).path_to(vt)
            try:
                detour_response = adversary.suboptimal_path(
                    methods[name], road300, vs, vt
                )
            except MethodError:
                continue
            victims = [
                n for n in true_path.nodes[1:-1]
                if n not in detour_response.path_nodes
            ]
            disclosed = _disclosed_ids(detour_response)
            for victim in victims:
                if victim not in disclosed:
                    continue
                try:
                    response = adversary.drop_tuple(
                        detour_response, keep=disclosed - {victim}
                    )
                except MethodError:
                    continue
                result = verify(name, vs, vt, response, signer)
                assert not result.ok, (
                    f"concealed shortcut accepted for ({vs},{vt}) "
                    f"with victim {victim}"
                )
                # The Merkle root still matched: the rejection must come
                # from shortest-path validity, not from the hash check.
                assert result.reason != "root-mismatch"
                attacks += 1
                break
        assert attacks > 0, "workload offered no concealable shortcut"

    def test_harmless_drop_never_flips_the_answer(self, name, methods,
                                                  workload, signer):
        """Dropping cone padding may go unnoticed — but then the accepted
        answer is still the true shortest path, so soundness holds."""
        vs, vt = workload.queries[0]
        honest = methods[name].answer(vs, vt)
        try:
            response = adversary.drop_tuple(honest)
        except MethodError:
            pytest.skip("nothing droppable")
        result = verify(name, vs, vt, response, signer)
        if result.ok:
            assert response.path_nodes == honest.path_nodes
            assert response.path_cost == honest.path_cost

    def test_dropping_path_node_rejected(self, name, methods, workload, signer):
        vs, vt = workload.queries[0]
        honest = methods[name].answer(vs, vt)
        # Force the drop onto a path node by keeping everything else.
        path_interior = set(honest.path_nodes[1:-1])
        if not path_interior:
            pytest.skip("path too short")
        try:
            response = adversary.drop_tuple(
                honest,
                keep={n for n in _disclosed_ids(honest) if n not in path_interior},
            )
        except MethodError:
            pytest.skip("no droppable sibling-covered path node")
        assert not verify(name, vs, vt, response, signer).ok


@pytest.mark.parametrize("name,params", [
    ("DIJ", {}),
    ("FULL", {}),
    ("LDM", dict(c=16)),
    ("HYP", dict(num_cells=25)),
])
class TestFreshnessAttacks:
    """Stale-proof replay after a live update (every method)."""

    def _updated_method(self, name, params, road300, workload, signer):
        graph = road300.copy()
        method = get_method(name).build(graph, signer, **params)
        vs, vt = workload.queries[0]
        stale = method.answer(vs, vt)
        u, v, w = next(iter(graph.edges()))
        method.update_edge_weight(u, v, w * 2, signer)
        return method, graph, (vs, vt), stale

    def test_stale_replay_rejected_with_version_pin(
        self, name, params, road300, workload, signer
    ):
        method, graph, (vs, vt), stale = self._updated_method(
            name, params, road300, workload, signer)
        replayed = adversary.replay_stale_root(stale)
        result = get_method(name).verify(vs, vt, replayed, signer.verify,
                                         min_version=graph.version)
        assert not result.ok
        assert result.reason == "stale-descriptor"

    def test_stale_replay_is_authentic_without_pin(
        self, name, params, road300, workload, signer
    ):
        """Without a freshness floor the replay verifies — every byte is
        genuinely owner-signed.  This is exactly why clients must pin
        the version, not a defect of the tamper checks."""
        method, _, (vs, vt), stale = self._updated_method(
            name, params, road300, workload, signer)
        replayed = adversary.replay_stale_root(stale)
        assert verify(name, vs, vt, replayed, signer).ok

    def test_fresh_response_passes_version_pin(
        self, name, params, road300, workload, signer
    ):
        method, graph, (vs, vt), _ = self._updated_method(
            name, params, road300, workload, signer)
        fresh = method.answer(vs, vt)
        result = get_method(name).verify(vs, vt, fresh, signer.verify,
                                         min_version=graph.version)
        assert result.ok, (result.reason, result.detail)

    def test_post_update_responses_still_reject_tampering(
        self, name, params, road300, workload, signer
    ):
        """The classic mutations stay rejected after incremental
        re-authentication — updating must not weaken tamper detection."""
        method, graph, (vs, vt), _ = self._updated_method(
            name, params, road300, workload, signer)
        fresh = method.answer(vs, vt)
        floor = graph.version

        tampered = adversary.tamper_weight(fresh)
        result = get_method(name).verify(vs, vt, tampered, signer.verify,
                                         min_version=floor)
        assert not result.ok
        assert result.reason == "root-mismatch"

        stripped = adversary.strip_signature(fresh)
        assert not get_method(name).verify(
            vs, vt, stripped, signer.verify, min_version=floor).ok

        inflated = adversary.inflate_cost(fresh)
        assert not get_method(name).verify(
            vs, vt, inflated, signer.verify, min_version=floor).ok

        if name in ("FULL", "HYP"):
            forged = adversary.forge_distance(fresh)
            assert not get_method(name).verify(
                vs, vt, forged, signer.verify, min_version=floor).ok

        if name in ("DIJ", "LDM"):
            try:
                dropped = adversary.drop_tuple(
                    fresh,
                    keep={n for n in _disclosed_ids(fresh)
                          if n not in set(fresh.path_nodes[1:-1])},
                )
            except MethodError:
                return
            assert not get_method(name).verify(
                vs, vt, dropped, signer.verify, min_version=floor).ok


def _disclosed_ids(response):
    from repro.core.proofs import NETWORK_TREE
    from repro.encoding import Decoder
    from repro.graph.tuples import BaseTuple

    return {
        BaseTuple._decode_header(Decoder(p))[0]
        for p in response.sections[NETWORK_TREE].payloads
    }


class TestDistanceForgery:
    def test_full_forged_distance_rejected(self, full, workload, signer):
        vs, vt = workload.queries[0]
        response = adversary.forge_distance(full.answer(vs, vt))
        result = verify("FULL", vs, vt, response, signer)
        assert not result.ok
        assert result.reason == "root-mismatch"

    def test_hyp_forged_hyperedge_rejected(self, hyp, workload, signer):
        vs, vt = workload.queries[0]
        response = adversary.forge_distance(hyp.answer(vs, vt), delta=-100.0)
        result = verify("HYP", vs, vt, response, signer)
        assert not result.ok

    def test_full_wrong_pair_tuple_rejected(self, full, workload, signer):
        # Present a *genuine* distance tuple for a different pair.
        import copy

        (vs, vt), (vs2, vt2) = workload.queries[0], workload.queries[1]
        honest = full.answer(vs, vt)
        other = full.answer(vs2, vt2)
        forged = copy.deepcopy(honest)
        from repro.core.proofs import DISTANCE_TREE

        forged.sections[DISTANCE_TREE] = other.sections[DISTANCE_TREE]
        result = verify("FULL", vs, vt, forged, signer)
        assert not result.ok
        assert result.reason == "wrong-distance-tuple"


class TestHypCellWithholding:
    def test_withheld_cell_member_rejected(self, hyp, workload, signer):
        """Remove one source-cell tuple (with canonical ΓT patching)."""
        import copy

        from repro.core.proofs import NETWORK_TREE
        from repro.crypto.hashing import get_hash
        from repro.encoding import Decoder
        from repro.graph.tuples import BaseTuple
        from repro.merkle.proof import MerkleProofEntry
        from repro.merkle.tree import leaf_digest

        vs, vt = workload.queries[0]
        honest = hyp.answer(vs, vt)
        cell_s = hyp._partition.cell(vs)
        victims = [
            n for n in hyp._partition.members_of(cell_s)
            if n not in honest.path_nodes
        ]
        if not victims:
            pytest.skip("source cell fully on path")
        response = None
        try:
            response = adversary.drop_tuple(
                honest, keep=_disclosed_ids(honest) - {victims[0]}
            )
        except MethodError:
            pytest.skip("victim not sibling-covered")
        result = verify("HYP", vs, vt, response, signer)
        assert not result.ok
        assert result.reason in ("incomplete-cell", "path-node-missing")
