"""Tests for batched proofs."""

import pytest

from repro.core.batch import BatchResponse, answer_batch, verify_batch
from repro.errors import MethodError


@pytest.mark.parametrize("method_name", ["DIJ", "LDM"])
class TestBatchHonest:
    def test_all_queries_verify(self, methods, workload, signer, method_name):
        method = methods[method_name]
        queries = list(workload.queries[:5])
        batch = answer_batch(method, queries)
        results = verify_batch(batch, signer.verify)
        assert len(results) == 5
        for (vs, vt), result in zip(queries, results):
            assert result.ok, (vs, vt, result.reason, result.detail)

    def test_batch_smaller_than_individual(self, methods, workload, signer,
                                           method_name):
        method = methods[method_name]
        queries = list(workload.queries[:5])
        batch = answer_batch(method, queries)
        individual = sum(
            len(method.answer(vs, vt).encode()) for vs, vt in queries
        )
        assert batch.total_bytes < individual

    def test_wire_roundtrip(self, methods, workload, signer, method_name):
        method = methods[method_name]
        queries = list(workload.queries[:3])
        batch = BatchResponse.decode(answer_batch(method, queries).encode())
        for result in verify_batch(batch, signer.verify):
            assert result.ok

    def test_per_query_costs_match_individual(self, methods, workload,
                                              signer, method_name):
        method = methods[method_name]
        queries = list(workload.queries[:3])
        batch = answer_batch(method, queries)
        for i, (vs, vt) in enumerate(queries):
            assert batch.costs[i] == method.answer(vs, vt).path_cost


class TestBatchAdversarial:
    def test_tampered_batch_rejected_everywhere(self, dij, workload, signer):
        batch = answer_batch(dij, list(workload.queries[:3]))
        payload = batch.section.payloads[0]
        batch.section.payloads[0] = bytes([payload[0] ^ 0xFF]) + payload[1:]
        results = verify_batch(batch, signer.verify)
        assert all(not r.ok for r in results)
        # Depending on how the corrupted varint decodes, the reject comes
        # from the hash check or from tuple decoding; both are sound.
        assert {r.reason for r in results} <= {"root-mismatch", "malformed-proof"}

    def test_inflated_single_cost_rejected_only_there(self, dij, workload,
                                                      signer):
        batch = answer_batch(dij, list(workload.queries[:3]))
        costs = list(batch.costs)
        costs[1] *= 1.5
        batch.costs = tuple(costs)
        results = verify_batch(batch, signer.verify)
        assert results[0].ok and results[2].ok
        assert not results[1].ok

    def test_swapped_paths_rejected(self, dij, workload, signer):
        batch = answer_batch(dij, list(workload.queries[:2]))
        batch.paths = (batch.paths[1], batch.paths[0])
        results = verify_batch(batch, signer.verify)
        assert not any(r.ok for r in results)


class TestBatchErrors:
    def test_non_batchable_method(self, full, workload):
        with pytest.raises(MethodError):
            answer_batch(full, list(workload.queries[:2]))

    def test_empty_batch(self, dij):
        with pytest.raises(MethodError):
            answer_batch(dij, [])
