"""Tests for proof containers: descriptor, sections, response."""

import pytest

from repro.core.proofs import (
    NETWORK_TREE,
    ProofSizes,
    QueryResponse,
    SignedDescriptor,
    TreeConfig,
    TreeSection,
)
from repro.errors import EncodingError
from repro.merkle.proof import MerkleProofEntry


def make_descriptor(signature=b"sig"):
    return SignedDescriptor(
        method="DIJ",
        hash_name="sha1",
        params=b"\x01\x02",
        trees=(TreeConfig(NETWORK_TREE, 100, 2, b"r" * 20),),
        signature=signature,
    )


class TestSignedDescriptor:
    def test_encode_decode_roundtrip(self):
        descriptor = make_descriptor()
        decoded = SignedDescriptor.decode(descriptor.encode())
        assert decoded == descriptor

    def test_message_excludes_signature(self):
        a = make_descriptor(b"one")
        b = make_descriptor(b"two")
        assert a.message() == b.message()
        assert a.encode() != b.encode()

    def test_message_binds_everything(self):
        base = make_descriptor()
        variants = [
            SignedDescriptor("LDM", base.hash_name, base.params, base.trees),
            SignedDescriptor(base.method, "sha256", base.params, base.trees),
            SignedDescriptor(base.method, base.hash_name, b"", base.trees),
            SignedDescriptor(base.method, base.hash_name, base.params,
                             (TreeConfig(NETWORK_TREE, 101, 2, b"r" * 20),)),
            SignedDescriptor(base.method, base.hash_name, base.params,
                             (TreeConfig(NETWORK_TREE, 100, 4, b"r" * 20),)),
            SignedDescriptor(base.method, base.hash_name, base.params,
                             (TreeConfig(NETWORK_TREE, 100, 2, b"x" * 20),)),
        ]
        messages = {v.message() for v in variants}
        assert len(messages) == len(variants)
        assert base.message() not in messages

    def test_tree_lookup(self):
        descriptor = make_descriptor()
        assert descriptor.tree(NETWORK_TREE).num_leaves == 100
        assert descriptor.has_tree(NETWORK_TREE)
        assert not descriptor.has_tree("distance")
        with pytest.raises(EncodingError):
            descriptor.tree("distance")

    def test_with_signature(self):
        descriptor = make_descriptor(b"")
        signed = descriptor.with_signature(b"new")
        assert signed.signature == b"new"
        assert signed.message() == descriptor.message()


class TestTreeSection:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(EncodingError):
            TreeSection(NETWORK_TREE, [1, 2], [b"a"])

    def test_duplicate_positions_rejected(self):
        with pytest.raises(EncodingError):
            TreeSection(NETWORK_TREE, [1, 1], [b"a", b"b"])

    def test_leaf_map(self):
        section = TreeSection(NETWORK_TREE, [4, 2], [b"x", b"y"])
        assert section.leaf_map() == {4: b"x", 2: b"y"}

    def test_size_accounting_nonzero(self):
        section = TreeSection(
            NETWORK_TREE, [1], [b"payload"],
            [MerkleProofEntry(0, 0, b"d" * 20)],
        )
        assert section.s_prf_bytes() > len(b"payload")
        assert section.t_prf_bytes() > 20


def make_response():
    section = TreeSection(
        NETWORK_TREE, [3, 9], [b"tuple-a", b"tuple-b"],
        [MerkleProofEntry(1, 0, b"d" * 20), MerkleProofEntry(0, 2, b"e" * 20)],
    )
    return QueryResponse(
        method="DIJ",
        source=3,
        target=9,
        path_nodes=(3, 5, 9),
        path_cost=12.5,
        sections={NETWORK_TREE: section},
        descriptor=make_descriptor(),
    )


class TestQueryResponse:
    def test_encode_decode_roundtrip(self):
        response = make_response()
        decoded = QueryResponse.decode(response.encode())
        assert decoded.method == response.method
        assert decoded.source == response.source
        assert decoded.target == response.target
        assert decoded.path_nodes == response.path_nodes
        assert decoded.path_cost == response.path_cost
        assert decoded.descriptor == response.descriptor
        section = decoded.sections[NETWORK_TREE]
        original = response.sections[NETWORK_TREE]
        assert section.positions == original.positions
        assert section.payloads == original.payloads
        assert section.entries == original.entries

    def test_unknown_section(self):
        with pytest.raises(EncodingError):
            make_response().section("distance")

    def test_sizes_sum(self):
        sizes = make_response().sizes()
        assert isinstance(sizes, ProofSizes)
        assert sizes.total_bytes == (
            sizes.s_prf_bytes + sizes.t_prf_bytes + sizes.path_bytes
        )
        assert sizes.total_kbytes == pytest.approx(sizes.total_bytes / 1024)
        assert sizes.s_items == 2
        assert sizes.t_items == 2

    def test_size_tracks_wire_size(self):
        # The breakdown must be close to the real wire size (within the
        # small framing overhead of section names and counts).
        response = make_response()
        wire = len(response.encode())
        accounted = response.sizes().total_bytes
        assert accounted <= wire
        assert wire - accounted < 64
