"""Unit tests for the shared client-side verification steps."""

import pytest

from repro.core.checks import (
    NetworkTreeBundle,
    adjacency_weight,
    check_reported_path,
    decode_tuples,
    sign_descriptor,
    verify_descriptor,
    verify_section_root,
)
from repro.core.proofs import NETWORK_TREE, QueryResponse, SignedDescriptor, TreeConfig, TreeSection
from repro.crypto.signer import NullSigner
from repro.errors import EncodingError
from repro.graph.tuples import BaseTuple


@pytest.fixture()
def bundle(diamond):
    return NetworkTreeBundle(
        diamond, lambda v: BaseTuple.from_graph(diamond, v),
        ordering="hbt", fanout=2, hash_name="sha1",
    )


@pytest.fixture()
def descriptor(bundle):
    signer = NullSigner()
    return sign_descriptor(
        SignedDescriptor(
            method="DIJ", hash_name="sha1", params=b"",
            trees=(TreeConfig(NETWORK_TREE, bundle.tree.num_leaves, 2,
                              bundle.tree.root),),
        ),
        signer,
    ), signer


def make_response(bundle, descriptor, nodes, path, cost):
    return QueryResponse(
        method="DIJ", source=path[0], target=path[-1],
        path_nodes=tuple(path), path_cost=cost,
        sections={NETWORK_TREE: bundle.section_for(nodes)},
        descriptor=descriptor,
    )


class TestNetworkTreeBundle:
    def test_positions_cover_all_nodes(self, bundle, diamond):
        assert sorted(bundle.position_of) == diamond.node_ids()
        assert sorted(bundle.position_of.values()) == list(range(diamond.num_nodes))

    def test_section_payloads_sorted_by_position(self, bundle):
        section = bundle.section_for([5, 0, 3])
        assert section.positions == sorted(section.positions)

    def test_section_root_verifies(self, bundle, descriptor):
        desc, _ = descriptor
        section = bundle.section_for([0, 1, 2])
        assert verify_section_root(desc, section) is None

    def test_build_seconds_recorded(self, bundle):
        assert bundle.build_seconds >= 0.0


class TestVerifyDescriptor:
    def test_pass(self, bundle, descriptor):
        desc, signer = descriptor
        response = make_response(bundle, desc, [0, 1], [0, 1], 1.0)
        assert verify_descriptor("DIJ", response, signer.verify) is None

    def test_method_mismatch(self, bundle, descriptor):
        desc, signer = descriptor
        response = make_response(bundle, desc, [0, 1], [0, 1], 1.0)
        failure = verify_descriptor("FULL", response, signer.verify)
        assert failure is not None and failure.reason == "method-mismatch"

    def test_bad_signature(self, bundle, descriptor):
        desc, signer = descriptor
        bad = desc.with_signature(b"\x00" * len(desc.signature))
        response = make_response(bundle, bad, [0, 1], [0, 1], 1.0)
        failure = verify_descriptor("DIJ", response, signer.verify)
        assert failure is not None and failure.reason == "bad-signature"


class TestVerifySectionRoot:
    def test_unknown_tree(self, bundle, descriptor):
        desc, _ = descriptor
        section = bundle.section_for([0])
        section.tree = "mystery"
        failure = verify_section_root(desc, section)
        assert failure is not None and failure.reason == "unknown-tree"

    def test_tampered_payload(self, bundle, descriptor):
        desc, _ = descriptor
        section = bundle.section_for([0, 1])
        flipped = bytes([section.payloads[0][0] ^ 0xFF])
        section.payloads[0] = flipped + section.payloads[0][1:]
        failure = verify_section_root(desc, section)
        assert failure is not None and failure.reason == "root-mismatch"

    def test_missing_entries(self, bundle, descriptor):
        desc, _ = descriptor
        section = bundle.section_for([0])
        section.entries = section.entries[:-1]
        failure = verify_section_root(desc, section)
        assert failure is not None and failure.reason == "malformed-proof"


class TestDecodeTuples:
    def test_roundtrip(self, bundle, diamond):
        section = bundle.section_for(diamond.node_ids())
        tuples = decode_tuples(section, BaseTuple)
        assert sorted(tuples) == diamond.node_ids()

    def test_duplicate_rejected(self, bundle):
        section = bundle.section_for([0])
        section.positions.append(99)
        section.payloads.append(section.payloads[0])
        with pytest.raises(EncodingError):
            decode_tuples(section, BaseTuple)

    def test_adjacency_weight(self, diamond):
        tup = BaseTuple.from_graph(diamond, 0)
        assert adjacency_weight(tup, 1) == 1.0
        assert adjacency_weight(tup, 3) is None

    def test_adjacency_weight_probes_every_position(self):
        # The bisect probe must find first/middle/last neighbors and
        # reject ids falling before, between, and after the entries.
        tup = BaseTuple(0, 0.0, 0.0, ((2, 1.0), (5, 2.0), (9, 3.0)))
        assert [adjacency_weight(tup, v) for v in (2, 5, 9)] == [1.0, 2.0, 3.0]
        assert all(adjacency_weight(tup, v) is None for v in (0, 3, 7, 10))
        assert adjacency_weight(BaseTuple(0, 0.0, 0.0, ()), 1) is None

    def test_adjacency_weight_never_fabricates_on_unsorted_payload(self):
        # A malicious provider may violate the canonical sort; the probe
        # may then miss entries (rejecting the response) but must never
        # return a weight for a neighbor that is absent.
        tup = BaseTuple(0, 0.0, 0.0, ((9, 3.0), (2, 1.0), (5, 2.0)))
        for v in (0, 1, 3, 4, 6, 7, 8, 10):
            assert adjacency_weight(tup, v) is None


class TestCheckReportedPath:
    def tuples_for(self, bundle, nodes):
        return decode_tuples(bundle.section_for(nodes), BaseTuple)

    def test_valid_path(self, bundle, descriptor, diamond):
        desc, _ = descriptor
        response = make_response(bundle, desc, diamond.node_ids(),
                                 [0, 1, 2, 3], 3.0)
        tuples = self.tuples_for(bundle, diamond.node_ids())
        assert check_reported_path(0, 3, response, tuples) is None

    def test_endpoint_mismatch(self, bundle, descriptor, diamond):
        desc, _ = descriptor
        response = make_response(bundle, desc, diamond.node_ids(),
                                 [0, 1, 2, 3], 3.0)
        tuples = self.tuples_for(bundle, diamond.node_ids())
        failure = check_reported_path(0, 5, response, tuples)
        assert failure is not None and failure.reason == "endpoint-mismatch"

    def test_phantom_edge(self, bundle, descriptor, diamond):
        desc, _ = descriptor
        response = make_response(bundle, desc, diamond.node_ids(),
                                 [0, 2, 3], 2.0)  # 0-2 is not an edge
        tuples = self.tuples_for(bundle, diamond.node_ids())
        failure = check_reported_path(0, 3, response, tuples)
        assert failure is not None and failure.reason == "phantom-edge"

    def test_cost_mismatch(self, bundle, descriptor, diamond):
        desc, _ = descriptor
        response = make_response(bundle, desc, diamond.node_ids(),
                                 [0, 1, 2, 3], 99.0)
        tuples = self.tuples_for(bundle, diamond.node_ids())
        failure = check_reported_path(0, 3, response, tuples)
        assert failure is not None and failure.reason == "cost-mismatch"

    def test_missing_tuple(self, bundle, descriptor, diamond):
        desc, _ = descriptor
        response = make_response(bundle, desc, diamond.node_ids(),
                                 [0, 1, 2, 3], 3.0)
        tuples = self.tuples_for(bundle, [0, 1, 3])  # node 2 undisclosed
        failure = check_reported_path(0, 3, response, tuples)
        assert failure is not None and failure.reason == "path-node-missing"

    def test_cycle_rejected(self, bundle, descriptor, diamond):
        desc, _ = descriptor
        response = make_response(bundle, desc, diamond.node_ids(),
                                 [0, 1, 0, 1], 3.0)
        tuples = self.tuples_for(bundle, diamond.node_ids())
        failure = check_reported_path(0, 1, response, tuples)
        assert failure is not None and failure.reason == "path-cycle"

    def test_empty_path(self, bundle, descriptor, diamond):
        desc, _ = descriptor
        response = make_response(bundle, desc, diamond.node_ids(), [0], 0.0)
        response.path_nodes = ()
        tuples = self.tuples_for(bundle, diamond.node_ids())
        failure = check_reported_path(0, 3, response, tuples)
        assert failure is not None and failure.reason == "empty-path"
