"""Tests for the proof-size estimation model (paper future work)."""

import pytest

from repro.core.estimate import BallProfile, ProofSizeModel, cover_digests, mean_tuple_bytes
from repro.errors import MethodError


@pytest.fixture(scope="module")
def model(road700):
    return ProofSizeModel.for_graph(road700, seed=3)


class TestBallProfile:
    def test_monotone(self, road700):
        profile = BallProfile.sample(road700, seed=1)
        sizes = [profile.ball(r) for r in (0, 100, 500, 1000, 2000, 10**9)]
        assert sizes == sorted(sizes)
        assert sizes[0] >= 1.0
        assert sizes[-1] <= road700.num_nodes

    def test_interpolation_between_tabulated_points(self, road700):
        profile = BallProfile.sample(road700, seed=1)
        r0, r1 = profile.radii[3], profile.radii[4]
        mid = profile.ball((r0 + r1) / 2)
        assert min(profile.ball(r0), profile.ball(r1)) <= mid <= max(
            profile.ball(r0), profile.ball(r1)
        )

    def test_path_hops_scales_linearly(self, road700):
        profile = BallProfile.sample(road700, seed=1)
        assert profile.path_hops(2000) == pytest.approx(2 * profile.path_hops(1000))
        assert profile.path_hops(0) == 1.0

    def test_deterministic(self, road700):
        a = BallProfile.sample(road700, seed=5)
        b = BallProfile.sample(road700, seed=5)
        assert a.radii == b.radii and a.ball_sizes == b.ball_sizes


class TestCoverModel:
    def test_zero_cases(self):
        assert cover_digests(0, 1, 100, 2) == 0.0
        assert cover_digests(5, 1, 1, 2) == 0.0

    def test_single_leaf_logarithmic(self):
        # One disclosed leaf out of 1024 at fanout 2: ~10 sibling digests.
        assert cover_digests(1, 1, 1024, 2) == pytest.approx(10.0)

    def test_more_runs_cost_more(self):
        contiguous = cover_digests(64, 1, 4096, 2)
        scattered = cover_digests(64, 64, 4096, 2)
        assert scattered > contiguous

    def test_fanout_increases_cover(self):
        assert cover_digests(4, 4, 4096, 16) > cover_digests(4, 4, 4096, 2)


class TestMeanTupleBytes:
    def test_positive_and_stable(self, road700):
        a = mean_tuple_bytes(road700, seed=1)
        b = mean_tuple_bytes(road700, seed=1)
        assert a == b > 20

    def test_vector_payload_added(self, road700):
        base = mean_tuple_bytes(road700, seed=1)
        with_vec = mean_tuple_bytes(road700, vector_bytes=150.0, seed=1)
        assert with_vec == pytest.approx(base + 150.0)


class TestPredictions:
    def test_unknown_method(self, model):
        with pytest.raises(MethodError):
            model.predict("NOPE", 1000.0)

    def test_all_methods_positive_and_growing(self, model):
        for name in ("DIJ", "FULL", "LDM", "HYP"):
            small = model.predict(name, 500.0)
            large = model.predict(name, 4000.0)
            assert 0 < small <= large

    def test_dij_grows_fastest(self, model):
        growth = {
            name: model.predict(name, 4000.0) / model.predict(name, 500.0)
            for name in ("DIJ", "FULL", "LDM", "HYP")
        }
        assert growth["DIJ"] >= max(growth.values()) - 1e-9

    def test_rank_returns_sorted(self, model):
        ranking = model.rank(2000.0)
        values = [v for _, v in ranking]
        assert values == sorted(values)
        assert {n for n, _ in ranking} == {"DIJ", "FULL", "LDM", "HYP"}
        assert ranking[0][0] == "FULL"  # smallest proof at any scale

    def test_accuracy_against_measurements(self, road700, model):
        """The model must land within ~2x of reality on a real workload."""
        from repro.bench import run_workload
        from repro.core.method import get_method
        from repro.crypto.signer import NullSigner
        from repro.workload.queries import generate_workload

        signer = NullSigner()
        workload = generate_workload(road700, 2000.0, count=5, seed=9,
                                     tolerance=1.0)
        for name, params in [("DIJ", {}), ("FULL", {}),
                             ("LDM", dict(c=100)), ("HYP", dict(num_cells=100))]:
            method = get_method(name).build(road700, signer, **params)
            run = run_workload(method, workload, signer.verify)
            predicted = model.predict(name, 2000.0)
            actual = run.total_kb * 1024
            ratio = max(predicted / actual, actual / predicted)
            assert ratio < 2.5, f"{name}: predicted {predicted}, actual {actual}"
