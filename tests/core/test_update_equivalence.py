"""Property-based update-equivalence suite.

The contract of the live-update pipeline: however a method absorbed a
mutation sequence — leaf patches, partial rebuilds, full rebuilds — its
observable state must be *byte-identical* to a from-scratch build on
the mutated graph with the same pinned parameters.  Seeded random
sequences of weight updates and edge insertions/removals are applied
incrementally and compared, for all four methods across fanouts.
"""

from __future__ import annotations

import random

import pytest

from repro.core.method import get_method
from repro.crypto.signer import NullSigner
from repro.shortestpath.dijkstra import dijkstra
from repro.workload.updates import (
    ADD_EDGE,
    REMOVE_EDGE,
    UPDATE_WEIGHT,
    generate_update_workload,
)

METHOD_PARAMS = {
    "DIJ": {},
    "FULL": {},
    "LDM": dict(c=12),
    "HYP": dict(num_cells=25),
}

ALL_KINDS = (UPDATE_WEIGHT, ADD_EDGE, REMOVE_EDGE)


def assert_equivalent(method, graph, signer, queries):
    """Incrementally-updated *method* must equal a pinned rebuild."""
    fresh = type(method).build(graph, signer, **method._build_params)
    assert method.descriptor.encode() == fresh.descriptor.encode(), \
        "signed descriptor (roots/version/params) diverged from a rebuild"
    for tree_cfg, fresh_cfg in zip(method.descriptor.trees,
                                   fresh.descriptor.trees):
        assert tree_cfg.root == fresh_cfg.root
    for vs, vt in queries:
        incremental = method.answer(vs, vt).encode()
        rebuilt = fresh.answer(vs, vt).encode()
        assert incremental == rebuilt, f"response diverged for ({vs}, {vt})"


@pytest.mark.parametrize("name", sorted(METHOD_PARAMS))
@pytest.mark.parametrize("fanout", [2, 4])
@pytest.mark.parametrize("seed", [11, 23])
class TestUpdateEquivalence:
    def test_random_sequence_matches_rebuild(self, name, fanout, seed,
                                             road300, workload, signer):
        graph = road300.copy()
        method = get_method(name).build(graph, signer, fanout=fanout,
                                        **METHOD_PARAMS[name])
        updates = generate_update_workload(graph, 8, seed=seed,
                                           kinds=ALL_KINDS)
        for update in updates:
            update.apply(graph)
            report = method.apply_update(signer)
            assert report.version == graph.version
        assert_equivalent(method, graph, signer, workload.queries[:3])

    def test_batched_sequence_matches_rebuild(self, name, fanout, seed,
                                              road300, workload, signer):
        """One apply_update over the whole batch, not one per mutation."""
        graph = road300.copy()
        method = get_method(name).build(graph, signer, fanout=fanout,
                                        **METHOD_PARAMS[name])
        generate_update_workload(graph, 6, seed=seed,
                                 kinds=ALL_KINDS).apply_all(graph)
        report = method.apply_update(signer)
        assert report.mutations == 6
        assert_equivalent(method, graph, signer, workload.queries[:3])


@pytest.mark.parametrize("name", sorted(METHOD_PARAMS))
class TestUpdateSemantics:
    def test_weight_updates_take_the_incremental_path(self, name, road300,
                                                      signer):
        graph = road300.copy()
        method = get_method(name).build(graph, signer, **METHOD_PARAMS[name])
        generate_update_workload(graph, 3, seed=5,
                                 kinds=(UPDATE_WEIGHT,)).apply_all(graph)
        report = method.apply_update(signer)
        assert report.mode in ("incremental", "partial-rebuild")
        assert report.mode != "full-rebuild"

    def test_updated_answers_verify_and_are_optimal(self, name, road300,
                                                    workload, signer):
        graph = road300.copy()
        method = get_method(name).build(graph, signer, **METHOD_PARAMS[name])
        generate_update_workload(graph, 6, seed=3,
                                 kinds=ALL_KINDS).apply_all(graph)
        method.apply_update(signer)
        for vs, vt in workload.queries[:3]:
            response = method.answer(vs, vt)
            result = get_method(name).verify(vs, vt, response, signer.verify,
                                             min_version=graph.version)
            assert result.ok, (result.reason, result.detail)
            expected = dijkstra(graph, vs, target=vt).dist[vt]
            assert response.path_cost == pytest.approx(expected)

    def test_node_addition_forces_full_rebuild(self, name, road300, signer):
        graph = road300.copy()
        method = get_method(name).build(graph, signer, **METHOD_PARAMS[name])
        new_id = max(graph.node_ids()) + 1
        anchor = graph.node_ids()[0]
        node = graph.node(anchor)
        graph.add_node(new_id, node.x + 1.0, node.y + 1.0)
        graph.add_edge(new_id, anchor, 5.0)
        # Keep FULL/LDM/HYP satisfiable: the new node is connected.
        report = method.apply_update(signer)
        assert report.mode == "full-rebuild"
        fresh = type(method).build(graph, signer, **method._build_params)
        assert method.descriptor.encode() == fresh.descriptor.encode()

    def test_noop_apply_is_free(self, name, road300, signer):
        graph = road300.copy()
        method = get_method(name).build(graph, signer, **METHOD_PARAMS[name])
        before = method.descriptor.encode()
        report = method.apply_update(signer)
        assert report.mode == "noop"
        assert report.mutations == 0
        assert method.descriptor.encode() == before


def test_adjacency_dependent_ordering_rebuilds_on_topology_change(
    road300, signer
):
    """bfs leaf order moves when edges appear, so incremental patching
    would diverge — the pipeline must fall back to a full rebuild and
    still match a fresh build byte for byte."""
    graph = road300.copy()
    method = get_method("DIJ").build(graph, signer, ordering="bfs")
    ids = graph.node_ids()
    rng = random.Random(1)
    while True:
        a, b = rng.sample(ids, 2)
        if not graph.has_edge(a, b):
            graph.add_edge(a, b, 100.0)
            break
    report = method.apply_update(signer)
    assert report.mode == "full-rebuild"
    fresh = get_method("DIJ").build(graph, signer, **method._build_params)
    assert method.descriptor.encode() == fresh.descriptor.encode()


def test_weight_only_change_keeps_bfs_incremental(road300, signer):
    """bfs order ignores weights, so pure re-weights still patch."""
    graph = road300.copy()
    method = get_method("DIJ").build(graph, signer, ordering="bfs")
    u, v, w = next(iter(graph.edges()))
    graph.update_edge_weight(u, v, w * 3)
    report = method.apply_update(signer)
    assert report.mode == "incremental"
    fresh = get_method("DIJ").build(graph, signer, **method._build_params)
    assert method.descriptor.encode() == fresh.descriptor.encode()
