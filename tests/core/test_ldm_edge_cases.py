"""LDM edge cases, including regressions caught by the ablation study."""

import pytest

from repro.core.ldm import LdmMethod
from repro.core.method import get_method


class TestQuantizationBitsRegression:
    """Compressed tuples carry no bits field on the wire; the client must
    check bits on the representative (which holds the codes), not on the
    compressed tuple whose decoded default would be wrong for b != 12."""

    @pytest.mark.parametrize("bits", [4, 8, 16])
    def test_honest_verify_at_nondefault_bits(self, road300, signer,
                                              workload, bits):
        method = LdmMethod.build(road300, signer, c=24, bits=bits)
        for vs, vt in workload.queries[:3]:
            response = method.answer(vs, vt)
            result = get_method("LDM").verify(vs, vt, response, signer.verify)
            assert result.ok, (bits, result.reason, result.detail)


class TestExtremeParameters:
    def test_single_landmark(self, road300, signer, workload):
        method = LdmMethod.build(road300, signer, c=1)
        vs, vt = workload.queries[0]
        response = method.answer(vs, vt)
        assert get_method("LDM").verify(vs, vt, response, signer.verify).ok

    def test_one_bit_quantization(self, road300, signer, workload):
        # b=1 makes the bound nearly useless: LDM degenerates towards DIJ
        # but must stay correct.
        method = LdmMethod.build(road300, signer, c=8, bits=1)
        vs, vt = workload.queries[0]
        response = method.answer(vs, vt)
        assert get_method("LDM").verify(vs, vt, response, signer.verify).ok

    def test_huge_xi_compresses_almost_everything(self, road300, signer,
                                                  workload):
        method = LdmMethod.build(road300, signer, c=16, xi=10_000.0)
        assert method._compressed.num_compressed > 0.8 * road300.num_nodes
        vs, vt = workload.queries[0]
        response = method.answer(vs, vt)
        assert get_method("LDM").verify(vs, vt, response, signer.verify).ok

    def test_trivial_query_source_equals_target(self, road300, signer):
        method = LdmMethod.build(road300, signer, c=8)
        node = road300.node_ids()[0]
        response = method.answer(node, node)
        assert response.path_cost == 0.0
        assert get_method("LDM").verify(node, node, response, signer.verify).ok

    def test_adjacent_nodes_query(self, road300, signer):
        method = LdmMethod.build(road300, signer, c=8)
        u, v, w = next(iter(road300.edges()))
        response = method.answer(u, v)
        assert get_method("LDM").verify(u, v, response, signer.verify).ok


class TestGridGraphs:
    """Grids have massive shortest path ties; verification must not care
    which optimal path the provider picks."""

    def test_all_methods_on_grid(self, grid5, signer):
        for name, params in [("DIJ", {}), ("FULL", {}),
                             ("LDM", dict(c=4)), ("HYP", dict(num_cells=4))]:
            method = get_method(name).build(grid5, signer, **params)
            response = method.answer(0, 24)  # corner to corner, many ties
            result = get_method(name).verify(0, 24, response, signer.verify)
            assert result.ok, (name, result.reason, result.detail)
            assert response.path_cost == pytest.approx(8.0)

    def test_zero_weight_edges(self, signer):
        from repro.graph.graph import SpatialGraph

        g = SpatialGraph()
        for i in range(4):
            g.add_node(i, float(i), 0.0)
        g.add_edge(0, 1, 0.0)
        g.add_edge(1, 2, 1.0)
        g.add_edge(2, 3, 0.0)
        for name, params in [("DIJ", {}), ("LDM", dict(c=2))]:
            method = get_method(name).build(g, signer, **params)
            response = method.answer(0, 3)
            result = get_method(name).verify(0, 3, response, signer.verify)
            assert result.ok, (name, result.reason)
            assert response.path_cost == pytest.approx(1.0)
