"""Determinism guarantees: same inputs must yield identical ADS roots.

The provider and any auditor must be able to reproduce the owner's
trees bit for bit from the published graph and parameters — otherwise
root comparison would be meaningless.
"""

import pytest

from repro.core.method import get_method
from repro.core.proofs import NETWORK_TREE
from repro.graph.io import read_graph, write_graph


@pytest.mark.parametrize("name,params", [
    ("DIJ", {}),
    ("FULL", {}),
    ("LDM", dict(c=10)),
    ("HYP", dict(num_cells=16)),
])
class TestBuildDeterminism:
    def test_same_graph_same_roots(self, road300, signer, name, params):
        a = get_method(name).build(road300, signer, **params)
        b = get_method(name).build(road300, signer, **params)
        assert a.descriptor.message() == b.descriptor.message()
        for tree_a, tree_b in zip(a.descriptor.trees, b.descriptor.trees):
            assert tree_a.root == tree_b.root

    def test_roundtripped_graph_same_roots(self, road300, signer, tmp_path,
                                           name, params):
        # Serialize the graph to disk and back (what outsourcing does);
        # the rebuilt ADS must be identical.
        path = tmp_path / "network.txt"
        write_graph(road300, path)
        loaded = read_graph(path)
        a = get_method(name).build(road300, signer, **params)
        b = get_method(name).build(loaded, signer, **params)
        assert a.descriptor.tree(NETWORK_TREE).root == \
            b.descriptor.tree(NETWORK_TREE).root

    def test_responses_are_deterministic(self, road300, signer, workload,
                                         name, params):
        method = get_method(name).build(road300, signer, **params)
        vs, vt = workload.queries[0]
        assert method.answer(vs, vt).encode() == method.answer(vs, vt).encode()


class TestParameterSensitivity:
    def test_different_ordering_different_root(self, road300, signer):
        a = get_method("DIJ").build(road300, signer, ordering="hbt")
        b = get_method("DIJ").build(road300, signer, ordering="bfs")
        assert a.descriptor.tree(NETWORK_TREE).root != \
            b.descriptor.tree(NETWORK_TREE).root

    def test_different_fanout_different_root(self, road300, signer):
        a = get_method("DIJ").build(road300, signer, fanout=2)
        b = get_method("DIJ").build(road300, signer, fanout=4)
        assert a.descriptor.tree(NETWORK_TREE).root != \
            b.descriptor.tree(NETWORK_TREE).root

    def test_different_hash_different_root(self, road300, signer):
        a = get_method("DIJ").build(road300, signer, hash_name="sha1")
        b = get_method("DIJ").build(road300, signer, hash_name="sha256")
        assert a.descriptor.tree(NETWORK_TREE).root != \
            b.descriptor.tree(NETWORK_TREE).root
        assert len(b.descriptor.tree(NETWORK_TREE).root) == 32

    def test_sha256_end_to_end(self, road300, signer, workload):
        method = get_method("LDM").build(road300, signer, c=8,
                                         hash_name="sha256")
        vs, vt = workload.queries[0]
        response = method.answer(vs, vt)
        result = get_method("LDM").verify(vs, vt, response, signer.verify)
        assert result.ok, (result.reason, result.detail)
