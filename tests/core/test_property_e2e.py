"""Property-based end-to-end tests over random networks and queries.

For arbitrary synthetic road networks and arbitrary query pairs, every
method must (a) accept its own honest response and (b) report exactly
the reference shortest path distance.  This is the system-level
invariant everything else exists to uphold.
"""

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.method import get_method
from repro.crypto.signer import NullSigner
from repro.graph.synthetic import road_network

SIGNER = NullSigner()
_METHOD_CACHE: dict = {}


def _setup(seed: int):
    if seed not in _METHOD_CACHE:
        graph = road_network(90, seed=seed)
        methods = {
            "DIJ": get_method("DIJ").build(graph, SIGNER),
            "FULL": get_method("FULL").build(graph, SIGNER),
            "LDM": get_method("LDM").build(graph, SIGNER, c=6, bits=8),
            "HYP": get_method("HYP").build(graph, SIGNER, num_cells=9),
        }
        reference = nx.Graph()
        for u, v, w in graph.edges():
            reference.add_edge(u, v, weight=w)
        _METHOD_CACHE[seed] = (graph, methods, reference)
    return _METHOD_CACHE[seed]


@given(
    seed=st.integers(min_value=1, max_value=4),
    pair=st.tuples(st.integers(min_value=0, max_value=10**6),
                   st.integers(min_value=0, max_value=10**6)),
    method_name=st.sampled_from(["DIJ", "FULL", "LDM", "HYP"]),
)
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_honest_response_always_verifies_with_exact_distance(
    seed, pair, method_name
):
    graph, methods, reference = _setup(seed)
    ids = graph.node_ids()
    vs = ids[pair[0] % len(ids)]
    vt = ids[pair[1] % len(ids)]
    if vs == vt and method_name == "FULL":
        return  # FULL explicitly rejects degenerate queries
    method = methods[method_name]
    response = method.answer(vs, vt)
    result = get_method(method_name).verify(vs, vt, response, SIGNER.verify)
    assert result.ok, (method_name, vs, vt, result.reason, result.detail)
    expected = nx.dijkstra_path_length(reference, vs, vt)
    assert response.path_cost == pytest.approx(expected)


@given(
    seed=st.integers(min_value=1, max_value=4),
    pair=st.tuples(st.integers(min_value=0, max_value=10**6),
                   st.integers(min_value=0, max_value=10**6)),
    factor=st.floats(min_value=1.0001, max_value=3.0),
)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_inflated_cost_never_verifies(seed, pair, factor):
    graph, methods, _ = _setup(seed)
    ids = graph.node_ids()
    vs = ids[pair[0] % len(ids)]
    vt = ids[pair[1] % len(ids)]
    if vs == vt:
        return
    from repro.core import adversary

    method = methods["DIJ"]
    honest = method.answer(vs, vt)
    tampered = adversary.inflate_cost(honest, factor=factor)
    result = get_method("DIJ").verify(vs, vt, tampered, SIGNER.verify)
    assert not result.ok
