"""Tests for incremental updates and the provider's algorithm choice."""

import pytest

from repro.core.dij import DijMethod
from repro.core.method import get_method
from repro.errors import MethodError
from repro.merkle.tree import MerkleTree, reconstruct_root
from repro.shortestpath.dijkstra import dijkstra


class TestMerkleLeafUpdate:
    def test_update_matches_rebuild(self):
        payloads = [b"p%d" % i for i in range(23)]
        tree = MerkleTree(payloads, fanout=3)
        payloads[7] = b"updated"
        tree.update_leaf(7, b"updated")
        rebuilt = MerkleTree(payloads, fanout=3)
        assert tree.root == rebuilt.root

    @pytest.mark.parametrize("fanout", [2, 4, 16])
    @pytest.mark.parametrize("index", [0, 9, 30])
    def test_update_positions_and_fanouts(self, fanout, index):
        payloads = [b"x%d" % i for i in range(31)]
        tree = MerkleTree(payloads, fanout=fanout)
        payloads[index] = b"new-payload"
        tree.update_leaf(index, b"new-payload")
        assert tree.root == MerkleTree(payloads, fanout=fanout).root

    def test_proofs_valid_after_update(self):
        payloads = [b"y%d" % i for i in range(40)]
        tree = MerkleTree(payloads)
        payloads[11] = b"fresh"
        tree.update_leaf(11, b"fresh")
        entries = tree.prove([11, 25])
        root = reconstruct_root(40, 2, "sha1",
                                {11: b"fresh", 25: payloads[25]}, entries)
        assert root == tree.root

    def test_out_of_range_rejected(self):
        tree = MerkleTree([b"a", b"b"])
        from repro.errors import MerkleError

        with pytest.raises(MerkleError):
            tree.update_leaf(2, b"c")

    def test_single_leaf_tree(self):
        tree = MerkleTree([b"only"])
        tree.update_leaf(0, b"new")
        assert tree.root == MerkleTree([b"new"]).root


class TestMerkleBatchUpdate:
    @pytest.mark.parametrize("fanout", [2, 3, 16])
    def test_batch_matches_rebuild(self, fanout):
        payloads = [b"p%d" % i for i in range(57)]
        tree = MerkleTree(payloads, fanout=fanout)
        updates = {3: b"a", 4: b"b", 29: b"c", 56: b"d"}
        for index, payload in updates.items():
            payloads[index] = payload
        tree.update_leaves(updates)
        assert tree.root == MerkleTree(payloads, fanout=fanout).root

    def test_batch_matches_sequential_updates(self):
        payloads = [b"q%d" % i for i in range(40)]
        batched = MerkleTree(payloads, fanout=2)
        sequential = MerkleTree(payloads, fanout=2)
        updates = {i: b"new%d" % i for i in (0, 1, 17, 39)}
        batched.update_leaves(updates)
        for index, payload in updates.items():
            sequential.update_leaf(index, payload)
        assert batched.root == sequential.root
        assert batched._levels == sequential._levels

    def test_empty_batch_is_noop(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        root = tree.root
        tree.update_leaves({})
        assert tree.root == root

    def test_out_of_range_batch_rejected(self):
        from repro.errors import MerkleError

        tree = MerkleTree([b"a", b"b"])
        with pytest.raises(MerkleError):
            tree.update_leaves({2: b"c"})

    def test_proofs_valid_after_batch(self):
        payloads = [b"z%d" % i for i in range(31)]
        tree = MerkleTree(payloads, fanout=3)
        tree.update_leaves({5: b"x", 20: b"y"})
        entries = tree.prove([5, 20, 30])
        root = reconstruct_root(31, 3, "sha1",
                                {5: b"x", 20: b"y", 30: payloads[30]}, entries)
        assert root == tree.root


class TestDijIncrementalUpdate:
    def test_update_then_verify(self, road300, signer, workload):
        graph = road300.copy()
        method = DijMethod.build(graph, signer)
        vs, vt = workload.queries[0]
        before = method.answer(vs, vt)

        # Double the weight of the first edge on the current optimal path.
        u, v = before.path_nodes[0], before.path_nodes[1]
        method.update_edge_weight(u, v, graph.weight(u, v) * 2, signer)

        after = method.answer(vs, vt)
        result = get_method("DIJ").verify(vs, vt, after, signer.verify)
        assert result.ok, (result.reason, result.detail)
        expected = dijkstra(graph, vs, target=vt).dist[vt]
        assert after.path_cost == pytest.approx(expected)

    def test_old_response_fails_under_new_descriptor_key_rotation(
        self, road300, signer, workload
    ):
        graph = road300.copy()
        method = DijMethod.build(graph, signer)
        vs, vt = workload.queries[1]
        before = method.answer(vs, vt)
        u, v = before.path_nodes[0], before.path_nodes[1]
        method.update_edge_weight(u, v, graph.weight(u, v) * 3, signer)
        # The old response still carries the old (validly signed)
        # descriptor, so it verifies as a statement about the old graph;
        # a *mixed* response — old tuples with the new descriptor — must
        # fail because the root changed.
        import copy

        mixed = copy.deepcopy(before)
        mixed.descriptor = method.descriptor
        result = get_method("DIJ").verify(vs, vt, mixed, signer.verify)
        assert not result.ok
        assert result.reason == "root-mismatch"

    def test_hint_methods_update_incrementally(self, road300, signer, workload):
        """LDM (a hint-bearing method) now absorbs weight updates too."""
        from repro.core.ldm import LdmMethod

        graph = road300.copy()
        method = LdmMethod.build(graph, signer, c=8)
        vs, vt = workload.queries[0]
        u, v, w = next(iter(graph.edges()))
        report = method.update_edge_weight(u, v, w * 2, signer)
        assert report.mode == "incremental"
        assert report.version == graph.version
        response = method.answer(vs, vt)
        result = get_method("LDM").verify(vs, vt, response, signer.verify)
        assert result.ok, (result.reason, result.detail)

    def test_update_requires_existing_edge(self, road300, signer):
        graph = road300.copy()
        method = DijMethod.build(graph, signer)
        missing = graph.node_ids()[:2]
        if graph.has_edge(*missing):  # pick a definitely-absent pair
            missing = (graph.node_ids()[0], graph.node_ids()[0])
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            method.update_edge_weight(missing[0], missing[1], 2.0, signer)


class TestProviderAlgorithmChoice:
    @pytest.mark.parametrize("name,params", [
        ("DIJ", {}),
        ("FULL", {}),
        ("LDM", dict(c=8)),
        ("HYP", dict(num_cells=25)),
    ])
    def test_bidirectional_provider_produces_valid_proofs(
        self, road300, signer, workload, name, params
    ):
        method = get_method(name).build(road300, signer,
                                        algo_sp="bidirectional", **params)
        vs, vt = workload.queries[0]
        response = method.answer(vs, vt)
        result = get_method(name).verify(vs, vt, response, signer.verify)
        assert result.ok, (name, result.reason, result.detail)
        expected = dijkstra(road300, vs, target=vt).dist[vt]
        assert response.path_cost == pytest.approx(expected)

    def test_unknown_algorithm_rejected(self, road300, signer, workload):
        method = DijMethod.build(road300, signer, algo_sp="teleport")
        vs, vt = workload.queries[0]
        with pytest.raises(MethodError):
            method.answer(vs, vt)
