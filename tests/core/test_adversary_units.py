"""Unit-level tests for the adversary toolkit itself."""

import pytest

from repro.core import adversary
from repro.core.proofs import NETWORK_TREE
from repro.errors import MethodError
from repro.graph.tuples import BaseTuple


class TestTamperWeight:
    def test_changes_exactly_one_weight(self, dij, workload):
        vs, vt = workload.queries[0]
        honest = dij.answer(vs, vt)
        tampered = adversary.tamper_weight(honest, delta=5.0)
        before = [BaseTuple.decode(p)
                  for p in honest.sections[NETWORK_TREE].payloads]
        after = [BaseTuple.decode(p)
                 for p in tampered.sections[NETWORK_TREE].payloads]
        changed = [
            (b, a) for b, a in zip(before, after) if b != a
        ]
        assert len(changed) == 1
        b, a = changed[0]
        assert b.node_id == a.node_id
        diffs = [
            (wb, wa) for (nb, wb), (na, wa) in zip(b.adjacency, a.adjacency)
            if wb != wa
        ]
        assert len(diffs) == 1
        assert diffs[0][1] == pytest.approx(diffs[0][0] + 5.0)

    def test_original_untouched(self, dij, workload):
        vs, vt = workload.queries[0]
        honest = dij.answer(vs, vt)
        original_payloads = list(honest.sections[NETWORK_TREE].payloads)
        adversary.tamper_weight(honest)
        assert honest.sections[NETWORK_TREE].payloads == original_payloads


class TestDropTuple:
    def test_drop_reduces_payloads_and_adds_entry(self, dij, workload):
        vs, vt = workload.queries[0]
        honest = dij.answer(vs, vt)
        tampered = adversary.drop_tuple(honest)
        h_section = honest.sections[NETWORK_TREE]
        t_section = tampered.sections[NETWORK_TREE]
        assert len(t_section.payloads) == len(h_section.payloads) - 1
        assert len(t_section.entries) == len(h_section.entries) + 1
        extra = t_section.entries[-1]
        assert extra.level == 0

    def test_keep_set_respected(self, dij, workload):
        vs, vt = workload.queries[0]
        honest = dij.answer(vs, vt)
        all_ids = {
            BaseTuple.decode(p).node_id
            for p in honest.sections[NETWORK_TREE].payloads
        }
        with pytest.raises(MethodError):
            adversary.drop_tuple(honest, keep=all_ids)


class TestSuboptimalPath:
    def test_detour_is_genuine_but_longer(self, dij, road300, workload):
        vs, vt = workload.queries[0]
        honest = dij.answer(vs, vt)
        response = adversary.suboptimal_path(dij, road300, vs, vt)
        assert response.path_cost > honest.path_cost
        # Detour must be a real path in the graph.
        for u, v in zip(response.path_nodes, response.path_nodes[1:]):
            assert road300.has_edge(u, v)

    def test_degenerate_query_rejected(self, dij, road300):
        node = road300.node_ids()[0]
        with pytest.raises(MethodError):
            adversary.suboptimal_path(dij, road300, node, node)


class TestOtherMutations:
    def test_inflate_cost(self, dij, workload):
        vs, vt = workload.queries[0]
        honest = dij.answer(vs, vt)
        tampered = adversary.inflate_cost(honest, factor=2.0)
        assert tampered.path_cost == pytest.approx(2 * honest.path_cost)
        assert tampered.path_nodes == honest.path_nodes

    def test_strip_signature_keeps_length(self, dij, workload):
        vs, vt = workload.queries[0]
        honest = dij.answer(vs, vt)
        tampered = adversary.strip_signature(honest)
        assert len(tampered.descriptor.signature) == len(honest.descriptor.signature)
        assert tampered.descriptor.signature != honest.descriptor.signature

    def test_forge_distance(self, full, workload):
        vs, vt = workload.queries[0]
        honest = full.answer(vs, vt)
        tampered = adversary.forge_distance(honest, delta=-3.0)
        from repro.core.proofs import DISTANCE_TREE
        from repro.graph.tuples import DistanceTuple

        before = DistanceTuple.decode(honest.sections[DISTANCE_TREE].payloads[0])
        after = DistanceTuple.decode(tampered.sections[DISTANCE_TREE].payloads[0])
        assert after.distance == pytest.approx(before.distance - 3.0)
        assert (after.a, after.b) == (before.a, before.b)
