"""Method-specific unit behaviors: Lemma 1 balls, Lemma 2 cones,
FULL's triangle tree, HYP's sections."""

import pytest

from repro.core.dij import DijMethod
from repro.core.full import FullMethod
from repro.core.hyp import HypMethod
from repro.core.ldm import LdmMethod, LdmParams
from repro.core.method import get_method
from repro.core.proofs import DIRECTORY_TREE, DISTANCE_TREE, NETWORK_TREE
from repro.errors import EncodingError, MethodError
from repro.graph.tuples import BaseTuple, CellDirectoryTuple, DistanceTuple, HypTuple, LdmTuple
from repro.shortestpath.dijkstra import dijkstra


class TestDij:
    def test_ball_matches_lemma1(self, dij, road300, workload):
        vs, vt = workload.queries[0]
        response = dij.answer(vs, vt)
        disclosed = {
            BaseTuple.decode(p).node_id
            for p in response.sections[NETWORK_TREE].payloads
        }
        distances = dijkstra(road300, vs).dist
        expected = {v for v, d in distances.items() if d <= response.path_cost}
        assert disclosed == expected

    def test_extra_params_rejected(self, road300, signer):
        with pytest.raises(EncodingError):
            DijMethod.build(road300, signer, bogus=1)

    def test_no_hints_cost(self, dij):
        assert dij.construction_seconds == 0.0


class TestFull:
    def test_distance_section_is_single_tuple(self, full, workload):
        vs, vt = workload.queries[0]
        section = full.answer(vs, vt).sections[DISTANCE_TREE]
        assert len(section.payloads) == 1
        tup = DistanceTuple.decode(section.payloads[0])
        assert {tup.a, tup.b} == {vs, vt}
        assert tup.a < tup.b

    def test_materialized_matches_dijkstra(self, full, road300, workload):
        for vs, vt in workload.queries[:4]:
            expected = dijkstra(road300, vs, target=vt).dist[vt]
            assert full.distance_of(vs, vt) == pytest.approx(expected)

    def test_triangle_leaf_count(self, full, road300):
        n = road300.num_nodes
        assert full.descriptor.tree(DISTANCE_TREE).num_leaves == n * (n - 1) // 2

    def test_network_section_covers_only_path(self, full, workload):
        vs, vt = workload.queries[0]
        response = full.answer(vs, vt)
        disclosed = {
            BaseTuple.decode(p).node_id
            for p in response.sections[NETWORK_TREE].payloads
        }
        assert disclosed == set(response.path_nodes)

    def test_degenerate_query_rejected(self, full, road300):
        node = road300.node_ids()[0]
        with pytest.raises(MethodError):
            full.answer(node, node)


class TestLdm:
    def test_params_roundtrip(self):
        params = LdmParams(landmarks=(1, 5, 9), bits=12, d_max=14.0, lam=2.0, xi=50.0)
        assert LdmParams.decode(params.encode()) == params

    def test_cone_is_superset_of_lemma2(self, ldm, road300, workload):
        vs, vt = workload.queries[0]
        response = ldm.answer(vs, vt)
        disclosed = {
            LdmTuple.decode(p).node_id
            for p in response.sections[NETWORK_TREE].payloads
        }
        distance = response.path_cost
        distances = dijkstra(road300, vs).dist
        lb = ldm._compressed.lower_bound
        qualifying = {
            v for v, d in distances.items() if d + lb(v, vt) <= distance
        }
        required = set(qualifying)
        for v in qualifying:
            required.update(road300.neighbors(v).keys())
        assert required <= disclosed

    def test_cone_smaller_than_ball(self, ldm, dij, workload):
        # The landmark bound prunes the search space (that is LDM's point).
        sizes_ldm = []
        sizes_dij = []
        for vs, vt in workload.queries[:4]:
            sizes_ldm.append(len(ldm.answer(vs, vt).sections[NETWORK_TREE].payloads))
            sizes_dij.append(len(dij.answer(vs, vt).sections[NETWORK_TREE].payloads))
        assert sum(sizes_ldm) < sum(sizes_dij)

    def test_compressed_nodes_ship_representative(self, ldm, workload):
        for vs, vt in workload.queries[:4]:
            response = ldm.answer(vs, vt)
            tuples = {
                t.node_id: t
                for t in (LdmTuple.decode(p)
                          for p in response.sections[NETWORK_TREE].payloads)
            }
            for tup in tuples.values():
                if tup.is_compressed:
                    assert tup.ref_id in tuples
                    assert not tuples[tup.ref_id].is_compressed

    def test_descriptor_params_match_build(self, ldm):
        params = LdmParams.decode(ldm.descriptor.params)
        assert len(params.landmarks) == 24
        assert params.bits == 12
        assert params.lam == pytest.approx(params.d_max / (2**12 - 1))

    def test_exact_compressor_also_works(self, road300, signer, workload):
        method = LdmMethod.build(road300, signer, c=8, compressor="exact")
        vs, vt = workload.queries[0]
        response = method.answer(vs, vt)
        assert get_method("LDM").verify(vs, vt, response, signer.verify).ok

    def test_unknown_compressor_rejected(self, road300, signer):
        with pytest.raises(EncodingError):
            LdmMethod.build(road300, signer, c=8, compressor="zip")


class TestHyp:
    def test_sections_present(self, hyp, workload):
        vs, vt = workload.queries[0]
        response = hyp.answer(vs, vt)
        assert NETWORK_TREE in response.sections
        assert DIRECTORY_TREE in response.sections
        assert DISTANCE_TREE in response.sections  # distinct cells at range 1500

    def test_directory_covers_query_cells(self, hyp, workload):
        vs, vt = workload.queries[0]
        response = hyp.answer(vs, vt)
        cells = {
            CellDirectoryTuple.decode(p).cell_id
            for p in response.sections[DIRECTORY_TREE].payloads
        }
        cell_s = hyp._partition.cell(vs)
        cell_t = hyp._partition.cell(vt)
        assert cells == {cell_s, cell_t}

    def test_network_tuples_cover_cells_and_path(self, hyp, workload):
        vs, vt = workload.queries[0]
        response = hyp.answer(vs, vt)
        disclosed = {
            HypTuple.decode(p).node_id
            for p in response.sections[NETWORK_TREE].payloads
        }
        partition = hyp._partition
        expected = set(partition.members_of(partition.cell(vs)))
        expected |= set(partition.members_of(partition.cell(vt)))
        expected |= set(response.path_nodes)
        assert disclosed == expected

    def test_hyperedges_cover_cross_pairs(self, hyp, workload):
        vs, vt = workload.queries[0]
        response = hyp.answer(vs, vt)
        partition = hyp._partition
        borders_s = partition.borders_of(partition.cell(vs))
        borders_t = partition.borders_of(partition.cell(vt))
        disclosed = {
            (min(t.a, t.b), max(t.a, t.b))
            for t in (DistanceTuple.decode(p)
                      for p in response.sections[DISTANCE_TREE].payloads)
        }
        expected = {
            (min(a, b), max(a, b)) for a in borders_s for b in borders_t
        }
        assert disclosed == expected

    def test_same_source_target_works(self, hyp, road300, signer):
        node = road300.node_ids()[5]
        response = hyp.answer(node, node)
        assert response.path_cost == 0.0
        assert get_method("HYP").verify(node, node, response, signer.verify).ok

    def test_same_cell_query_verifies(self, hyp, road300, signer):
        partition = hyp._partition
        cell = max(partition.occupied_cells,
                   key=lambda c: len(partition.members_of(c)))
        members = partition.members_of(cell)
        vs, vt = members[0], members[-1]
        response = hyp.answer(vs, vt)
        assert get_method("HYP").verify(vs, vt, response, signer.verify).ok

    def test_bad_cell_count_rejected(self, road300, signer):
        with pytest.raises(Exception):
            HypMethod.build(road300, signer, num_cells=27)
