"""Tests for the three-party framework and tolerance helpers."""

import pytest

from repro.core.framework import (
    Client,
    DataOwner,
    ServiceProvider,
    VerificationResult,
    definitely_greater,
    distances_close,
)
from repro.core.method import METHODS, get_method, register_method
from repro.errors import MethodError


class TestTolerances:
    def test_close_under_rounding_noise(self):
        assert distances_close(1000.0, 1000.0 + 1e-10)
        assert distances_close(0.0, 0.0)

    def test_not_close_for_real_differences(self):
        assert not distances_close(1000.0, 1000.1)

    def test_definitely_greater(self):
        assert definitely_greater(10.0, 9.0)
        assert not definitely_greater(10.0, 10.0 + 1e-12)
        assert not definitely_greater(9.0, 10.0)


class TestVerificationResult:
    def test_bool_protocol(self):
        assert VerificationResult.success()
        assert not VerificationResult.failure("nope")

    def test_success_records_checks(self):
        result = VerificationResult.success(distance=8.0)
        assert result.checks["distance"] == 8.0
        assert result.reason == "ok"

    def test_failure_fields(self):
        result = VerificationResult.failure("root-mismatch", "tree x")
        assert result.reason == "root-mismatch"
        assert result.detail == "tree x"


class TestRegistry:
    def test_all_paper_methods_registered(self):
        assert set(METHODS) == {"DIJ", "FULL", "LDM", "HYP"}

    def test_unknown_method(self):
        with pytest.raises(MethodError):
            get_method("SHORTCUT")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(MethodError):
            register_method(METHODS["DIJ"])


class TestRoles:
    def test_full_workflow(self, road300, signer, workload):
        owner = DataOwner(road300, signer=signer)
        method = owner.publish("DIJ")
        provider = ServiceProvider(method)
        client = Client(signer.verify)
        vs, vt = workload.queries[0]
        response = provider.answer(vs, vt)
        assert client.verify(vs, vt, response).ok

    def test_client_dispatches_on_response_method(self, road300, signer, workload):
        owner = DataOwner(road300, signer=signer)
        provider = ServiceProvider(owner.publish("LDM", c=8))
        client = Client(signer.verify)
        vs, vt = workload.queries[0]
        response = provider.answer(vs, vt)
        assert response.method == "LDM"
        assert client.verify(vs, vt, response).ok

    def test_client_rejects_unknown_method(self, road300, signer, workload):
        owner = DataOwner(road300, signer=signer)
        provider = ServiceProvider(owner.publish("DIJ"))
        client = Client(signer.verify)
        vs, vt = workload.queries[0]
        response = provider.answer(vs, vt)
        response.method = "WEIRD"
        result = client.verify(vs, vt, response)
        assert not result.ok
        assert result.reason == "unknown-method"

    def test_owner_default_signer_is_rsa(self, grid5):
        owner = DataOwner(grid5)
        from repro.crypto.signer import RsaSigner

        assert isinstance(owner.signer, RsaSigner)

    def test_descriptor_access_before_build(self):
        from repro.core.dij import DijMethod

        method = DijMethod.__new__(DijMethod)
        method._descriptor = None
        with pytest.raises(MethodError):
            _ = method.descriptor
