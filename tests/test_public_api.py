"""Public API surface tests: everything documented must import and work."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_method_registry_complete(self):
        assert set(repro.METHODS) == {"DIJ", "FULL", "LDM", "HYP"}

    @pytest.mark.parametrize("module", [
        "repro.api",
        "repro.api.codes",
        "repro.api.envelope",
        "repro.api.dispatcher",
        "repro.api.transport",
        "repro.api.client",
        "repro.encoding",
        "repro.errors",
        "repro.cli",
        "repro.crypto",
        "repro.crypto.hashing",
        "repro.crypto.primes",
        "repro.crypto.rsa",
        "repro.crypto.signer",
        "repro.graph",
        "repro.graph.graph",
        "repro.graph.tuples",
        "repro.graph.io",
        "repro.graph.synthetic",
        "repro.graph.components",
        "repro.order",
        "repro.merkle",
        "repro.shortestpath",
        "repro.landmarks",
        "repro.hiti",
        "repro.core",
        "repro.core.estimate",
        "repro.workload",
        "repro.bench",
        "repro.bench.serving",
        "repro.service",
        "repro.service.cache",
        "repro.service.metrics",
        "repro.service.server",
        "repro.service.http",
        "repro.service.workers",
        "repro.service.router",
        "repro.shard",
        "repro.shard.partition",
        "repro.shard.manifest",
        "repro.shard.stitch",
        "repro.store",
        "repro.store.pack",
        "repro.store.artifact",
        "repro.core.state",
    ])
    def test_submodules_import(self, module):
        assert importlib.import_module(module) is not None

    def test_subpackage_all_exports_resolve(self):
        for module_name in ("repro.graph", "repro.order", "repro.merkle",
                            "repro.shortestpath", "repro.landmarks",
                            "repro.hiti", "repro.core", "repro.workload",
                            "repro.crypto", "repro.bench", "repro.service",
                            "repro.api", "repro.shard"):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.{name}"


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_no_path_error_carries_endpoints(self):
        from repro.errors import NoPathError

        err = NoPathError(3, 9)
        assert err.source == 3 and err.target == 9
        assert "3" in str(err) and "9" in str(err)


class TestDocstrings:
    """Every public module and class documents itself."""

    def test_module_docstrings(self):
        for module_name in ("repro", "repro.core", "repro.merkle",
                            "repro.landmarks", "repro.hiti",
                            "repro.shortestpath", "repro.graph"):
            module = importlib.import_module(module_name)
            assert module.__doc__ and len(module.__doc__) > 40, module_name

    def test_public_class_docstrings(self):
        from repro import (
            Client,
            DataOwner,
            DijMethod,
            FullMethod,
            HypMethod,
            LdmMethod,
            Path,
            QueryResponse,
            ServiceProvider,
            SpatialGraph,
        )

        for cls in (Client, DataOwner, ServiceProvider, SpatialGraph, Path,
                    QueryResponse, DijMethod, FullMethod, LdmMethod, HypMethod):
            assert cls.__doc__, cls.__name__
