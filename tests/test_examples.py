"""Smoke tests for the example scripts.

Each example guards its work behind ``if __name__ == "__main__"``, so
importing it validates syntax and imports cheaply; the cheapest example
is also executed end to end.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = [
    "quickstart",
    "malicious_server",
    "logistics_routing",
    "method_tradeoffs",
    "dynamic_network",
    "proof_server",
    "live_updates",
    "remote_client",
    "cold_start",
]


class TestExamples:
    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_imports_cleanly(self, name):
        module = load_example(name)
        assert callable(module.main)
        assert module.__doc__

    def test_method_tradeoffs_runs_small(self, capsys, monkeypatch):
        module = load_example("method_tradeoffs")
        monkeypatch.setattr(sys, "argv",
                            ["method_tradeoffs.py", "DE", "0.0078125", "800"])
        module.main()
        out = capsys.readouterr().out
        for name in ("DIJ", "FULL", "LDM", "HYP"):
            assert name in out
        assert "Trade-offs" in out
