"""Shared fixtures: graphs of several shapes and session-scoped signers."""

from __future__ import annotations

import pytest

from repro.crypto.signer import NullSigner, RsaSigner
from repro.graph.graph import SpatialGraph
from repro.graph.synthetic import grid_network, road_network
from repro.workload.datasets import normalize_weights


@pytest.fixture(scope="session")
def rsa_signer() -> RsaSigner:
    """A deterministic RSA signer (768-bit keeps keygen fast in tests)."""
    return RsaSigner(bits=768, seed=20100301)


@pytest.fixture()
def null_signer() -> NullSigner:
    """Keyed-hash stand-in signer for tests that exercise other layers."""
    return NullSigner()


@pytest.fixture(scope="session")
def grid5() -> SpatialGraph:
    """5x5 unit-weight lattice: distances are Manhattan distances."""
    return grid_network(5, 5)


@pytest.fixture(scope="session")
def diamond() -> SpatialGraph:
    """A 6-node graph with a unique shortest path and a longer detour.

    Layout::

        0 --1-- 1 --1-- 2 --1-- 3     (top route, cost 3)
        0 --2-- 4 --2-- 5 --2-- 3     (bottom route, cost 6)
    """
    graph = SpatialGraph()
    coords = {0: (0, 1), 1: (1, 2), 2: (2, 2), 3: (3, 1), 4: (1, 0), 5: (2, 0)}
    for node_id, (x, y) in coords.items():
        graph.add_node(node_id, float(x), float(y))
    graph.add_edge(0, 1, 1.0)
    graph.add_edge(1, 2, 1.0)
    graph.add_edge(2, 3, 1.0)
    graph.add_edge(0, 4, 2.0)
    graph.add_edge(4, 5, 2.0)
    graph.add_edge(5, 3, 2.0)
    return graph


@pytest.fixture(scope="session")
def road300() -> SpatialGraph:
    """A small synthetic road network normalized to diameter ~4500."""
    return normalize_weights(road_network(300, seed=42), 4500.0)


@pytest.fixture(scope="session")
def road700() -> SpatialGraph:
    """A mid-size synthetic road network for integration tests."""
    return normalize_weights(road_network(700, seed=7), 4500.0)
