"""Tests for the bench profiler and its regression gate."""

import json

import pytest

from repro.bench.profile import (
    BenchRecord,
    compare_records,
    load_record,
    profile_method,
    write_record,
)
from repro.cli import main
from repro.core.framework import DataOwner
from repro.crypto.signer import NullSigner
from repro.errors import ReproError, ServiceError
from repro.graph.synthetic import road_network
from repro.workload.queries import generate_workload


@pytest.fixture(scope="module")
def method():
    owner = DataOwner(road_network(150, seed=8), signer=NullSigner())
    return owner, owner.publish("DIJ")


class TestProfileMethod:
    def test_record_fields(self, method):
        owner, dij = method
        queries = list(generate_workload(owner.graph, 1200.0, count=6,
                                         seed=1, tolerance=1.0))
        record = profile_method(dij, queries, owner.signer.verify, label="t")
        assert record.method == "DIJ"
        assert record.queries == 6
        assert record.nodes == owner.graph.num_nodes
        assert record.qps > 0
        assert 0 < record.p50_ms <= record.p95_ms * (1 + 1e-9)
        assert record.proof_bytes > 0
        assert record.verified
        assert record.label == "t"

    def test_empty_workload_rejected(self, method):
        _, dij = method
        with pytest.raises(ServiceError):
            profile_method(dij, [])

    def test_write_and_load_roundtrip(self, method, tmp_path):
        owner, dij = method
        queries = list(generate_workload(owner.graph, 1200.0, count=3,
                                         seed=2, tolerance=1.0))
        record = profile_method(dij, queries)
        path = tmp_path / "BENCH_DIJ.json"
        write_record(record, str(path))
        data = json.loads(path.read_text())
        assert isinstance(data, list) and len(data) == 1
        assert data[0]["experiment"] == "bench"
        assert load_record(str(path)) == record.as_dict()

    def test_load_rejects_empty_list(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("[]")
        with pytest.raises(ReproError):
            load_record(str(path))


class TestCompareRecords:
    BASE = dict(qps=1000.0, p50_ms=1.0, p95_ms=2.0,
                construction_seconds=0.5, proof_bytes=4096.0, verified=True)

    def test_identical_passes(self):
        assert compare_records(dict(self.BASE), dict(self.BASE)) == []

    def test_mild_drift_within_limit_passes(self):
        current = dict(self.BASE, qps=600.0, p50_ms=1.8)
        assert compare_records(current, self.BASE, max_regression=2.0) == []

    def test_qps_collapse_fails(self):
        current = dict(self.BASE, qps=400.0)
        problems = compare_records(current, self.BASE, max_regression=2.0)
        assert len(problems) == 1 and "qps" in problems[0]

    def test_latency_and_construction_blowups_fail(self):
        current = dict(self.BASE, p95_ms=5.0, construction_seconds=2.0)
        problems = compare_records(current, self.BASE, max_regression=2.0)
        assert len(problems) == 2

    def test_improvements_never_fail(self):
        current = dict(self.BASE, qps=10_000.0, p50_ms=0.01,
                       construction_seconds=0.001, proof_bytes=100.0)
        assert compare_records(current, self.BASE) == []

    def test_unverified_record_fails(self):
        current = dict(self.BASE, verified=False)
        problems = compare_records(current, self.BASE)
        assert any("verification" in p for p in problems)

    def test_missing_metrics_skipped(self):
        assert compare_records({"qps": 5.0}, {"p50_ms": 1.0}) == []

    def test_bad_limit_rejected(self):
        with pytest.raises(ReproError):
            compare_records(dict(self.BASE), dict(self.BASE), max_regression=0)


class TestBenchCli:
    def _graph(self, tmp_path):
        path = tmp_path / "net.txt"
        assert main(["generate", "--nodes", "150", "--seed", "5",
                     "--out", str(path)]) == 0
        return path

    def test_bench_writes_record(self, tmp_path, capsys):
        graph = self._graph(tmp_path)
        out = tmp_path / "BENCH.json"
        code = main(["bench", str(graph), "--method", "DIJ", "--range", "1000",
                     "--count", "4", "--insecure", "--out", str(out)])
        stdout = capsys.readouterr().out
        assert code == 0, stdout
        assert "QPS" in stdout and "verified" in stdout
        record = json.loads(out.read_text())[0]
        assert record["method"] == "DIJ" and record["queries"] == 4

    def test_bench_gates_on_baseline(self, tmp_path, capsys):
        graph = self._graph(tmp_path)
        baseline = tmp_path / "baseline.json"
        code = main(["bench", str(graph), "--method", "DIJ", "--range", "1000",
                     "--count", "4", "--insecure", "--out", str(baseline)])
        assert code == 0
        capsys.readouterr()
        code = main(["bench", str(graph), "--method", "DIJ", "--range", "1000",
                     "--count", "4", "--insecure",
                     "--baseline", str(baseline), "--max-regression", "50"])
        out = capsys.readouterr()
        assert code == 0, out.err
        assert "within 50x of baseline" in out.out

    def test_bench_fails_on_impossible_baseline(self, tmp_path, capsys):
        graph = self._graph(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps([{
            "experiment": "bench", "method": "DIJ",
            "qps": 1e12, "p50_ms": 1e-9, "p95_ms": 1e-9,
            "construction_seconds": 0.0, "proof_bytes": 1.0,
            "verified": True,
        }]))
        code = main(["bench", str(graph), "--method", "DIJ", "--range", "1000",
                     "--count", "4", "--insecure", "--baseline", str(baseline)])
        err = capsys.readouterr().err
        assert code == 3
        assert "regression" in err
