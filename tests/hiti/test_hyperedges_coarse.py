"""Tests for hyper-edge materialization and the Theorem 2 coarse graph."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.synthetic import road_network
from repro.graph.tuples import HypTuple
from repro.hiti.coarse import build_coarse_graph
from repro.hiti.hyperedges import (
    HyperEdgeSet,
    compute_hyperedges,
    triangle_index,
    triangle_size,
)
from repro.hiti.partition import GridPartition
from repro.shortestpath.dijkstra import dijkstra
from repro.workload.queries import generate_workload


@pytest.fixture(scope="module")
def road():
    return road_network(260, seed=23)


@pytest.fixture(scope="module")
def partition(road):
    return GridPartition(road, 16)


@pytest.fixture(scope="module")
def hyper(road, partition):
    return compute_hyperedges(road, partition.all_borders())


class TestTriangleIndexing:
    def test_bijective(self):
        n = 9
        seen = {triangle_index(i, j, n) for i in range(n) for j in range(i + 1, n)}
        assert seen == set(range(triangle_size(n)))

    def test_order_is_row_major(self):
        assert triangle_index(0, 1, 5) == 0
        assert triangle_index(0, 4, 5) == 3
        assert triangle_index(1, 2, 5) == 4
        assert triangle_index(3, 4, 5) == 9

    def test_invalid_pairs_rejected(self):
        with pytest.raises(GraphError):
            triangle_index(2, 2, 5)
        with pytest.raises(GraphError):
            triangle_index(3, 1, 5)
        with pytest.raises(GraphError):
            triangle_index(0, 5, 5)


class TestHyperEdges:
    def test_weights_are_exact_distances(self, road, hyper):
        borders = hyper.borders
        for a in borders[::10]:
            dist = dijkstra(road, a).dist
            for b in borders[::7]:
                assert hyper.weight(a, b) == pytest.approx(dist[b])

    def test_symmetry(self, hyper):
        a, b = hyper.borders[0], hyper.borders[-1]
        assert hyper.weight(a, b) == hyper.weight(b, a)

    def test_pair_index_consistent_with_iteration(self, hyper):
        for leaf, (a, b, w) in enumerate(hyper.iter_pairs()):
            assert hyper.pair_index(a, b) == leaf
            assert hyper.pair_index(b, a) == leaf
            if leaf > 200:
                break

    def test_num_pairs(self, hyper):
        assert hyper.num_pairs == triangle_size(hyper.num_borders)

    def test_non_border_rejected(self, road, hyper):
        inner = next(n for n in road.node_ids() if n not in hyper.position_of)
        with pytest.raises(GraphError):
            hyper.weight(inner, hyper.borders[0])

    def test_empty_borders_rejected(self, road):
        with pytest.raises(GraphError):
            compute_hyperedges(road, [])

    def test_shape_validation(self):
        with pytest.raises(GraphError):
            HyperEdgeSet([1, 2], np.zeros((3, 3)))


class TestTheorem2CoarseGraph:
    """The coarse graph distance equals the true distance (Theorem 2)."""

    def make_coarse(self, road, partition, hyper, vs, vt):
        cell_s, cell_t = partition.cell(vs), partition.cell(vt)
        members = set(partition.members_of(cell_s)) | set(partition.members_of(cell_t))
        tuples = {}
        for node in members:
            n = road.node(node)
            adjacency = tuple(sorted(
                (int(v), float(w)) for v, w in road.neighbors(node).items()
            ))
            tuples[node] = HypTuple(n.id, n.x, n.y, adjacency,
                                    cell_id=partition.cell(node),
                                    is_border=partition.is_border(node))
        borders_s = partition.borders_of(cell_s)
        borders_t = partition.borders_of(cell_t)
        if cell_s == cell_t:
            pairs = [(a, b) for i, a in enumerate(borders_s)
                     for b in borders_s[i + 1:]]
        else:
            pairs = [(a, b) for a in borders_s for b in borders_t]
        edges = [(a, b, hyper.weight(a, b)) for a, b in pairs if a != b]
        return build_coarse_graph(tuples, edges)

    def test_coarse_distance_equals_true_distance(self, road, partition, hyper):
        workload = generate_workload(road, 3000.0, count=12, seed=9)
        for vs, vt in workload:
            coarse = self.make_coarse(road, partition, hyper, vs, vt)
            expected = dijkstra(road, vs, target=vt).dist[vt]
            got = dijkstra(coarse, vs, target=vt).dist[vt]
            assert got == pytest.approx(expected)

    def test_same_cell_query(self, road, partition, hyper):
        # Pick two nodes of one cell; the coarse graph must still be exact
        # even if the best route leaves the cell and comes back.
        cell = max(partition.occupied_cells,
                   key=lambda c: len(partition.members_of(c)))
        members = partition.members_of(cell)
        vs, vt = members[0], members[-1]
        coarse = self.make_coarse(road, partition, hyper, vs, vt)
        expected = dijkstra(road, vs, target=vt).dist[vt]
        assert dijkstra(coarse, vs, target=vt).dist[vt] == pytest.approx(expected)

    def test_coarse_graph_never_underestimates(self, road, partition, hyper):
        # Any coarse graph built from real edges + exact hyper-edge weights
        # cannot produce a shorter-than-true distance.
        workload = generate_workload(road, 2000.0, count=6, seed=10)
        for vs, vt in workload:
            coarse = self.make_coarse(road, partition, hyper, vs, vt)
            true = dijkstra(road, vs, target=vt).dist[vt]
            got = dijkstra(coarse, vs, target=vt).dist.get(vt)
            assert got is not None and got >= true - 1e-9


class TestCoarseBuilder:
    def test_parallel_edge_takes_minimum(self):
        tuples = {
            1: HypTuple(1, 0.0, 0.0, ((2, 5.0),), cell_id=0, is_border=True),
            2: HypTuple(2, 1.0, 0.0, ((1, 5.0),), cell_id=1, is_border=True),
        }
        coarse = build_coarse_graph(tuples, [(1, 2, 3.0)])
        assert coarse.weight(1, 2) == 3.0
        coarse2 = build_coarse_graph(tuples, [(1, 2, 9.0)])
        assert coarse2.weight(1, 2) == 5.0

    def test_edges_to_outside_skipped(self):
        tuples = {
            1: HypTuple(1, 0.0, 0.0, ((99, 1.0),), cell_id=0, is_border=True),
        }
        coarse = build_coarse_graph(tuples, [])
        assert coarse.num_nodes == 1 and coarse.num_edges == 0

    def test_self_hyper_edge_ignored(self):
        tuples = {1: HypTuple(1, 0.0, 0.0, (), cell_id=0, is_border=True)}
        coarse = build_coarse_graph(tuples, [(1, 1, 0.0)])
        assert coarse.num_edges == 0
