"""Tests for the HiTi grid partition."""

import pytest

from repro.errors import GraphError
from repro.graph.synthetic import grid_network, road_network
from repro.hiti.partition import GridPartition, GridSpec


@pytest.fixture(scope="module")
def road():
    return road_network(300, seed=17)


class TestGridSpec:
    def test_cell_of_corners(self):
        spec = GridSpec(min_x=0, min_y=0, cell_w=10, cell_h=10, nx=4, ny=4)
        assert spec.cell_of(0, 0) == 0
        assert spec.cell_of(39.9, 0) == 3
        assert spec.cell_of(0, 39.9) == 12
        assert spec.cell_of(39.9, 39.9) == 15

    def test_clamping(self):
        spec = GridSpec(min_x=0, min_y=0, cell_w=10, cell_h=10, nx=2, ny=2)
        assert spec.cell_of(-5, -5) == 0
        assert spec.cell_of(100, 100) == 3

    def test_encode_roundtrip(self):
        spec = GridSpec(1.0, 2.0, 3.5, 4.5, 7, 7)
        assert GridSpec.decode(spec.encode()) == spec

    def test_num_cells(self):
        assert GridSpec(0, 0, 1, 1, 5, 5).num_cells == 25


class TestGridPartition:
    def test_perfect_square_required(self, road):
        with pytest.raises(GraphError):
            GridPartition(road, 26)

    def test_partition_is_total(self, road):
        partition = GridPartition(road, 25)
        covered = [v for cell in partition.occupied_cells
                   for v in partition.members_of(cell)]
        assert sorted(covered) == road.node_ids()

    def test_members_sorted(self, road):
        partition = GridPartition(road, 25)
        for cell in partition.occupied_cells:
            members = partition.members_of(cell)
            assert members == sorted(members)

    def test_cell_ids_within_grid(self, road):
        partition = GridPartition(road, 49)
        assert all(0 <= c < 49 for c in partition.occupied_cells)

    def test_border_definition_brute_force(self, road):
        partition = GridPartition(road, 25)
        for node in road.node_ids():
            expected = any(
                partition.cell(nbr) != partition.cell(node)
                for nbr in road.neighbors(node)
            )
            assert partition.is_border(node) == expected

    def test_borders_of_subset_of_members(self, road):
        partition = GridPartition(road, 25)
        for cell in partition.occupied_cells:
            borders = partition.borders_of(cell)
            assert set(borders) <= set(partition.members_of(cell))

    def test_all_borders_sorted_unique(self, road):
        partition = GridPartition(road, 25)
        borders = partition.all_borders()
        assert borders == sorted(set(borders))

    def test_single_cell_has_no_borders(self, road):
        partition = GridPartition(road, 1)
        assert partition.all_borders() == []

    def test_max_coordinate_node_included(self):
        grid = grid_network(4, 4, spacing=1.0)
        partition = GridPartition(grid, 4)
        assert partition.cell(15) == 3  # top-right corner node in last cell

    def test_more_cells_more_borders(self, road):
        few = GridPartition(road, 25)
        many = GridPartition(road, 225)
        assert len(many.all_borders()) > len(few.all_borders())
