"""Tests for graph-node orderings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.synthetic import grid_network, road_network
from repro.order import (
    ORDERINGS,
    bfs_order,
    dfs_order,
    hilbert_index,
    hilbert_order,
    kd_order,
    order_nodes,
    random_order,
)


@pytest.fixture(scope="module")
def road():
    return road_network(250, seed=77)


class TestAllOrderings:
    @pytest.mark.parametrize("name", sorted(ORDERINGS))
    def test_is_permutation(self, road, name):
        order = order_nodes(road, name)
        assert sorted(order) == road.node_ids()

    @pytest.mark.parametrize("name", sorted(ORDERINGS))
    def test_deterministic(self, road, name):
        assert order_nodes(road, name) == order_nodes(road, name)

    def test_unknown_name_rejected(self, road):
        with pytest.raises(GraphError):
            order_nodes(road, "zorder")

    def test_orderings_differ(self, road):
        orders = {name: tuple(order_nodes(road, name)) for name in ORDERINGS}
        assert len(set(orders.values())) == len(orders)


class TestRandomOrder:
    def test_seed_controls_shuffle(self, road):
        assert random_order(road, seed=1) != random_order(road, seed=2)
        assert random_order(road, seed=1) == random_order(road, seed=1)


class TestBfsDfs:
    def test_bfs_level_structure(self, grid5):
        order = bfs_order(grid5, start=0)
        position = {n: i for i, n in enumerate(order)}
        # On the unit grid, BFS from corner 0 visits nodes in Manhattan
        # distance order.
        for node in grid5.node_ids():
            r, c = divmod(node, 5)
            for other in grid5.node_ids():
                r2, c2 = divmod(other, 5)
                if r + c < r2 + c2:
                    assert position[node] < position[other]

    def test_dfs_parent_adjacency(self, grid5):
        order = dfs_order(grid5, start=0)
        seen = set()
        for node in order:
            if seen:
                # Preorder DFS: every new node neighbors something visited.
                assert any(nbr in seen for nbr in grid5.neighbors(node))
            seen.add(node)

    def test_disconnected_graphs_covered(self):
        from repro.graph.graph import SpatialGraph

        g = SpatialGraph()
        for i in range(4):
            g.add_node(i)
        g.add_edge(0, 1, 1.0)
        assert sorted(bfs_order(g)) == [0, 1, 2, 3]
        assert sorted(dfs_order(g)) == [0, 1, 2, 3]


class TestHilbert:
    def test_first_order_curve(self):
        # The order-1 Hilbert curve visits (0,0),(0,1),(1,1),(1,0).
        visits = sorted(
            ((x, y) for x in range(2) for y in range(2)),
            key=lambda p: hilbert_index(p[0], p[1], 1),
        )
        assert visits == [(0, 0), (0, 1), (1, 1), (1, 0)]

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=10)
    def test_bijective_on_grid(self, order):
        side = 1 << order
        indices = {
            hilbert_index(x, y, order) for x in range(side) for y in range(side)
        }
        assert indices == set(range(side * side))

    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=10)
    def test_curve_is_continuous(self, order):
        # Consecutive indices map to 4-adjacent cells.
        side = 1 << order
        position = {}
        for x in range(side):
            for y in range(side):
                position[hilbert_index(x, y, order)] = (x, y)
        for d in range(side * side - 1):
            (x1, y1), (x2, y2) = position[d], position[d + 1]
            assert abs(x1 - x2) + abs(y1 - y2) == 1

    def test_locality_beats_random(self, road):
        # Average |position difference| between graph-adjacent nodes should
        # be far smaller under Hilbert than under random ordering.
        def adjacency_span(order):
            pos = {n: i for i, n in enumerate(order)}
            spans = [abs(pos[u] - pos[v]) for u, v, _ in road.edges()]
            return sum(spans) / len(spans)

        assert adjacency_span(hilbert_order(road)) < 0.5 * adjacency_span(
            random_order(road, seed=0)
        )


class TestKd:
    def test_left_half_before_right_half(self, grid5):
        order = kd_order(grid5)
        position = {n: i for i, n in enumerate(order)}
        left = [n for n in grid5.node_ids() if grid5.node(n).x < 2]
        right = [n for n in grid5.node_ids() if grid5.node(n).x > 2]
        assert max(position[n] for n in left) < min(position[n] for n in right)

    def test_handles_duplicate_coordinates(self):
        from repro.graph.graph import SpatialGraph

        g = SpatialGraph()
        for i in range(10):
            g.add_node(i, 1.0, 1.0)
        assert sorted(kd_order(g)) == list(range(10))
