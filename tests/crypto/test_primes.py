"""Tests for prime generation and Miller-Rabin."""

import random

import pytest

from repro.crypto.primes import generate_prime, is_probable_prime, small_primes
from repro.errors import CryptoError

KNOWN_PRIMES = [2, 3, 5, 7, 97, 991, 7919, 104729, 2**31 - 1]
KNOWN_COMPOSITES = [1, 0, 4, 100, 561, 6601, 41041, 2**31, 7919 * 104729]
# 561, 6601, 41041 are Carmichael numbers — Fermat liars, Miller-Rabin must
# still reject them.


class TestMillerRabin:
    @pytest.mark.parametrize("n", KNOWN_PRIMES)
    def test_accepts_primes(self, n):
        assert is_probable_prime(n)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_rejects_composites_including_carmichael(self, n):
        assert not is_probable_prime(n)

    def test_negative_and_small(self):
        assert not is_probable_prime(-7)
        assert not is_probable_prime(1)
        assert is_probable_prime(2)


class TestSmallPrimes:
    def test_sieve_contents(self):
        primes = small_primes()
        assert primes[:5] == [2, 3, 5, 7, 11]
        assert primes[-1] == 997
        assert len(primes) == 168  # pi(1000)


class TestGeneratePrime:
    def test_bit_length_exact(self):
        rng = random.Random(1)
        for bits in (64, 128, 256):
            p = generate_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_deterministic_for_seed(self):
        assert generate_prime(96, random.Random(5)) == generate_prime(96, random.Random(5))

    def test_too_small_rejected(self):
        with pytest.raises(CryptoError):
            generate_prime(8, random.Random(0))
