"""Tests for pure-Python RSA signatures."""

import pytest

from repro.crypto import rsa
from repro.errors import CryptoError


@pytest.fixture(scope="module")
def keypair():
    return rsa.generate_keypair(bits=768, seed=99)


class TestKeyGeneration:
    def test_modulus_size(self, keypair):
        assert keypair.public.n.bit_length() == 768
        assert keypair.public.modulus_bytes == 96

    def test_deterministic_with_seed(self):
        a = rsa.generate_keypair(bits=512, seed=7)
        b = rsa.generate_keypair(bits=512, seed=7)
        assert a.public == b.public and a.d == b.d

    def test_different_seeds_differ(self):
        a = rsa.generate_keypair(bits=512, seed=1)
        b = rsa.generate_keypair(bits=512, seed=2)
        assert a.public != b.public

    def test_too_small_modulus_rejected(self):
        with pytest.raises(CryptoError):
            rsa.generate_keypair(bits=128)

    def test_key_relation(self, keypair):
        # e*d = 1 (mod phi) implies m^(e*d) = m (mod n) for random m.
        m = 0x1234567890ABCDEF
        n, e, d = keypair.public.n, keypair.public.e, keypair.d
        assert pow(pow(m, e, n), d, n) == m


class TestSignVerify:
    def test_roundtrip(self, keypair):
        sig = rsa.sign(b"hello network", keypair)
        assert len(sig) == keypair.public.modulus_bytes
        assert rsa.verify(b"hello network", sig, keypair.public)

    def test_tampered_message_rejected(self, keypair):
        sig = rsa.sign(b"hello", keypair)
        assert not rsa.verify(b"hellO", sig, keypair.public)

    def test_tampered_signature_rejected(self, keypair):
        sig = bytearray(rsa.sign(b"hello", keypair))
        sig[0] ^= 0x01
        assert not rsa.verify(b"hello", bytes(sig), keypair.public)

    def test_cross_key_rejected(self, keypair):
        other = rsa.generate_keypair(bits=768, seed=100)
        sig = rsa.sign(b"msg", keypair)
        assert not rsa.verify(b"msg", sig, other.public)

    def test_wrong_length_signature_rejected(self, keypair):
        sig = rsa.sign(b"msg", keypair)
        assert not rsa.verify(b"msg", sig[:-1], keypair.public)
        assert not rsa.verify(b"msg", sig + b"\x00", keypair.public)

    def test_oversized_signature_value_rejected(self, keypair):
        huge = (keypair.public.n).to_bytes(keypair.public.modulus_bytes, "big")
        assert not rsa.verify(b"msg", huge, keypair.public)

    def test_empty_message(self, keypair):
        sig = rsa.sign(b"", keypair)
        assert rsa.verify(b"", sig, keypair.public)

    def test_signature_deterministic(self, keypair):
        assert rsa.sign(b"m", keypair) == rsa.sign(b"m", keypair)

    def test_hash_function_binding(self, keypair):
        sig = rsa.sign(b"m", keypair, hash_fn="sha1")
        assert not rsa.verify(b"m", sig, keypair.public, hash_fn="sha256")
