"""Tests for the hash function wrapper."""

import hashlib

import pytest

from repro.crypto.hashing import HashFunction, get_hash
from repro.errors import CryptoError


class TestHashFunction:
    def test_sha1_matches_hashlib(self):
        h = HashFunction("sha1")
        assert h.digest(b"abc") == hashlib.sha1(b"abc").digest()
        assert h.digest_size == 20

    def test_sha256_matches_hashlib(self):
        h = HashFunction("sha256")
        assert h.digest(b"abc") == hashlib.sha256(b"abc").digest()
        assert h.digest_size == 32

    def test_concatenation_operator(self):
        h = HashFunction("sha1")
        assert h.digest(b"ab", b"cd") == h.digest(b"abcd")

    def test_digest_int(self):
        h = HashFunction("sha1")
        value = h.digest_int(b"x")
        assert value == int.from_bytes(h.digest(b"x"), "big")

    def test_unknown_hash_rejected(self):
        with pytest.raises(CryptoError):
            HashFunction("md5-but-wrong")

    def test_equality_and_hashability(self):
        assert HashFunction("sha1") == HashFunction("sha1")
        assert HashFunction("sha1") != HashFunction("sha256")
        assert len({HashFunction("sha1"), HashFunction("sha1")}) == 1

    def test_get_hash_coercion(self):
        h = HashFunction("sha256")
        assert get_hash(h) is h
        assert get_hash("sha1").name == "sha1"

    def test_incremental_interface(self):
        h = HashFunction("sha1")
        hasher = h.new()
        hasher.update(b"ab")
        hasher.update(b"cd")
        assert hasher.digest() == h.digest(b"abcd")

    def test_pinned_digests_byte_stable(self):
        """Artifact compatibility: sha1/sha256 must never drift."""
        assert HashFunction("sha1").digest(b"abc").hex() == (
            "a9993e364706816aba3e25717850c26c9cd0d89d")
        assert HashFunction("sha256").digest(b"abc").hex() == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad")


def _blake3_available() -> bool:
    try:
        import blake3  # noqa: F401
    except ImportError:
        return False
    return True


class TestBlake3:
    """blake3 is optional: full member when the wheel is present, a
    *typed* refusal naming the dependency when it is not — never an
    ImportError escaping from construction."""

    def test_blake3_is_a_known_name(self):
        # Whether or not the wheel is installed, "blake3" must not fall
        # into the unsupported-name branch.
        try:
            HashFunction("blake3")
        except CryptoError as exc:
            assert "blake3" in str(exc) and "wheel" in str(exc)

    @pytest.mark.skipif(not _blake3_available(),
                        reason="optional blake3 wheel not installed")
    def test_blake3_full_member(self):
        import blake3

        h = HashFunction("blake3")
        assert h.digest_size == 32
        assert h.digest(b"abc") == blake3.blake3(b"abc").digest()
        assert h.digest(b"ab", b"cd") == h.digest(b"abcd")
        hasher = h.new(b"ab")
        hasher.update(b"cd")
        assert hasher.digest() == h.digest(b"abcd")
        assert get_hash("blake3") == HashFunction("blake3")

    @pytest.mark.skipif(_blake3_available(),
                        reason="blake3 wheel is installed here")
    def test_blake3_missing_is_a_typed_refusal(self):
        with pytest.raises(CryptoError) as excinfo:
            HashFunction("blake3")
        message = str(excinfo.value)
        assert "pip install blake3" in message
        assert "sha256" in message  # the error names the fallback
