"""Tests for the hash function wrapper."""

import hashlib

import pytest

from repro.crypto.hashing import HashFunction, get_hash
from repro.errors import CryptoError


class TestHashFunction:
    def test_sha1_matches_hashlib(self):
        h = HashFunction("sha1")
        assert h.digest(b"abc") == hashlib.sha1(b"abc").digest()
        assert h.digest_size == 20

    def test_sha256_matches_hashlib(self):
        h = HashFunction("sha256")
        assert h.digest(b"abc") == hashlib.sha256(b"abc").digest()
        assert h.digest_size == 32

    def test_concatenation_operator(self):
        h = HashFunction("sha1")
        assert h.digest(b"ab", b"cd") == h.digest(b"abcd")

    def test_digest_int(self):
        h = HashFunction("sha1")
        value = h.digest_int(b"x")
        assert value == int.from_bytes(h.digest(b"x"), "big")

    def test_unknown_hash_rejected(self):
        with pytest.raises(CryptoError):
            HashFunction("md5-but-wrong")

    def test_equality_and_hashability(self):
        assert HashFunction("sha1") == HashFunction("sha1")
        assert HashFunction("sha1") != HashFunction("sha256")
        assert len({HashFunction("sha1"), HashFunction("sha1")}) == 1

    def test_get_hash_coercion(self):
        h = HashFunction("sha256")
        assert get_hash(h) is h
        assert get_hash("sha1").name == "sha1"

    def test_incremental_interface(self):
        h = HashFunction("sha1")
        hasher = h.new()
        hasher.update(b"ab")
        hasher.update(b"cd")
        assert hasher.digest() == h.digest(b"abcd")
