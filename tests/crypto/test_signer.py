"""Tests for the Signer abstraction."""

from repro.crypto.signer import NullSigner, RsaSigner


class TestRsaSigner:
    def test_roundtrip(self, rsa_signer):
        sig = rsa_signer.sign(b"root digest")
        assert rsa_signer.verify(b"root digest", sig)
        assert not rsa_signer.verify(b"other digest", sig)

    def test_signature_size(self, rsa_signer):
        assert rsa_signer.signature_size == len(rsa_signer.sign(b"x"))

    def test_public_verifier(self, rsa_signer):
        verifier = rsa_signer.verifier_for_public_key()
        sig = rsa_signer.sign(b"m")
        assert verifier.verify(b"m", sig)
        assert not verifier.verify(b"n", sig)
        assert not hasattr(verifier, "sign")


class TestNullSigner:
    def test_roundtrip(self):
        signer = NullSigner()
        sig = signer.sign(b"m")
        assert signer.verify(b"m", sig)
        assert not signer.verify(b"n", sig)

    def test_signature_size_padding(self):
        signer = NullSigner(signature_size=128)
        assert len(signer.sign(b"m")) == 128
        assert signer.signature_size == 128

    def test_keyed(self):
        a = NullSigner(key=b"a")
        b = NullSigner(key=b"b")
        assert not b.verify(b"m", a.sign(b"m"))
