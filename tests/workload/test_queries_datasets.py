"""Tests for workload generation and named datasets."""

import pytest

from repro.errors import WorkloadError
from repro.graph.components import is_connected
from repro.shortestpath.dijkstra import dijkstra
from repro.workload.datasets import (
    DATASET_SPECS,
    TARGET_DIAMETER,
    dataset_names,
    load_dataset,
    normalize_weights,
)
from repro.workload.queries import generate_workload


class TestWorkloadGeneration:
    def test_distances_near_range(self, road700):
        query_range = 1500.0
        workload = generate_workload(road700, query_range, count=12, seed=1)
        assert len(workload) == 12
        for vs, vt in workload:
            dist = dijkstra(road700, vs, target=vt).dist[vt]
            assert abs(dist - query_range) <= 0.25 * query_range

    def test_deterministic(self, road700):
        a = generate_workload(road700, 1000.0, count=5, seed=3)
        b = generate_workload(road700, 1000.0, count=5, seed=3)
        assert a.queries == b.queries

    def test_seeds_differ(self, road700):
        a = generate_workload(road700, 1000.0, count=5, seed=3)
        b = generate_workload(road700, 1000.0, count=5, seed=4)
        assert a.queries != b.queries

    def test_source_differs_from_target(self, road700):
        for vs, vt in generate_workload(road700, 800.0, count=10, seed=2):
            assert vs != vt

    def test_impossible_range_rejected(self, road700):
        with pytest.raises(WorkloadError):
            generate_workload(road700, 10**9, count=3, seed=0,
                              max_attempts_factor=2)

    def test_invalid_parameters(self, road700):
        with pytest.raises(WorkloadError):
            generate_workload(road700, -5.0)
        with pytest.raises(WorkloadError):
            generate_workload(road700, 100.0, count=0)

    def test_iteration_protocol(self, road700):
        workload = generate_workload(road700, 900.0, count=4, seed=6)
        assert len(list(workload)) == len(workload) == 4


class TestDatasets:
    def test_names(self):
        assert dataset_names() == ["DE", "ARG", "IND", "NA"]
        assert set(DATASET_SPECS) == set(dataset_names())

    def test_unknown_name(self):
        with pytest.raises(WorkloadError):
            load_dataset("ZZ")

    def test_bad_scale(self):
        with pytest.raises(WorkloadError):
            load_dataset("DE", scale=0)
        with pytest.raises(WorkloadError):
            load_dataset("DE", scale=1.5)

    def test_scaled_sizes_ordered(self):
        sizes = [load_dataset(name, scale=1 / 128).num_nodes
                 for name in dataset_names()]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1]

    def test_connected(self):
        assert is_connected(load_dataset("DE", scale=1 / 64))

    def test_cached(self):
        a = load_dataset("DE", scale=1 / 64)
        b = load_dataset("DE", scale=1 / 64)
        assert a is b

    def test_edge_node_ratio(self):
        graph = load_dataset("ARG", scale=1 / 64)
        assert 0.9 < graph.num_edges / graph.num_nodes < 1.3

    def test_diameter_normalized(self):
        graph = load_dataset("DE", scale=1 / 64)
        source = graph.node_ids()[0]
        result = dijkstra(graph, source)
        far_node, far_dist = max(result.dist.items(), key=lambda kv: kv[1])
        again = dijkstra(graph, far_node)
        diameter = max(again.dist.values())
        assert diameter == pytest.approx(TARGET_DIAMETER, rel=0.2)


class TestNormalizeWeights:
    def test_scaling_preserves_structure(self, road300):
        scaled = normalize_weights(road300, 9000.0)
        assert scaled.num_nodes == road300.num_nodes
        assert scaled.num_edges == road300.num_edges
        ratio = None
        for (u, v, w), (u2, v2, w2) in zip(road300.edges(), scaled.edges()):
            assert (u, v) == (u2, v2)
            if ratio is None and w > 0:
                ratio = w2 / w
            if w > 0:
                assert w2 / w == pytest.approx(ratio)

    def test_coordinates_untouched(self, road300):
        scaled = normalize_weights(road300, 100.0)
        for node in road300.nodes():
            assert scaled.node(node.id) == node
