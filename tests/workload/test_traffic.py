"""Traffic-simulator unit tests: determinism, skew, mix and garbage.

These tests introspect generated traces without executing them — the
execution path is covered by the SLO-harness and adversarial-soak
tests.  The load-bearing claims are (a) the determinism contract (same
``(graph, scenario, seed)`` ⇒ byte-identical trace, witnessed by the
digest), (b) Zipf locality (a small hot set dominates the draws — the
property that makes cache hit rates meaningful), and (c) every garbage
frame carrying a correct server-side expectation.
"""

from __future__ import annotations

import random

import pytest

from repro.api.envelope import QueryRequest, decode_frame
from repro.errors import ProtocolError, WorkloadError
from repro.workload.traffic import (
    EVENT_BATCH,
    EVENT_GARBAGE,
    EVENT_QUERY,
    EVENT_UPDATE,
    GARBAGE_BAD_VERSION,
    GARBAGE_EXPECTATION,
    GARBAGE_KINDS,
    GARBAGE_NOISE,
    GARBAGE_REPLAY,
    GARBAGE_TRUNCATED,
    SCENARIOS,
    PhaseSpec,
    Scenario,
    TrafficMix,
    ZipfSampler,
    generate_traffic,
    get_scenario,
)


class TestScenarioRegistry:
    def test_registered_names_resolve(self):
        for name in ("steady-burst", "steady", "adversarial-soak"):
            assert get_scenario(name).name == name
            assert name in SCENARIOS

    def test_unknown_name_lists_the_registry(self):
        with pytest.raises(WorkloadError, match="steady-burst"):
            get_scenario("no-such-scenario")

    def test_scaled_shrinks_but_keeps_every_phase(self):
        scenario = get_scenario("steady-burst")
        small = scenario.scaled(0.1)
        assert [p.name for p in small.phases] == \
            [p.name for p in scenario.phases]
        assert small.total_events < scenario.total_events
        assert all(p.events >= 1 for p in small.phases)
        tiny = scenario.scaled(0.0001)
        assert all(p.events == 1 for p in tiny.phases)
        with pytest.raises(WorkloadError):
            scenario.scaled(0.0)

    def test_validation_rejects_bad_specs(self):
        with pytest.raises(WorkloadError):
            TrafficMix(query=0.0, batch=0.0, update=0.0, garbage=0.0)
        with pytest.raises(WorkloadError):
            TrafficMix(query=-1.0)
        with pytest.raises(WorkloadError):
            TrafficMix(batch_size=(0, 3))
        with pytest.raises(WorkloadError):
            PhaseSpec("p", events=0)
        with pytest.raises(WorkloadError):
            PhaseSpec("p", events=1, rate=0.0)
        with pytest.raises(WorkloadError):
            PhaseSpec("p", events=1, burst_factor=0.5)
        with pytest.raises(WorkloadError):
            Scenario(name="empty", phases=())
        with pytest.raises(WorkloadError):
            Scenario(name="dup", phases=(PhaseSpec("a", events=1),
                                         PhaseSpec("a", events=1)))


class TestDeterminism:
    def test_same_seed_same_digest(self, road300):
        scenario = get_scenario("steady-burst").scaled(0.25)
        a = generate_traffic(road300, scenario, seed=5)
        b = generate_traffic(road300, scenario, seed=5)
        assert a.digest() == b.digest()
        # Digest equality is a real witness: the event tuples match too.
        for (pa, ea), (pb, eb) in zip(a.phases, b.phases):
            assert pa == pb
            assert ea == eb

    def test_different_seed_different_digest(self, road300):
        scenario = get_scenario("steady").scaled(0.25)
        assert generate_traffic(road300, scenario, seed=5).digest() != \
            generate_traffic(road300, scenario, seed=6).digest()

    def test_arrivals_are_monotonic(self, road300):
        scenario = get_scenario("steady-burst").scaled(0.25)
        trace = generate_traffic(road300, scenario, seed=5)
        for _, events in trace.phases:
            times = [e.at for e in events]
            assert times == sorted(times)
            assert all(t >= 0.0 for t in times)

    def test_events_of_unknown_phase_raises(self, road300):
        trace = generate_traffic(road300, get_scenario("steady").scaled(0.1),
                                 seed=5)
        assert trace.events_of("steady")
        with pytest.raises(WorkloadError):
            trace.events_of("no-such-phase")


class TestZipfLocality:
    def test_hot_ranks_dominate(self):
        sampler = ZipfSampler(range(1000), s=1.1, seed=1)
        rng = random.Random(0)
        draws = [sampler.draw(rng) for _ in range(2000)]
        # Far fewer distinct values than draws: the skew concentrates.
        assert len(set(draws)) < len(draws) / 4
        top = max(set(draws), key=draws.count)
        assert draws.count(top) > len(draws) / 20

    def test_empty_items_rejected(self):
        with pytest.raises(WorkloadError):
            ZipfSampler([], s=1.1, seed=1)

    def test_query_pairs_come_from_a_bounded_pool(self, road300):
        scenario = get_scenario("steady").scaled(0.5)
        trace = generate_traffic(road300, scenario, seed=5)
        pairs = [pair for _, events in trace.phases for e in events
                 for pair in e.queries]
        assert len(pairs) > 30
        assert len(set(pairs)) <= scenario.pool_size
        assert all(vs != vt for vs, vt in pairs)


class TestMixComposition:
    def test_phases_respect_their_mix(self, road300):
        trace = generate_traffic(road300, get_scenario("steady-burst"),
                                 seed=5)
        warmup_kinds = {e.kind for e in trace.events_of("warmup")}
        assert warmup_kinds == {EVENT_QUERY}
        steady_kinds = {e.kind for e in trace.events_of("steady")}
        assert EVENT_QUERY in steady_kinds
        assert EVENT_UPDATE not in steady_kinds
        storm = trace.events_of("update-storm")
        assert any(e.kind == EVENT_UPDATE for e in storm)

    def test_update_phase_always_carries_an_update(self, road300):
        """The mid-soak version push is guaranteed, not weighted-draw
        luck: every seed's update-storm phase has >= 1 update event."""
        scenario = get_scenario("steady-burst").scaled(0.05)
        for seed in range(8):
            trace = generate_traffic(road300, scenario, seed=seed)
            assert any(e.kind == EVENT_UPDATE
                       for e in trace.events_of("update-storm")), seed

    def test_batch_events_pack_multiple_queries(self, road300):
        trace = generate_traffic(road300, get_scenario("steady-burst"),
                                 seed=5)
        batches = [e for _, events in trace.phases for e in events
                   if e.kind == EVENT_BATCH]
        assert batches
        lo, hi = get_scenario("steady-burst").phases[1].mix.batch_size
        assert all(lo <= len(e.queries) <= hi for e in batches)


class TestGarbageFrames:
    @pytest.fixture(scope="class")
    def garbage(self, road300):
        trace = generate_traffic(
            road300, get_scenario("adversarial-soak"), seed=5)
        return [e for _, events in trace.phases for e in events
                if e.kind == EVENT_GARBAGE]

    def test_every_kind_appears_with_its_expectation(self, garbage):
        assert {e.garbage_kind for e in garbage} == set(GARBAGE_KINDS)
        for e in garbage:
            assert e.expect == GARBAGE_EXPECTATION[e.garbage_kind]
            assert e.frame is not None

    def test_malformed_kinds_do_not_decode(self, garbage):
        for e in garbage:
            if e.garbage_kind in (GARBAGE_NOISE, GARBAGE_TRUNCATED,
                                  GARBAGE_BAD_VERSION):
                with pytest.raises(ProtocolError):
                    decode_frame(e.frame)

    def test_replays_are_well_formed_and_answerable(self, garbage):
        replays = [e for e in garbage if e.garbage_kind == GARBAGE_REPLAY]
        assert replays
        for e in replays:
            request = QueryRequest.decode(decode_frame(e.frame).payload)
            assert e.queries == ((request.source, request.target),)

    def test_generation_needs_a_usable_graph(self):
        from repro.graph.graph import SpatialGraph

        lonely = SpatialGraph()
        lonely.add_node(1, 0.0, 0.0)
        with pytest.raises(WorkloadError):
            generate_traffic(lonely, get_scenario("steady"), seed=1)
