"""Tests for the update-heavy workload generator."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.graph.components import is_connected
from repro.graph.graph import SpatialGraph
from repro.workload.updates import (
    ADD_EDGE,
    REMOVE_EDGE,
    UPDATE_WEIGHT,
    GraphUpdate,
    generate_update_workload,
    interleave,
)


class TestGenerateUpdateWorkload:
    def test_deterministic_per_seed(self, road300):
        a = generate_update_workload(road300, 12, seed=4)
        b = generate_update_workload(road300, 12, seed=4)
        c = generate_update_workload(road300, 12, seed=5)
        assert a.updates == b.updates
        assert a.updates != c.updates

    def test_applies_cleanly_and_keeps_connectivity(self, road300):
        graph = road300.copy()
        workload = generate_update_workload(graph, 25, seed=7)
        workload.apply_all(graph)
        graph.validate()
        assert is_connected(graph)

    def test_weight_only_mix(self, road300):
        graph = road300.copy()
        workload = generate_update_workload(graph, 10, seed=1,
                                            kinds=(UPDATE_WEIGHT,))
        assert all(u.kind == UPDATE_WEIGHT for u in workload)
        edges_before = graph.num_edges
        workload.apply_all(graph)
        assert graph.num_edges == edges_before

    def test_generated_weights_are_positive(self, road300):
        workload = generate_update_workload(road300, 20, seed=2)
        for update in workload:
            if update.kind in (UPDATE_WEIGHT, ADD_EDGE):
                assert update.weight > 0

    def test_self_consistent_adds_and_removes(self, road300):
        """Replaying on a fresh copy must never hit a missing/duplicate
        edge — the generator tracks its own mutations."""
        workload = generate_update_workload(road300, 30, seed=11)
        graph = road300.copy()
        for update in workload:
            if update.kind == ADD_EDGE:
                assert not graph.has_edge(update.u, update.v)
            else:
                assert graph.has_edge(update.u, update.v)
            update.apply(graph)

    def test_source_graph_untouched(self, road300):
        version = road300.version
        generate_update_workload(road300, 10, seed=0)
        assert road300.version == version

    def test_bad_arguments_rejected(self, road300):
        with pytest.raises(WorkloadError):
            generate_update_workload(road300, 0)
        with pytest.raises(WorkloadError):
            generate_update_workload(road300, 3, kinds=("teleport",))
        with pytest.raises(WorkloadError):
            generate_update_workload(road300, 3, kinds=())

    def test_infeasible_mix_raises(self):
        # A path graph has no removable (cycle) edge.
        graph = SpatialGraph()
        for i in range(4):
            graph.add_node(i, float(i), 0.0)
        for i in range(3):
            graph.add_edge(i, i + 1, 1.0)
        with pytest.raises(WorkloadError):
            generate_update_workload(graph, 2, kinds=(REMOVE_EDGE,),
                                     max_attempts_factor=5)

    def test_unknown_kind_apply_rejected(self, road300):
        with pytest.raises(WorkloadError):
            GraphUpdate("teleport", 0, 1).apply(road300.copy())


class TestInterleave:
    def test_preserves_both_streams_in_order(self, road300):
        queries = [(1, 2), (3, 4), (5, 6)]
        updates = generate_update_workload(road300, 4, seed=0)
        trace = interleave(queries, updates, seed=3)
        assert len(trace) == len(queries) + len(updates)
        assert [item for kind, item in trace if kind == "query"] == queries
        assert [item for kind, item in trace
                if kind == "update"] == list(updates)

    def test_seeded(self, road300):
        queries = [(i, i + 1) for i in range(10)]
        updates = generate_update_workload(road300, 5, seed=0)
        assert interleave(queries, updates, seed=1) == \
            interleave(queries, updates, seed=1)
