"""Tests for graph serialization."""

import io

import pytest

from repro.errors import GraphError
from repro.graph.io import read_dimacs, read_graph, read_workload, write_graph, write_workload
from repro.graph.synthetic import grid_network


class TestNativeFormat:
    def test_roundtrip(self, tmp_path, road300):
        path = tmp_path / "g.txt"
        write_graph(road300, path)
        loaded = read_graph(path)
        assert loaded.num_nodes == road300.num_nodes
        assert loaded.num_edges == road300.num_edges
        for u, v, w in road300.edges():
            assert loaded.weight(u, v) == w
        for node in road300.nodes():
            assert loaded.node(node.id) == node

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\nv 1 0.0 0.0\nv 2 1.0 0.0\ne 1 2 2.5\n")
        graph = read_graph(path)
        assert graph.weight(1, 2) == 2.5

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("x 1 2 3\n")
        with pytest.raises(GraphError):
            read_graph(path)

    def test_bad_number_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("v one 0.0 0.0\n")
        with pytest.raises(GraphError):
            read_graph(path)


class TestDimacs:
    def test_basic(self, tmp_path):
        gr = tmp_path / "g.gr"
        co = tmp_path / "g.co"
        gr.write_text(
            "c comment\np sp 3 4\na 1 2 10\na 2 1 10\na 2 3 5\na 1 3 99\n"
        )
        co.write_text("v 1 100 200\nv 2 300 400\nv 3 500 600\n")
        graph = read_dimacs(gr, co)
        assert graph.num_nodes == 3
        assert graph.weight(1, 2) == 10
        assert graph.node(1).x == 100
        assert graph.weight(1, 3) == 99

    def test_duplicate_arcs_keep_minimum(self, tmp_path):
        gr = tmp_path / "g.gr"
        gr.write_text("p sp 2 2\na 1 2 10\na 2 1 4\n")
        graph = read_dimacs(gr)
        assert graph.weight(1, 2) == 4

    def test_self_loops_skipped(self, tmp_path):
        gr = tmp_path / "g.gr"
        gr.write_text("p sp 2 2\na 1 1 3\na 1 2 1\n")
        graph = read_dimacs(gr)
        assert graph.num_edges == 1

    def test_missing_coordinates_default_to_zero(self, tmp_path):
        gr = tmp_path / "g.gr"
        gr.write_text("p sp 2 1\na 1 2 1\n")
        graph = read_dimacs(gr)
        assert graph.node(2).x == 0.0


class TestWorkloadIO:
    def test_roundtrip(self):
        buf = io.StringIO()
        write_workload([(1, 2), (3, 4)], buf)
        buf.seek(0)
        assert read_workload(buf) == [(1, 2), (3, 4)]

    def test_comments_skipped(self):
        buf = io.StringIO("# workload\n1 2\n\n3 4\n")
        assert read_workload(buf) == [(1, 2), (3, 4)]


class TestGridFixtureSanity:
    def test_grid_written_and_read(self, tmp_path):
        grid = grid_network(3, 4, spacing=2.0, weight=1.5)
        path = tmp_path / "grid.txt"
        write_graph(grid, path)
        loaded = read_graph(path)
        assert loaded.num_nodes == 12
        assert loaded.weight(0, 1) == 1.5
