"""Tests for the SpatialGraph substrate."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.graph import SpatialGraph


@pytest.fixture()
def triangle():
    g = SpatialGraph()
    g.add_node(1, 0.0, 0.0)
    g.add_node(2, 1.0, 0.0)
    g.add_node(3, 0.0, 1.0)
    g.add_edge(1, 2, 1.0)
    g.add_edge(2, 3, 2.0)
    g.add_edge(1, 3, 2.5)
    return g


class TestConstruction:
    def test_counts(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.num_edges == 3

    def test_duplicate_node_same_coords_is_noop(self, triangle):
        triangle.add_node(1, 0.0, 0.0)
        assert triangle.num_nodes == 3

    def test_duplicate_node_new_coords_rejected(self, triangle):
        with pytest.raises(GraphError):
            triangle.add_node(1, 5.0, 5.0)

    def test_self_loop_rejected(self, triangle):
        with pytest.raises(GraphError):
            triangle.add_edge(1, 1, 1.0)

    def test_edge_to_unknown_node_rejected(self, triangle):
        with pytest.raises(GraphError):
            triangle.add_edge(1, 99, 1.0)

    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf")])
    def test_invalid_weight_rejected(self, triangle, bad):
        with pytest.raises(GraphError):
            triangle.add_edge(2, 3, bad)

    def test_zero_weight_allowed(self, triangle):
        triangle.add_node(4, 2.0, 2.0)
        triangle.add_edge(3, 4, 0.0)
        assert triangle.weight(3, 4) == 0.0

    def test_re_adding_edge_updates_weight(self, triangle):
        triangle.add_edge(1, 2, 9.0)
        assert triangle.weight(1, 2) == 9.0
        assert triangle.num_edges == 3

    def test_remove_edge(self, triangle):
        triangle.remove_edge(1, 2)
        assert not triangle.has_edge(1, 2)
        assert not triangle.has_edge(2, 1)
        assert triangle.num_edges == 2
        with pytest.raises(GraphError):
            triangle.remove_edge(1, 2)


class TestQueries:
    def test_symmetry(self, triangle):
        assert triangle.weight(1, 2) == triangle.weight(2, 1)
        assert triangle.has_edge(3, 2)

    def test_neighbors_view(self, triangle):
        assert dict(triangle.neighbors(1)) == {2: 1.0, 3: 2.5}

    def test_neighbors_view_is_read_only(self, triangle):
        view = triangle.neighbors(1)
        with pytest.raises(TypeError):
            view[2] = 99.0
        with pytest.raises(TypeError):
            del view[2]
        with pytest.raises(AttributeError):
            view.clear()
        # The graph (and its version counter) must be untouched.
        assert triangle.weight(1, 2) == 1.0
        assert dict(triangle.neighbors(1)) == {2: 1.0, 3: 2.5}

    def test_neighbors_view_tracks_later_mutation(self, triangle):
        # A proxy is a live view, not a snapshot: legitimate mutation
        # through the graph API is visible, bypassing it is impossible.
        view = triangle.neighbors(1)
        before = triangle.version
        triangle.add_edge(1, 2, 7.0)
        assert view[2] == 7.0
        assert triangle.version > before

    def test_degree(self, triangle):
        assert triangle.degree(1) == 2

    def test_unknown_node_errors(self, triangle):
        with pytest.raises(GraphError):
            triangle.node(77)
        with pytest.raises(GraphError):
            triangle.neighbors(77)
        with pytest.raises(GraphError):
            triangle.weight(1, 77)

    def test_edges_iteration_unique(self, triangle):
        edges = list(triangle.edges())
        assert len(edges) == 3
        assert all(u < v for u, v, _ in edges)

    def test_bounding_box(self, triangle):
        assert triangle.bounding_box() == (0.0, 0.0, 1.0, 1.0)

    def test_bounding_box_empty_graph(self):
        with pytest.raises(GraphError):
            SpatialGraph().bounding_box()

    def test_euclidean(self, triangle):
        assert triangle.euclidean(1, 2) == pytest.approx(1.0)

    def test_contains(self, triangle):
        assert 1 in triangle
        assert 42 not in triangle


class TestDerived:
    def test_subgraph(self, triangle):
        sub = triangle.subgraph([1, 2])
        assert sub.num_nodes == 2
        assert sub.has_edge(1, 2)
        assert not sub.has_node(3)

    def test_copy_independent(self, triangle):
        dup = triangle.copy()
        dup.remove_edge(1, 2)
        assert triangle.has_edge(1, 2)

    def test_csr_export(self, triangle):
        matrix, ids, index_of = triangle.to_csr()
        assert ids == [1, 2, 3]
        assert matrix.shape == (3, 3)
        dense = matrix.toarray()
        assert dense[index_of[1], index_of[2]] == 1.0
        assert np.allclose(dense, dense.T)

    def test_csr_cache_invalidation(self, triangle):
        first = triangle.to_csr()
        assert triangle.to_csr() is first  # cached
        triangle.add_node(10, 9.0, 9.0)
        second = triangle.to_csr()
        assert second is not first
        assert second[0].shape == (4, 4)

    def test_index_layout(self, triangle):
        index = triangle.to_index()
        assert index.ids == [1, 2, 3]
        assert index.num_nodes == 3
        assert index.num_arcs == 2 * triangle.num_edges
        assert index.indptr[0] == 0 and index.indptr[-1] == index.num_arcs
        # Node 1's neighbor run: sorted by neighbor id, weights aligned.
        i = index.index_of[1]
        run = slice(index.indptr[i], index.indptr[i + 1])
        assert [index.ids[v] for v in index.neighbors[run]] == [2, 3]
        assert index.weights[run] == [1.0, 2.5]
        assert index.degree(i) == triangle.degree(1)

    def test_index_cache_invalidation(self, triangle):
        first = triangle.to_index()
        assert triangle.to_index() is first  # cached
        triangle.add_edge(1, 2, 4.0)  # weight update bumps the version
        second = triangle.to_index()
        assert second is not first
        i = second.index_of[1]
        assert second.weights[second.indptr[i]] == 4.0

    def test_index_matches_csr(self, triangle):
        matrix, ids, index_of = triangle.to_csr()
        index = triangle.to_index()
        assert ids == index.ids and index_of == index.index_of
        dense = matrix.toarray()
        for u in ids:
            i = index.index_of[u]
            for k in range(index.indptr[i], index.indptr[i + 1]):
                assert dense[i, index.neighbors[k]] == index.weights[k]

    def test_validate_passes(self, triangle):
        triangle.validate()

    def test_validate_catches_asymmetry(self, triangle):
        triangle._adj[1][2] = 123.0  # corrupt one direction directly
        with pytest.raises(GraphError):
            triangle.validate()

    def test_repr(self, triangle):
        assert "SpatialGraph" in repr(triangle)


class TestChangelog:
    def test_mutations_recorded_with_versions(self, triangle):
        base = triangle.version
        triangle.update_edge_weight(1, 2, 9.0)
        triangle.remove_edge(2, 3)
        triangle.add_edge(2, 3, 4.0)
        kinds = [m.kind for m in triangle.mutations_since(base)]
        assert kinds == ["update-weight", "remove-edge", "add-edge"]
        update = triangle.mutations_since(base)[0]
        assert update.old_weight == 1.0 and update.weight == 9.0
        assert [m.version for m in triangle.mutations_since(base)] == \
            [base + 1, base + 2, base + 3]

    def test_readding_edge_logs_weight_update(self, triangle):
        base = triangle.version
        triangle.add_edge(1, 2, 7.0)  # edge exists: overwrite
        (mutation,) = triangle.mutations_since(base)
        assert mutation.kind == "update-weight"
        assert mutation.old_weight == 1.0

    def test_update_requires_existing_edge(self, triangle):
        with pytest.raises(GraphError):
            triangle.update_edge_weight(1, 99, 2.0)

    def test_mutations_since_bounds_checked(self, triangle):
        with pytest.raises(GraphError):
            triangle.mutations_since(triangle.version + 1)

    def test_trim_bounds_history(self, triangle):
        triangle.update_edge_weight(1, 2, 9.0)
        mid = triangle.version
        triangle.update_edge_weight(1, 2, 10.0)
        triangle.trim_changelog(mid)
        assert [m.weight for m in triangle.mutations_since(mid)] == [10.0]
        with pytest.raises(GraphError):
            triangle.mutations_since(mid - 1)  # trimmed away
        assert len(triangle.changelog) == 1

    def test_rollback_restores_state(self, triangle):
        base = triangle.version
        before = dict(((u, v), w) for u, v, w in triangle.edges())
        triangle.update_edge_weight(1, 2, 9.0)
        triangle.remove_edge(2, 3)
        triangle.add_edge(2, 3, 4.0)
        triangle.rollback_to(base)
        assert dict(((u, v), w) for u, v, w in triangle.edges()) == before
        assert triangle.version > base  # rollback moves forward
        triangle.validate()

    def test_rollback_cannot_cross_node_addition(self, triangle):
        base = triangle.version
        triangle.add_node(4, 2.0, 2.0)
        with pytest.raises(GraphError):
            triangle.rollback_to(base)

    def test_weight_only_index_patch_matches_rebuild(self, triangle):
        index = triangle.to_index()
        triangle.update_edge_weight(1, 2, 5.5)
        patched = triangle.to_index()
        assert patched is not index
        assert patched.indptr is index.indptr  # topology shared
        from repro.graph.index import build_graph_index

        rebuilt = build_graph_index(triangle._adj)
        assert patched.weights == rebuilt.weights
        assert patched.neighbors == rebuilt.neighbors
