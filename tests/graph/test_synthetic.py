"""Tests for synthetic network generators."""

import math

import pytest

from repro.errors import GraphError
from repro.graph.components import is_connected
from repro.graph.synthetic import grid_network, random_geometric_network, road_network


class TestGridNetwork:
    def test_shape(self):
        grid = grid_network(4, 6)
        assert grid.num_nodes == 24
        assert grid.num_edges == 4 * 5 + 6 * 3  # rows*(cols-1) + cols*(rows-1)

    def test_coordinates(self):
        grid = grid_network(2, 3, spacing=10.0)
        node = grid.node(1 * 3 + 2)
        assert (node.x, node.y) == (20.0, 10.0)

    def test_connected(self):
        assert is_connected(grid_network(7, 3))

    def test_degenerate_sizes_rejected(self):
        with pytest.raises(GraphError):
            grid_network(0, 5)

    def test_single_node(self):
        grid = grid_network(1, 1)
        assert grid.num_nodes == 1 and grid.num_edges == 0


class TestRoadNetwork:
    def test_size_approximation(self):
        for target in (200, 800, 2000):
            graph = road_network(target, seed=3)
            assert abs(graph.num_nodes - target) / target < 0.25

    def test_edge_node_ratio_matches_dcw(self):
        graph = road_network(1500, seed=5)
        ratio = graph.num_edges / graph.num_nodes
        assert 0.95 < ratio < 1.25  # DCW datasets sit near 1.05

    def test_connected(self):
        assert is_connected(road_network(500, seed=9))

    def test_deterministic(self):
        a = road_network(300, seed=11)
        b = road_network(300, seed=11)
        assert a.num_nodes == b.num_nodes
        assert list(a.edges()) == list(b.edges())

    def test_seeds_differ(self):
        a = road_network(300, seed=1)
        b = road_network(300, seed=2)
        assert list(a.edges()) != list(b.edges())

    def test_coordinates_in_canvas(self):
        graph = road_network(300, seed=4, canvas=5000.0)
        min_x, min_y, max_x, max_y = graph.bounding_box()
        assert min_x >= 0 and min_y >= 0
        assert max_x <= 5000 and max_y <= 5000

    def test_weights_exceed_euclidean(self):
        # Weight = Euclidean length x congestion >= Euclidean length.
        graph = road_network(300, seed=4)
        for u, v, w in graph.edges():
            assert w >= graph.euclidean(u, v) * 0.999

    def test_too_small_rejected(self):
        with pytest.raises(GraphError):
            road_network(4)

    def test_degree_two_chains_dominate(self):
        graph = road_network(1000, seed=6)
        degree_two = sum(1 for n in graph.node_ids() if graph.degree(n) == 2)
        assert degree_two / graph.num_nodes > 0.5


class TestRandomGeometric:
    def test_connected_component_returned(self):
        graph = random_geometric_network(300, radius=1500.0, seed=2)
        assert is_connected(graph)
        assert graph.num_nodes > 100

    def test_edges_within_radius(self):
        graph = random_geometric_network(200, radius=1200.0, seed=3)
        for u, v, w in graph.edges():
            assert w <= 1200.0 * (1 + 1e-9)
            assert math.isclose(w, graph.euclidean(u, v))
