"""Tests for extended tuples and distance tuples."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.graph.tuples import (
    BaseTuple,
    CellDirectoryTuple,
    DistanceTuple,
    HypTuple,
    LdmTuple,
)


def adjacency_strategy():
    return st.lists(
        st.tuples(st.integers(min_value=0, max_value=10**6),
                  st.floats(min_value=0, max_value=1e9, allow_nan=False)),
        max_size=8,
        unique_by=lambda t: t[0],
    ).map(lambda pairs: tuple(sorted(pairs)))


class TestBaseTuple:
    def test_from_graph(self, diamond):
        tup = BaseTuple.from_graph(diamond, 0)
        assert tup.node_id == 0
        assert tup.adjacency == ((1, 1.0), (4, 2.0))

    def test_adjacency_canonical_order(self, diamond):
        # Adjacency must be sorted by neighbor id regardless of insertion.
        tup = BaseTuple.from_graph(diamond, 3)
        assert [nbr for nbr, _ in tup.adjacency] == sorted(
            nbr for nbr, _ in tup.adjacency
        )

    @given(
        st.integers(min_value=0, max_value=10**9),
        st.floats(allow_nan=False, allow_infinity=False),
        st.floats(allow_nan=False, allow_infinity=False),
        adjacency_strategy(),
    )
    def test_roundtrip(self, node_id, x, y, adjacency):
        tup = BaseTuple(node_id, x, y, adjacency)
        assert BaseTuple.decode(tup.encode()) == tup

    def test_trailing_bytes_rejected(self):
        tup = BaseTuple(1, 0.0, 0.0, ())
        with pytest.raises(EncodingError):
            BaseTuple.decode(tup.encode() + b"\x00")

    def test_encoding_deterministic(self):
        a = BaseTuple(5, 1.0, 2.0, ((7, 3.0),))
        b = BaseTuple(5, 1.0, 2.0, ((7, 3.0),))
        assert a.encode() == b.encode()


class TestLdmTuple:
    def test_uncompressed_roundtrip(self):
        tup = LdmTuple(3, 1.0, 2.0, ((4, 1.5),), codes=(1, 2, 4095), bits=12)
        decoded = LdmTuple.decode(tup.encode())
        assert decoded == tup
        assert not decoded.is_compressed

    def test_compressed_roundtrip(self):
        tup = LdmTuple(3, 1.0, 2.0, (), codes=None, ref_id=9, eps_units=4)
        decoded = LdmTuple.decode(tup.encode())
        assert decoded.is_compressed
        assert decoded.ref_id == 9
        assert decoded.eps_units == 4

    def test_must_have_exactly_one_representation(self):
        with pytest.raises(EncodingError):
            LdmTuple(1, 0.0, 0.0, (), codes=None)
        with pytest.raises(EncodingError):
            LdmTuple(1, 0.0, 0.0, (), codes=(1,), ref_id=2, eps_units=0)
        with pytest.raises(EncodingError):
            LdmTuple(1, 0.0, 0.0, (), codes=None, ref_id=2)  # no eps

    def test_codes_size_uses_bit_packing(self):
        # 100 codes at 12 bits should cost ~150 bytes, far below 100 f64s.
        wide = LdmTuple(1, 0.0, 0.0, (), codes=tuple([7] * 100), bits=12)
        assert len(wide.encode()) < 200

    @given(st.lists(st.integers(min_value=0, max_value=255), max_size=32))
    def test_roundtrip_any_codes(self, codes):
        tup = LdmTuple(2, 0.0, 0.0, (), codes=tuple(codes), bits=8)
        assert LdmTuple.decode(tup.encode()).codes == tuple(codes)


class TestHypTuple:
    def test_roundtrip(self):
        tup = HypTuple(11, 3.0, 4.0, ((12, 2.0),), cell_id=42, is_border=True)
        decoded = HypTuple.decode(tup.encode())
        assert decoded == tup
        assert decoded.cell_id == 42
        assert decoded.is_border

    def test_inner_node(self):
        tup = HypTuple(11, 3.0, 4.0, (), cell_id=0, is_border=False)
        assert not HypTuple.decode(tup.encode()).is_border


class TestDistanceTuple:
    @given(
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=0, max_value=10**9),
        st.floats(min_value=0, allow_nan=False, allow_infinity=False),
    )
    def test_roundtrip(self, a, b, d):
        tup = DistanceTuple(a, b, d)
        assert DistanceTuple.decode(tup.encode()) == tup

    def test_key_ordering(self):
        assert DistanceTuple(1, 2, 9.0) < DistanceTuple(1, 3, 0.0)
        assert DistanceTuple(1, 2, 9.0).key == (1, 2)

    def test_distance_not_compared(self):
        assert DistanceTuple(1, 2, 5.0) == DistanceTuple(1, 2, 5.0)


class TestCellDirectoryTuple:
    def test_roundtrip(self):
        tup = CellDirectoryTuple(7, (1, 5, 9))
        assert CellDirectoryTuple.decode(tup.encode()) == tup

    def test_members_must_be_sorted(self):
        with pytest.raises(EncodingError):
            CellDirectoryTuple(7, (5, 1))

    def test_empty_cell(self):
        tup = CellDirectoryTuple(3, ())
        assert CellDirectoryTuple.decode(tup.encode()).member_ids == ()


class TestTrianglePayloadBatch:
    """Batch triangle encoders match the per-tuple reference bit for bit."""

    def _ids_and_matrix(self, ids, seed=0):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = len(ids)
        return np.asarray(rng.random((n, n)) * 1e4)

    @pytest.mark.parametrize("ids", [
        [0, 1, 2],
        [100, 127, 128, 500],                      # varint width boundary
        [5, 127, 128, 16383, 16384, 2097151, 2097152],
        list(range(40, 220, 7)),
        [0],                                       # no pairs at all
    ])
    def test_iter_triangle_payloads_matches_encode(self, ids):
        from repro.graph.tuples import iter_triangle_payloads

        matrix = self._ids_and_matrix(ids)
        got = list(iter_triangle_payloads(ids, matrix))
        want = [
            DistanceTuple(ids[i], ids[j], float(matrix[i, j])).encode()
            for i in range(len(ids)) for j in range(i + 1, len(ids))
        ]
        assert got == want

    @pytest.mark.parametrize("hash_name", ["sha1", "sha256"])
    def test_triangle_leaf_digests_match_leaf_digest(self, hash_name):
        from repro.graph.tuples import iter_triangle_payloads, triangle_leaf_digests
        from repro.merkle.tree import leaf_digest

        ids = [3, 90, 127, 128, 129, 4000, 16384, 70000]
        matrix = self._ids_and_matrix(ids, seed=4)
        got = triangle_leaf_digests(ids, matrix, hash_name)
        want = b"".join(
            leaf_digest(p, hash_name) for p in iter_triangle_payloads(ids, matrix)
        )
        assert got == want
