"""Tests for connectivity utilities."""

from repro.graph.components import connected_components, is_connected, largest_component
from repro.graph.graph import SpatialGraph


def two_islands():
    g = SpatialGraph()
    for i in range(6):
        g.add_node(i, float(i), 0.0)
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 2, 1.0)
    g.add_edge(3, 4, 1.0)
    return g  # component {0,1,2}, {3,4}, {5}


class TestComponents:
    def test_components_sorted_by_size(self):
        comps = connected_components(two_islands())
        assert [len(c) for c in comps] == [3, 2, 1]
        assert comps[0] == {0, 1, 2}

    def test_is_connected(self):
        assert not is_connected(two_islands())
        g = SpatialGraph()
        g.add_node(0)
        assert is_connected(g)
        assert is_connected(SpatialGraph())  # vacuous

    def test_largest_component(self):
        largest = largest_component(two_islands())
        assert set(largest.node_ids()) == {0, 1, 2}
        assert largest.num_edges == 2

    def test_largest_component_identity_when_connected(self, grid5):
        assert largest_component(grid5) is grid5

    def test_empty_graph(self):
        assert largest_component(SpatialGraph()).num_nodes == 0
        assert connected_components(SpatialGraph()) == []

    def test_deep_chain_no_recursion_error(self):
        g = SpatialGraph()
        n = 30_000
        for i in range(n):
            g.add_node(i)
        for i in range(n - 1):
            g.add_edge(i, i + 1, 1.0)
        assert is_connected(g)
