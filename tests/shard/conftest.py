"""Shard-layer fixtures: one shared 3-shard build plus stitch helpers.

``make_composite`` mirrors the router's honest assembly (segment by the
global shortest path, answer each segment from its shard's provider,
stitch) but is deliberately reimplemented in a handful of lines here so
adversary tests can start from a known-good composite and mutate it —
the router itself is exercised in ``tests/service/test_router.py``.
"""

from __future__ import annotations

import random

import pytest

from repro.core.framework import ServiceProvider
from repro.crypto.signer import NullSigner
from repro.shard import CompositeResponse, CompositeSegment, build_shards
from repro.shortestpath.kernel import indexed_shortest_path


@pytest.fixture(scope="package")
def signer():
    return NullSigner()


@pytest.fixture(scope="package")
def build3(road300, signer):
    """A 3-shard DIJ build of the shared road network."""
    return build_shards(road300, signer, num_shards=3)


def plan_segments(graph, manifest, source, target):
    """The router's segmentation rule: split the global path at
    ownership changes; returns ``[(shard_id, seg_source, seg_target)]``."""
    path = indexed_shortest_path(graph.to_index(), source, target)
    owners = [manifest.shard_of(node_id) for node_id in path.nodes]
    segments = []
    start = 0
    for position in range(1, len(path.nodes)):
        if owners[position] != owners[position - 1]:
            segments.append((owners[start], path.nodes[start],
                             path.nodes[position]))
            start = position
    segments.append((owners[start], path.nodes[start], path.nodes[-1]))
    return segments


def make_composite(providers, segments):
    """Assemble an honest composite from per-shard provider answers."""
    stitched: "list[int]" = []
    total = 0.0
    parts = []
    for shard_id, seg_source, seg_target in segments:
        response = providers[shard_id].answer(seg_source, seg_target)
        stitched.extend(response.path_nodes if not stitched
                        else response.path_nodes[1:])
        total += response.path_cost
        parts.append(CompositeSegment(shard_id, response.encode()))
    source, target = segments[0][1], segments[-1][2]
    return CompositeResponse(source, target, tuple(stitched), total,
                             tuple(parts))


class StitchCase:
    """A deterministic cross-shard query with its honest composite."""

    def __init__(self, graph, build):
        self.graph = graph
        self.build = build
        self.manifest = build.manifest
        self.providers = [ServiceProvider(m) for m in build.methods]
        rng = random.Random(11)
        nodes = sorted(graph.node_ids())
        for _ in range(500):
            source, target = rng.sample(nodes, 2)
            segments = plan_segments(graph, self.manifest, source, target)
            if len(segments) >= 2:
                self.source, self.target = source, target
                self.segments = segments
                self.composite = make_composite(self.providers, segments)
                return
        raise AssertionError("no cross-shard pair found in 500 draws")


@pytest.fixture(scope="package")
def case(road300, build3) -> StitchCase:
    return StitchCase(road300, build3)


@pytest.fixture(scope="package")
def composite_maker():
    """The :func:`make_composite` helper, reachable without package
    imports (the test tree has no ``__init__.py`` files)."""
    return make_composite
