"""Composite verification and the cross-shard adversary battery.

Every mutation here must come back as a *typed* verdict — a
``VerificationResult`` whose reason is a registered code — never an
untyped exception escaping ``verify_composite``.
"""

from __future__ import annotations

import dataclasses

from repro.api import codes
from repro.core.framework import distances_close
from repro.shard import (
    CompositeResponse,
    CompositeSegment,
    build_shards,
    verify_composite,
)
from repro.shortestpath.kernel import indexed_shortest_path

from repro.crypto.signer import NullSigner

# The package ``signer`` fixture is a default-keyed NullSigner; any
# default instance verifies what it signed.
_OWNER = NullSigner()


def _verify(case, composite_bytes, *, manifest=None, source=None,
            target=None, **kwargs):
    return verify_composite(
        case.source if source is None else source,
        case.target if target is None else target,
        composite_bytes,
        case.manifest if manifest is None else manifest,
        _OWNER.verify,
        **kwargs,
    )


def _expect(case, composite_bytes, reason, **kwargs):
    verdict = _verify(case, composite_bytes, **kwargs)
    assert not verdict.ok, "mutation unexpectedly verified"
    assert verdict.reason == reason, \
        f"expected {reason}, got {verdict.reason}: {verdict.detail}"
    assert verdict.reason in codes.VERIFICATION_REASONS
    return verdict


class TestHonestComposite:
    def test_roundtrip(self, case):
        blob = case.composite.encode()
        again = CompositeResponse.decode(blob)
        assert again == case.composite

    def test_verifies_end_to_end(self, case):
        verdict = _verify(case, case.composite.encode())
        assert verdict.ok, f"{verdict.reason}: {verdict.detail}"

    def test_cost_matches_single_box(self, case):
        """Acceptance: the stitched cost equals the unsharded answer."""
        path = indexed_shortest_path(case.graph.to_index(), case.source,
                                     case.target)
        assert distances_close(case.composite.path_cost, path.cost)
        assert case.composite.path_nodes == path.nodes

    def test_manifest_verified_skip_still_checks_segments(self, case):
        verdict = _verify(case, case.composite.encode(),
                          manifest_verified=True)
        assert verdict.ok


class TestMalformedComposite:
    def test_garbage_bytes(self, case):
        _expect(case, b"not a composite at all",
                codes.MALFORMED_RESPONSE)

    def test_truncation(self, case):
        blob = case.composite.encode()
        _expect(case, blob[: len(blob) // 2], codes.MALFORMED_RESPONSE)

    def test_single_segment_rejected(self, case):
        lone = dataclasses.replace(case.composite,
                                   segments=case.composite.segments[:1])
        _expect(case, lone.encode(), codes.MALFORMED_RESPONSE)

    def test_endpoint_mismatch(self, case):
        _expect(case, case.composite.encode(), codes.ENDPOINT_MISMATCH,
                source=case.target, target=case.source)


class TestAdversaryBattery:
    def test_tampered_segment_proof(self, case):
        """Flip one byte deep inside a segment's response: the per-shard
        signature (or its Merkle pins) must catch it."""
        victim = case.composite.segments[0]
        raw = bytearray(victim.response_bytes)
        raw[-1] ^= 0x01
        segments = (CompositeSegment(victim.shard_id, bytes(raw)),) + \
            case.composite.segments[1:]
        mutated = dataclasses.replace(case.composite, segments=segments)
        verdict = _verify(case, mutated.encode())
        assert not verdict.ok
        assert verdict.reason in codes.VERIFICATION_REASONS

    def test_swapped_shard_roots(self, case):
        """Claim segment 0 came from segment 1's shard: the manifest's
        digest pin for that shard no longer matches."""
        first, second = case.composite.segments[0], case.composite.segments[1]
        segments = (CompositeSegment(second.shard_id, first.response_bytes),
                    CompositeSegment(first.shard_id, second.response_bytes),
                    ) + case.composite.segments[2:]
        mutated = dataclasses.replace(case.composite, segments=segments)
        _expect(case, mutated.encode(), codes.SHARD_DESCRIPTOR_MISMATCH)

    def test_swapped_response_bytes(self, case):
        first, second = case.composite.segments[0], case.composite.segments[1]
        segments = (CompositeSegment(first.shard_id, second.response_bytes),
                    CompositeSegment(second.shard_id, first.response_bytes),
                    ) + case.composite.segments[2:]
        mutated = dataclasses.replace(case.composite, segments=segments)
        _expect(case, mutated.encode(), codes.SHARD_DESCRIPTOR_MISMATCH)

    def test_unknown_shard_id(self, case):
        victim = case.composite.segments[0]
        segments = (CompositeSegment(99, victim.response_bytes),) + \
            case.composite.segments[1:]
        mutated = dataclasses.replace(case.composite, segments=segments)
        _expect(case, mutated.encode(), codes.UNKNOWN_SHARD)

    def test_junction_not_declared_boundary(self, case):
        """Strip the boundary declarations from the manifest: the honest
        junction is suddenly illegal, so the stitch must be refused.
        (``manifest_verified=True`` models a forged-but-accepted map;
        with a real signature check the strip itself already fails.)"""
        stripped = dataclasses.replace(
            case.manifest,
            entries=tuple(dataclasses.replace(entry, boundary=())
                          for entry in case.manifest.entries),
        )
        _expect(case, case.composite.encode(), codes.JUNCTION_MISMATCH,
                manifest=stripped, manifest_verified=True)

    def test_adjacent_segments_same_shard(self, case):
        """An intra-shard answer split in two must not masquerade as a
        cross-shard stitch."""
        shard_id = case.composite.segments[0].shard_id
        members = case.build.plan.members[shard_id]
        a, b, c = members[0], members[len(members) // 2], members[-1]
        provider = case.providers[shard_id]
        r1, r2 = provider.answer(a, b), provider.answer(b, c)
        stitched = r1.path_nodes + r2.path_nodes[1:]
        fake = CompositeResponse(
            a, c, stitched, r1.path_cost + r2.path_cost,
            (CompositeSegment(shard_id, r1.encode()),
             CompositeSegment(shard_id, r2.encode())),
        )
        _expect(case, fake.encode(), codes.JUNCTION_MISMATCH,
                source=a, target=c)

    def test_stale_descriptor_replayed_among_fresh(self, case, road300,
                                                   signer, composite_maker):
        """Rebuild after a weight change, then smuggle one pre-update
        segment in next to fresh ones: the fresh manifest's digest pin
        must reject the stale shard descriptor."""
        mutated_graph = road300.copy()
        u, v, w = next(iter(mutated_graph.edges()))
        mutated_graph.update_edge_weight(u, v, w * 2.0)
        fresh = build_shards(mutated_graph, signer,
                             num_shards=case.build.plan.num_shards)
        assert fresh.manifest.version > case.manifest.version
        from repro.core.framework import ServiceProvider
        fresh_providers = [ServiceProvider(m) for m in fresh.methods]
        replayed = composite_maker(fresh_providers, case.segments)
        stale = case.composite.segments[0]
        segments = (stale,) + replayed.segments[1:]
        mutated = dataclasses.replace(replayed, segments=segments)
        _expect(case, mutated.encode(), codes.SHARD_DESCRIPTOR_MISMATCH,
                manifest=fresh.manifest)

    def test_inflated_total_cost(self, case):
        mutated = dataclasses.replace(case.composite,
                                      path_cost=case.composite.path_cost * 1.1)
        _expect(case, mutated.encode(), codes.COST_MISMATCH)

    def test_altered_claimed_path(self, case):
        nodes = list(case.composite.path_nodes)
        nodes[len(nodes) // 2], nodes[-1] = nodes[-1], nodes[len(nodes) // 2]
        mutated = dataclasses.replace(case.composite,
                                      path_nodes=tuple(nodes))
        _expect(case, mutated.encode(), codes.STITCH_MISMATCH)

    def test_cycle_over_cut_edge(self, case):
        """u -> v -> u across a cut edge chains perfectly at the junction
        but repeats a node: PATH_CYCLE, not an infinite loop."""
        plan = case.build.plan
        u, v, _ = plan.cut_edges[0]
        su, sv = plan.shard_of(u), plan.shard_of(v)
        r1 = case.providers[su].answer(u, v)
        r2 = case.providers[sv].answer(v, u)
        stitched = r1.path_nodes + r2.path_nodes[1:]
        fake = CompositeResponse(
            u, u, stitched, r1.path_cost + r2.path_cost,
            (CompositeSegment(su, r1.encode()),
             CompositeSegment(sv, r2.encode())),
        )
        _expect(case, fake.encode(), codes.PATH_CYCLE,
                source=u, target=u)

    def test_all_battery_reasons_are_registered(self):
        for reason in (codes.MALFORMED_RESPONSE, codes.ENDPOINT_MISMATCH,
                       codes.UNKNOWN_SHARD, codes.SHARD_DESCRIPTOR_MISMATCH,
                       codes.JUNCTION_MISMATCH, codes.STITCH_MISMATCH,
                       codes.COST_MISMATCH, codes.PATH_CYCLE,
                       codes.MALFORMED_MANIFEST):
            assert reason in codes.VERIFICATION_REASONS
