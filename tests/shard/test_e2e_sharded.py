"""Acceptance: the full sharded roundtrip over real HTTP.

Shards are saved to disk, loaded back, served by per-shard HTTP
workers; a :class:`ShardRouter` fronts them over pooled transports and
is itself served over HTTP.  A :class:`RemoteClient` holding only the
owner's public key and the manifest verifies every answer — and each
answer matches the single-box result: same total distance, identical
path, and intra-shard replies byte-for-byte equal to the worker's own.
"""

from __future__ import annotations

import contextlib
import random

import pytest

from repro.api.client import RemoteClient
from repro.api.transport import HttpTransport, PooledHttpTransport
from repro.core.framework import distances_close
from repro.service.http import ProofHttpServer
from repro.service.router import ShardRouter
from repro.service.server import ProofServer
from repro.shard import load_manifest, save_manifest
from repro.shortestpath.kernel import indexed_shortest_path
from repro.store.artifact import load_method, save_method


@pytest.fixture(scope="module")
def stack(road300, build3, signer, tmp_path_factory):
    """Disk roundtrip + two HTTP layers, torn down in reverse order."""
    root = tmp_path_factory.mktemp("sharded")
    manifest_path = root / "net.manifest.rspm"
    save_manifest(build3.manifest, manifest_path)
    shard_paths = []
    for shard_id, method in enumerate(build3.methods):
        path = root / f"net.shard{shard_id}.rspv"
        save_method(method, path)
        shard_paths.append(path)

    with contextlib.ExitStack() as resources:
        workers = []
        for path in shard_paths:
            server = ProofServer(load_method(path), cache_size=64)
            workers.append(resources.enter_context(
                ProofHttpServer(server.dispatcher())))
        transports = [
            resources.enter_context(PooledHttpTransport(worker.url))
            for worker in workers
        ]
        manifest = load_manifest(manifest_path)
        router = resources.enter_context(
            ShardRouter(manifest, transports, road300,
                        manifest_bytes=manifest_path.read_bytes()[4:]))
        front = resources.enter_context(ProofHttpServer(router))
        transport = resources.enter_context(HttpTransport(front.url))
        yield {
            "client": RemoteClient(transport, signer.verify),
            "router": router,
            "workers": workers,
            "graph": road300,
            "manifest": manifest,
        }


class TestShardedRoundtrip:
    def test_many_pairs_verify_and_match_single_box(self, stack):
        graph = stack["graph"]
        index = graph.to_index()
        nodes = sorted(graph.node_ids())
        rng = random.Random(2010)
        client = stack["client"]
        cross = intra = 0
        for _ in range(25):
            source, target = rng.sample(nodes, 2)
            result = client.query(source, target)
            assert result.ok, \
                f"({source},{target}): {result.verdict.reason}: " \
                f"{result.verdict.detail}"
            truth = indexed_shortest_path(index, source, target)
            path_nodes, path_cost = result.path
            assert distances_close(path_cost, truth.cost), (source, target)
            assert path_nodes == truth.nodes, (source, target)
            if result.composite:
                cross += 1
            else:
                intra += 1
        assert cross > 0, "workload never crossed a shard"
        assert intra > 0, "workload never stayed inside a shard"

    def test_intra_shard_reply_is_byte_identical_to_worker(self, stack):
        """The router proxies single-shard answers verbatim."""
        manifest = stack["manifest"]
        shard_id = 0
        entry = manifest.entries[shard_id]
        lo, hi = entry.id_ranges[0]
        router_result = stack["client"].query(lo, hi)
        if router_result.composite:
            pytest.skip("optimal route for this pair leaves the shard")
        with HttpTransport(stack["workers"][shard_id].url) as direct:
            worker_result = RemoteClient(
                direct,
                stack["client"].client.verify_signature).query(lo, hi)
        assert router_result.ok and worker_result.ok
        assert router_result.response_bytes == worker_result.response_bytes

    def test_batch_roundtrip(self, stack):
        nodes = sorted(stack["graph"].node_ids())
        rng = random.Random(7)
        pairs = [tuple(rng.sample(nodes, 2)) for _ in range(10)]
        results = stack["client"].query_batch(pairs)
        assert len(results) == 10
        index = stack["graph"].to_index()
        for (source, target), result in zip(pairs, results):
            assert result.ok, result.verdict.reason
            truth = indexed_shortest_path(index, source, target)
            assert distances_close(result.path[1], truth.cost)

    def test_manifest_fetch_over_http(self, stack):
        manifest, raw = stack["client"].fetch_manifest()
        assert manifest == stack["manifest"]
        assert raw == stack["router"].manifest_bytes
