"""Shard manifest: roundtrip, signatures, decode strictness, bit-flips."""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import codes
from repro.crypto.signer import NullSigner
from repro.errors import ArtifactError, EncodingError
from repro.shard import (
    ShardEntry,
    ShardManifest,
    is_manifest,
    load_manifest,
    manifest_info,
    save_manifest,
    sign_manifest,
    verify_manifest,
)
from repro.shard.manifest import DIGEST_BYTES, MANIFEST_MAGIC


def _digest(fill: int = 0xAB) -> bytes:
    return bytes([fill]) * DIGEST_BYTES


def _toy_manifest(signer=None) -> ShardManifest:
    manifest = ShardManifest(
        method="DIJ",
        version=7,
        strategy="hilbert",
        entries=(
            ShardEntry(_digest(0x11), ((0, 4), (9, 12)), (4, 9)),
            ShardEntry(_digest(0x22), ((5, 8),), (5, 8)),
        ),
    )
    if signer is not None:
        manifest = sign_manifest(manifest, signer)
    return manifest


class TestRoundTrip:
    def test_encode_decode_equality(self, build3):
        manifest = build3.manifest
        again = ShardManifest.decode(manifest.encode())
        assert again == manifest

    def test_toy_roundtrip_preserves_signature(self):
        manifest = _toy_manifest(NullSigner())
        assert manifest.signature
        assert ShardManifest.decode(manifest.encode()) == manifest

    def test_shard_of_and_ownership(self):
        manifest = _toy_manifest()
        assert manifest.shard_of(3) == 0
        assert manifest.shard_of(6) == 1
        assert manifest.shard_of(9) == 0
        assert manifest.shard_of(10 ** 9) is None
        entry = manifest.entries[0]
        assert entry.owns(12) and not entry.owns(13)
        assert entry.is_boundary(4) and not entry.is_boundary(3)
        assert entry.num_nodes == 9
        assert manifest.num_boundary_nodes == 4


class TestSignature:
    def test_verify_ok(self, build3, signer):
        verdict = verify_manifest(build3.manifest, signer.verify)
        assert verdict.ok, verdict.reason

    def test_wrong_signer_rejected(self, build3):
        attacker = NullSigner(b"attacker-mac-key")
        verdict = verify_manifest(build3.manifest, attacker.verify)
        assert not verdict.ok
        assert verdict.reason == codes.BAD_SIGNATURE

    def test_unsigned_rejected(self, signer):
        verdict = verify_manifest(_toy_manifest(), signer.verify)
        assert not verdict.ok
        assert verdict.reason == codes.BAD_SIGNATURE

    def test_tampered_field_keeps_old_signature(self):
        signer = NullSigner()
        manifest = _toy_manifest(signer)
        forged = dataclasses.replace(manifest, version=manifest.version + 1)
        verdict = verify_manifest(forged, signer.verify)
        assert not verdict.ok
        assert verdict.reason == codes.BAD_SIGNATURE

    def test_version_floor(self, build3, signer):
        verdict = verify_manifest(build3.manifest, signer.verify,
                                  min_version=build3.manifest.version + 1)
        assert not verdict.ok
        assert verdict.reason == codes.STALE_DESCRIPTOR


class TestDecodeStrictness:
    # encode() is a dumb serializer; decode() carries the strictness, so
    # a hostile manifest is caught wherever it enters — file or wire.
    def test_rejects_overlapping_ranges_within_entry(self):
        blob = ShardManifest(
            "DIJ", 1, "hilbert",
            (ShardEntry(_digest(), ((0, 5), (3, 8)), ()),),
        ).encode()
        with pytest.raises(EncodingError, match="ascending"):
            ShardManifest.decode(blob)

    def test_rejects_cross_shard_overlap(self):
        blob = ShardManifest(
            "DIJ", 1, "hilbert",
            (ShardEntry(_digest(0x11), ((0, 5),), ()),
             ShardEntry(_digest(0x22), ((3, 8),), ())),
        ).encode()
        with pytest.raises(EncodingError, match="overlapping"):
            ShardManifest.decode(blob)

    def test_rejects_boundary_outside_ranges(self):
        blob = ShardManifest(
            "DIJ", 1, "hilbert",
            (ShardEntry(_digest(), ((0, 5),), (9,)),),
        ).encode()
        with pytest.raises(EncodingError, match="outside"):
            ShardManifest.decode(blob)

    def test_rejects_short_digest(self):
        blob = ShardManifest(
            "DIJ", 1, "hilbert",
            (ShardEntry(b"\x00" * 8, ((0, 5),), ()),),
        ).encode()
        with pytest.raises(EncodingError):
            ShardManifest.decode(blob)

    def test_rejects_zero_shards(self):
        blob = ShardManifest("DIJ", 1, "hilbert", ()).encode()
        with pytest.raises(EncodingError, match="covers no shards"):
            ShardManifest.decode(blob)

    def test_rejects_truncation(self):
        blob = _toy_manifest(NullSigner()).encode()
        for cut in (0, 1, len(blob) // 2, len(blob) - 1):
            with pytest.raises(EncodingError):
                ShardManifest.decode(blob[:cut])

    def test_rejects_future_format_version(self):
        blob = bytearray(_toy_manifest().encode())
        blob[0] = 0x63
        with pytest.raises(EncodingError):
            ShardManifest.decode(bytes(blob))


class TestFiles:
    def test_save_load_info(self, tmp_path, build3, signer):
        path = tmp_path / "net.manifest.rspm"
        size = save_manifest(build3.manifest, path)
        assert size == path.stat().st_size
        assert is_manifest(path)
        loaded = load_manifest(path)
        assert loaded == build3.manifest
        assert verify_manifest(loaded, signer.verify).ok

        info = manifest_info(path)
        assert info["kind"] == "shard-manifest"
        assert info["method"] == "DIJ"
        assert info["shards"] == 3
        assert info["version"] == build3.manifest.version
        assert len(info["entries"]) == 3
        for shard_id, row in enumerate(info["entries"]):
            assert row["shard"] == shard_id
            assert bytes.fromhex(row["descriptor_digest"]) == \
                build3.manifest.entries[shard_id].descriptor_digest

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bogus.rspm"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        assert not is_manifest(path)
        with pytest.raises(ArtifactError, match="bad magic"):
            load_manifest(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError, match="cannot read"):
            load_manifest(tmp_path / "absent.rspm")


class TestBitFlipSweep:
    def test_every_flipped_byte_is_rejected_or_fails_verification(
            self, tmp_path, signer):
        """Satellite battery: XOR each byte of the manifest file with 0xFF;
        every mutant must either fail to load (typed ArtifactError) or load
        and then fail signature verification — never verify, never blow up
        with an untyped exception."""
        manifest = _toy_manifest(NullSigner())
        path = tmp_path / "m.rspm"
        save_manifest(manifest, path)
        pristine = path.read_bytes()
        assert pristine.startswith(MANIFEST_MAGIC)

        survived = 0
        for offset in range(len(pristine)):
            mutant = bytearray(pristine)
            mutant[offset] ^= 0xFF
            target = tmp_path / "mutant.rspm"
            target.write_bytes(bytes(mutant))
            try:
                loaded = load_manifest(target)
            except ArtifactError:
                continue
            verdict = verify_manifest(loaded, NullSigner().verify)
            assert not verdict.ok, \
                f"byte {offset} flip verified against the owner key"
            assert verdict.reason in codes.VERIFICATION_REASONS
            survived += 1
        # Some flips (e.g. inside the signature blob) decode fine; they must
        # all have landed in the signature-rejection bucket above.
        assert survived < len(pristine)
