"""Partition planning: coverage, balance, cut overlay, core+halo graphs."""

from __future__ import annotations

import math

import pytest

from repro.errors import GraphError
from repro.graph.synthetic import grid_network
from repro.shard import (
    build_shards,
    descriptor_digest,
    plan_shards,
    shard_subgraph,
)
from repro.shortestpath.kernel import indexed_shortest_path


class TestPlan:
    def test_members_partition_the_node_set(self, road300):
        plan = plan_shards(road300, 3)
        flat = [n for members in plan.members for n in members]
        assert sorted(flat) == sorted(road300.node_ids())
        assert len(set(flat)) == road300.num_nodes

    def test_balanced_and_sorted(self, road300):
        plan = plan_shards(road300, 3)
        sizes = [len(members) for members in plan.members]
        assert max(sizes) - min(sizes) <= 1
        for members in plan.members:
            assert list(members) == sorted(members)

    def test_shard_of_agrees_with_members(self, road300):
        plan = plan_shards(road300, 4)
        for shard_id, members in enumerate(plan.members):
            for node_id in members:
                assert plan.shard_of(node_id) == shard_id
        with pytest.raises(GraphError, match="no shard"):
            plan.shard_of(10 ** 9)

    def test_cut_edges_cross_and_feed_boundaries(self, road300):
        plan = plan_shards(road300, 3)
        assert plan.cut_edges, "3 shards of a connected graph must cut edges"
        for u, v, _ in plan.cut_edges:
            assert u < v
            su, sv = plan.shard_of(u), plan.shard_of(v)
            assert su != sv
            assert u in plan.boundary[su]
            assert v in plan.boundary[sv]
        cut_endpoints = {n for u, v, _ in plan.cut_edges for n in (u, v)}
        for nodes in plan.boundary:
            assert set(nodes) <= cut_endpoints

    def test_grid_strategy_also_covers(self, road300):
        plan = plan_shards(road300, 4, strategy="grid")
        assert plan.num_shards == 4
        flat = [n for members in plan.members for n in members]
        assert sorted(flat) == sorted(road300.node_ids())

    def test_single_shard_has_no_cut(self, road300):
        plan = plan_shards(road300, 1)
        assert plan.num_shards == 1
        assert plan.cut_edges == ()
        assert plan.boundary == ((),)

    def test_validation(self, grid5):
        with pytest.raises(GraphError, match=">= 1"):
            plan_shards(grid5, 0)
        with pytest.raises(GraphError, match="cannot cut"):
            plan_shards(grid5, grid5.num_nodes + 1)
        with pytest.raises(GraphError, match="unknown partition strategy"):
            plan_shards(grid5, 2, strategy="bogus")


class TestSubgraph:
    def test_core_plus_halo_no_halo_halo_edges(self, road300):
        plan = plan_shards(road300, 2)
        for shard_id in range(2):
            sub = shard_subgraph(road300, plan, shard_id)
            core = set(plan.members[shard_id])
            halo = set(sub.node_ids()) - core
            expected_halo = {
                v if plan.shard_of(u) == shard_id else u
                for u, v, _ in plan.cut_edges
                if shard_id in (plan.shard_of(u), plan.shard_of(v))
            }
            assert halo == expected_halo
            for u, v, w in sub.edges():
                assert u in core or v in core
                assert math.isclose(w, road300.neighbors(u)[v])
            assert sub.version == road300.version

    def test_cut_edges_live_in_both_shards(self, road300):
        plan = plan_shards(road300, 3)
        subs = [shard_subgraph(road300, plan, s) for s in range(3)]
        for u, v, w in plan.cut_edges:
            for shard_id in (plan.shard_of(u), plan.shard_of(v)):
                assert math.isclose(subs[shard_id].neighbors(u)[v], w)

    def test_out_of_range_shard(self, road300):
        plan = plan_shards(road300, 2)
        with pytest.raises(GraphError, match="out of range"):
            shard_subgraph(road300, plan, 2)

    def test_segment_distances_match_global(self, road300):
        """The soundness lemma, measured: every global-path segment costs
        exactly the same inside its shard's core+halo graph."""
        plan = plan_shards(road300, 3)
        subs = [shard_subgraph(road300, plan, s) for s in range(3)]
        indexes = [sub.to_index() for sub in subs]
        global_index = road300.to_index()
        nodes = sorted(road300.node_ids())
        checked = 0
        for source, target in [(nodes[0], nodes[-1]),
                               (nodes[7], nodes[-13]),
                               (nodes[len(nodes) // 3],
                                nodes[2 * len(nodes) // 3])]:
            path = indexed_shortest_path(global_index, source, target)
            owners = [plan.shard_of(n) for n in path.nodes]
            start = 0
            for position in range(1, len(path.nodes) + 1):
                if position == len(path.nodes) \
                        or owners[position] != owners[position - 1]:
                    seg_s, seg_t = path.nodes[start], \
                        path.nodes[min(position, len(path.nodes) - 1)]
                    if seg_s != seg_t:
                        shard_path = indexed_shortest_path(
                            indexes[owners[start]], seg_s, seg_t)
                        global_seg = indexed_shortest_path(
                            global_index, seg_s, seg_t)
                        assert math.isclose(shard_path.cost, global_seg.cost)
                        checked += 1
                    start = position
        assert checked >= 3


class TestBuildShards:
    def test_manifest_pins_every_descriptor(self, road300, build3):
        assert build3.num_shards == 3
        manifest = build3.manifest
        assert manifest.num_shards == 3
        assert manifest.method == "DIJ"
        assert manifest.version == road300.version
        for shard_id, method in enumerate(build3.methods):
            entry = manifest.entries[shard_id]
            assert entry.descriptor_digest == \
                descriptor_digest(method.descriptor.encode())
            assert entry.num_nodes == len(build3.plan.members[shard_id])
            assert entry.boundary == build3.plan.boundary[shard_id]

    def test_shard_methods_answer_their_core(self, build3):
        for shard_id, method in enumerate(build3.methods):
            members = build3.plan.members[shard_id]
            response = method.answer(members[0], members[len(members) // 2])
            assert response.path_nodes[0] == members[0]

    def test_other_method_kinds_build(self, signer):
        # LDM landmark vectors need each shard subgraph connected, which a
        # grid split in two guarantees; arbitrary road shards may not be.
        graph = grid_network(8, 8)
        build = build_shards(graph, signer, num_shards=2, method="LDM",
                             c=4)
        assert build.manifest.method == "LDM"
        assert build.num_shards == 2

    def test_grid_graph_two_shards(self, signer):
        graph = grid_network(6, 6)
        build = build_shards(graph, signer, num_shards=2)
        assert build.manifest.num_shards == 2
        assert build.plan.cut_edges
