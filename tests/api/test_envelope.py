"""Frame and message envelope round trips plus strict-decode rejections."""

from __future__ import annotations

import pytest

from repro.api import envelope as E
from repro.errors import ProtocolError, UnsupportedVersionError


ROUND_TRIP_MESSAGES = [
    E.HelloRequest((1,)),
    E.HelloRequest((1, 2, 7)),
    E.HelloReply(1, "DIJ", 42),
    E.QueryRequest(3, 9),
    E.QueryReply(b"\x00\x01payload", cached=True),
    E.QueryReply(b"", cached=False),
    E.QueryReply(b"", cached=True, composite=b"stitched-composite"),
    E.BatchQueryRequest(((1, 2), (3, 4), (5, 6))),
    E.BatchQueryReply((
        E.BatchItem(b"resp-a", True),
        E.BatchItem(None, False, "query-failed", "unknown node 77"),
        E.BatchItem(b"resp-b", False),
    )),
    E.BatchQueryReply((
        E.BatchItem(b"plain", False),
        E.BatchItem(b"composite-bytes", True),
    ), composite_slots=(1,)),
    E.DescriptorRequest(),
    E.DescriptorReply(b"descriptor-bytes"),
    E.ManifestRequest(),
    E.ManifestReply(b"signed-manifest-bytes"),
    E.UpdatePushRequest((
        E.WireUpdate("update-weight", 3, 9, 17.25),
        E.WireUpdate("add-edge", 1, 2, 4.0),
    )),
    E.UpdateReply("incremental", 2, 5, 0, 0.0125, 31),
    E.MetricsRequest(),
    E.MetricsReply(10, 1.5, 6, 4, 12345, 0.8, 2.5, 1, 0.02),
    E.MetricsReply(10, 1.5, 6, 4, 12345, 0.8, 2.5, 1, 0.02,
                   cache_evictions=3, cache_invalidations=1,
                   cache_entries=40, cache_capacity=64),
    E.ErrorMessage("malformed-frame", "bad magic"),
]


class TestFrameLayer:
    def test_frame_round_trip(self):
        frame_bytes = E.encode_frame(E.MSG_QUERY, b"abc")
        frame = E.decode_frame(frame_bytes)
        assert frame == E.Frame(E.PROTOCOL_VERSION, E.MSG_QUERY, b"abc")

    def test_magic_is_checked(self):
        with pytest.raises(ProtocolError, match="magic"):
            E.decode_frame(b"XSPV\x01\x02\x00")

    def test_empty_and_short_input(self):
        for data in (b"", b"R", b"RSP", b"RSPV"):
            with pytest.raises(ProtocolError):
                E.decode_frame(data)

    def test_non_bytes_input(self):
        with pytest.raises(ProtocolError, match="bytes"):
            E.decode_frame("RSPV not bytes")

    def test_trailing_bytes_rejected(self):
        frame_bytes = E.encode_frame(E.MSG_QUERY, b"abc") + b"x"
        with pytest.raises(ProtocolError):
            E.decode_frame(frame_bytes)

    def test_truncated_payload_rejected(self):
        frame_bytes = E.encode_frame(E.MSG_QUERY, b"abcdef")
        with pytest.raises(ProtocolError):
            E.decode_frame(frame_bytes[:-2])

    def test_unsupported_version(self):
        frame_bytes = E.encode_frame(E.MSG_QUERY, b"", version=99)
        with pytest.raises(UnsupportedVersionError) as excinfo:
            E.decode_frame(frame_bytes)
        assert excinfo.value.version == 99
        assert excinfo.value.accepted == (E.PROTOCOL_VERSION,)

    def test_accept_versions_is_honoured(self):
        frame_bytes = E.encode_frame(E.MSG_QUERY, b"q", version=3)
        frame = E.decode_frame(frame_bytes, accept_versions=(1, 3))
        assert frame.version == 3


class TestMessageRoundTrips:
    @pytest.mark.parametrize(
        "message", ROUND_TRIP_MESSAGES, ids=lambda m: type(m).__name__)
    def test_round_trip_via_frame(self, message):
        decoded = E.decode_message(E.decode_frame(message.to_frame()))
        assert decoded == message

    def test_metrics_reply_accepts_pre_cache_counter_layout(self):
        """Additive evolution: frames from builds without the cache
        counters still decode, with the counters defaulting to zero."""
        from repro.encoding import Encoder

        enc = Encoder()
        enc.write_uint(10).write_f64(1.5)
        enc.write_uint(6).write_uint(4).write_uint(12345)
        enc.write_f64(0.8).write_f64(2.5)
        enc.write_uint(1).write_f64(0.02)
        decoded = E.MetricsReply.decode(enc.getvalue())
        assert decoded.requests == 10
        assert decoded.cache_evictions == 0
        assert decoded.cache_capacity == 0

    def test_metrics_reply_partial_extension_rejected(self):
        """A frame cut inside the extension block is corrupt, not old."""
        full = E.MetricsReply(1, 1.0, 1, 0, 10, 0.1, 0.2, 0, 0.0,
                              cache_evictions=2).encode()
        with pytest.raises(ProtocolError):
            E.MetricsReply.decode(full[:-2])

    def test_query_reply_composite_tail_is_additive(self):
        """A pre-sharding QueryReply layout (no composite tail) decodes
        with ``composite`` empty, and an empty composite writes no tail —
        old and new builds exchange plain replies byte-identically."""
        plain = E.QueryReply(b"resp", cached=True)
        assert E.QueryReply.decode(plain.encode()).composite == b""
        bare = E.QueryReply(b"", cached=False)
        stitched = E.QueryReply(b"", cached=False, composite=b"xyz")
        assert len(bare.encode()) < len(stitched.encode())
        assert E.QueryReply.decode(stitched.encode()).composite == b"xyz"

    def test_batch_reply_composite_slots_force_shared_tail(self):
        """``composite_slots`` is the second tail field, so writing it
        forces the ``shared`` tail out too (possibly empty)."""
        reply = E.BatchQueryReply(
            (E.BatchItem(b"a", False), E.BatchItem(b"c", False)),
            composite_slots=(1,),
        )
        decoded = E.BatchQueryReply.decode(reply.encode())
        assert decoded.composite_slots == (1,)
        assert decoded.shared == b""

    def test_manifest_request_rejects_payload(self):
        with pytest.raises(ProtocolError):
            E.ManifestRequest.decode(b"\x01")

    def test_unknown_message_type(self):
        frame = E.Frame(E.PROTOCOL_VERSION, 0x55, b"")
        with pytest.raises(ProtocolError, match="unknown message type"):
            E.decode_message(frame)

    def test_payload_trailing_bytes_rejected(self):
        payload = E.QueryRequest(3, 9).encode() + b"\x00"
        with pytest.raises(ProtocolError):
            E.QueryRequest.decode(payload)

    def test_empty_request_messages_reject_payload(self):
        for cls in (E.DescriptorRequest, E.MetricsRequest):
            with pytest.raises(ProtocolError):
                cls.decode(b"\x00")

    def test_hello_with_no_versions_rejected(self):
        payload = E.HelloRequest((1,)).encode()[:1]  # count 1, no entries
        with pytest.raises(ProtocolError):
            E.HelloRequest.decode(payload)
        with pytest.raises(ProtocolError, match="no versions"):
            E.HelloRequest.decode(b"\x00")

    def test_empty_update_push_rejected(self):
        with pytest.raises(ProtocolError, match="no updates"):
            E.UpdatePushRequest.decode(b"\x00")

    def test_minimal_update_round_trips(self):
        # The smallest encodable update (empty kind, 11 bytes) must
        # survive its own round trip — kind validation is the
        # handler's job, not the decoder's.
        message = E.UpdatePushRequest((E.WireUpdate("", 1, 2, 0.0),) * 3)
        assert E.UpdatePushRequest.decode(message.encode()) == message

    def test_batch_count_guard(self):
        # A count far beyond the actual bytes must fail fast, not loop.
        payload = b"\xff\xff\xff\x7f"  # varint count ~256M, no pairs
        with pytest.raises(ProtocolError):
            E.BatchQueryRequest.decode(payload)


class TestErrorFrameHelper:
    def test_round_trip(self):
        message = E.decode_message(
            E.decode_frame(E.error_frame("internal-error", "boom")))
        assert message == E.ErrorMessage("internal-error", "boom")

    def test_unregistered_code_rejected(self):
        with pytest.raises(ProtocolError, match="unregistered"):
            E.error_frame("not-a-real-code", "nope")
