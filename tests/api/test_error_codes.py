"""The error taxonomy is complete, stable and actually used.

These tests are the enforcement arm of :mod:`repro.api.codes`: every
reason code any verify path can emit — found by scanning the source for
``VerificationResult.failure(...)`` call sites — must be declared in
the registry, and the codes the documentation promises must exist.
"""

from __future__ import annotations

import pathlib
import re

import pytest

from repro.api import codes
from repro.core.framework import Client, VerificationResult

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"

#: ``failure("some-code"`` with arbitrary whitespace, plus
#: ``failure(codes.SOME_CODE`` for call sites using the constants.
LITERAL_CALL = re.compile(r"failure\(\s*\n?\s*\"([a-z0-9-]+)\"", re.MULTILINE)
CONSTANT_CALL = re.compile(r"failure\(\s*\n?\s*codes\.([A-Z0-9_]+)", re.MULTILINE)


def emitted_reason_codes() -> set:
    """Every reason code the library can emit, from the source."""
    found = set()
    for path in SRC.rglob("*.py"):
        text = path.read_text(encoding="utf-8")
        found.update(LITERAL_CALL.findall(text))
        for constant in CONSTANT_CALL.findall(text):
            found.add(getattr(codes, constant))
    return found


class TestRegistryCompleteness:
    def test_every_emitted_reason_is_registered(self):
        emitted = emitted_reason_codes()
        assert emitted, "source scan found no failure() call sites"
        unregistered = emitted - codes.VERIFICATION_REASONS
        assert not unregistered, (
            f"reason codes emitted but missing from repro.api.codes: "
            f"{sorted(unregistered)}"
        )

    def test_registries_are_disjoint(self):
        # A code names either a proof verdict or a wire failure, never
        # both — the overlap would make ErrorMessage-to-verdict mapping
        # ambiguous.
        assert not (codes.VERIFICATION_REASONS & codes.WIRE_ERRORS)

    def test_all_codes_are_kebab_case(self):
        for code in codes.ALL_CODES:
            assert re.fullmatch(r"[a-z0-9]+(-[a-z0-9]+)*", code), code

    def test_success_reason_is_registered(self):
        assert VerificationResult.success().reason in codes.VERIFICATION_REASONS

    def test_documented_stable_codes_exist(self):
        # The compatibility surface promised in docs/architecture.md.
        for name in ("OK", "MALFORMED_RESPONSE", "UNKNOWN_METHOD",
                     "BAD_SIGNATURE", "STALE_DESCRIPTOR", "ROOT_MISMATCH",
                     "NOT_OPTIMAL", "E_MALFORMED_FRAME", "E_QUERY_FAILED"):
            assert hasattr(codes, name), name


class TestClientUsesTheTaxonomy:
    @pytest.fixture()
    def client(self, signer):
        return Client(signer.verify)

    def test_malformed_bytes(self, client):
        result = client.verify_bytes(1, 2, b"\x00garbage")
        assert not result.ok
        assert result.reason == codes.MALFORMED_RESPONSE

    def test_bytes_shim_matches_verify_bytes(self, client):
        assert (client.verify(1, 2, b"junk").reason
                == client.verify_bytes(1, 2, b"junk").reason)

    def test_unknown_method(self, client, dij, workload):
        vs, vt = workload[0]
        response = dij.answer(vs, vt)
        blob = response.encode().replace(b"\x03DIJ", b"\x03ZZZ", 1)
        result = client.verify_bytes(vs, vt, blob)
        assert not result.ok
        assert result.reason == codes.UNKNOWN_METHOD

    def test_honest_response_is_ok(self, client, dij, workload):
        vs, vt = workload[0]
        result = client.verify_bytes(vs, vt, dij.answer(vs, vt).encode())
        assert result.ok and result.reason == codes.OK

    def test_wrong_endpoint_reason(self, client, dij, workload):
        vs, vt = workload[0]
        result = client.verify_bytes(vs + 1, vt, dij.answer(vs, vt).encode())
        assert not result.ok
        assert result.reason in codes.VERIFICATION_REASONS
