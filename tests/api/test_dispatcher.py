"""Dispatcher behavior: routing, error taxonomy, update gating."""

from __future__ import annotations

import pytest

from repro.api import codes
from repro.api import envelope as E
from repro.core.proofs import QueryResponse


def roundtrip(dispatcher, message):
    """Dispatch one message, return the decoded reply message."""
    return E.decode_message(E.decode_frame(dispatcher.dispatch(message.to_frame())))


class TestHello:
    def test_negotiates_highest_shared_version(self, dispatcher, dij):
        reply = roundtrip(dispatcher, E.HelloRequest((1,)))
        assert reply == E.HelloReply(1, "DIJ", dij.descriptor.version)

    def test_no_shared_version_is_an_error(self, dispatcher):
        # The hello frame itself rides v1; the *listed* versions clash.
        reply = roundtrip(dispatcher, E.HelloRequest((41, 42)))
        assert isinstance(reply, E.ErrorMessage)
        assert reply.code == codes.E_UNSUPPORTED_VERSION


class TestQuery:
    def test_query_payload_matches_in_process_answer(self, dispatcher, dij,
                                                     workload):
        vs, vt = workload[0]
        reply = roundtrip(dispatcher, E.QueryRequest(vs, vt))
        assert isinstance(reply, E.QueryReply)
        assert reply.response_bytes == dij.answer(vs, vt).encode()

    def test_second_hit_is_cached(self, dispatcher, workload):
        vs, vt = workload[0]
        first = roundtrip(dispatcher, E.QueryRequest(vs, vt))
        second = roundtrip(dispatcher, E.QueryRequest(vs, vt))
        assert not first.cached and second.cached
        assert first.response_bytes == second.response_bytes

    def test_unknown_node_is_query_failed(self, dispatcher):
        reply = roundtrip(dispatcher, E.QueryRequest(10**9, 3))
        assert isinstance(reply, E.ErrorMessage)
        assert reply.code == codes.E_QUERY_FAILED

    def test_batch_mixes_responses_and_errors(self, dispatcher, workload):
        pairs = [workload[0], (10**9, 3), workload[1]]
        reply = roundtrip(dispatcher, E.BatchQueryRequest(tuple(pairs)))
        assert isinstance(reply, E.BatchQueryReply)
        assert [item.ok for item in reply.items] == [True, False, True]
        assert reply.items[1].error_code == codes.E_QUERY_FAILED
        for (vs, vt), item in zip(pairs, reply.items):
            if item.ok:
                decoded = QueryResponse.decode(item.response_bytes)
                assert (decoded.source, decoded.target) == (vs, vt)


class TestDescriptorAndMetrics:
    def test_descriptor_verbatim(self, dispatcher, dij):
        reply = roundtrip(dispatcher, E.DescriptorRequest())
        assert reply == E.DescriptorReply(dij.descriptor.encode())

    def test_metrics_reflect_traffic(self, dispatcher, workload):
        for pair in workload[:3]:
            roundtrip(dispatcher, E.QueryRequest(*pair))
        reply = roundtrip(dispatcher, E.MetricsRequest())
        assert isinstance(reply, E.MetricsReply)
        assert reply.requests == 3
        assert reply.proof_bytes > 0


class TestUpdates:
    def test_push_without_signer_is_refused(self, server):
        dispatcher = server.dispatcher()  # provider-side: no signing key
        reply = roundtrip(dispatcher, E.UpdatePushRequest(
            (E.WireUpdate("update-weight", 1, 2, 5.0),)))
        assert isinstance(reply, E.ErrorMessage)
        assert reply.code == codes.E_UPDATES_DISABLED

    def test_push_bumps_descriptor_version(self, mutable_dispatcher,
                                           mutable_graph):
        server = mutable_dispatcher.server
        base = server.descriptor_version
        u = next(iter(mutable_graph.node_ids()))
        v = next(iter(mutable_graph.neighbors(u)))
        weight = mutable_graph.neighbors(u)[v] * 1.5
        reply = roundtrip(mutable_dispatcher, E.UpdatePushRequest(
            (E.WireUpdate("update-weight", u, v, weight),)))
        assert isinstance(reply, E.UpdateReply)
        assert reply.version > base
        assert server.descriptor_version == reply.version

    def test_invalid_update_is_update_failed(self, mutable_dispatcher):
        server = mutable_dispatcher.server
        base = server.descriptor_version
        reply = roundtrip(mutable_dispatcher, E.UpdatePushRequest(
            (E.WireUpdate("update-weight", 10**9, 10**9 + 1, 1.0),)))
        assert isinstance(reply, E.ErrorMessage)
        assert reply.code == codes.E_UPDATE_FAILED
        # The rollback kept the served state intact.
        assert server.descriptor_version == base

    def test_unknown_update_kind_is_bad_request(self, mutable_dispatcher):
        reply = roundtrip(mutable_dispatcher, E.UpdatePushRequest(
            (E.WireUpdate("teleport-node", 1, 2, 0.0),)))
        assert isinstance(reply, E.ErrorMessage)
        assert reply.code in (codes.E_UPDATE_FAILED, codes.E_BAD_REQUEST)


class TestProtocolErrors:
    def test_malformed_frame(self, dispatcher):
        reply = E.decode_message(E.decode_frame(dispatcher.dispatch(b"junk")))
        assert reply.code == codes.E_MALFORMED_FRAME

    def test_unsupported_version(self, dispatcher):
        frame = E.encode_frame(E.MSG_QUERY, b"\x01\x02", version=9)
        reply = E.decode_message(E.decode_frame(dispatcher.dispatch(frame)))
        assert reply.code == codes.E_UNSUPPORTED_VERSION

    def test_unknown_message_type(self, dispatcher):
        frame = E.encode_frame(0x42, b"")
        reply = E.decode_message(E.decode_frame(dispatcher.dispatch(frame)))
        assert reply.code == codes.E_UNKNOWN_MESSAGE

    def test_reply_types_are_not_requests(self, dispatcher):
        reply = roundtrip(dispatcher, E.QueryReply(b"x", False))
        assert isinstance(reply, E.ErrorMessage)
        assert reply.code == codes.E_UNKNOWN_MESSAGE

    def test_all_emitted_codes_are_registered(self, dispatcher, workload):
        probes = [b"junk", E.encode_frame(0x42, b""),
                  E.encode_frame(E.MSG_QUERY, b"", version=9),
                  E.QueryRequest(10**9, 1).to_frame(),
                  E.QueryReply(b"x", False).to_frame()]
        for probe in probes:
            message = E.decode_message(E.decode_frame(dispatcher.dispatch(probe)))
            if isinstance(message, E.ErrorMessage):
                assert message.code in codes.WIRE_ERRORS
