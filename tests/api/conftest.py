"""Wire-API fixtures: a built method, a server and a dispatcher."""

from __future__ import annotations

import pytest

from repro.core.dij import DijMethod
from repro.crypto.signer import NullSigner
from repro.service.server import ProofServer
from repro.workload.queries import generate_workload

QUERY_RANGE = 1500.0


@pytest.fixture(scope="package")
def signer():
    return NullSigner()


@pytest.fixture(scope="package")
def dij(road300, signer):
    return DijMethod.build(road300, signer)


@pytest.fixture(scope="package")
def workload(road300):
    return list(generate_workload(road300, QUERY_RANGE, count=6, seed=99))


@pytest.fixture()
def server(dij):
    return ProofServer(dij, cache_size=64)


@pytest.fixture()
def dispatcher(server, signer):
    return server.dispatcher(update_signer=signer)


@pytest.fixture()
def mutable_graph(road300):
    """A private graph copy for tests that push updates."""
    return road300.copy()


@pytest.fixture()
def mutable_dispatcher(mutable_graph, signer):
    """Server + dispatcher over a private graph (update tests)."""
    method = DijMethod.build(mutable_graph, signer)
    return ProofServer(method, cache_size=64).dispatcher(update_signer=signer)
