"""Round-trip + malformed-bytes fuzz suite for the wire decoders.

The property under test: for *any* byte string — a valid encoding, a
truncation, a bit-flipped copy, or pure noise — every decoder either
returns a value or raises a typed :class:`~repro.errors.EncodingError`
(which :class:`~repro.errors.ProtocolError` derives from).  Nothing
else may escape: no ``IndexError``, no ``struct.error``, no
``MemoryError`` from attacker-controlled counts, no hang.  And the
dispatcher, one level up, must not even raise — garbage in, error
frame out.
"""

from __future__ import annotations

import random

import pytest

from repro.api import envelope as E
from repro.core.proofs import QueryResponse, SignedDescriptor
from repro.errors import EncodingError
from repro.merkle.proof import MerkleProofEntry

SEED = 20100301
FLIP_TRIALS = 300
NOISE_TRIALS = 200


@pytest.fixture(scope="module")
def response_bytes(dij, workload):
    vs, vt = workload[0]
    return dij.answer(vs, vt).encode()


def _assert_typed_decode(decode, data: bytes) -> None:
    """*decode* must return or raise EncodingError — nothing else."""
    try:
        decode(data)
    except EncodingError:
        pass
    # Any other exception propagates and fails the test with its real
    # type, which is exactly the diagnostic we want.


def _mutations(data: bytes, rng: random.Random, trials: int):
    """Seeded single/multi-byte corruptions of *data*."""
    for _ in range(trials):
        corrupted = bytearray(data)
        for _ in range(rng.randint(1, 4)):
            pos = rng.randrange(len(corrupted))
            corrupted[pos] = rng.randrange(256)
        yield bytes(corrupted)


class TestQueryResponseFuzz:
    def test_round_trip_is_identity(self, response_bytes):
        decoded = QueryResponse.decode(response_bytes)
        assert decoded.encode() == response_bytes

    def test_every_truncation_raises_typed(self, response_bytes):
        for cut in range(len(response_bytes)):
            with pytest.raises(EncodingError):
                QueryResponse.decode(response_bytes[:cut])

    def test_trailing_garbage_raises_typed(self, response_bytes):
        with pytest.raises(EncodingError):
            QueryResponse.decode(response_bytes + b"\x00")

    def test_bit_flips_never_escape_the_taxonomy(self, response_bytes):
        rng = random.Random(SEED)
        for corrupted in _mutations(response_bytes, rng, FLIP_TRIALS):
            _assert_typed_decode(QueryResponse.decode, corrupted)

    def test_pure_noise_never_escapes_the_taxonomy(self):
        rng = random.Random(SEED + 1)
        for _ in range(NOISE_TRIALS):
            noise = rng.randbytes(rng.randint(0, 400))
            _assert_typed_decode(QueryResponse.decode, noise)

    def test_oversized_counts_fail_fast(self):
        # method "A", source/target, then a huge path-node count with no
        # nodes behind it: must reject on the count, not loop or allocate.
        data = b"\x01A" + b"\x01\x02" + b"\xff\xff\xff\xff\x7f"
        with pytest.raises(EncodingError):
            QueryResponse.decode(data)


class TestSignedDescriptorFuzz:
    @pytest.fixture(scope="class")
    def descriptor_bytes(self, dij):
        return dij.descriptor.encode()

    def test_round_trip_is_identity(self, descriptor_bytes):
        assert SignedDescriptor.decode(descriptor_bytes).encode() == descriptor_bytes

    def test_every_truncation_raises_typed(self, descriptor_bytes):
        for cut in range(len(descriptor_bytes)):
            with pytest.raises(EncodingError):
                SignedDescriptor.decode(descriptor_bytes[:cut])

    def test_bit_flips_never_escape_the_taxonomy(self, descriptor_bytes):
        rng = random.Random(SEED + 2)
        for corrupted in _mutations(descriptor_bytes, rng, FLIP_TRIALS):
            _assert_typed_decode(SignedDescriptor.decode, corrupted)

    def test_huge_tree_count_fails_fast(self):
        # Outer message claims a million trees in a four-byte body.
        from repro.encoding import Encoder

        inner = Encoder()
        inner.write_str("DIJ").write_str("sha1")
        inner.write_uint(0).write_bytes(b"")
        inner.write_uint(1_000_000)
        outer = Encoder()
        outer.write_bytes(inner.getvalue())
        outer.write_bytes(b"sig")
        with pytest.raises(EncodingError):
            SignedDescriptor.decode(outer.getvalue())


class TestFrameFuzz:
    def test_frame_mutations_never_escape(self, response_bytes):
        frame = E.QueryReply(response_bytes, cached=False).to_frame()
        rng = random.Random(SEED + 3)

        def decode_both(data):
            E.decode_message(E.decode_frame(data))

        for corrupted in _mutations(frame, rng, FLIP_TRIALS):
            _assert_typed_decode(decode_both, corrupted)

    def test_frame_noise_never_escapes(self):
        rng = random.Random(SEED + 4)

        def decode_both(data):
            E.decode_message(E.decode_frame(data))

        for _ in range(NOISE_TRIALS):
            _assert_typed_decode(decode_both, rng.randbytes(rng.randint(0, 200)))


class TestDispatcherNeverRaises:
    def test_garbage_in_error_frame_out(self, dispatcher):
        rng = random.Random(SEED + 5)
        probes = [b"", b"RSPV", b"RSPV\x01", rng.randbytes(64)]
        probes += [E.encode_frame(0x55, b"x"),           # unknown type
                   E.encode_frame(E.MSG_QUERY, b""),      # truncated payload
                   E.encode_frame(E.MSG_QUERY, b"\x01\x02\x03"),  # trailing
                   E.encode_frame(E.MSG_QUERY, b"\x01\x02", version=9)]
        for probe in probes:
            reply = dispatcher.dispatch(probe)
            message = E.decode_message(E.decode_frame(reply))
            assert isinstance(message, E.ErrorMessage)

    def test_mutated_valid_requests_yield_frames(self, dispatcher, workload):
        rng = random.Random(SEED + 6)
        frame = E.QueryRequest(*workload[0]).to_frame()
        for corrupted in _mutations(frame, rng, 100):
            reply = dispatcher.dispatch(corrupted)
            # Whatever arrived, the reply is a decodable frame.
            E.decode_message(E.decode_frame(reply))


class TestMerkleEntriesGuard:
    def test_entry_count_guard(self):
        from repro.encoding import Decoder
        from repro.merkle.proof import decode_proof_entries

        with pytest.raises(EncodingError):
            decode_proof_entries(Decoder(b"\xff\xff\x7f"))

    def test_entries_round_trip(self):
        from repro.encoding import Decoder, Encoder
        from repro.merkle.proof import encode_proof_entries, decode_proof_entries

        entries = [MerkleProofEntry(0, 4, b"\xaa" * 20),
                   MerkleProofEntry(2, 1, b"\xbb" * 20)]
        enc = Encoder()
        encode_proof_entries(entries, enc)
        assert decode_proof_entries(Decoder(enc.getvalue())) == entries
