"""HTTP transport behaviour: persistence, reconnect, pooling.

These tests count *server-side accepted connections* — the ground truth
for connection reuse — by wrapping the listener's ``get_request``.  The
defect this layer fixes was precisely a client that redialed per frame
while believing it was load-testing the server, so the assertions here
are about how many TCP connections the workload costs, not just whether
it succeeds.
"""

from __future__ import annotations

import threading

import pytest

from repro.api.client import RemoteClient
from repro.api.transport import HttpTransport, PooledHttpTransport
from repro.errors import ProtocolError
from repro.service.http import ProofHttpServer


def counting_server(dispatcher, **kwargs):
    """A ProofHttpServer that records every accepted connection."""
    server = ProofHttpServer(dispatcher, **kwargs)
    accepted = []
    original = server._httpd.get_request

    def get_request():
        result = original()
        accepted.append(result[1])
        return result

    server._httpd.get_request = get_request
    return server, accepted


class TestPersistentConnection:
    def test_many_queries_one_connection(self, dispatcher, signer, workload):
        server, accepted = counting_server(dispatcher)
        with server, HttpTransport(server.url) as transport:
            client = RemoteClient(transport, signer.verify)
            client.hello()
            for vs, vt in workload:
                assert client.query(vs, vt).ok
        assert len(accepted) == 1

    def test_per_request_mode_dials_per_frame(self, dispatcher, signer,
                                              workload):
        server, accepted = counting_server(dispatcher)
        with server, HttpTransport(server.url,
                                   keep_alive=False) as transport:
            client = RemoteClient(transport, signer.verify)
            for vs, vt in workload[:3]:
                assert client.query(vs, vt).ok
        # Every frame is its own connection in this mode.
        assert len(accepted) >= 3

    def test_closed_transport_redials_and_stays_usable(
            self, dispatcher, signer, workload):
        server, accepted = counting_server(dispatcher)
        vs, vt = workload[0]
        with server:
            transport = HttpTransport(server.url)
            client = RemoteClient(transport, signer.verify)
            assert client.query(vs, vt).ok
            transport.close()
            assert client.query(vs, vt).ok
            transport.close()
        assert len(accepted) == 2

    def test_reconnects_after_server_restart(self, server, signer, workload):
        vs, vt = workload[0]
        dispatcher = server.dispatcher()
        first = ProofHttpServer(dispatcher).start()
        port = first.port
        transport = HttpTransport(first.url)
        client = RemoteClient(transport, signer.verify)
        assert client.query(vs, vt).ok
        first.close()
        second = ProofHttpServer(dispatcher, port=port).start()
        try:
            # The held connection is now stale; the transport must
            # retry once on a fresh dial, invisibly to the caller.
            assert client.query(vs, vt).ok
        finally:
            transport.close()
            second.close()

    def test_fresh_dial_failure_is_not_retried(self, dispatcher, signer):
        server = ProofHttpServer(dispatcher).start()
        url = server.url
        server.close()
        transport = HttpTransport(url, timeout=2.0)
        with pytest.raises(ProtocolError) as excinfo:
            transport.roundtrip(b"RSPV")
        assert "after reconnect" not in str(excinfo.value)

    def test_keepalive_budget_redials_transparently(self, dispatcher, signer,
                                                    workload):
        server, accepted = counting_server(dispatcher,
                                           max_keepalive_requests=2)
        with server, HttpTransport(server.url) as transport:
            client = RemoteClient(transport, signer.verify)
            client.hello()
            for _ in range(2):
                for vs, vt in workload:
                    assert client.query(vs, vt).ok
        # hello + descriptor + 2 x len(workload) queries, two per
        # connection, no failed/wasted dials.
        requests = 2 + 2 * len(workload)
        assert len(accepted) == (requests + 1) // 2

    def test_bad_base_url_rejected(self):
        for url in ("https://x:1", "ftp://x", "not-a-url", "http://"):
            with pytest.raises(ProtocolError):
                HttpTransport(url)


class TestPooledTransport:
    def test_one_connection_per_thread(self, dispatcher, signer, workload):
        server, accepted = counting_server(dispatcher)
        threads = 4
        with server, PooledHttpTransport(server.url) as pooled:
            barrier = threading.Barrier(threads)
            failures = []

            def worker():
                barrier.wait()
                client = RemoteClient(pooled, signer.verify)
                for vs, vt in workload:
                    if not client.query(vs, vt).ok:
                        failures.append((vs, vt))

            pool = [threading.Thread(target=worker) for _ in range(threads)]
            for t in pool:
                t.start()
            for t in pool:
                t.join()
            assert not failures
            assert len(accepted) == threads

    def test_close_drops_all_then_redials(self, dispatcher, signer, workload):
        server, accepted = counting_server(dispatcher)
        vs, vt = workload[0]
        with server:
            pooled = PooledHttpTransport(server.url)
            client = RemoteClient(pooled, signer.verify)
            assert client.query(vs, vt).ok
            pooled.close()
            assert client.query(vs, vt).ok
            pooled.close()
        assert len(accepted) == 2
