"""Wire-level multiproof batches: envelope evolution and end-to-end trust.

Three layers under test:

* **envelope compatibility** — the ``multiproof`` request flag and the
  reply's ``shared`` blob are append-only tail fields: unset they leave
  the legacy bytes untouched, set they extend them, and decoders accept
  both generations;
* **the happy path** — a multiproof batch recovers responses
  byte-identical to independently served ones and every slot verifies;
* **the hostile path** — a tampered, truncated, or omitted shared blob
  produces per-slot failure verdicts, never an exception, and error
  slots ride alongside a shared proof for the ok ones.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.api import codes
from repro.api.client import RemoteClient
from repro.api.envelope import (
    BatchQueryReply,
    BatchQueryRequest,
    decode_frame,
    decode_message,
)
from repro.api.transport import InProcessTransport
from repro.core.batch import MultiProofBatch

BAD_NODE = 10**9


@pytest.fixture()
def client(dispatcher, signer):
    return RemoteClient(InProcessTransport(dispatcher), signer.verify)


class TestEnvelopeCompatibility:
    def test_unset_flag_keeps_legacy_request_bytes(self, workload):
        pairs = tuple(workload[:3])
        plain = BatchQueryRequest(pairs)
        flagged = BatchQueryRequest(pairs, multiproof=True)
        assert flagged.encode().startswith(plain.encode())
        assert len(flagged.encode()) == len(plain.encode()) + 1

    def test_legacy_request_bytes_decode_with_default(self, workload):
        pairs = tuple(workload[:3])
        decoded = BatchQueryRequest.decode(BatchQueryRequest(pairs).encode())
        assert decoded.pairs == pairs
        assert decoded.multiproof is False

    def test_flagged_request_roundtrips(self, workload):
        pairs = tuple(workload[:2])
        encoded = BatchQueryRequest(pairs, multiproof=True).encode()
        assert BatchQueryRequest.decode(encoded).multiproof is True

    def test_legacy_reply_bytes_decode_with_empty_shared(self, client,
                                                         workload):
        reply = client.transport.roundtrip(
            BatchQueryRequest(tuple(workload[:2])).to_frame())
        message = decode_message(decode_frame(reply))
        assert isinstance(message, BatchQueryReply)
        assert message.shared == b""
        assert BatchQueryReply.decode(message.encode()).shared == b""

    def test_shared_reply_roundtrips(self, client, workload):
        reply = client.transport.roundtrip(
            BatchQueryRequest(tuple(workload[:2]),
                              multiproof=True).to_frame())
        message = decode_message(decode_frame(reply))
        assert message.shared
        again = BatchQueryReply.decode(message.encode())
        assert again.shared == message.shared
        # Ok slots carry empty placeholders; the payload lives once in
        # the shared blob.
        assert all(item.response_bytes == b"" for item in message.items)


class TestMultiproofRoundtrip:
    def test_recovered_responses_byte_identical(self, client, dij, workload):
        results = client.query_batch(workload)
        assert [(r.source, r.target) for r in results] == workload
        for result in results:
            assert result.ok, (result.verdict.reason, result.verdict.detail)
            assert result.response_bytes == \
                dij.answer(result.source, result.target).encode()

    def test_batch_ships_fewer_bytes_than_legacy(self, client, workload):
        multi = client.query_batch(workload)
        legacy = client.query_batch(workload, multiproof=False)
        assert sum(r.wire_bytes for r in multi) < \
            sum(r.wire_bytes for r in legacy)

    def test_legacy_opt_out_still_carries_payloads(self, client, dij,
                                                   workload):
        results = client.query_batch(workload, multiproof=False)
        for result in results:
            assert result.ok
            assert result.response_bytes == \
                dij.answer(result.source, result.target).encode()

    def test_mixed_ok_and_error_slots(self, client, workload):
        pairs = [workload[0], (BAD_NODE, 1), workload[1]]
        results = client.query_batch(pairs)
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        assert results[1].verdict.reason == codes.E_QUERY_FAILED
        # The error slot must not poison the shared proof of the rest.
        assert results[0].response_bytes and results[2].response_bytes

    def test_all_error_batch_falls_back_to_legacy_layout(self, client):
        results = client.query_batch([(BAD_NODE, 1), (BAD_NODE, 2)])
        assert all(not r.ok for r in results)
        assert all(r.verdict.reason == codes.E_QUERY_FAILED for r in results)

    def test_duplicate_queries_in_one_batch(self, client, workload):
        pairs = [workload[0], workload[0], workload[1]]
        results = client.query_batch(pairs)
        assert all(r.ok for r in results)
        assert results[0].response_bytes == results[1].response_bytes

    def test_singleton_batch(self, client, workload):
        (result,) = client.query_batch([workload[0]])
        assert result.ok

    def test_query_many_uses_multiproof_by_default(self, client, workload):
        transport = client.transport
        transport.wire_log.clear()
        transport._log_frames = True
        client.query_many(workload)
        frames = list(transport.wire_log)
        transport._log_frames = False
        assert len(frames) == 1  # one BATCH frame for the whole burst


class _RewriteTransport(InProcessTransport):
    """Dispatch normally, then rewrite the shared blob of BATCH replies."""

    def __init__(self, dispatcher, rewrite):
        super().__init__(dispatcher)
        self._rewrite = rewrite

    def roundtrip(self, frame: bytes) -> bytes:
        reply = super().roundtrip(frame)
        message = decode_message(decode_frame(reply))
        if isinstance(message, BatchQueryReply) and message.shared:
            return replace(
                message, shared=self._rewrite(message.shared)).to_frame()
        return reply


class TestHostileSharedBlob:
    def run_against(self, dispatcher, signer, workload, rewrite):
        client = RemoteClient(_RewriteTransport(dispatcher, rewrite),
                              signer.verify)
        return client.query_batch(workload)

    def assert_all_rejected(self, results, reason=None):
        for result in results:
            assert not result.ok
            if reason is not None:
                # Structural failures never hand back response bytes.
                assert result.response_bytes is None
                assert result.verdict.reason == reason

    def test_truncated_shared_blob(self, dispatcher, signer, workload):
        results = self.run_against(dispatcher, signer, workload,
                                   lambda shared: shared[:-7])
        self.assert_all_rejected(results, codes.MALFORMED_PROOF)

    def test_garbage_shared_blob(self, dispatcher, signer, workload):
        results = self.run_against(dispatcher, signer, workload,
                                   lambda shared: b"\xff" * len(shared))
        self.assert_all_rejected(results, codes.MALFORMED_PROOF)

    def test_omitted_shared_section(self, dispatcher, signer, workload):
        def drop_section(shared):
            batch = MultiProofBatch.decode(shared)
            name = sorted(batch.shared)[0]
            pruned = {k: v for k, v in batch.shared.items() if k != name}
            return replace(batch, shared=pruned).encode()

        results = self.run_against(dispatcher, signer, workload, drop_section)
        self.assert_all_rejected(results, codes.MALFORMED_PROOF)

    def test_tampered_shared_digest_fails_root_check(self, dispatcher,
                                                     signer, workload):
        def flip_digest(shared):
            batch = MultiProofBatch.decode(shared)
            name = sorted(batch.shared)[0]
            section = batch.shared[name]
            entry = section.entries[0]
            bad = replace(entry, digest=bytes([entry.digest[0] ^ 1])
                          + entry.digest[1:])
            sections = dict(batch.shared)
            sections[name] = replace(
                section, entries=[bad, *section.entries[1:]])
            return replace(batch, shared=sections).encode()

        results = self.run_against(dispatcher, signer, workload, flip_digest)
        # Value tampering survives recovery and dies in per-query root
        # verification — the same verdict independent replies would get.
        self.assert_all_rejected(results)
        assert {r.verdict.reason for r in results} <= {
            codes.ROOT_MISMATCH, codes.MALFORMED_PROOF}

    def test_reordered_batch_queries_rejected(self, dispatcher, signer,
                                              workload):
        def swap_queries(shared):
            batch = MultiProofBatch.decode(shared)
            queries = list(batch.queries)
            queries[0], queries[1] = queries[1], queries[0]
            return replace(batch, queries=tuple(queries)).encode()

        results = self.run_against(dispatcher, signer, workload[:3],
                                   swap_queries)
        self.assert_all_rejected(results, codes.MALFORMED_PROOF)
