"""RemoteClient over the trivial transport: bytes-only verification."""

from __future__ import annotations

import pytest

from repro.api import codes
from repro.api.client import RemoteClient
from repro.api.transport import InProcessTransport
from repro.api.envelope import WireUpdate
from repro.core.proofs import QueryResponse
from repro.errors import ProtocolError


@pytest.fixture()
def client(dispatcher, signer):
    return RemoteClient(InProcessTransport(dispatcher), signer.verify)


class TestQueries:
    def test_query_verifies_and_matches_in_process_bytes(self, client, dij,
                                                         workload):
        for vs, vt in workload:
            result = client.query(vs, vt)
            assert result.ok, (result.verdict.reason, result.verdict.detail)
            assert result.response_bytes == dij.answer(vs, vt).encode()
            assert result.wire_bytes > len(result.response_bytes)

    def test_decoded_response_is_accessible(self, client, workload):
        vs, vt = workload[0]
        result = client.query(vs, vt)
        decoded = result.response
        assert isinstance(decoded, QueryResponse)
        assert (decoded.source, decoded.target) == (vs, vt)

    def test_query_many(self, client, workload):
        results = client.query_many(workload)
        assert all(result.ok for result in results)
        assert [(r.source, r.target) for r in results] == workload

    def test_unknown_node_is_a_verdict_not_an_exception(self, client):
        result = client.query(10**9, 1)
        assert not result.ok
        assert result.response_bytes is None
        assert result.verdict.reason == codes.E_QUERY_FAILED

    def test_batch_error_slot_is_a_verdict(self, client, workload):
        results = client.query_many([workload[0], (10**9, 1)])
        assert results[0].ok
        assert not results[1].ok
        assert results[1].verdict.reason == codes.E_QUERY_FAILED


class TestHandshakeAndDescriptor:
    def test_hello(self, client, dij):
        reply = client.hello()
        assert reply.method == dij.name
        assert reply.version == 1
        assert reply.descriptor_version == dij.descriptor.version

    def test_fetch_descriptor_verbatim(self, client, dij):
        descriptor, raw = client.fetch_descriptor()
        assert raw == dij.descriptor.encode()
        assert descriptor == dij.descriptor


class TestFreshness:
    def test_update_push_and_stale_replay_rejection(self, mutable_dispatcher,
                                                    signer, workload):
        client = RemoteClient(InProcessTransport(mutable_dispatcher),
                              signer.verify)
        graph = mutable_dispatcher.server.method.graph
        vs, vt = workload[0]
        stale_bytes = client.query(vs, vt).response_bytes

        u = next(iter(graph.node_ids()))
        v = next(iter(graph.neighbors(u)))
        report = client.push_updates(
            [WireUpdate("update-weight", u, v, graph.neighbors(u)[v] * 1.25)])
        client.require_version(report.version)

        # The pre-update bytes are authentic but superseded.
        stale = client.client.verify_bytes(vs, vt, stale_bytes)
        assert not stale.ok and stale.reason == codes.STALE_DESCRIPTOR
        # A fresh wire query serves — and verifies — the new version.
        fresh = client.query(vs, vt)
        assert fresh.ok
        assert fresh.response.descriptor.version == report.version

    def test_push_to_provider_only_endpoint_raises(self, server, signer,
                                                   workload):
        client = RemoteClient(InProcessTransport(server.dispatcher()),
                              signer.verify)
        with pytest.raises(ProtocolError, match=codes.E_UPDATES_DISABLED):
            client.push_updates([WireUpdate("update-weight", 1, 2, 5.0)])


class TestMetricsAndTransport:
    def test_metrics_counts_wire_traffic(self, client, workload):
        for pair in workload[:2]:
            client.query(*pair)
        metrics = client.metrics()
        assert metrics.requests == 2

    def test_bare_callable_transport(self, dispatcher, signer, workload):
        client = RemoteClient(dispatcher.dispatch, signer.verify)
        assert client.query(*workload[0]).ok

    def test_wire_log_accounts_frames(self, dispatcher, signer, workload):
        transport = InProcessTransport(dispatcher, log_frames=True)
        client = RemoteClient(transport, signer.verify)
        result = client.query(*workload[0])
        assert transport.wire_log[-1][1] == result.wire_bytes


class TestTamperDetection:
    def test_tampered_wire_bytes_are_rejected(self, dispatcher, signer,
                                              workload):
        """A man-in-the-middle flipping proof bytes cannot survive."""
        vs, vt = workload[0]

        class Tamper:
            def roundtrip(self, frame):
                reply = bytearray(dispatcher.dispatch(frame))
                reply[-40] ^= 0xFF  # inside the descriptor signature
                return bytes(reply)

        client = RemoteClient(Tamper(), signer.verify)
        result = client.query(vs, vt)
        assert not result.ok
        assert result.verdict.reason in (codes.BAD_SIGNATURE,
                                         codes.MALFORMED_RESPONSE,
                                         codes.ROOT_MISMATCH,
                                         codes.MALFORMED_PROOF)
