"""Tests for the measurement harness and reporting utilities."""

import json

import pytest

from repro.bench.harness import MethodRun, run_workload
from repro.bench.reporting import ResultsLog, format_table
from repro.core.dij import DijMethod
from repro.crypto.signer import NullSigner
from repro.errors import MethodError
from repro.workload.queries import generate_workload


@pytest.fixture(scope="module")
def setup(road300):
    signer = NullSigner()
    method = DijMethod.build(road300, signer)
    workload = generate_workload(road300, 1200.0, count=4, seed=2)
    return signer, method, workload


class TestRunWorkload:
    def test_aggregates(self, setup):
        signer, method, workload = setup
        run = run_workload(method, workload, signer.verify)
        assert isinstance(run, MethodRun)
        assert run.method == "DIJ"
        assert run.num_queries == 4
        assert run.all_verified
        assert run.total_kb > 0
        assert run.total_kb == pytest.approx(
            run.s_prf_kb + run.t_prf_kb, rel=0.05
        )
        assert run.s_items >= 1
        assert run.prove_ms > 0 and run.verify_ms > 0
        assert run.network_tree_seconds > 0

    def test_rejection_raises_by_default(self, setup):
        signer, method, workload = setup
        other = NullSigner(key=b"wrong key")
        with pytest.raises(MethodError):
            run_workload(method, workload, other.verify)

    def test_rejections_collected_when_allowed(self, setup):
        signer, method, workload = setup
        other = NullSigner(key=b"wrong key")
        run = run_workload(method, workload, other.verify,
                           require_verified=False)
        assert not run.all_verified
        assert len(run.failures) == 4
        assert "bad-signature" in run.failures[0]


class TestFormatTable:
    def test_alignment_and_title(self):
        table = format_table(
            ["name", "value"],
            [["alpha", 1.5], ["b", 22.25]],
            title="demo",
        )
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "1.50" in table and "22.25" in table

    def test_numbers_right_aligned(self):
        table = format_table(["x"], [[5.0], [123.0]])
        rows = table.splitlines()[2:]
        assert rows[0].endswith("5.00")
        assert rows[1].endswith("123.00")


class TestResultsLog:
    def test_add_and_save(self, tmp_path):
        log = ResultsLog(str(tmp_path / "sub" / "r.json"))
        log.add("fig8a", method="DIJ", total_kb=12.5)
        log.add("fig8a", method="FULL", total_kb=1.5)
        log.save()
        records = json.loads((tmp_path / "sub" / "r.json").read_text())
        assert len(records) == 2
        assert records[0]["experiment"] == "fig8a"
        assert records[1]["method"] == "FULL"
