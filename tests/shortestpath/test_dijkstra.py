"""Tests for Dijkstra against a networkx reference."""

import networkx as nx
import pytest

from repro.errors import GraphError, NoPathError
from repro.graph.synthetic import grid_network, road_network
from repro.shortestpath.dijkstra import dijkstra, shortest_path


def to_networkx(graph):
    g = nx.Graph()
    for u, v, w in graph.edges():
        g.add_edge(u, v, weight=w)
    g.add_nodes_from(graph.node_ids())
    return g


@pytest.fixture(scope="module", params=[1, 2, 3])
def road(request):
    return road_network(220, seed=request.param)


class TestAgainstNetworkx:
    def test_single_source_distances(self, road):
        source = road.node_ids()[0]
        ours = dijkstra(road, source).dist
        reference = nx.single_source_dijkstra_path_length(to_networkx(road), source)
        assert set(ours) == set(reference)
        for node, dist in reference.items():
            assert ours[node] == pytest.approx(dist)

    def test_point_to_point(self, road):
        ids = road.node_ids()
        ref_graph = to_networkx(road)
        for target in ids[:: max(1, len(ids) // 15)]:
            source = ids[0]
            if source == target:
                continue
            ref = nx.dijkstra_path_length(ref_graph, source, target)
            path = shortest_path(road, source, target)
            assert path.cost == pytest.approx(ref)


class TestPathReconstruction:
    def test_path_is_walkable(self, road):
        ids = road.node_ids()
        path = shortest_path(road, ids[0], ids[-1])
        assert path.source == ids[0]
        assert path.target == ids[-1]
        total = sum(road.weight(u, v) for u, v in path.edges())
        assert total == pytest.approx(path.cost)

    def test_trivial_path(self, grid5):
        path = shortest_path(grid5, 7, 7)
        assert path.nodes == (7,)
        assert path.cost == 0.0


class TestStoppingModes:
    def test_target_stops_early(self, grid5):
        result = dijkstra(grid5, 0, target=1)
        assert 24 not in result.dist  # far corner never settled

    def test_radius_semantics(self, grid5):
        result = dijkstra(grid5, 0, radius=2.0)
        # Exactly the nodes with Manhattan distance <= 2 are settled.
        expected = {
            n for n in grid5.node_ids() if sum(divmod(n, 5)) <= 2
        }
        assert set(result.dist) == expected

    def test_radius_inclusive(self, grid5):
        result = dijkstra(grid5, 0, radius=1.0)
        assert result.dist[1] == 1.0 and result.dist[5] == 1.0

    def test_zero_radius(self, grid5):
        result = dijkstra(grid5, 12, radius=0.0)
        assert set(result.dist) == {12}

    def test_no_stop_settles_component(self, road):
        result = dijkstra(road, road.node_ids()[0])
        assert len(result.dist) == road.num_nodes


class TestErrors:
    def test_unknown_source(self, grid5):
        with pytest.raises(GraphError):
            dijkstra(grid5, 999)

    def test_unknown_target(self, grid5):
        with pytest.raises(GraphError):
            dijkstra(grid5, 0, target=999)

    def test_no_path(self):
        from repro.graph.graph import SpatialGraph

        g = SpatialGraph()
        g.add_node(1)
        g.add_node(2)
        with pytest.raises(NoPathError) as err:
            shortest_path(g, 1, 2)
        assert err.value.source == 1 and err.value.target == 2
