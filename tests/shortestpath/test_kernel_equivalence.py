"""Array kernel vs dict kernel equivalence (tentpole acceptance).

The indexed kernel must be a behavior-preserving replacement for the
dict kernel on every provider path: same settled distances, same
radius-ball membership, same ``NoPathError`` behavior — and the proof
methods routed through it must produce byte-identical responses and
identical verification results.
"""

import random

import numpy as np
import pytest

from repro.core.framework import ABS_TOL, REL_TOL, Client, DataOwner, ServiceProvider
from repro.crypto.signer import NullSigner
from repro.errors import GraphError, NoPathError
from repro.graph.synthetic import road_network
from repro.graph.tuples import BaseTuple
from repro.shortestpath.bulk import multi_source_distances
from repro.shortestpath.dijkstra import dijkstra
from repro.shortestpath.kernel import (
    indexed_ball,
    indexed_dijkstra,
    indexed_multi_source,
)


def random_graphs():
    """A spread of synthetic graphs: sizes, densities, disconnection."""
    graphs = []
    for seed in (0, 1, 2):
        graphs.append(road_network(60 + 70 * seed, seed=seed))
    # A disconnected graph: two components, cross queries raise.
    g = road_network(40, seed=9)
    base = max(g.node_ids()) + 1
    g.add_node(base, 0.0, 0.0)
    g.add_node(base + 1, 1.0, 1.0)
    g.add_edge(base, base + 1, 1.0)
    graphs.append(g)
    return graphs


class TestSearchEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_full_expansion_distances_match(self, seed):
        graph = random_graphs()[seed]
        rng = random.Random(seed)
        index = graph.to_index()
        for source in rng.sample(graph.node_ids(), 5):
            want = dijkstra(graph, source)
            got = indexed_dijkstra(index, source)
            assert got.distances() == want.dist

    @pytest.mark.parametrize("seed", range(4))
    def test_radius_ball_membership_matches(self, seed):
        graph = random_graphs()[seed]
        rng = random.Random(100 + seed)
        index = graph.to_index()
        for _ in range(5):
            source = rng.choice(graph.node_ids())
            radius = rng.uniform(0.0, 4000.0)
            want = dijkstra(graph, source, radius=radius)
            got = indexed_dijkstra(index, source, radius=radius)
            assert got.distances() == want.dist

    @pytest.mark.parametrize("seed", range(4))
    def test_target_mode_paths_match(self, seed):
        graph = random_graphs()[seed]
        rng = random.Random(200 + seed)
        index = graph.to_index()
        ids = graph.node_ids()
        for _ in range(8):
            source, target = rng.sample(ids, 2)
            try:
                want = dijkstra(graph, source, target=target).path_to(target)
            except NoPathError:
                with pytest.raises(NoPathError):
                    indexed_dijkstra(index, source, target=target).path_to(target)
                continue
            got = indexed_dijkstra(index, source, target=target).path_to(target)
            assert got == want

    def test_fused_ball_equals_two_runs(self):
        graph = road_network(150, seed=4)
        index = graph.to_index()
        rng = random.Random(7)
        margin = lambda d: 2 * (REL_TOL * d + ABS_TOL)  # noqa: E731
        for _ in range(10):
            source, target = rng.sample(graph.node_ids(), 2)
            path = dijkstra(graph, source, target=target).path_to(target)
            ball = dijkstra(graph, source, radius=path.cost + margin(path.cost))
            fused = indexed_ball(index, source, target, margin=margin)
            assert fused.path_to(target) == path
            assert fused.distances() == ball.dist

    def test_unknown_nodes_raise_grapherror(self):
        graph = road_network(30, seed=0)
        index = graph.to_index()
        known = graph.node_ids()[0]
        with pytest.raises(GraphError):
            indexed_dijkstra(index, 10**9)
        with pytest.raises(GraphError):
            indexed_dijkstra(index, known, target=10**9)
        with pytest.raises(GraphError):
            indexed_ball(index, 10**9, known)
        with pytest.raises(GraphError):
            indexed_multi_source(index, [10**9])

    def test_multi_source_matches_scipy_backend(self):
        graph = road_network(120, seed=5)
        sources = graph.node_ids()[::17]
        via_bulk = multi_source_distances(graph, sources)
        via_kernel = indexed_multi_source(graph.to_index(), sources)
        assert np.allclose(via_bulk, via_kernel, rtol=1e-12, atol=1e-9)

    def test_multi_source_unreachable_is_inf(self):
        g = road_network(25, seed=3)
        base = max(g.node_ids()) + 1
        g.add_node(base, 0.0, 0.0)
        g.add_node(base + 1, 2.0, 0.0)
        g.add_edge(base, base + 1, 1.0)
        dist = indexed_multi_source(g.to_index(), [base])
        index_of = g.to_index().index_of
        assert dist[0][index_of[base + 1]] == 1.0
        assert np.isinf(dist[0][index_of[g.node_ids()[0]]])


def _legacy_dij_answer(method, source, target):
    """DIJ response exactly as the dict-kernel provider assembled it."""
    from repro.core.proofs import NETWORK_TREE, QueryResponse

    path = dijkstra(method.graph, source, target=target).path_to(target)
    ball = dijkstra(method.graph, source, radius=path.cost)
    section = method._bundle.section_for(ball.dist.keys())
    return QueryResponse(
        method=method.name, source=source, target=target,
        path_nodes=path.nodes, path_cost=path.cost,
        sections={NETWORK_TREE: section}, descriptor=method.descriptor,
    )


def _legacy_ldm_answer(method, source, target):
    """LDM response exactly as the dict-kernel provider assembled it."""
    from repro.core.proofs import NETWORK_TREE, QueryResponse

    graph = method.graph
    path = dijkstra(graph, source, target=target).path_to(target)
    distance = path.cost
    margin = 2 * (REL_TOL * distance + ABS_TOL)
    ball = dijkstra(graph, source, radius=distance + margin)
    lb = method._compressed.lower_bound
    qualifying = [
        v for v, d in ball.dist.items() if d + lb(v, target) <= distance + margin
    ]
    include = set(qualifying) | {source, target}
    for v in qualifying:
        include.update(graph.neighbors(v).keys())
    for v in list(include):
        ref = method._compressed.ref_of.get(v)
        if ref is not None:
            include.add(ref[0])
    section = method._bundle.section_for(include)
    return QueryResponse(
        method=method.name, source=source, target=target,
        path_nodes=path.nodes, path_cost=path.cost,
        sections={NETWORK_TREE: section}, descriptor=method.descriptor,
    )


class TestProofEquivalence:
    """New-kernel responses are byte-identical to dict-kernel responses."""

    @pytest.fixture(scope="class")
    def owner(self):
        return DataOwner(road_network(220, seed=11), signer=NullSigner())

    def _queries(self, graph, count=6, seed=31):
        rng = random.Random(seed)
        ids = graph.node_ids()
        out = []
        while len(out) < count:
            vs, vt = rng.sample(ids, 2)
            try:
                dijkstra(graph, vs, target=vt).path_to(vt)
            except NoPathError:
                continue
            out.append((vs, vt))
        return out

    @pytest.mark.parametrize("name", ["DIJ", "LDM", "FULL", "HYP"])
    def test_byte_identical_responses_and_verdicts(self, owner, name):
        params = {"LDM": dict(c=20), "HYP": dict(num_cells=16)}.get(name, {})
        method = owner.publish(name, **params)
        provider = ServiceProvider(method)
        client = Client(owner.signer.verify)
        legacy = {"DIJ": _legacy_dij_answer, "LDM": _legacy_ldm_answer}.get(name)
        for vs, vt in self._queries(owner.graph):
            response = provider.answer(vs, vt)
            if legacy is not None:
                want = legacy(method, vs, vt)
                assert response.encode() == want.encode()
            else:
                # FULL / HYP differ from DIJ/LDM only in the path search:
                # the reported path must match the dict kernel's.
                want = dijkstra(owner.graph, vs, target=vt).path_to(vt)
                assert response.path_nodes == want.nodes
                assert response.path_cost == want.cost
            verdict = client.verify(vs, vt, response)
            assert verdict.ok, (name, verdict.reason, verdict.detail)

    def test_full_unknown_node_raises_grapherror(self, owner):
        # The matrix-walk fast path must keep the search kernel's error
        # contract: a ReproError the serving layer can convert into an
        # error response, never a bare KeyError.
        method = owner.publish("FULL")
        known = owner.graph.node_ids()[0]
        with pytest.raises(GraphError):
            method.answer(known, 10**9)
        with pytest.raises(GraphError):
            method.answer(10**9, known)

    def test_dict_backend_still_selectable(self, owner):
        method = owner.publish("DIJ")
        method.algo_sp = "dijkstra-dict"
        vs, vt = self._queries(owner.graph, count=1)[0]
        response = method.answer(vs, vt)
        want = _legacy_dij_answer(method, vs, vt)
        assert response.encode() == want.encode()


class TestTupleEquivalence:
    """Extended tuples built from the index match the dict adjacency."""

    def test_base_tuple_adjacency_canonical(self):
        graph = road_network(80, seed=2)
        index = graph.to_index()
        for node_id in graph.node_ids():
            tup = BaseTuple.from_graph(graph, node_id)
            i = index.index_of[node_id]
            from_index = tuple(
                (index.ids[index.neighbors[k]], index.weights[k])
                for k in range(index.indptr[i], index.indptr[i + 1])
            )
            assert tup.adjacency == from_index
