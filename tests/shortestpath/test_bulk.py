"""Tests for bulk distance computation (pure FW vs SciPy vs Dijkstra)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.synthetic import grid_network, road_network
from repro.shortestpath.bulk import all_pairs_distances, multi_source_distances
from repro.shortestpath.dijkstra import dijkstra
from repro.shortestpath.floyd_warshall import floyd_warshall


@pytest.fixture(scope="module")
def road():
    return road_network(150, seed=13)


class TestFloydWarshall:
    def test_matches_dijkstra(self, road):
        matrix, ids = floyd_warshall(road)
        index_of = {node_id: i for i, node_id in enumerate(ids)}
        for source in ids[::30]:
            result = dijkstra(road, source)
            for node, dist in result.dist.items():
                assert matrix[index_of[source]][index_of[node]] == pytest.approx(dist)

    def test_symmetric_zero_diagonal(self, road):
        matrix, ids = floyd_warshall(road)
        n = len(ids)
        for i in range(0, n, 17):
            assert matrix[i][i] == 0.0
            for j in range(0, n, 23):
                assert matrix[i][j] == pytest.approx(matrix[j][i])

    def test_disconnected_inf(self):
        from repro.graph.graph import SpatialGraph

        g = SpatialGraph()
        g.add_node(1)
        g.add_node(2)
        matrix, ids = floyd_warshall(g)
        assert matrix[0][1] == float("inf")


class TestScipyBackends:
    def test_all_pairs_matches_pure(self, road):
        pure, ids = floyd_warshall(road)
        fast = all_pairs_distances(road)
        assert np.allclose(fast, np.array(pure))

    def test_floyd_warshall_method(self, road):
        auto = all_pairs_distances(road, method="auto")
        fw = all_pairs_distances(road, method="floyd-warshall")
        assert np.allclose(auto, fw)

    def test_unknown_method_rejected(self, road):
        with pytest.raises(GraphError):
            all_pairs_distances(road, method="bogus")

    def test_multi_source(self, road):
        ids = road.node_ids()
        sources = ids[:3]
        matrix = multi_source_distances(road, sources)
        assert matrix.shape == (3, len(ids))
        for row, source in enumerate(sources):
            reference = dijkstra(road, source).dist
            index_of = {node_id: i for i, node_id in enumerate(ids)}
            for node, dist in reference.items():
                assert matrix[row, index_of[node]] == pytest.approx(dist)

    def test_multi_source_unknown_node(self, road):
        with pytest.raises(GraphError):
            multi_source_distances(road, [10**9])

    def test_empty_sources(self, road):
        assert multi_source_distances(road, []).shape == (0, road.num_nodes)

    def test_grid_exact_distances(self):
        grid = grid_network(6, 6)
        matrix = all_pairs_distances(grid)
        # Distance on the unit grid is the Manhattan distance.
        for a in (0, 7, 35):
            ra, ca = divmod(a, 6)
            for b in (5, 17, 30):
                rb, cb = divmod(b, 6)
                assert matrix[a, b] == abs(ra - rb) + abs(ca - cb)
