"""Tests for A* and bidirectional Dijkstra against plain Dijkstra."""

import math

import pytest

from repro.errors import NoPathError
from repro.graph.graph import SpatialGraph
from repro.graph.synthetic import road_network
from repro.landmarks.selection import farthest_landmarks
from repro.landmarks.vectors import LandmarkVectors
from repro.shortestpath.astar import astar
from repro.shortestpath.bidirectional import bidirectional_search
from repro.shortestpath.dijkstra import dijkstra, shortest_path


@pytest.fixture(scope="module")
def road():
    return road_network(240, seed=4)


@pytest.fixture(scope="module")
def pairs(road):
    ids = road.node_ids()
    return [(ids[0], ids[-1]), (ids[3], ids[len(ids) // 2]), (ids[10], ids[-7])]


class TestAstar:
    def test_zero_heuristic_equals_dijkstra(self, road, pairs):
        for s, t in pairs:
            assert astar(road, s, t, lambda v: 0.0).cost == pytest.approx(
                shortest_path(road, s, t).cost
            )

    def test_euclidean_heuristic_optimal(self, road, pairs):
        # Weights >= Euclidean lengths, so the Euclidean bound is admissible
        # and consistent.
        for s, t in pairs:
            lb = lambda v: road.euclidean(v, t)
            assert astar(road, s, t, lb).cost == pytest.approx(
                shortest_path(road, s, t).cost
            )

    def test_landmark_heuristic_optimal_and_smaller_search(self, road, pairs):
        landmarks = farthest_landmarks(road, 8, seed=1)
        vectors = LandmarkVectors(road, landmarks)
        for s, t in pairs:
            lb = lambda v: vectors.lower_bound(v, t)
            assert astar(road, s, t, lb).cost == pytest.approx(
                shortest_path(road, s, t).cost
            )

    def test_source_equals_target(self, road):
        s = road.node_ids()[0]
        path = astar(road, s, s, lambda v: 0.0)
        assert path.nodes == (s,) and path.cost == 0.0

    def test_unreachable(self):
        g = SpatialGraph()
        g.add_node(1)
        g.add_node(2)
        with pytest.raises(NoPathError):
            astar(g, 1, 2, lambda v: 0.0)


class TestBidirectional:
    def test_matches_dijkstra(self, road):
        ids = road.node_ids()
        sources = ids[:: max(1, len(ids) // 8)]
        for s in sources:
            for t in (ids[-1], ids[len(ids) // 3]):
                if s == t:
                    continue
                expected = shortest_path(road, s, t).cost
                path = bidirectional_search(road, s, t)
                assert path.cost == pytest.approx(expected)
                walked = sum(road.weight(u, v) for u, v in path.edges())
                assert walked == pytest.approx(path.cost)

    def test_trivial(self, road):
        s = road.node_ids()[0]
        assert bidirectional_search(road, s, s).cost == 0.0

    def test_adjacent_nodes(self, road):
        u, v, w = next(iter(road.edges()))
        path = bidirectional_search(road, u, v)
        expected = shortest_path(road, u, v).cost
        assert path.cost == pytest.approx(expected)

    def test_unreachable(self):
        g = SpatialGraph()
        g.add_node(1)
        g.add_node(2)
        with pytest.raises(NoPathError):
            bidirectional_search(g, 1, 2)


class TestPathObject:
    def test_from_nodes_validates(self, road):
        ids = road.node_ids()
        path = shortest_path(road, ids[0], ids[-1])
        from repro.shortestpath.path import Path

        rebuilt = Path.from_nodes(road, path.nodes)
        assert rebuilt.cost == pytest.approx(path.cost)
        assert rebuilt.num_edges == len(path) - 1

    def test_from_nodes_rejects_phantom_edge(self, road):
        from repro.errors import GraphError
        from repro.shortestpath.path import Path

        ids = road.node_ids()
        far = [ids[0], ids[-1]]
        if not road.has_edge(*far):
            with pytest.raises(GraphError):
                Path.from_nodes(road, far)

    def test_empty_rejected(self, road):
        from repro.errors import GraphError
        from repro.shortestpath.path import Path

        with pytest.raises(GraphError):
            Path.from_nodes(road, [])
