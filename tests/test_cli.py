"""Tests for the command line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "net.txt"
    code = main(["generate", "--nodes", "200", "--seed", "3",
                 "--out", str(path)])
    assert code == 0
    return path


class TestGenerateInfo:
    def test_generate_writes_file(self, tmp_path, capsys):
        path = tmp_path / "fresh.txt"
        assert main(["generate", "--nodes", "150", "--seed", "1",
                     "--out", str(path)]) == 0
        assert path.exists()
        assert "wrote" in capsys.readouterr().out

    def test_info(self, graph_file, capsys):
        assert main(["info", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "nodes" in out and "edge/node ratio" in out


class TestWorkload:
    def test_to_stdout(self, graph_file, capsys):
        assert main(["workload", str(graph_file), "--range", "1000",
                     "--count", "4"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert len(lines) == 4
        for line in lines:
            vs, vt = line.split()
            assert vs != vt

    def test_to_file(self, graph_file, tmp_path, capsys):
        out = tmp_path / "w.txt"
        assert main(["workload", str(graph_file), "--range", "1000",
                     "--count", "3", "--out", str(out)]) == 0
        assert len(out.read_text().splitlines()) == 3


class TestDemo:
    @pytest.mark.parametrize("method", ["DIJ", "FULL", "LDM", "HYP"])
    def test_all_methods_verify(self, graph_file, capsys, method):
        code = main(["demo", str(graph_file), "--method", method,
                     "--queries", "2", "--range", "1000", "--insecure"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert out.count(" ok") >= 2
        assert method in out


class TestEstimate:
    def test_ranking_printed(self, graph_file, capsys):
        assert main(["estimate", str(graph_file), "--range", "1500"]) == 0
        out = capsys.readouterr().out
        for name in ("DIJ", "FULL", "LDM", "HYP"):
            assert name in out


class TestServe:
    @pytest.fixture()
    def workload_file(self, graph_file, tmp_path):
        path = tmp_path / "q.txt"
        assert main(["workload", str(graph_file), "--range", "1000",
                     "--count", "5", "--out", str(path)]) == 0
        return path

    def test_serves_workload_file(self, graph_file, workload_file, capsys):
        code = main(["serve", str(graph_file), "--method", "DIJ",
                     "--workload", str(workload_file), "--insecure"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "serving metrics" in out
        assert out.count(" ok") >= 5

    def test_reads_stdin(self, graph_file, workload_file, capsys, monkeypatch):
        monkeypatch.setattr("sys.stdin", workload_file.open())
        code = main(["serve", str(graph_file), "--method", "DIJ", "--insecure"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "serving metrics" in out

    def test_concurrent_workers(self, graph_file, workload_file, capsys):
        code = main(["serve", str(graph_file), "--method", "DIJ",
                     "--workload", str(workload_file), "--insecure",
                     "--workers", "3"])
        assert code == 0, capsys.readouterr().out

    def test_bad_query_gets_error_row_not_abort(self, graph_file, tmp_path,
                                                capsys):
        path = tmp_path / "q.txt"
        path.write_text("999999 3\n1 2\n")
        code = main(["serve", str(graph_file), "--method", "DIJ",
                     "--workload", str(path), "--insecure"])
        out = capsys.readouterr().out
        assert code == 1, out
        assert "error: unknown source node 999999" in out
        assert "serving metrics" in out  # the stream kept going


class TestLoadtest:
    def test_cold_vs_warm(self, graph_file, capsys):
        code = main(["loadtest", str(graph_file), "--method", "DIJ",
                     "--range", "1000", "--count", "5", "--passes", "2",
                     "--insecure"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "cold" in out and "warm1" in out
        assert "speedup" in out

    def test_loadtest_from_workload_file(self, graph_file, tmp_path, capsys):
        path = tmp_path / "q.txt"
        assert main(["workload", str(graph_file), "--range", "1000",
                     "--count", "4", "--out", str(path)]) == 0
        code = main(["loadtest", str(graph_file), "--method", "DIJ",
                     "--workload", str(path), "--insecure"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "cold" in out

    def test_rejects_single_pass(self, graph_file, capsys):
        code = main(["loadtest", str(graph_file), "--method", "DIJ",
                     "--range", "1000", "--count", "4", "--passes", "1",
                     "--insecure"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestErrors:
    def test_missing_file_is_clean_error(self, capsys):
        assert main(["info", "/nonexistent/net.txt"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
