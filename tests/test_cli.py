"""Tests for the command line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "net.txt"
    code = main(["generate", "--nodes", "200", "--seed", "3",
                 "--out", str(path)])
    assert code == 0
    return path


class TestGenerateInfo:
    def test_generate_writes_file(self, tmp_path, capsys):
        path = tmp_path / "fresh.txt"
        assert main(["generate", "--nodes", "150", "--seed", "1",
                     "--out", str(path)]) == 0
        assert path.exists()
        assert "wrote" in capsys.readouterr().out

    def test_info(self, graph_file, capsys):
        assert main(["info", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "nodes" in out and "edge/node ratio" in out


class TestWorkload:
    def test_to_stdout(self, graph_file, capsys):
        assert main(["workload", str(graph_file), "--range", "1000",
                     "--count", "4"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert len(lines) == 4
        for line in lines:
            vs, vt = line.split()
            assert vs != vt

    def test_to_file(self, graph_file, tmp_path, capsys):
        out = tmp_path / "w.txt"
        assert main(["workload", str(graph_file), "--range", "1000",
                     "--count", "3", "--out", str(out)]) == 0
        assert len(out.read_text().splitlines()) == 3


class TestDemo:
    @pytest.mark.parametrize("method", ["DIJ", "FULL", "LDM", "HYP"])
    def test_all_methods_verify(self, graph_file, capsys, method):
        code = main(["demo", str(graph_file), "--method", method,
                     "--queries", "2", "--range", "1000", "--insecure"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert out.count(" ok") >= 2
        assert method in out


class TestEstimate:
    def test_ranking_printed(self, graph_file, capsys):
        assert main(["estimate", str(graph_file), "--range", "1500"]) == 0
        out = capsys.readouterr().out
        for name in ("DIJ", "FULL", "LDM", "HYP"):
            assert name in out


class TestErrors:
    def test_missing_file_is_clean_error(self, capsys):
        assert main(["info", "/nonexistent/net.txt"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
