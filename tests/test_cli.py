"""Tests for the command line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "net.txt"
    code = main(["generate", "--nodes", "200", "--seed", "3",
                 "--out", str(path)])
    assert code == 0
    return path


class TestGenerateInfo:
    def test_generate_writes_file(self, tmp_path, capsys):
        path = tmp_path / "fresh.txt"
        assert main(["generate", "--nodes", "150", "--seed", "1",
                     "--out", str(path)]) == 0
        assert path.exists()
        assert "wrote" in capsys.readouterr().out

    def test_info(self, graph_file, capsys):
        assert main(["info", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "nodes" in out and "edge/node ratio" in out


class TestWorkload:
    def test_to_stdout(self, graph_file, capsys):
        assert main(["workload", str(graph_file), "--range", "1000",
                     "--count", "4"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert len(lines) == 4
        for line in lines:
            vs, vt = line.split()
            assert vs != vt

    def test_to_file(self, graph_file, tmp_path, capsys):
        out = tmp_path / "w.txt"
        assert main(["workload", str(graph_file), "--range", "1000",
                     "--count", "3", "--out", str(out)]) == 0
        assert len(out.read_text().splitlines()) == 3


class TestDemo:
    @pytest.mark.parametrize("method", ["DIJ", "FULL", "LDM", "HYP"])
    def test_all_methods_verify(self, graph_file, capsys, method):
        code = main(["demo", str(graph_file), "--method", method,
                     "--queries", "2", "--range", "1000", "--insecure"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert out.count(" ok") >= 2
        assert method in out


class TestEstimate:
    def test_ranking_printed(self, graph_file, capsys):
        assert main(["estimate", str(graph_file), "--range", "1500"]) == 0
        out = capsys.readouterr().out
        for name in ("DIJ", "FULL", "LDM", "HYP"):
            assert name in out


class TestServe:
    @pytest.fixture()
    def workload_file(self, graph_file, tmp_path):
        path = tmp_path / "q.txt"
        assert main(["workload", str(graph_file), "--range", "1000",
                     "--count", "5", "--out", str(path)]) == 0
        return path

    def test_serves_workload_file(self, graph_file, workload_file, capsys):
        code = main(["serve", str(graph_file), "--method", "DIJ",
                     "--workload", str(workload_file), "--insecure"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "serving metrics" in out
        assert out.count(" ok") >= 5

    def test_reads_stdin(self, graph_file, workload_file, capsys, monkeypatch):
        monkeypatch.setattr("sys.stdin", workload_file.open())
        code = main(["serve", str(graph_file), "--method", "DIJ", "--insecure"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "serving metrics" in out

    def test_concurrent_workers(self, graph_file, workload_file, capsys):
        code = main(["serve", str(graph_file), "--method", "DIJ",
                     "--workload", str(workload_file), "--insecure",
                     "--workers", "3"])
        assert code == 0, capsys.readouterr().out

    def test_bad_query_gets_error_row_not_abort(self, graph_file, tmp_path,
                                                capsys):
        path = tmp_path / "q.txt"
        path.write_text("999999 3\n1 2\n")
        code = main(["serve", str(graph_file), "--method", "DIJ",
                     "--workload", str(path), "--insecure"])
        out = capsys.readouterr().out
        assert code == 1, out
        assert "error: unknown source node 999999" in out
        assert "serving metrics" in out  # the stream kept going


class TestLoadtest:
    def test_cold_vs_warm(self, graph_file, capsys):
        code = main(["loadtest", str(graph_file), "--method", "DIJ",
                     "--range", "1000", "--count", "5", "--passes", "2",
                     "--insecure"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "cold" in out and "warm1" in out
        assert "speedup" in out

    def test_loadtest_from_workload_file(self, graph_file, tmp_path, capsys):
        path = tmp_path / "q.txt"
        assert main(["workload", str(graph_file), "--range", "1000",
                     "--count", "4", "--out", str(path)]) == 0
        code = main(["loadtest", str(graph_file), "--method", "DIJ",
                     "--workload", str(path), "--insecure"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "cold" in out

    def test_rejects_single_pass(self, graph_file, capsys):
        code = main(["loadtest", str(graph_file), "--method", "DIJ",
                     "--range", "1000", "--count", "4", "--passes", "1",
                     "--insecure"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestHttpLoadtest:
    def test_wire_level_replay_verifies(self, graph_file, capsys):
        code = main(["loadtest", str(graph_file), "--method", "DIJ",
                     "--range", "1000", "--count", "4", "--passes", "2",
                     "--insecure", "--http"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "wire QPS" in out and "overhead" in out
        assert "bytes-on-wire / proof bytes" in out

    def test_wire_replay_with_updates(self, graph_file, capsys):
        code = main(["loadtest", str(graph_file), "--method", "DIJ",
                     "--range", "1000", "--count", "4", "--passes", "2",
                     "--insecure", "--http", "--updates", "1"])
        assert code == 0, capsys.readouterr().out


class TestScenarioLoadtest:
    ARGS = ["loadtest", "--scenario", "steady-burst", "--http",
            "--insecure", "--clients", "2", "--client-mode", "thread",
            "--events-scale", "0.1", "--time-scale", "0.05", "--seed", "7"]

    def test_soak_reports_phases_and_slo_metrics(self, graph_file, tmp_path,
                                                 capsys):
        out_path = tmp_path / "soak.json"
        code = main([*self.ARGS, str(graph_file), "--method", "DIJ",
                     "--out", str(out_path)])
        out = capsys.readouterr().out
        assert code == 0, out
        for column in ("phase", "p50 ms", "p95 ms", "p99 ms", "B/query",
                       "hit %", "updates", "verified"):
            assert column in out
        for phase in ("warmup", "steady", "burst", "update-storm"):
            assert phase in out
        assert "saturation" in out and "trace" in out
        assert "0 verification failures" in out
        import json as _json
        record = _json.loads(out_path.read_text())
        assert record["scenario"] == "steady-burst"
        assert len(record["phases"]) == 4
        assert record["verification_failures"] == 0

    def test_same_seed_same_trace_digest(self, graph_file, capsys):
        digests = []
        for _ in range(2):
            assert main([*self.ARGS, str(graph_file), "--method", "DIJ"]) == 0
            out = capsys.readouterr().out
            digests.append(out.split("trace ")[1].split()[0])
        assert digests[0] == digests[1]

    def test_slo_gate_failure_exits_3(self, graph_file, tmp_path, capsys):
        policy = tmp_path / "slo.json"
        policy.write_text('{"min_saturation_qps": 10000000.0}')
        code = main([*self.ARGS, str(graph_file), "--method", "DIJ",
                     "--slo", str(policy)])
        capsys.readouterr()
        assert code == 3

    def test_scenario_requires_http(self, graph_file, capsys):
        code = main(["loadtest", "--scenario", "steady-burst", "--insecure",
                     str(graph_file), "--method", "DIJ"])
        assert code == 2
        assert "--http" in capsys.readouterr().err

    def test_unknown_scenario_is_a_typed_error(self, graph_file, capsys):
        code = main(["loadtest", "--scenario", "nope", "--http", "--insecure",
                     str(graph_file), "--method", "DIJ"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "steady-burst" in err


class TestServeHttp:
    def test_prints_url_and_shuts_down(self, graph_file, capsys, monkeypatch):
        from repro.service.http import ProofHttpServer

        def immediate_interrupt(self):
            raise KeyboardInterrupt

        monkeypatch.setattr(ProofHttpServer, "serve_forever",
                            immediate_interrupt)
        code = main(["serve", str(graph_file), "--method", "DIJ",
                     "--insecure", "--http", "0"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "http://127.0.0.1:" in out
        assert "serving metrics" in out

    def test_update_pushes_disabled_by_default(self, graph_file, capsys,
                                               monkeypatch):
        from repro.service.http import ProofHttpServer

        captured = {}

        def grab_dispatcher(self):
            captured["signer"] = self.dispatcher.update_signer
            raise KeyboardInterrupt

        monkeypatch.setattr(ProofHttpServer, "serve_forever", grab_dispatcher)
        code = main(["serve", str(graph_file), "--method", "DIJ",
                     "--insecure", "--http", "0"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "update pushes disabled" in out
        assert captured["signer"] is None

        code = main(["serve", str(graph_file), "--method", "DIJ",
                     "--insecure", "--http", "0", "--allow-updates"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "trusted networks only" in out
        assert captured["signer"] is not None

    def test_save_key_writes_public_key(self, graph_file, tmp_path, capsys,
                                        monkeypatch):
        from repro.crypto.signer import NullSigner, load_public_key
        from repro.service.http import ProofHttpServer

        monkeypatch.setattr(ProofHttpServer, "serve_forever",
                            lambda self: (_ for _ in ()).throw(KeyboardInterrupt))
        key_path = tmp_path / "owner.pub"
        code = main(["serve", str(graph_file), "--method", "DIJ",
                     "--insecure", "--http", "0",
                     "--save-key", str(key_path)])
        assert code == 0, capsys.readouterr().out
        loaded = load_public_key(str(key_path))
        probe = NullSigner()  # --insecure uses the default stub key
        assert loaded.verify(b"msg", probe.sign(b"msg"))


class TestVerifyArtifacts:
    @pytest.fixture()
    def artifacts(self, tmp_path):
        """Response, descriptor and key files from an in-process build."""
        from repro.core.dij import DijMethod
        from repro.crypto.signer import NullSigner, save_public_key
        from repro.graph.synthetic import road_network
        from repro.workload.datasets import normalize_weights
        from repro.workload.queries import generate_workload

        graph = normalize_weights(road_network(120, seed=5), 4000.0)
        signer = NullSigner()
        method = DijMethod.build(graph, signer)
        vs, vt = list(generate_workload(graph, 1200.0, count=1, seed=2))[0]
        response = tmp_path / "response.bin"
        response.write_bytes(method.answer(vs, vt).encode())
        descriptor = tmp_path / "descriptor.bin"
        descriptor.write_bytes(method.descriptor.encode())
        key = tmp_path / "owner.pub"
        save_public_key(signer, str(key))
        return dict(response=response, descriptor=descriptor, key=key,
                    source=vs, target=vt,
                    version=method.descriptor.version)

    def test_accepts_honest_artifact(self, artifacts, capsys):
        code = main(["verify", str(artifacts["response"]),
                     "--key", str(artifacts["key"]),
                     "--descriptor", str(artifacts["descriptor"])])
        out = capsys.readouterr().out
        assert code == 0, out
        assert out.startswith("ok:")

    def test_explicit_query_pins(self, artifacts, capsys):
        code = main(["verify", str(artifacts["response"]),
                     "--key", str(artifacts["key"]),
                     "--source", str(artifacts["source"]),
                     "--target", str(artifacts["target"])])
        assert code == 0, capsys.readouterr().out

    def test_wrong_query_is_rejected(self, artifacts, capsys):
        code = main(["verify", str(artifacts["response"]),
                     "--key", str(artifacts["key"]),
                     "--source", str(artifacts["source"] + 1)])
        out = capsys.readouterr().out
        assert code == 1
        assert "reject:" in out

    def test_min_version_gates_freshness(self, artifacts, capsys):
        code = main(["verify", str(artifacts["response"]),
                     "--key", str(artifacts["key"]),
                     "--min-version", str(artifacts["version"] + 1)])
        out = capsys.readouterr().out
        assert code == 1
        assert "stale-descriptor" in out

    def test_truncated_artifact_is_malformed(self, artifacts, tmp_path,
                                             capsys):
        broken = tmp_path / "broken.bin"
        broken.write_bytes(artifacts["response"].read_bytes()[:50])
        code = main(["verify", str(broken), "--key", str(artifacts["key"])])
        out = capsys.readouterr().out
        assert code == 1
        assert "malformed-response" in out

    def test_descriptor_mismatch(self, artifacts, tmp_path, capsys):
        other = tmp_path / "other.bin"
        other.write_bytes(b"not the descriptor")
        code = main(["verify", str(artifacts["response"]),
                     "--key", str(artifacts["key"]),
                     "--descriptor", str(other)])
        out = capsys.readouterr().out
        assert code == 1
        assert "descriptor-mismatch" in out

    def test_wrong_key_is_bad_signature(self, artifacts, tmp_path, capsys):
        from repro.crypto.signer import NullSigner, save_public_key

        wrong = tmp_path / "wrong.pub"
        save_public_key(NullSigner(key=b"different"), str(wrong))
        code = main(["verify", str(artifacts["response"]),
                     "--key", str(wrong)])
        out = capsys.readouterr().out
        assert code == 1
        assert "bad-signature" in out


class TestFetch:
    def test_fetch_then_verify_offline(self, graph_file, tmp_path, capsys):
        from repro.core.dij import DijMethod
        from repro.crypto.signer import NullSigner, save_public_key
        from repro.graph.io import read_graph
        from repro.service.http import ProofHttpServer
        from repro.service.server import ProofServer
        from repro.workload.queries import generate_workload

        graph = read_graph(str(graph_file))
        signer = NullSigner()
        method = DijMethod.build(graph, signer)
        vs, vt = list(generate_workload(graph, 1000.0, count=1, seed=4))[0]
        key = tmp_path / "owner.pub"
        save_public_key(signer, str(key))
        server = ProofServer(method)
        with ProofHttpServer(server.dispatcher()) as http_server:
            code = main(["fetch", http_server.url, str(vs), str(vt),
                         "--out", str(tmp_path / "r.bin"),
                         "--descriptor-out", str(tmp_path / "d.bin"),
                         "--key", str(key)])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "verdict: ok" in out
        code = main(["verify", str(tmp_path / "r.bin"),
                     "--key", str(key),
                     "--descriptor", str(tmp_path / "d.bin")])
        assert code == 0, capsys.readouterr().out

    def test_fetch_without_key_defers_verification(self, graph_file, tmp_path,
                                                   capsys):
        from repro.core.dij import DijMethod
        from repro.crypto.signer import NullSigner
        from repro.graph.io import read_graph
        from repro.service.http import ProofHttpServer
        from repro.service.server import ProofServer
        from repro.workload.queries import generate_workload

        graph = read_graph(str(graph_file))
        method = DijMethod.build(graph, NullSigner())
        vs, vt = list(generate_workload(graph, 1000.0, count=1, seed=4))[0]
        server = ProofServer(method)
        with ProofHttpServer(server.dispatcher()) as http_server:
            code = main(["fetch", http_server.url, str(vs), str(vt),
                         "--out", str(tmp_path / "r.bin")])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "not checked" in out
        assert (tmp_path / "r.bin").exists()


class TestPackAndArtifactServe:
    @pytest.fixture()
    def packed(self, graph_file, tmp_path):
        artifact = tmp_path / "net.ldm.rspv"
        key = tmp_path / "owner.pub"
        code = main(["pack", str(graph_file), "--method", "LDM",
                     "--landmarks", "8", "--insecure",
                     "--out", str(artifact), "--save-key", str(key)])
        assert code == 0
        return artifact, key

    @pytest.fixture()
    def workload_file(self, graph_file, tmp_path):
        path = tmp_path / "q.txt"
        assert main(["workload", str(graph_file), "--range", "1000",
                     "--count", "4", "--out", str(path)]) == 0
        return path

    def test_pack_reports_digest(self, graph_file, tmp_path, capsys):
        code = main(["pack", str(graph_file), "--method", "DIJ", "--insecure",
                     "--out", str(tmp_path / "d.rspv")])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "content digest" in out
        assert "sections" in out

    def test_pack_is_deterministic(self, graph_file, tmp_path, capsys):
        from repro.store.pack import file_digest

        a = tmp_path / "a.rspv"
        b = tmp_path / "b.rspv"
        for path in (a, b):
            assert main(["pack", str(graph_file), "--method", "DIJ",
                         "--insecure", "--out", str(path)]) == 0
        assert file_digest(str(a)) == file_digest(str(b))

    def test_info_recognizes_artifact(self, packed, capsys):
        artifact, _ = packed
        capsys.readouterr()
        assert main(["info", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert ".rspv artifact" in out
        assert "descriptor version" in out
        assert "content digest" in out
        assert "root[network]" in out
        assert "ldm/vectors" in out  # the section table, with sizes

    def test_info_rejects_tampered_artifact(self, packed, tmp_path, capsys):
        artifact, _ = packed
        data = bytearray(artifact.read_bytes())
        data[len(data) // 2] ^= 0x40
        bad = tmp_path / "bad.rspv"
        bad.write_bytes(bytes(data))
        assert main(["info", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_from_artifact_verifies_with_key(self, packed,
                                                   workload_file, capsys):
        artifact, key = packed
        code = main(["serve", "--artifact", str(artifact),
                     "--workload", str(workload_file), "--key", str(key)])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "artifact" in out
        assert out.count(" ok") >= 4

    def test_serve_from_artifact_without_key_is_unchecked(self, packed,
                                                          workload_file,
                                                          capsys):
        artifact, _ = packed
        code = main(["serve", "--artifact", str(artifact),
                     "--workload", str(workload_file)])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "unchecked" in out

    def test_serve_needs_graph_or_artifact(self, capsys):
        assert main(["serve", "--method", "DIJ"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_rejects_graph_plus_artifact(self, graph_file, packed,
                                               capsys):
        artifact, _ = packed
        assert main(["serve", str(graph_file), "--artifact",
                     str(artifact)]) == 2
        assert "not both" in capsys.readouterr().err

    def test_http_workers_require_artifact(self, graph_file, capsys):
        code = main(["serve", str(graph_file), "--insecure",
                     "--http", "0", "--workers", "2"])
        assert code == 2
        assert "artifact" in capsys.readouterr().err

    def test_loadtest_artifact_requires_http(self, packed, capsys):
        artifact, _ = packed
        assert main(["loadtest", "--artifact", str(artifact)]) == 2
        assert "--http" in capsys.readouterr().err


class TestErrors:
    def test_missing_file_is_clean_error(self, capsys):
        assert main(["info", "/nonexistent/net.txt"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestPartition:
    def test_partition_writes_shards_and_manifest(self, graph_file, tmp_path,
                                                  capsys):
        prefix = tmp_path / "de"
        key = tmp_path / "owner.pub"
        code = main(["partition", str(graph_file), "--shards", "2",
                     "--insecure", "--out-prefix", str(prefix),
                     "--save-key", str(key)])
        assert code == 0
        out = capsys.readouterr().out
        assert "shard manifest" in out
        assert key.exists()
        assert (tmp_path / "de.shard0.rspv").exists()
        assert (tmp_path / "de.shard1.rspv").exists()
        assert (tmp_path / "de.manifest.rspm").exists()

    def test_info_recognizes_manifest(self, graph_file, tmp_path, capsys):
        prefix = tmp_path / "de"
        assert main(["partition", str(graph_file), "--shards", "2",
                     "--insecure", "--out-prefix", str(prefix)]) == 0
        capsys.readouterr()
        assert main(["info", str(tmp_path / "de.manifest.rspm")]) == 0
        out = capsys.readouterr().out
        assert "shard manifest" in out
        assert "boundary" in out
        assert "descriptor digest" in out


class TestRouterValidation:
    def test_router_requires_manifest(self, graph_file, capsys):
        code = main(["serve", str(graph_file), "--router", "--http", "0",
                     "--shards", "a.rspv,b.rspv"])
        assert code == 2
        assert "--manifest" in capsys.readouterr().err

    def test_router_requires_exactly_one_worker_source(self, graph_file,
                                                       tmp_path, capsys):
        manifest = tmp_path / "m.rspm"
        manifest.write_bytes(b"RSPM")
        code = main(["serve", str(graph_file), "--router", "--http", "0",
                     "--manifest", str(manifest)])
        assert code == 2
        assert "exactly one" in capsys.readouterr().err
        code = main(["serve", str(graph_file), "--router", "--http", "0",
                     "--manifest", str(manifest),
                     "--shards", "a.rspv", "--shard-urls", "http://x"])
        assert code == 2
        assert "exactly one" in capsys.readouterr().err

    def test_router_flags_without_router(self, graph_file, tmp_path, capsys):
        manifest = tmp_path / "m.rspm"
        manifest.write_bytes(b"RSPM")
        code = main(["serve", str(graph_file), "--insecure",
                     "--manifest", str(manifest)])
        assert code == 2
        assert "--router" in capsys.readouterr().err

    def test_loadtest_url_requires_scenario(self, graph_file, capsys):
        code = main(["loadtest", str(graph_file),
                     "--url", "http://127.0.0.1:1"])
        assert code == 2
        assert "--scenario" in capsys.readouterr().err
