"""Unit and property tests for the canonical binary encoding."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.encoding import Decoder, Encoder, zigzag_decode, zigzag_encode
from repro.errors import EncodingError


class TestVarint:
    def test_zero(self):
        assert Encoder().write_uint(0).getvalue() == b"\x00"

    def test_small_values_one_byte(self):
        for value in (1, 17, 127):
            assert len(Encoder().write_uint(value).getvalue()) == 1

    def test_boundary_128_takes_two_bytes(self):
        assert len(Encoder().write_uint(128).getvalue()) == 2

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            Encoder().write_uint(-1)

    @given(st.integers(min_value=0, max_value=2**63))
    def test_roundtrip(self, value):
        data = Encoder().write_uint(value).getvalue()
        assert Decoder(data).read_uint() == value

    def test_truncated_raises(self):
        data = Encoder().write_uint(300).getvalue()
        with pytest.raises(EncodingError):
            Decoder(data[:1]).read_uint()

    def test_overlong_varint_rejected(self):
        with pytest.raises(EncodingError):
            Decoder(b"\xff" * 12).read_uint()


class TestSignedInt:
    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_roundtrip(self, value):
        data = Encoder().write_int(value).getvalue()
        assert Decoder(data).read_int() == value

    def test_zigzag_known_values(self):
        pairs = [(0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4)]
        for signed, unsigned in pairs:
            assert zigzag_encode(signed) == unsigned
            assert zigzag_decode(unsigned) == signed


class TestFloats:
    @given(st.floats(allow_nan=False))
    def test_f64_roundtrip_exact(self, value):
        data = Encoder().write_f64(value).getvalue()
        assert len(data) == 8
        assert Decoder(data).read_f64() == value

    def test_f64_nan_roundtrip(self):
        data = Encoder().write_f64(float("nan")).getvalue()
        assert math.isnan(Decoder(data).read_f64())

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_f32_roundtrip(self, value):
        data = Encoder().write_f32(value).getvalue()
        assert len(data) == 4
        assert Decoder(data).read_f32() == value


class TestBytesAndStrings:
    @given(st.binary(max_size=500))
    def test_bytes_roundtrip(self, payload):
        data = Encoder().write_bytes(payload).getvalue()
        assert Decoder(data).read_bytes() == payload

    @given(st.text(max_size=200))
    def test_str_roundtrip(self, text):
        data = Encoder().write_str(text).getvalue()
        assert Decoder(data).read_str() == text

    def test_invalid_utf8_rejected(self):
        data = Encoder().write_bytes(b"\xff\xfe").getvalue()
        with pytest.raises(EncodingError):
            Decoder(data).read_str()

    def test_raw_has_no_prefix(self):
        data = Encoder().write_raw(b"abc").getvalue()
        assert data == b"abc"
        assert Decoder(data).read_raw(3) == b"abc"

    def test_truncated_payload(self):
        with pytest.raises(EncodingError):
            Decoder(b"\x05ab").read_bytes()


class TestSequences:
    @given(st.lists(st.integers(min_value=0, max_value=10**12), max_size=50))
    def test_uint_seq_roundtrip(self, values):
        data = Encoder().write_uint_seq(values).getvalue()
        assert Decoder(data).read_uint_seq() == values

    @given(st.lists(st.floats(allow_nan=False), max_size=50))
    def test_f64_seq_roundtrip(self, values):
        data = Encoder().write_f64_seq(values).getvalue()
        assert Decoder(data).read_f64_seq() == values


class TestPackedCodes:
    @given(
        st.integers(min_value=1, max_value=16).flatmap(
            lambda bits: st.tuples(
                st.just(bits),
                st.lists(st.integers(min_value=0, max_value=(1 << bits) - 1),
                         max_size=100),
            )
        )
    )
    def test_roundtrip(self, bits_and_codes):
        bits, codes = bits_and_codes
        data = Encoder().write_packed_codes(codes, bits).getvalue()
        assert Decoder(data).read_packed_codes(bits) == codes

    def test_packing_density(self):
        # 100 codes at 12 bits = 150 payload bytes + 1 count byte.
        codes = list(range(100))
        data = Encoder().write_packed_codes(codes, 12).getvalue()
        assert len(data) == 1 + 150

    def test_out_of_range_code_rejected(self):
        with pytest.raises(EncodingError):
            Encoder().write_packed_codes([8], 3)

    def test_bad_bit_width_rejected(self):
        with pytest.raises(EncodingError):
            Encoder().write_packed_codes([0], 0)
        with pytest.raises(EncodingError):
            Decoder(b"\x00").read_packed_codes(65)


class TestDecoderBookkeeping:
    def test_expect_end(self):
        dec = Decoder(Encoder().write_uint(7).write_uint(9).getvalue())
        dec.read_uint()
        with pytest.raises(EncodingError):
            dec.expect_end()
        dec.read_uint()
        dec.expect_end()

    def test_remaining(self):
        dec = Decoder(b"abcd")
        assert dec.remaining == 4
        dec.read_raw(1)
        assert dec.remaining == 3

    def test_bool_roundtrip_and_validation(self):
        data = Encoder().write_bool(True).write_bool(False).getvalue()
        dec = Decoder(data)
        assert dec.read_bool() is True
        assert dec.read_bool() is False
        with pytest.raises(EncodingError):
            Decoder(b"\x02").read_bool()

    def test_mixed_stream(self):
        enc = (
            Encoder()
            .write_uint(42)
            .write_str("node")
            .write_f64(2.5)
            .write_uint_seq([1, 2, 3])
        )
        dec = Decoder(enc.getvalue())
        assert dec.read_uint() == 42
        assert dec.read_str() == "node"
        assert dec.read_f64() == 2.5
        assert dec.read_uint_seq() == [1, 2, 3]
        dec.expect_end()

    def test_encoder_len_matches_output(self):
        enc = Encoder().write_uint(1000).write_str("abc")
        assert len(enc) == len(enc.getvalue())
