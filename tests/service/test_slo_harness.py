"""SLO-harness tests: one real soak plus the gate logic around it.

The module-scoped soak runs the full steady-burst shape (scaled down,
thread clients, accelerated clock) through a live HTTP stack so one
run backs every structural assertion: phased latency tables, the
closed-loop saturation probe, cache locality, mid-soak update pushes
with the freshness floor, and per-phase server-side windows.  The
policy/gate tests below are pure logic on that report.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.slo import (
    PhaseReport,
    SloPolicy,
    SloReport,
    check_slo,
    load_slo_policy,
    run_slo_soak,
)
from repro.core.framework import DataOwner
from repro.crypto.signer import NullSigner
from repro.errors import ServiceError
from repro.workload.traffic import generate_traffic, get_scenario

SEED = 17
SCALE = 0.3


@pytest.fixture(scope="module")
def signer():
    return NullSigner()


@pytest.fixture(scope="module")
def soak(road300, signer):
    graph = road300.copy()
    method = DataOwner(graph, signer=signer).publish("DIJ")
    return run_slo_soak(
        method, get_scenario("steady-burst").scaled(SCALE),
        verify_signature=signer.verify, update_signer=signer,
        clients=2, client_mode="thread", seed=SEED, time_scale=0.05,
    )


class TestSoakReport:
    def test_all_phases_reported_in_order(self, soak):
        assert [p.name for p in soak.phases] == \
            ["warmup", "steady", "burst", "update-storm"]
        assert soak.scenario == "steady-burst"
        assert soak.method == "DIJ"
        assert soak.seed == SEED

    def test_trace_digest_matches_regeneration(self, soak, road300):
        scenario = get_scenario("steady-burst").scaled(SCALE)
        assert soak.trace_digest == \
            generate_traffic(road300, scenario, seed=SEED).digest()

    def test_latency_percentiles_are_ordered(self, soak):
        for phase in soak.phases:
            assert phase.requests > 0
            assert 0.0 < phase.p50_ms <= phase.p95_ms <= phase.p99_ms
            assert phase.seconds > 0
            assert phase.qps > 0

    def test_saturation_comes_from_the_closed_loop_phase(self, soak):
        (burst,) = [p for p in soak.phases if p.mode == "closed"]
        assert burst.name == "burst"
        assert soak.saturation_qps == pytest.approx(burst.qps)

    def test_bytes_and_locality_are_measured(self, soak):
        for phase in soak.phases:
            assert phase.bytes_per_query > 0
        best = max(p.hit_rate for p in soak.phases)
        assert best > 0.2, "Zipf pool produced no cache locality"

    def test_everything_verified_including_update_pushes(self, soak):
        assert soak.all_verified, [p.failures for p in soak.phases]
        assert soak.verification_failures == 0
        assert soak.updates_pushed >= 1, "no mid-soak update push happened"
        assert soak.final_version > 0
        assert soak.freshness_failures == ()

    def test_server_windows_ride_along(self, soak):
        for phase in soak.phases:
            assert phase.server_window is not None
            assert phase.server_window["phase"] == phase.name
        storm = next(p for p in soak.phases if p.name == "update-storm")
        assert storm.server_window["updates"] == soak.updates_pushed

    def test_report_is_json_serializable(self, soak):
        record = json.loads(json.dumps(soak.as_dict()))
        assert record["scenario"] == "steady-burst"
        assert len(record["phases"]) == 4
        assert record["saturation_qps"] == pytest.approx(soak.saturation_qps)


class TestSloGate:
    def test_sane_policy_passes(self, soak):
        policy = SloPolicy(max_p99_ms=60_000.0, min_saturation_qps=0.1,
                           min_hit_rate=0.05)
        assert check_slo(soak, policy) == []

    def test_each_objective_can_fail(self, soak):
        assert any("p99" in v for v in check_slo(
            soak, SloPolicy(max_p99_ms=0.000001)))
        assert any("saturation" in v for v in check_slo(
            soak, SloPolicy(min_saturation_qps=10_000_000.0)))
        assert any("hit rate" in v for v in check_slo(
            soak, SloPolicy(min_hit_rate=1.0)))

    def test_warmup_p99_is_exempt(self):
        warm = PhaseReport(name="warmup", mode="open", requests=1, queries=1,
                           seconds=1.0, p50_ms=500.0, p95_ms=500.0,
                           p99_ms=500.0, wire_bytes=10, proof_bytes=10,
                           verified=1, cache_hits=0, failures=(),
                           garbage_sent=0, garbage_unexpected=0,
                           garbage_untyped=0, updates_pushed=0)
        report = SloReport(scenario="s", method="DIJ", seed=1,
                           trace_digest="x", clients=1, client_mode="thread",
                           url="local", phases=(warm,), server_metrics=None,
                           worker_requests=(), final_version=0,
                           freshness_failures=())
        assert check_slo(report, SloPolicy(max_p99_ms=1.0)) == []

    def test_policy_file_round_trip(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({
            "max_p99_ms": 250.0, "min_saturation_qps": 40.0,
            "min_hit_rate": 0.3, "future_knob_ignored": True,
        }))
        policy = load_slo_policy(str(path))
        assert policy.max_p99_ms == 250.0
        assert policy.min_saturation_qps == 40.0
        assert policy.min_hit_rate == 0.3
        assert policy.max_verification_failures == 0

    def test_policy_file_must_be_an_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ServiceError):
            load_slo_policy(str(path))


def test_thread_soak_is_reproducible(road300, signer):
    """Same seed ⇒ same trace digest and same query/update volumes
    (latencies of course differ run to run)."""
    scenario = get_scenario("steady").scaled(0.2)

    def once():
        method = DataOwner(road300.copy(), signer=signer).publish("DIJ")
        return run_slo_soak(method, scenario, verify_signature=signer.verify,
                            update_signer=signer, clients=2,
                            client_mode="thread", seed=4, time_scale=0.05)

    a, b = once(), once()
    assert a.trace_digest == b.trace_digest
    assert a.total_queries == b.total_queries
    assert [p.requests for p in a.phases] == [p.requests for p in b.phases]
