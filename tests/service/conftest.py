"""Service-layer fixtures: built methods plus a shared workload."""

from __future__ import annotations

import pytest

from repro.core.dij import DijMethod
from repro.core.full import FullMethod
from repro.core.hyp import HypMethod
from repro.core.ldm import LdmMethod
from repro.crypto.signer import NullSigner
from repro.workload.queries import generate_workload

QUERY_RANGE = 1500.0


@pytest.fixture(scope="package")
def signer():
    return NullSigner()


@pytest.fixture(scope="package")
def workload(road300):
    return list(generate_workload(road300, QUERY_RANGE, count=8, seed=77))


@pytest.fixture(scope="package")
def dij(road300, signer):
    return DijMethod.build(road300, signer)


@pytest.fixture(scope="package")
def full(road300, signer):
    return FullMethod.build(road300, signer)


@pytest.fixture(scope="package")
def ldm(road300, signer):
    return LdmMethod.build(road300, signer, c=20)


@pytest.fixture(scope="package")
def hyp(road300, signer):
    return HypMethod.build(road300, signer, num_cells=16)
