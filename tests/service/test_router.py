"""ShardRouter: routing, stitching, fault surfacing, fleet metrics."""

from __future__ import annotations

import pytest

from repro.api import codes
from repro.api.client import RemoteClient
from repro.api.envelope import (
    DescriptorRequest,
    ErrorMessage,
    QueryRequest,
    UpdatePushRequest,
    WireUpdate,
    decode_frame,
    decode_message,
)
from repro.api.transport import InProcessTransport
from repro.core.framework import distances_close
from repro.crypto.signer import NullSigner
from repro.service.router import ShardRouter
from repro.service.server import ProofServer
from repro.shard import build_shards
from repro.shortestpath.kernel import indexed_shortest_path


@pytest.fixture(scope="module")
def fleet(road300):
    """A 3-shard build, its workers, and a live router over them."""
    signer = NullSigner()
    build = build_shards(road300, signer, num_shards=3)
    servers = [ProofServer(m, cache_size=64) for m in build.methods]
    transports = [InProcessTransport(s.dispatcher()) for s in servers]
    with ShardRouter(build.manifest, transports, road300) as router:
        yield {
            "signer": signer,
            "build": build,
            "graph": road300,
            "servers": servers,
            "router": router,
            "client": RemoteClient(InProcessTransport(router),
                                   signer.verify),
        }


def _pairs(fleet_dict):
    """One intra-shard and one cross-shard pair from the router's plan."""
    router = fleet_dict["router"]
    graph = fleet_dict["graph"]
    nodes = sorted(graph.node_ids())
    intra = cross = None
    for source in nodes[:40]:
        for target in nodes[-40:]:
            if source == target:
                continue
            plan = router._plan(source, target)
            if len(plan) == 1 and intra is None:
                intra = (source, target)
            elif len(plan) > 1 and cross is None:
                cross = (source, target)
            if intra and cross:
                return intra, cross
    raise AssertionError("could not find both pair shapes")


class TestHandshake:
    def test_hello_reports_manifest_identity(self, fleet):
        hello = fleet["client"].hello()
        assert hello.method == "DIJ"
        assert hello.descriptor_version == fleet["build"].manifest.version

    def test_fetch_manifest_is_verbatim(self, fleet):
        manifest, raw = fleet["client"].fetch_manifest()
        assert manifest == fleet["build"].manifest
        assert raw == fleet["router"].manifest_bytes


class TestRouting:
    def test_intra_shard_is_proxied_not_composite(self, fleet):
        intra, _ = _pairs(fleet)
        result = fleet["client"].query(*intra)
        assert result.ok, result.verdict.reason
        assert not result.composite
        assert result.response is not None

    def test_cross_shard_is_stitched_and_optimal(self, fleet):
        _, cross = _pairs(fleet)
        result = fleet["client"].query(*cross)
        assert result.ok, f"{result.verdict.reason}: {result.verdict.detail}"
        assert result.composite
        composite = result.composite_response
        truth = indexed_shortest_path(fleet["graph"].to_index(), *cross)
        assert distances_close(composite.path_cost, truth.cost)
        assert composite.path_nodes == truth.nodes
        assert result.path == (truth.nodes, composite.path_cost)

    def test_batch_mixes_proxied_and_composite(self, fleet):
        intra, cross = _pairs(fleet)
        results = fleet["client"].query_batch([intra, cross, intra])
        assert [r.ok for r in results] == [True, True, True]
        assert [r.composite for r in results] == [False, True, False]

    def test_route_cache_marks_warm_plan(self, fleet):
        _, cross = _pairs(fleet)
        first = fleet["client"].query(*cross)
        second = fleet["client"].query(*cross)
        assert first.ok and second.ok
        # Warm pass: every shard answered from its proof cache, so the
        # composite reply is flagged cached.
        assert second.cached


class TestFramedErrors:
    def _ask(self, fleet_dict, message):
        reply_frame = fleet_dict["router"].dispatch(message.to_frame())
        return decode_message(decode_frame(reply_frame))

    def test_descriptor_request_is_refused(self, fleet):
        reply = self._ask(fleet, DescriptorRequest())
        assert isinstance(reply, ErrorMessage)
        assert reply.code == codes.E_BAD_REQUEST
        assert "manifest" in reply.detail

    def test_updates_are_refused(self, fleet):
        push = UpdatePushRequest((WireUpdate("update-weight", 3, 9, 17.25),))
        reply = self._ask(fleet, push)
        assert isinstance(reply, ErrorMessage)
        assert reply.code == codes.E_UPDATES_DISABLED

    def test_nonsense_frame(self, fleet):
        reply_frame = fleet["router"].dispatch(b"nonsense")
        reply = decode_message(decode_frame(reply_frame))
        assert isinstance(reply, ErrorMessage)
        assert reply.code == codes.E_MALFORMED_FRAME

    def test_unknown_node_is_query_failed(self, fleet):
        reply = self._ask(fleet, QueryRequest(10 ** 9, 0))
        assert isinstance(reply, ErrorMessage)
        assert reply.code == codes.E_QUERY_FAILED


class DeadTransport:
    def roundtrip(self, frame: bytes) -> bytes:
        raise OSError("connection refused")


class TestShardFaults:
    def test_dead_worker_surfaces_as_unavailable(self, road300):
        signer = NullSigner()
        build = build_shards(road300, signer, num_shards=2)
        live = ProofServer(build.methods[0], cache_size=16)
        transports = [InProcessTransport(live.dispatcher()), DeadTransport()]
        with ShardRouter(build.manifest, transports, road300) as router:
            # A pair owned entirely by the dead shard.
            members = build.plan.members[1]
            frame = QueryRequest(members[0], members[-1]).to_frame()
            reply = decode_message(decode_frame(router.dispatch(frame)))
        assert isinstance(reply, ErrorMessage)
        assert reply.code == codes.E_SHARD_UNAVAILABLE

    def test_transport_count_must_match_manifest(self, road300):
        signer = NullSigner()
        build = build_shards(road300, signer, num_shards=2)
        from repro.errors import ServiceError
        with pytest.raises(ServiceError, match="2 shards"):
            ShardRouter(build.manifest, [DeadTransport()], road300)


class TestFleetMetrics:
    def test_metrics_json_has_shard_labels_and_fleet_merge(self, fleet):
        intra, cross = _pairs(fleet)
        fleet["client"].query(*intra)
        fleet["client"].query(*cross)
        record = fleet["router"].metrics_json()
        assert record["requests"] >= 2
        labels = [s["phase"] for s in record["shards"] if s is not None]
        assert labels == ["shard0", "shard1", "shard2"]
        fleet_total = record["fleet"]["requests"]
        assert fleet_total == sum(s["requests"] for s in record["shards"]
                                  if s is not None)
        assert "phases" in record

    def test_dead_worker_scrapes_as_null(self, road300):
        signer = NullSigner()
        build = build_shards(road300, signer, num_shards=2)
        live = ProofServer(build.methods[0], cache_size=16)
        transports = [InProcessTransport(live.dispatcher()), DeadTransport()]
        with ShardRouter(build.manifest, transports, road300) as router:
            snapshots = router.shard_snapshots()
            record = router.metrics_json()
        assert snapshots[1] is None
        assert record["shards"][1] is None
        assert record["fleet"]["requests"] == snapshots[0].requests
