"""Adversarial soak: hostile frames mid-traffic, zero untyped failures.

The dispatcher's contract is that *nothing* a client sends crashes the
serving stack: malformed bytes, truncated frames, bit flips, frames
announcing unknown protocol versions and replayed stale requests must
all come back as typed wire errors (or, for a replay of a well-formed
request, a correct answer) while the well-formed traffic around them
keeps verifying.  The ``adversarial-soak`` scenario drives that mix at
volume through the real HTTP stack; these tests pin the aggregate
outcome and the per-kind expectations.
"""

from __future__ import annotations

import pytest

from repro.bench.slo import run_slo_soak
from repro.core.framework import DataOwner
from repro.crypto.signer import NullSigner
from repro.workload.traffic import (
    GARBAGE_BAD_VERSION,
    GARBAGE_BITFLIP,
    GARBAGE_EXPECTATION,
    GARBAGE_NOISE,
    GARBAGE_REPLAY,
    GARBAGE_TRUNCATED,
    generate_traffic,
    get_scenario,
)


@pytest.fixture(scope="module")
def soak_report(road300):
    """One hostile soak, shared by the assertions below (thread clients
    keep it cheap; the process path is covered by the CLI/bench runs)."""
    signer = NullSigner()
    method = DataOwner(road300.copy(), signer=signer).publish("DIJ")
    scenario = get_scenario("adversarial-soak").scaled(0.4)
    return run_slo_soak(
        method, scenario,
        verify_signature=signer.verify, update_signer=signer,
        clients=2, client_mode="thread", seed=99, time_scale=0.05,
    )


def test_soak_sends_every_garbage_kind(road300):
    """The scenario's trace actually exercises all five hostile kinds."""
    scenario = get_scenario("adversarial-soak").scaled(0.4)
    trace = generate_traffic(road300, scenario, seed=99)
    kinds = {e.garbage_kind for _, events in trace.phases
             for e in events if e.garbage_kind}
    assert kinds == {GARBAGE_NOISE, GARBAGE_TRUNCATED, GARBAGE_BITFLIP,
                     GARBAGE_BAD_VERSION, GARBAGE_REPLAY}
    assert set(kinds) <= set(GARBAGE_EXPECTATION)


def test_hostile_frames_never_raise_untyped(soak_report):
    """Every hostile frame produced a typed outcome — no exception ever
    escaped the dispatcher into the transport."""
    assert soak_report.untyped_garbage == 0
    sent = sum(p.garbage_sent for p in soak_report.phases)
    assert sent > 0, "adversarial scenario sent no garbage"
    unexpected = sum(p.garbage_unexpected for p in soak_report.phases)
    assert unexpected == 0, [p.failures for p in soak_report.phases]


def test_honest_traffic_survives_the_hostility(soak_report):
    """All well-formed responses around the garbage verified, including
    any served after mid-soak update pushes."""
    assert soak_report.all_verified, [p.failures for p in soak_report.phases]
    assert soak_report.verification_failures == 0
    assert soak_report.total_queries > 0
    for phase in soak_report.phases:
        assert phase.all_verified, phase.failures


def test_soak_is_seed_deterministic(road300):
    """Same seed, same hostile byte stream (frames and all)."""
    scenario = get_scenario("adversarial-soak").scaled(0.4)
    a = generate_traffic(road300, scenario, seed=99)
    b = generate_traffic(road300, scenario, seed=99)
    c = generate_traffic(road300, scenario, seed=100)
    assert a.digest() == b.digest()
    assert a.digest() != c.digest()
