"""ProofServer integration tests: caching, coalescing, concurrency.

Every path asserts the serving-layer invariant: a served response —
fresh, cached, or materialized from a coalesced batch — verifies
against a fresh client holding only the owner's public key.
"""

import pytest

from repro.core.batch import verify_batch
from repro.core.dij import DijMethod
from repro.core.framework import Client
from repro.crypto.signer import NullSigner
from repro.errors import ServiceError
from repro.service.server import ProofRequest, ProofServer, ServedResponse


def fresh_client(signer):
    return Client(signer.verify)


class TestSingleQueryPath:
    def test_miss_then_hit(self, dij, signer, workload):
        server = ProofServer(dij)
        vs, vt = workload[0]
        first = server.answer(vs, vt)
        second = server.answer(vs, vt)
        assert not first.cached
        assert second.cached
        assert second.response is first.response
        assert server.cache.stats.hits == 1
        assert server.cache.stats.misses == 1

    def test_cached_response_verifies(self, dij, signer, workload):
        server = ProofServer(dij)
        client = fresh_client(signer)
        for vs, vt in workload:
            server.answer(vs, vt)
        for vs, vt in workload:  # all cache hits now
            served = server.answer(vs, vt)
            assert served.cached
            assert client.verify(vs, vt, served.response).ok

    def test_proof_bytes_is_wire_size(self, dij, workload):
        server = ProofServer(dij)
        vs, vt = workload[0]
        served = server.answer(vs, vt)
        assert served.proof_bytes == len(served.response.encode())

    def test_handle_request(self, dij, workload):
        server = ProofServer(dij)
        vs, vt = workload[0]
        served = server.handle(ProofRequest(vs, vt))
        assert isinstance(served, ServedResponse)
        assert served.response.source == vs
        assert served.response.target == vt

    def test_metrics_track_requests(self, dij, workload):
        server = ProofServer(dij)
        vs, vt = workload[0]
        server.answer(vs, vt)
        server.answer(vs, vt)
        snap = server.snapshot()
        assert snap.requests == 2
        assert snap.cache_hits == 1
        assert snap.proof_bytes == 2 * server.answer(vs, vt).proof_bytes
        assert snap.p50_ms <= snap.p95_ms


class TestCoalescing:
    def test_batch_responses_all_verify(self, dij, signer, workload):
        server = ProofServer(dij)
        client = fresh_client(signer)
        served = server.answer_many(workload, coalesce=True)
        assert len(served) == len(workload)
        for (vs, vt), item in zip(workload, served):
            assert not item.cached
            assert client.verify(vs, vt, item.response).ok

    def test_second_burst_is_all_hits(self, dij, workload):
        server = ProofServer(dij)
        server.answer_many(workload)
        served = server.answer_many(workload)
        assert all(item.cached for item in served)

    def test_coalesced_entries_serve_single_queries(self, dij, signer, workload):
        """A proof cached by the batch path is replayed for a solo query."""
        server = ProofServer(dij)
        server.answer_many(workload)
        vs, vt = workload[0]
        served = server.answer(vs, vt)
        assert served.cached
        assert fresh_client(signer).verify(vs, vt, served.response).ok

    def test_single_miss_skips_batch_path(self, dij, workload):
        server = ProofServer(dij)
        vs, vt = workload[0]
        served = server.answer_many([(vs, vt)])
        assert len(served) == 1
        assert not served[0].cached

    def test_non_batchable_method_falls_back(self, full, signer, workload):
        server = ProofServer(full)
        client = fresh_client(signer)
        served = server.answer_many(workload, coalesce=True)
        for (vs, vt), item in zip(workload, served):
            assert client.verify(vs, vt, item.response).ok

    def test_combined_cover_is_a_verifiable_batch(self, dij, signer, workload):
        """The burst's wire object passes the batch client check."""
        server = ProofServer(dij)
        burst = server.serve_burst(workload)
        assert burst.combined is not None
        assert all(r.ok for r in verify_batch(burst.combined, signer.verify))
        # The combined cover is what ships; it beats standalone totals.
        standalone = sum(item.proof_bytes for item in burst.served)
        assert burst.combined.total_bytes < standalone

    def test_warm_burst_has_no_combined_cover(self, dij, workload):
        server = ProofServer(dij)
        server.serve_burst(workload)
        assert server.serve_burst(workload).combined is None

    def test_duplicate_queries_computed_once(self, dij, workload):
        server = ProofServer(dij)
        vs, vt = workload[0]
        (s1, t1) = workload[1]
        served = server.answer_many([(vs, vt), (s1, t1), (vs, vt)])
        assert len(served) == 3
        assert served[0].response is served[2].response
        assert not served[0].cached
        assert served[2].cached  # the repeat replays the just-cached entry
        assert server.snapshot().requests == 3  # every request is metered


class TestConcurrency:
    def test_results_in_request_order(self, dij, signer, workload):
        server = ProofServer(dij, max_workers=4)
        client = fresh_client(signer)
        served = server.answer_concurrent(workload)
        assert len(served) == len(workload)
        for (vs, vt), item in zip(workload, served):
            assert item.response.source == vs
            assert item.response.target == vt
            assert client.verify(vs, vt, item.response).ok

    def test_warm_concurrent_pass_hits_cache(self, dij, workload):
        server = ProofServer(dij, max_workers=4)
        server.answer_concurrent(workload)
        served = server.answer_concurrent(workload)
        assert all(item.cached for item in served)

    def test_invalid_worker_counts(self, dij, workload):
        with pytest.raises(ServiceError):
            ProofServer(dij, max_workers=0)
        server = ProofServer(dij)
        with pytest.raises(ServiceError):
            server.answer_concurrent(workload, max_workers=0)


class TestErrorResponses:
    """Per-query failures are error envelopes, not stream-killers."""

    def test_unknown_node_yields_error_response(self, dij):
        server = ProofServer(dij)
        served = server.answer(999_999, 3)
        assert not served.ok
        assert served.response is None
        assert "999999" in served.error
        assert server.snapshot().requests == 1

    def test_errors_are_not_cached(self, dij):
        server = ProofServer(dij)
        server.answer(999_999, 3)
        assert len(server.cache) == 0

    def test_burst_survives_one_bad_query(self, dij, signer, workload):
        server = ProofServer(dij)
        client = fresh_client(signer)
        queries = [workload[0], (999_999, 3), workload[1]]
        served = server.answer_many(queries, coalesce=True)
        assert len(served) == 3
        assert served[0].ok and served[2].ok
        assert not served[1].ok
        for (vs, vt), item in zip(queries, served):
            if item.ok:
                assert client.verify(vs, vt, item.response).ok

    def test_concurrent_stream_survives_one_bad_query(self, dij, workload):
        server = ProofServer(dij, max_workers=3)
        queries = [workload[0], (999_999, 3), workload[1]]
        served = server.answer_concurrent(queries)
        assert len(served) == 3
        assert [item.ok for item in served] == [True, False, True]

    def test_repeated_failed_query_is_metered_per_request(self, dij, workload):
        server = ProofServer(dij)
        queries = [(999_999, 3), workload[0], (999_999, 3)]
        served = server.answer_many(queries, coalesce=True)
        assert [item.ok for item in served] == [False, True, False]
        assert server.snapshot().requests == 3


class TestInvalidation:
    def test_graph_mutation_invalidates_and_reverifies(self, road300):
        """An owner edge update drops the cache; fresh proofs verify."""
        signer = NullSigner()
        graph = road300.copy()
        method = DijMethod.build(graph, signer)
        server = ProofServer(method)
        client = fresh_client(signer)

        u, w = sorted(graph.neighbors(graph.node_ids()[0]).items())[0]
        vs = graph.node_ids()[5]
        vt = graph.node_ids()[-5]
        first = server.answer(vs, vt)
        assert server.answer(vs, vt).cached

        method.update_edge_weight(graph.node_ids()[0], u, w * 2, signer)
        served = server.answer(vs, vt)
        assert not served.cached  # version bump dropped the entry
        assert server.cache.stats.invalidations == 1
        assert client.verify(vs, vt, served.response).ok
        # The pre-update response carries the superseded descriptor root.
        assert first.response.descriptor.encode() != served.response.descriptor.encode()
