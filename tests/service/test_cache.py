"""Proof cache unit tests: accounting, LRU eviction, invalidation."""

import pytest

from repro.errors import ServiceError
from repro.service.cache import CacheStats, ProofCache


def _fill(cache: ProofCache, keys, version=0):
    for i, key in enumerate(keys):
        cache.put(key, version, response=f"resp-{key}", proof_bytes=100 + i)


def key(i: int):
    return ("DIJ", i, i + 1)


class TestAccounting:
    def test_miss_then_hit(self):
        cache = ProofCache(capacity=4)
        assert cache.get(key(1), version=0) is None
        cache.put(key(1), 0, "resp", 128)
        entry = cache.get(key(1), version=0)
        assert entry is not None
        assert entry.response == "resp"
        assert entry.proof_bytes == 128
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.lookups == 2
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_distinct_keys_do_not_collide(self):
        cache = ProofCache(capacity=8)
        cache.put(("DIJ", 1, 2), 0, "a", 1)
        cache.put(("LDM", 1, 2), 0, "b", 2)
        cache.put(("DIJ", 2, 1), 0, "c", 3)
        assert cache.get(("DIJ", 1, 2), 0).response == "a"
        assert cache.get(("LDM", 1, 2), 0).response == "b"
        assert cache.get(("DIJ", 2, 1), 0).response == "c"

    def test_empty_stats(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
        assert stats.lookups == 0


class TestLru:
    def test_eviction_at_capacity(self):
        cache = ProofCache(capacity=3)
        _fill(cache, [key(i) for i in range(3)])
        assert len(cache) == 3
        cache.put(key(3), 0, "new", 1)
        assert len(cache) == 3
        assert cache.stats.evictions == 1
        assert cache.get(key(0), 0) is None  # oldest went first
        assert cache.get(key(3), 0) is not None

    def test_get_refreshes_recency(self):
        cache = ProofCache(capacity=2)
        _fill(cache, [key(0), key(1)])
        assert cache.get(key(0), 0) is not None  # 0 is now most recent
        cache.put(key(2), 0, "new", 1)
        assert cache.get(key(1), 0) is None  # 1 was least recent
        assert cache.get(key(0), 0) is not None

    def test_reput_same_key_does_not_evict(self):
        cache = ProofCache(capacity=2)
        _fill(cache, [key(0), key(1)])
        cache.put(key(0), 0, "updated", 9)
        assert len(cache) == 2
        assert cache.stats.evictions == 0
        assert cache.get(key(0), 0).response == "updated"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ServiceError):
            ProofCache(capacity=0)


class TestInvalidation:
    def test_version_bump_drops_entries(self):
        cache = ProofCache(capacity=4)
        _fill(cache, [key(0), key(1)], version=0)
        assert cache.get(key(0), version=1) is None
        assert len(cache) == 0
        assert cache.stats.invalidations == 1

    def test_put_with_new_version_also_invalidates(self):
        cache = ProofCache(capacity=4)
        _fill(cache, [key(0), key(1)], version=0)
        cache.put(key(2), 1, "fresh", 1)
        assert len(cache) == 1
        assert cache.get(key(0), 1) is None
        assert cache.get(key(2), 1) is not None

    def test_invalidating_empty_cache_is_not_counted(self):
        cache = ProofCache(capacity=4)
        assert cache.get(key(0), version=0) is None
        assert cache.get(key(0), version=1) is None
        assert cache.stats.invalidations == 0

    def test_clear(self):
        cache = ProofCache(capacity=4)
        _fill(cache, [key(0)])
        cache.clear()
        assert len(cache) == 0
        assert cache.get(key(0), 0) is None
