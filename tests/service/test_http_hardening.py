"""Frontend hardening for long-lived connections.

Persistent clients change the threat model of the HTTP frontend: a
connection is no longer request-scoped, so a peer that stalls mid-body
(slow-loris), under-delivers a promised body, or simply never hangs up
can pin handler threads indefinitely.  These tests drive raw sockets
against a live server and assert the three defences: per-connection
timeouts with a *typed* error frame, short-body detection, and the
bounded keep-alive budget.  Alongside ride the URL fixes: wildcard and
IPv6 binds must advertise an address a client can actually dial.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.api import codes
from repro.api.client import RemoteClient
from repro.api.envelope import (
    ErrorMessage,
    QueryRequest,
    decode_frame,
    decode_message,
)
from repro.api.transport import HttpTransport
from repro.errors import ServiceError
from repro.service.http import (
    ProofHttpServer,
    connectable_host,
    format_netloc,
)
from repro.service.server import ProofServer


@pytest.fixture()
def dispatcher(dij):
    return ProofServer(dij, cache_size=64).dispatcher()


def post_raw(host, port, body, *, content_length=None, settle=1.0):
    """POST /rpc with full control over framing; return the raw reply."""
    length = len(body) if content_length is None else content_length
    with socket.create_connection((host, port), timeout=10.0) as sock:
        sock.sendall(
            b"POST /rpc HTTP/1.1\r\n"
            b"Host: test\r\n"
            b"Content-Type: application/octet-stream\r\n"
            + f"Content-Length: {length}\r\n\r\n".encode()
        )
        sock.sendall(body)
        # FIN the write side: the promised body will never arrive.
        sock.shutdown(socket.SHUT_WR)
        sock.settimeout(settle + 10.0)
        chunks = []
        try:
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        except TimeoutError:
            pass
        return b"".join(chunks)


def error_code_of(http_reply: bytes) -> str:
    """Extract the wire error code from a raw HTTP response."""
    frame = http_reply.split(b"\r\n\r\n", 1)[1]
    message = decode_message(decode_frame(frame))
    assert isinstance(message, ErrorMessage)
    return message.code


class TestConnectableUrls:
    def test_wildcard_bind_advertises_loopback(self, dispatcher, signer,
                                               workload):
        with ProofHttpServer(dispatcher, host="0.0.0.0") as server:
            assert server.bound_host == "0.0.0.0"
            assert server.host == "127.0.0.1"
            assert server.url == f"http://127.0.0.1:{server.port}"
            with HttpTransport(server.url) as transport:
                client = RemoteClient(transport, signer.verify)
                vs, vt = workload[0]
                assert client.query(vs, vt).ok

    def test_empty_bind_advertises_loopback(self, dispatcher):
        with ProofHttpServer(dispatcher, host="") as server:
            assert server.host == "127.0.0.1"

    def test_connectable_host_mapping(self):
        assert connectable_host("0.0.0.0") == "127.0.0.1"
        assert connectable_host("") == "127.0.0.1"
        assert connectable_host("::") == "::1"
        assert connectable_host("0:0:0:0:0:0:0:0") == "::1"
        assert connectable_host("10.1.2.3") == "10.1.2.3"
        assert connectable_host("example.test") == "example.test"

    def test_format_netloc_brackets_ipv6(self):
        assert format_netloc("127.0.0.1", 80) == "127.0.0.1:80"
        assert format_netloc("::1", 8080) == "[::1]:8080"
        assert format_netloc("fe80::1", 1) == "[fe80::1]:1"


class TestBodyDefences:
    def test_short_body_gets_typed_error_frame(self, dispatcher, workload):
        vs, vt = workload[0]
        frame = QueryRequest(vs, vt).to_frame()
        with ProofHttpServer(dispatcher) as server:
            reply = post_raw(server.host, server.port, frame[:3],
                             content_length=len(frame))
        assert error_code_of(reply) == codes.E_REQUEST_TIMEOUT

    def test_slow_loris_times_out_with_typed_error(self, dispatcher,
                                                   workload):
        vs, vt = workload[0]
        frame = QueryRequest(vs, vt).to_frame()
        with ProofHttpServer(dispatcher, handler_timeout=0.5) as server:
            with socket.create_connection((server.host, server.port),
                                          timeout=10.0) as sock:
                sock.sendall(
                    b"POST /rpc HTTP/1.1\r\nHost: t\r\n"
                    + f"Content-Length: {len(frame)}\r\n\r\n".encode()
                )
                sock.sendall(frame[:2])  # ... and then stall, socket open
                start = time.monotonic()
                chunks = []
                sock.settimeout(10.0)
                try:
                    while True:
                        chunk = sock.recv(65536)
                        if not chunk:
                            break
                        chunks.append(chunk)
                except TimeoutError:
                    pass
                elapsed = time.monotonic() - start
        assert error_code_of(b"".join(chunks)) == codes.E_REQUEST_TIMEOUT
        assert elapsed < 8.0  # the 0.5s window, not a default-long stall

    def test_healthy_request_on_same_config_still_serves(self, dispatcher,
                                                         signer, workload):
        with ProofHttpServer(dispatcher, handler_timeout=0.5) as server:
            with HttpTransport(server.url) as transport:
                client = RemoteClient(transport, signer.verify)
                vs, vt = workload[0]
                assert client.query(vs, vt).ok


class TestKeepAliveBudget:
    def test_budget_closes_connection_with_header(self, dispatcher,
                                                  workload):
        vs, vt = workload[0]
        frame = QueryRequest(vs, vt).to_frame()
        request = (
            b"POST /rpc HTTP/1.1\r\nHost: t\r\n"
            b"Content-Type: application/octet-stream\r\n"
            + f"Content-Length: {len(frame)}\r\n\r\n".encode() + frame
        )
        with ProofHttpServer(dispatcher, max_keepalive_requests=2) as server:
            with socket.create_connection((server.host, server.port),
                                          timeout=10.0) as sock:
                sock.sendall(request)
                first = sock.recv(65536)
                sock.sendall(request)
                remainder = []
                sock.settimeout(10.0)
                try:
                    while True:
                        chunk = sock.recv(65536)
                        if not chunk:
                            break
                        remainder.append(chunk)
                except TimeoutError:
                    pytest.fail("server kept the connection past its budget")
                second = b"".join(remainder)
        assert b"Connection: close" not in first
        assert b"Connection: close" in second

    def test_client_rides_through_budget(self, dispatcher, signer, workload):
        with ProofHttpServer(dispatcher, max_keepalive_requests=3) as server:
            with HttpTransport(server.url) as transport:
                client = RemoteClient(transport, signer.verify)
                for _ in range(3):
                    for vs, vt in workload:
                        assert client.query(vs, vt).ok

    def test_zero_budget_disables_the_bound(self, dispatcher, signer,
                                            workload):
        with ProofHttpServer(dispatcher, max_keepalive_requests=0) as server:
            with HttpTransport(server.url) as transport:
                client = RemoteClient(transport, signer.verify)
                for vs, vt in workload:
                    assert client.query(vs, vt).ok

    def test_invalid_limits_rejected(self, dispatcher):
        with pytest.raises(ServiceError):
            ProofHttpServer(dispatcher, handler_timeout=0.0)
        with pytest.raises(ServiceError):
            ProofHttpServer(dispatcher, handler_timeout=-1.0)
        with pytest.raises(ServiceError):
            ProofHttpServer(dispatcher, max_keepalive_requests=-1)
        with pytest.raises(ServiceError):
            ProofHttpServer(dispatcher, drain_timeout=-1.0)


class _GatedDispatcher:
    """Delegates to a real dispatcher, but holds each request at a gate.

    ``started`` fires once a handler thread has entered dispatch —
    i.e. the request is *in flight*; ``release`` lets it finish.
    """

    def __init__(self, inner):
        self.inner = inner
        self.started = threading.Event()
        self.release = threading.Event()

    def dispatch(self, frame: bytes) -> bytes:
        self.started.set()
        self.release.wait(30.0)
        return self.inner.dispatch(frame)

    def metrics_json(self) -> str:
        return self.inner.metrics_json()


class TestShutdownDrain:
    """close() must not guillotine requests already being computed.

    Handler threads are daemonic (a *stuck* handler must never pin the
    process), so before the drain fix ``server_close`` returned while a
    handler was mid-dispatch and process exit silently dropped its
    reply.  Now close waits — bounded by ``drain_timeout`` — for
    in-flight responses to go out the socket.
    """

    def _issue(self, server, frame, box):
        request = (
            b"POST /rpc HTTP/1.1\r\nHost: t\r\n"
            b"Content-Type: application/octet-stream\r\n"
            + f"Content-Length: {len(frame)}\r\n\r\n".encode() + frame
        )
        try:
            with socket.create_connection((server.host, server.port),
                                          timeout=30.0) as sock:
                sock.sendall(request)
                sock.shutdown(socket.SHUT_WR)  # one request, then EOF
                chunks = []
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    chunks.append(chunk)
                box["raw"] = b"".join(chunks)
        except OSError as exc:
            box["error"] = exc

    def test_inflight_request_survives_close(self, dij, workload):
        gated = _GatedDispatcher(ProofServer(dij, cache_size=64).dispatcher())
        server = ProofHttpServer(gated, drain_timeout=20.0).start()
        frame = QueryRequest(*workload[0]).to_frame()
        box: dict = {}
        requester = threading.Thread(
            target=self._issue, args=(server, frame, box), daemon=True)
        requester.start()
        assert gated.started.wait(10.0), "request never reached dispatch"
        closer = threading.Thread(target=server.close, daemon=True)
        closer.start()
        time.sleep(0.3)  # close() is now inside its drain wait
        assert closer.is_alive(), "close returned while a request was live"
        gated.release.set()
        closer.join(30.0)
        requester.join(30.0)
        assert not closer.is_alive() and not requester.is_alive()
        raw = box.get("raw")
        assert raw, f"in-flight reply was dropped: {box.get('error')}"
        assert b"200" in raw.split(b"\r\n", 1)[0]
        message = decode_message(decode_frame(raw.split(b"\r\n\r\n", 1)[1]))
        assert not isinstance(message, ErrorMessage)

    def test_drain_wait_is_bounded(self, dij, workload):
        gated = _GatedDispatcher(ProofServer(dij, cache_size=64).dispatcher())
        # Never release: the handler wedges for 30s, the drain gives up
        # after 0.5s and close() returns anyway.
        server = ProofHttpServer(gated, drain_timeout=0.5).start()
        frame = QueryRequest(*workload[0]).to_frame()
        box: dict = {}
        requester = threading.Thread(
            target=self._issue, args=(server, frame, box), daemon=True)
        requester.start()
        assert gated.started.wait(10.0)
        start = time.monotonic()
        server.close()
        elapsed = time.monotonic() - start
        assert elapsed < 10.0, f"close took {elapsed:.1f}s despite the bound"
        gated.release.set()  # unwedge the daemon thread before teardown
        requester.join(10.0)
