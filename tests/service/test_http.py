"""End-to-end HTTP serving: real sockets, all four methods, live updates.

Each test boots a :class:`ProofHttpServer` on an ephemeral localhost
port and drives it through :class:`RemoteClient` +
:class:`HttpTransport` — the full production path: frames over POST,
strict decoding, bytes-only verification against the owner's key.
"""

from __future__ import annotations

import urllib.request

import pytest

from repro.api import codes
from repro.api.client import RemoteClient
from repro.api.envelope import QueryRequest, WireUpdate
from repro.api.transport import HttpTransport
from repro.core.dij import DijMethod
from repro.errors import ProtocolError
from repro.service.http import ProofHttpServer
from repro.service.server import ProofServer
from repro.workload.queries import generate_workload
from repro.workload.updates import UPDATE_WEIGHT, generate_update_workload


@pytest.fixture(scope="module")
def http_workload(road300):
    return list(generate_workload(road300, 1500.0, count=4, seed=31))


def serve(method, *, update_signer=None):
    """Context-managed HTTP server over a fresh ProofServer."""
    server = ProofServer(method, cache_size=64)
    dispatcher = server.dispatcher(update_signer=update_signer)
    return ProofHttpServer(dispatcher)


class TestAllMethodsOverHttp:
    @pytest.mark.parametrize("fixture", ["dij", "full", "ldm", "hyp"])
    def test_remote_client_verifies_byte_identical_payloads(
            self, fixture, request, signer, http_workload):
        method = request.getfixturevalue(fixture)
        with serve(method) as http_server:
            client = RemoteClient(HttpTransport(http_server.url),
                                  signer.verify)
            hello = client.hello()
            assert hello.method == method.name
            descriptor, raw = client.fetch_descriptor()
            assert raw == method.descriptor.encode()
            for vs, vt in http_workload:
                result = client.query(vs, vt)
                assert result.ok, (method.name, result.verdict.reason,
                                   result.verdict.detail)
                # The acceptance bar: wire payloads byte-identical to
                # the in-process provider's output.
                assert result.response_bytes == method.answer(vs, vt).encode()

    @pytest.mark.parametrize("fixture", ["dij", "ldm"])
    def test_batch_over_http(self, fixture, request, signer, http_workload):
        method = request.getfixturevalue(fixture)
        with serve(method) as http_server:
            client = RemoteClient(HttpTransport(http_server.url),
                                  signer.verify)
            results = client.query_many(http_workload)
            assert all(result.ok for result in results)


class TestHttpEndpoints:
    def test_healthz_and_unknown_paths(self, dij):
        with serve(dij) as http_server:
            with urllib.request.urlopen(f"{http_server.url}/healthz") as reply:
                assert reply.read() == b"ok"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{http_server.url}/nope")
            assert excinfo.value.code == 404

    def test_metrics_endpoint_serves_json(self, dij, signer, http_workload):
        import json

        with serve(dij) as http_server:
            client = RemoteClient(HttpTransport(http_server.url),
                                  signer.verify)
            for vs, vt in http_workload[:2]:
                assert client.query(vs, vt).ok
            assert client.query(*http_workload[0]).cached
            with urllib.request.urlopen(f"{http_server.url}/metrics") as reply:
                assert reply.status == 200
                assert reply.headers["Content-Type"] == "application/json"
                record = json.loads(reply.read())
        assert record["requests"] == 3
        assert record["cache_hits"] == 1
        assert record["cache_entries"] == 2
        assert record["cache_capacity"] > 0
        # The HTTP snapshot and the wire METRICS frame are the same view.
        assert set(record) >= {"cache_evictions", "cache_invalidations",
                               "qps", "hit_rate"}

    def test_metrics_wire_frame_carries_cache_counters(self, dij, signer,
                                                       http_workload):
        with serve(dij) as http_server:
            client = RemoteClient(HttpTransport(http_server.url),
                                  signer.verify)
            assert client.query(*http_workload[0]).ok
            reply = client.metrics()
        assert reply.requests == 1
        assert reply.cache_entries == 1
        assert reply.cache_capacity > 0
        assert reply.cache_evictions == 0

    def test_post_to_wrong_path_is_404(self, dij):
        with serve(dij) as http_server:
            request = urllib.request.Request(
                f"{http_server.url}/other", data=b"x", method="POST")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 404

    def test_garbage_body_yields_error_frame_not_500(self, dij, signer):
        from repro.api.envelope import ErrorMessage, decode_frame, decode_message

        with serve(dij) as http_server:
            request = urllib.request.Request(
                f"{http_server.url}/rpc", data=b"complete garbage",
                method="POST")
            with urllib.request.urlopen(request) as reply:
                assert reply.status == 200
                message = decode_message(decode_frame(reply.read()))
            assert isinstance(message, ErrorMessage)
            assert message.code == codes.E_MALFORMED_FRAME

    def test_unreachable_server_raises_protocol_error(self, signer):
        client = RemoteClient(HttpTransport("http://127.0.0.1:9",
                                            timeout=0.5), signer.verify)
        with pytest.raises(ProtocolError):
            client.hello()

    def test_concurrent_wire_clients(self, dij, signer, http_workload):
        from concurrent.futures import ThreadPoolExecutor

        with serve(dij) as http_server:
            def one_client(pair):
                client = RemoteClient(HttpTransport(http_server.url),
                                      signer.verify)
                return client.query(*pair).ok

            with ThreadPoolExecutor(max_workers=4) as pool:
                outcomes = list(pool.map(one_client, http_workload * 3))
            assert all(outcomes)


class TestLiveUpdatesOverHttp:
    def test_update_push_bumps_version_mid_traffic(self, road300, signer,
                                                   http_workload):
        graph = road300.copy()
        method = DijMethod.build(graph, signer)
        with serve(method, update_signer=signer) as http_server:
            client = RemoteClient(HttpTransport(http_server.url),
                                  signer.verify)
            base_version = client.hello().descriptor_version

            # Traffic before the update...
            first = client.query(*http_workload[0])
            assert first.ok
            stale_bytes = first.response_bytes

            # ...the owner pushes a re-weight over the wire...
            update = list(generate_update_workload(
                graph, 1, seed=5, kinds=(UPDATE_WEIGHT,)))[0]
            report = client.push_updates([update])
            assert report.version > base_version
            client.require_version(report.version)

            # ...and the served version has moved for everyone.
            assert client.hello().descriptor_version == report.version
            fresh = client.query(*http_workload[0])
            assert fresh.ok
            assert fresh.response.descriptor.version == report.version

            # The pre-update response, replayed now, is caught as stale.
            stale = client.client.verify_bytes(
                http_workload[0][0], http_workload[0][1], stale_bytes)
            assert not stale.ok
            assert stale.reason == codes.STALE_DESCRIPTOR

    def test_stale_descriptor_replay_rejected_over_the_wire(
            self, road300, signer, http_workload):
        """A replaying proxy between client and an updated server loses."""
        graph = road300.copy()
        method = DijMethod.build(graph, signer)
        vs, vt = http_workload[1]
        with serve(method, update_signer=signer) as http_server:
            transport = HttpTransport(http_server.url)
            honest = RemoteClient(transport, signer.verify)
            recorded = transport.roundtrip(QueryRequest(vs, vt).to_frame())

            update = list(generate_update_workload(
                graph, 1, seed=6, kinds=(UPDATE_WEIGHT,)))[0]
            report = honest.push_updates([update])

            class ReplayingProxy:
                def roundtrip(self, frame):
                    return recorded  # always serve the pre-update reply

            victim = RemoteClient(ReplayingProxy(), signer.verify,
                                  min_descriptor_version=report.version)
            result = victim.query(vs, vt)
            assert not result.ok
            assert result.verdict.reason == codes.STALE_DESCRIPTOR

    def test_push_refused_without_signer_over_http(self, dij, signer):
        with serve(dij) as http_server:  # provider-only: no signer
            client = RemoteClient(HttpTransport(http_server.url),
                                  signer.verify)
            with pytest.raises(ProtocolError,
                               match=codes.E_UPDATES_DISABLED):
                client.push_updates([WireUpdate(UPDATE_WEIGHT, 1, 2, 3.0)])
