"""Serving metrics unit tests."""

import pytest

from repro.service.metrics import ServerMetrics, percentile


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.95) == 7.0

    def test_median_and_tail(self):
        values = [float(i) for i in range(1, 101)]  # 1..100
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 1.0) == 100.0

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0


class TestServerMetrics:
    def test_snapshot_aggregates(self):
        metrics = ServerMetrics()
        metrics.record(0.010, 1000, cached=False)
        metrics.record(0.002, 500, cached=True)
        metrics.record(0.004, 500, cached=True)
        snap = metrics.snapshot()
        assert snap.requests == 3
        assert snap.cache_hits == 2
        assert snap.cache_misses == 1
        assert snap.hit_rate == pytest.approx(2 / 3)
        assert snap.proof_bytes == 2000
        assert snap.proof_kbytes == pytest.approx(2000 / 1024)
        assert snap.p50_ms == pytest.approx(4.0)
        assert snap.p95_ms == pytest.approx(10.0)
        assert snap.elapsed_seconds > 0
        assert snap.qps > 0

    def test_empty_window(self):
        snap = ServerMetrics().snapshot()
        assert snap.requests == 0
        assert snap.qps == 0.0
        assert snap.hit_rate == 0.0
        assert snap.p50_ms == 0.0

    def test_reset_starts_fresh_window(self):
        metrics = ServerMetrics()
        metrics.record(0.5, 100, cached=False)
        metrics.reset()
        snap = metrics.snapshot()
        assert snap.requests == 0
        assert snap.proof_bytes == 0

    def test_as_dict_round_trip(self):
        metrics = ServerMetrics()
        metrics.record(0.001, 10, cached=False)
        record = metrics.snapshot().as_dict()
        for field in ("requests", "qps", "hit_rate", "p50_ms", "p95_ms",
                      "proof_bytes", "elapsed_seconds"):
            assert field in record
        assert record["requests"] == 1
