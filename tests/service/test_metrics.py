"""Serving metrics unit tests."""

import pytest

from repro.service.metrics import ServerMetrics, percentile


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.95) == 7.0

    def test_median_and_tail(self):
        values = [float(i) for i in range(1, 101)]  # 1..100
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 1.0) == 100.0

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0


class TestServerMetrics:
    def test_snapshot_aggregates(self):
        metrics = ServerMetrics()
        metrics.record(0.010, 1000, cached=False)
        metrics.record(0.002, 500, cached=True)
        metrics.record(0.004, 500, cached=True)
        snap = metrics.snapshot()
        assert snap.requests == 3
        assert snap.cache_hits == 2
        assert snap.cache_misses == 1
        assert snap.hit_rate == pytest.approx(2 / 3)
        assert snap.proof_bytes == 2000
        assert snap.proof_kbytes == pytest.approx(2000 / 1024)
        assert snap.p50_ms == pytest.approx(4.0)
        assert snap.p95_ms == pytest.approx(10.0)
        assert snap.elapsed_seconds > 0
        assert snap.qps > 0

    def test_empty_window(self):
        snap = ServerMetrics().snapshot()
        assert snap.requests == 0
        assert snap.qps == 0.0
        assert snap.hit_rate == 0.0
        assert snap.p50_ms == 0.0

    def test_reset_starts_fresh_window(self):
        metrics = ServerMetrics()
        metrics.record(0.5, 100, cached=False)
        metrics.reset()
        snap = metrics.snapshot()
        assert snap.requests == 0
        assert snap.proof_bytes == 0

    def test_as_dict_round_trip(self):
        metrics = ServerMetrics()
        metrics.record(0.001, 10, cached=False)
        record = metrics.snapshot().as_dict()
        for field in ("requests", "qps", "hit_rate", "p50_ms", "p95_ms",
                      "proof_bytes", "elapsed_seconds", "cache_evictions",
                      "cache_invalidations", "cache_entries",
                      "cache_capacity"):
            assert field in record
        assert record["requests"] == 1


class TestCacheCounters:
    def test_snapshot_folds_in_cache_stats(self):
        from repro.core.proofs import QueryResponse
        from repro.service.cache import ProofCache

        cache = ProofCache(capacity=2)
        response = QueryResponse.__new__(QueryResponse)  # opaque payload
        cache.put(("DIJ", 1, 2), 0, response, 10)
        cache.put(("DIJ", 1, 3), 0, response, 10)
        cache.put(("DIJ", 1, 4), 0, response, 10)  # evicts the oldest
        cache.get(("DIJ", 9, 9), 1)                # version move invalidates
        snap = ServerMetrics().snapshot(cache=cache)
        assert snap.cache_evictions == 1
        assert snap.cache_invalidations == 1
        assert snap.cache_entries == 0
        assert snap.cache_capacity == 2

    def test_server_snapshot_reports_evictions(self):
        from repro.core.dij import DijMethod
        from repro.crypto.signer import NullSigner
        from repro.graph.synthetic import grid_network
        from repro.service.server import ProofServer

        graph = grid_network(4, 4)
        server = ProofServer(DijMethod.build(graph, NullSigner()),
                             cache_size=1)
        ids = graph.node_ids()
        server.answer(ids[0], ids[5])
        server.answer(ids[0], ids[6])  # second distinct key evicts the first
        snap = server.snapshot()
        assert snap.cache_evictions == 1
        assert snap.cache_entries == 1
        assert snap.cache_capacity == 1


class TestMergeSnapshots:
    """Fleet aggregation across worker windows, crashes included."""

    def _window(self, requests, *, p50=1.0, p95=2.0, p99=3.0, hits=0,
                phase="", entries=0, capacity=8, elapsed=1.0):
        from repro.service.metrics import MetricsSnapshot

        return MetricsSnapshot(
            requests=requests, elapsed_seconds=elapsed, cache_hits=hits,
            cache_misses=requests - hits, proof_bytes=100 * requests,
            p50_ms=p50, p95_ms=p95, p99_ms=p99, phase=phase,
            cache_entries=entries, cache_capacity=capacity,
        )

    def test_empty_pool_merges_to_zero(self):
        from repro.service.metrics import merge_snapshots

        merged = merge_snapshots([])
        assert merged.requests == 0
        assert merged.qps == 0.0
        assert merged.p99_ms == 0.0
        assert merged.phase == ""

    def test_crashed_workers_are_skipped(self):
        """A worker that died mid-soak reports ``None``; survivors still
        produce the honest fleet view, and an all-dead pool is empty."""
        from repro.service.metrics import merge_snapshots

        merged = merge_snapshots([self._window(10, hits=4), None,
                                  self._window(30, hits=6), None])
        assert merged.requests == 40
        assert merged.cache_hits == 10
        assert merged.cache_misses == 30
        assert merged.proof_bytes == 4000
        assert merge_snapshots([None, None]).requests == 0

    def test_percentiles_are_request_weighted(self):
        from repro.service.metrics import merge_snapshots

        merged = merge_snapshots([
            self._window(10, p99=10.0), self._window(30, p99=2.0)])
        assert merged.p99_ms == pytest.approx((10 * 10.0 + 30 * 2.0) / 40)
        assert merged.p50_ms == pytest.approx(1.0)

    def test_zero_request_merge_has_zero_percentiles(self):
        from repro.service.metrics import merge_snapshots

        merged = merge_snapshots([self._window(0), self._window(0)])
        assert merged.requests == 0
        assert merged.p50_ms == 0.0 and merged.p99_ms == 0.0

    def test_cache_stats_sum_across_workers(self):
        """Each worker owns a private LRU, so entries and capacity sum."""
        from repro.service.metrics import merge_snapshots

        merged = merge_snapshots([
            self._window(5, entries=3, capacity=8),
            self._window(5, entries=8, capacity=8)])
        assert merged.cache_entries == 11
        assert merged.cache_capacity == 16

    def test_elapsed_is_concurrent_not_serial(self):
        from repro.service.metrics import merge_snapshots

        merged = merge_snapshots([
            self._window(5, elapsed=2.0), self._window(5, elapsed=3.5)])
        assert merged.elapsed_seconds == 3.5

    def test_phase_label_requires_consensus(self):
        from repro.service.metrics import merge_snapshots

        agree = merge_snapshots([self._window(1, phase="burst"),
                                 self._window(1, phase="burst")])
        assert agree.phase == "burst"
        mixed = merge_snapshots([self._window(1, phase="burst"),
                                 self._window(1, phase="steady")])
        assert mixed.phase == ""

    def test_labels_relabel_before_merge(self):
        from repro.service.metrics import merge_snapshots

        windows = [self._window(2, phase="x"), self._window(3, phase="y")]
        same = merge_snapshots(windows, labels=["shard0", "shard0"])
        assert same.phase == "shard0"
        assert same.requests == 5
        mixed = merge_snapshots(windows, labels=["shard0", "shard1"])
        assert mixed.phase == ""

    def test_labels_skip_crashed_slots(self):
        from repro.service.metrics import merge_snapshots

        merged = merge_snapshots([self._window(2), None],
                                 labels=["shard0", "shard1"])
        assert merged.phase == "shard0"
        assert merged.requests == 2

    def test_labels_length_must_match(self):
        import pytest

        from repro.service.metrics import merge_snapshots

        with pytest.raises(ValueError, match="labels"):
            merge_snapshots([self._window(1)], labels=["a", "b"])


class TestPhaseWindows:
    """``begin_phase`` / ``end_phase`` windowing on a live metrics object."""

    def test_begin_phase_labels_and_closes_windows(self):
        metrics = ServerMetrics()
        metrics.record(0.010, 100, cached=False)
        metrics.begin_phase("warmup")
        metrics.record(0.020, 200, cached=True)
        metrics.record(0.040, 200, cached=True)
        metrics.begin_phase("steady")
        metrics.record(0.030, 300, cached=False)
        metrics.end_phase()
        closed = metrics.phases
        assert [w.phase for w in closed] == ["", "warmup", "steady"]
        assert [w.requests for w in closed] == [1, 2, 1]
        warmup = closed[1]
        assert warmup.cache_hits == 2
        assert warmup.proof_bytes == 400
        assert warmup.p50_ms == pytest.approx(20.0)  # rank-based percentile

    def test_idle_windows_are_dropped(self):
        """Phase cuts with no traffic leave no empty history entries."""
        metrics = ServerMetrics()
        metrics.begin_phase("warmup")
        metrics.begin_phase("steady")
        metrics.record(0.001, 10, cached=False)
        metrics.end_phase()
        metrics.end_phase()
        assert [w.phase for w in metrics.phases] == ["steady"]

    def test_update_only_window_is_kept(self):
        metrics = ServerMetrics()
        metrics.begin_phase("storm")
        metrics.record_update(0.2)
        metrics.end_phase()
        (storm,) = metrics.phases
        assert storm.phase == "storm"
        assert storm.updates == 1

    def test_current_window_carries_the_open_label(self):
        metrics = ServerMetrics()
        metrics.begin_phase("burst")
        metrics.record(0.005, 50, cached=False)
        snap = metrics.snapshot()
        assert snap.phase == "burst"
        assert snap.requests == 1

    def test_reset_keeps_history_unless_asked(self):
        metrics = ServerMetrics()
        metrics.begin_phase("warmup")
        metrics.record(0.001, 10, cached=False)
        metrics.end_phase()
        metrics.reset()
        assert [w.phase for w in metrics.phases] == ["warmup"]
        metrics.reset(phases=True)
        assert metrics.phases == ()

    def test_p99_in_snapshot_and_dict(self):
        metrics = ServerMetrics()
        for ms in range(1, 101):
            metrics.record(ms / 1000.0, 10, cached=False)
        snap = metrics.snapshot()
        assert snap.p99_ms == pytest.approx(99.0)
        record = snap.as_dict()
        assert record["p99_ms"] == pytest.approx(99.0)
        assert "phase" in record
