"""Serving metrics unit tests."""

import pytest

from repro.service.metrics import ServerMetrics, percentile


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.95) == 7.0

    def test_median_and_tail(self):
        values = [float(i) for i in range(1, 101)]  # 1..100
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 1.0) == 100.0

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0


class TestServerMetrics:
    def test_snapshot_aggregates(self):
        metrics = ServerMetrics()
        metrics.record(0.010, 1000, cached=False)
        metrics.record(0.002, 500, cached=True)
        metrics.record(0.004, 500, cached=True)
        snap = metrics.snapshot()
        assert snap.requests == 3
        assert snap.cache_hits == 2
        assert snap.cache_misses == 1
        assert snap.hit_rate == pytest.approx(2 / 3)
        assert snap.proof_bytes == 2000
        assert snap.proof_kbytes == pytest.approx(2000 / 1024)
        assert snap.p50_ms == pytest.approx(4.0)
        assert snap.p95_ms == pytest.approx(10.0)
        assert snap.elapsed_seconds > 0
        assert snap.qps > 0

    def test_empty_window(self):
        snap = ServerMetrics().snapshot()
        assert snap.requests == 0
        assert snap.qps == 0.0
        assert snap.hit_rate == 0.0
        assert snap.p50_ms == 0.0

    def test_reset_starts_fresh_window(self):
        metrics = ServerMetrics()
        metrics.record(0.5, 100, cached=False)
        metrics.reset()
        snap = metrics.snapshot()
        assert snap.requests == 0
        assert snap.proof_bytes == 0

    def test_as_dict_round_trip(self):
        metrics = ServerMetrics()
        metrics.record(0.001, 10, cached=False)
        record = metrics.snapshot().as_dict()
        for field in ("requests", "qps", "hit_rate", "p50_ms", "p95_ms",
                      "proof_bytes", "elapsed_seconds", "cache_evictions",
                      "cache_invalidations", "cache_entries",
                      "cache_capacity"):
            assert field in record
        assert record["requests"] == 1


class TestCacheCounters:
    def test_snapshot_folds_in_cache_stats(self):
        from repro.core.proofs import QueryResponse
        from repro.service.cache import ProofCache

        cache = ProofCache(capacity=2)
        response = QueryResponse.__new__(QueryResponse)  # opaque payload
        cache.put(("DIJ", 1, 2), 0, response, 10)
        cache.put(("DIJ", 1, 3), 0, response, 10)
        cache.put(("DIJ", 1, 4), 0, response, 10)  # evicts the oldest
        cache.get(("DIJ", 9, 9), 1)                # version move invalidates
        snap = ServerMetrics().snapshot(cache=cache)
        assert snap.cache_evictions == 1
        assert snap.cache_invalidations == 1
        assert snap.cache_entries == 0
        assert snap.cache_capacity == 2

    def test_server_snapshot_reports_evictions(self):
        from repro.core.dij import DijMethod
        from repro.crypto.signer import NullSigner
        from repro.graph.synthetic import grid_network
        from repro.service.server import ProofServer

        graph = grid_network(4, 4)
        server = ProofServer(DijMethod.build(graph, NullSigner()),
                             cache_size=1)
        ids = graph.node_ids()
        server.answer(ids[0], ids[5])
        server.answer(ids[0], ids[6])  # second distinct key evicts the first
        snap = server.snapshot()
        assert snap.cache_evictions == 1
        assert snap.cache_entries == 1
        assert snap.cache_capacity == 1
