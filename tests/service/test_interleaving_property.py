"""Property test: serving under updates is byte-equal to rebuilding.

The live-update pipeline's whole promise is that an incrementally
re-authenticated server is *indistinguishable* from one rebuilt from
scratch: for any interleaving of owner mutations and client queries,
the bytes a :class:`~repro.service.server.ProofServer` ships at graph
version ``v`` must be identical to what a freshly built method on an
identical graph at version ``v`` would ship.  Equality of bytes — not
just of verdicts — pins the Merkle roots, the signed descriptor, the
proof ordering and the codec in one assertion.

Hypothesis drives the interleavings (``derandomize=True`` keeps CI
deterministic); a fixed LDM case covers the second batchable method
without paying the rebuild cost per example.
"""

from __future__ import annotations

import pytest

from repro.core.framework import Client, DataOwner
from repro.core.method import get_method
from repro.crypto.signer import NullSigner
from repro.graph.synthetic import road_network
from repro.service.server import ProofServer
from repro.workload.datasets import normalize_weights
from repro.workload.updates import generate_update_workload

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

#: Small network: each hypothesis example rebuilds a method per distinct
#: graph version it visits, so the substrate must be cheap to build.
_GRAPH = normalize_weights(road_network(60, seed=7), 2_000.0)
#: Seeded owner write stream, all three mutation kinds, consumed as a
#: prefix: an interleaving that applies k updates has replayed exactly
#: ``_UPDATES[:k]``, so the fresh rebuild replays the same prefix.
_UPDATES = list(generate_update_workload(_GRAPH, 10, seed=3))
_IDS = sorted(_GRAPH.node_ids())
_PAIRS = [(_IDS[i], _IDS[-1 - i]) for i in range(8)]

_SIGNER = NullSigner()


def _fresh_bytes(method_name: str, build_params: dict, prefix: int,
                 pairs: "set[tuple[int, int]]") -> "dict[tuple[int, int], bytes]":
    """Encoded responses from a from-scratch build after ``prefix`` updates.

    ``build_params`` are the live method's *pinned* rebuild parameters
    (landmark placement, quantization grid, follower plan) as recorded
    at that version — the graph-global choices an incremental update
    preserves, which a byte-level comparison rebuild must replay too.
    """
    graph = _GRAPH.copy()
    for update in _UPDATES[:prefix]:
        update.apply(graph)
    method = get_method(method_name).build(graph, NullSigner(), **build_params)
    return {pair: method.answer(*pair).encode() for pair in pairs}


def _run_interleaving(method_name: str, events, **params) -> None:
    """Serve *events*, then replay every visited version from scratch."""
    graph = _GRAPH.copy()
    base_version = graph.version
    server = ProofServer(
        DataOwner(graph, signer=_SIGNER).publish(method_name, **params))
    client = Client(_SIGNER.verify)

    pins: "dict[int, dict]" = {
        graph.version: dict(server.method.dump_state().build_params)}
    observed: "dict[int, dict[tuple[int, int], bytes]]" = {}
    applied = 0
    for event in events:
        if event == "update":
            if applied >= len(_UPDATES):
                continue
            server.apply_updates([_UPDATES[applied]], _SIGNER)
            applied += 1
            client.require_version(server.descriptor_version)
            pins[server.method.graph.version] = dict(
                server.method.dump_state().build_params)
        else:
            pair = _PAIRS[event]
            served = server.answer(*pair)
            assert served.ok, served.error
            data = served.response.encode()
            verdict = client.verify_bytes(pair[0], pair[1], data)
            assert verdict.ok, (verdict.reason, verdict.detail)
            version = server.method.graph.version
            previous = observed.setdefault(version, {}).setdefault(pair, data)
            # A cache hit at the same version must replay identical bytes.
            assert previous == data

    for version, responses in observed.items():
        fresh = _fresh_bytes(method_name, pins[version],
                             version - base_version, set(responses))
        for pair, data in responses.items():
            assert fresh[pair] == data, (
                f"{method_name} response for {pair} at version {version} "
                f"diverged from a fresh rebuild"
            )


@settings(max_examples=8, deadline=None, derandomize=True)
@given(st.lists(
    st.one_of(st.integers(min_value=0, max_value=len(_PAIRS) - 1),
              st.just("update")),
    min_size=1, max_size=14,
))
def test_dij_interleavings_match_fresh_rebuild(events):
    _run_interleaving("DIJ", events)


def test_ldm_interleaving_matches_fresh_rebuild():
    """One deterministic interleaving through the second batchable method."""
    _run_interleaving(
        "LDM",
        [0, 1, "update", 0, 2, "update", "update", 3, 0, "update", 1],
        c=8,
    )
