"""Interleaved update/query serving: invalidation, freshness, races.

The live-update contract of :class:`ProofServer`: queries and owner
updates may interleave freely — concurrently in the thread-pool mode —
and (1) no response ever mixes pre- and post-update state, (2) after an
update returns, no request is served a stale cached proof, and (3) the
whole arrangement never deadlocks.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.dij import DijMethod
from repro.core.framework import Client
from repro.core.method import get_method
from repro.crypto.signer import NullSigner
from repro.errors import ServiceError
from repro.service.server import ProofServer, UpdateRequest
from repro.service.sync import ReadWriteLock
from repro.workload.updates import generate_update_workload, interleave


def build_server(road300, **kwargs):
    signer = NullSigner()
    graph = road300.copy()
    method = DijMethod.build(graph, signer)
    return ProofServer(method, **kwargs), signer, graph


class TestApplyUpdates:
    def test_update_bumps_version_and_drops_cache(self, road300, workload):
        server, signer, graph = build_server(road300)
        vs, vt = workload[0]
        first = server.answer(vs, vt)
        assert server.answer(vs, vt).cached
        before = server.descriptor_version

        u, v, w = next(iter(graph.edges()))
        report = server.update_edge_weight(u, v, w * 2, signer)
        assert report.mode == "incremental"
        assert server.descriptor_version == graph.version > before

        served = server.answer(vs, vt)
        assert not served.cached
        assert served.response.descriptor.version == graph.version
        assert first.response.descriptor.version < graph.version
        assert server.snapshot().updates == 1
        assert server.snapshot().update_seconds > 0.0

    def test_client_freshness_floor_end_to_end(self, road300, workload):
        server, signer, graph = build_server(road300)
        vs, vt = workload[0]
        stale = server.answer(vs, vt).response

        u, v, w = next(iter(graph.edges()))
        server.update_edge_weight(u, v, w * 2, signer)

        client = Client(signer.verify,
                        min_descriptor_version=server.descriptor_version)
        assert not client.verify(vs, vt, stale).ok
        assert client.verify(vs, vt, stale).reason == "stale-descriptor"
        assert client.verify(vs, vt, server.answer(vs, vt).response).ok

    def test_batch_updates_apply_in_order(self, road300):
        server, signer, graph = build_server(road300)
        u, v, w = next(iter(graph.edges()))
        report = server.apply_updates(
            [UpdateRequest("update-weight", u, v, w * 2),
             UpdateRequest("remove-edge", u, v),
             UpdateRequest("add-edge", u, v, w * 3)],
            signer,
        )
        assert report.mutations == 3
        assert graph.weight(u, v) == w * 3

    def test_empty_batch_rejected(self, road300):
        server, signer, _ = build_server(road300)
        with pytest.raises(ServiceError):
            server.apply_updates([], signer)

    def test_unknown_update_kind_rejected(self, road300):
        from repro.errors import ReproError

        server, signer, graph = build_server(road300)
        u, v, _ = next(iter(graph.edges()))
        version = graph.version
        with pytest.raises(ReproError):
            server.apply_updates([UpdateRequest("teleport", u, v)], signer)
        assert graph.version == version  # nothing was applied

    @pytest.mark.parametrize("name,params", [
        ("FULL", {}),
        ("HYP", dict(num_cells=25)),
    ])
    def test_failed_batch_rolls_back_and_keeps_serving(self, road300,
                                                       workload, name,
                                                       params):
        """A batch whose re-authentication fails must leave the server
        consistent: the graph reverts to the signed state, the method
        commits none of its partial work, and every later response
        still verifies (FULL and HYP both require connectivity, so a
        bridge removal is rejected mid-update)."""
        from repro.errors import GraphError

        signer = NullSigner()
        graph = road300.copy()
        method = get_method(name).build(graph, signer, **params)
        server = ProofServer(method)
        verifier = get_method(name)
        vs, vt = workload[0]
        assert verifier.verify(vs, vt, server.answer(vs, vt).response,
                               signer.verify).ok

        # Find a bridge whose removal the method must reject: FULL needs
        # the whole graph connected; HYP only needs every *border* pair
        # connected (a borderless pocket may legally detach), so there
        # the cut must strand a border node.
        from repro.graph.components import connected_components, is_connected

        def rejected_by_method(g) -> bool:
            if name == "FULL":
                return not is_connected(g)
            borders = set(method._partition.all_borders())
            components = connected_components(g)
            return sum(1 for comp in components if borders & set(comp)) > 1

        bridge = None
        for u, v, w in graph.edges():
            graph.remove_edge(u, v)
            qualifies = rejected_by_method(graph)
            graph.add_edge(u, v, w)
            if qualifies:
                bridge = (u, v)
                break
        if bridge is None:
            pytest.skip("graph has no qualifying bridge edge")
        edges_before = graph.num_edges
        weight_before = graph.weight(*bridge)
        with pytest.raises(GraphError):
            server.apply_updates(
                [UpdateRequest("update-weight", bridge[0], bridge[1],
                               weight_before * 2),
                 UpdateRequest("remove-edge", bridge[0], bridge[1])],
                signer,
            )
        # Rolled back: the edge is back at its signed weight ...
        assert graph.num_edges == edges_before
        assert graph.weight(*bridge) == weight_before
        # ... and the server still serves verifiable proofs — for every
        # workload query, not just the warmed one (a HYP partition
        # committed against the rejected graph fails exactly here).
        for qs, qt in workload:
            served = server.answer(qs, qt)
            assert served.ok
            result = verifier.verify(qs, qt, served.response, signer.verify)
            assert result.ok, (result.reason, result.detail)

    def test_changelog_stays_bounded_across_batches(self, road300):
        server, signer, graph = build_server(road300)
        u, v, w = next(iter(graph.edges()))
        for i in range(10):
            server.update_edge_weight(u, v, w * (1 + 0.01 * (i + 1)), signer)
            # Only the latest batch is retained after each trim.
            assert len(graph.changelog) <= 1
        untrimmed_server, signer2, graph2 = build_server(road300)
        untrimmed_server.trim_changelog = False
        u2, v2, w2 = next(iter(graph2.edges()))
        retained = len(graph2.changelog)
        for i in range(5):
            untrimmed_server.update_edge_weight(u2, v2, w2 + i + 1, signer2)
        assert len(graph2.changelog) == retained + 5


class TestInterleavedTraffic:
    def test_mixed_trace_serves_fresh_proofs_throughout(self, road300,
                                                        workload):
        """Replay a seeded mixed read/write trace; every response must
        carry the descriptor version current at its serve time and
        verify under it."""
        server, signer, graph = build_server(road300)
        verifier = get_method("DIJ")
        updates = generate_update_workload(graph, 4, seed=9,
                                           kinds=("update-weight",))
        trace = interleave(list(workload) * 2, updates, seed=13)
        for kind, item in trace:
            if kind == "update":
                server.apply_updates([item], signer)
                continue
            vs, vt = item
            floor = server.descriptor_version
            served = server.answer(vs, vt)
            assert served.ok
            assert served.response.descriptor.version == floor
            result = verifier.verify(vs, vt, served.response, signer.verify,
                                     min_version=floor)
            assert result.ok, (result.reason, result.detail)
        snapshot = server.snapshot()
        assert snapshot.updates == len(updates)
        # Each update invalidated the cache exactly once overall.
        assert server.cache.stats.invalidations <= len(updates)

    def test_cache_invalidation_counts_under_interleaving(self, road300,
                                                          workload):
        server, signer, graph = build_server(road300)
        queries = list(workload)[:4]
        for round_no in range(3):
            for vs, vt in queries:
                server.answer(vs, vt)
            warm = [server.answer(vs, vt).cached for vs, vt in queries]
            assert all(warm)
            u, v, w = next(iter(graph.edges()))
            server.update_edge_weight(u, v, w * 1.5, signer)
            cold = server.answer(*queries[0])
            assert not cold.cached
        assert server.cache.stats.invalidations == 3


class TestConcurrentRaces:
    TIMEOUT = 60.0

    def test_answer_concurrent_racing_updates(self, road300, workload):
        """Thread-pool queries race owner updates: no deadlock, no torn
        proofs, and no stale service after the final update."""
        server, signer, graph = build_server(road300, max_workers=4)
        verifier = get_method("DIJ")
        queries = list(workload)
        errors: list[str] = []
        done = threading.Event()

        def query_loop():
            try:
                while not done.is_set():
                    for served in server.answer_concurrent(queries):
                        if not served.ok:
                            errors.append(served.error)
                            continue
                        result = verifier.verify(
                            served.response.source, served.response.target,
                            served.response, signer.verify)
                        if not result.ok:
                            errors.append(f"{result.reason}: {result.detail}")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(repr(exc))

        workers = [threading.Thread(target=query_loop) for _ in range(2)]
        for worker in workers:
            worker.start()
        try:
            edges = list(graph.edges())
            for i in range(5):
                u, v, w = edges[i]
                server.update_edge_weight(u, v, w * 1.25, signer)
        finally:
            done.set()
            for worker in workers:
                worker.join(timeout=self.TIMEOUT)
        assert not any(worker.is_alive() for worker in workers), \
            "query workers did not finish: probable deadlock"
        assert not errors, errors[:5]

        # After the last update returned, nothing stale may be served.
        final = graph.version
        assert server.descriptor_version == final
        for vs, vt in queries:
            served = server.answer(vs, vt)
            assert served.response.descriptor.version == final

    def test_no_stale_hit_after_update_returns(self, road300, workload):
        """Deterministic race: a query computed *during* the update must
        not be replayed after the update completes."""
        server, signer, graph = build_server(road300)
        vs, vt = workload[0]
        server.answer(vs, vt)  # warm the cache pre-update

        with ThreadPoolExecutor(max_workers=1) as pool:
            u, v, w = next(iter(graph.edges()))
            future = pool.submit(server.update_edge_weight, u, v, w * 2,
                                 signer)
            future.result(timeout=self.TIMEOUT)
        served = server.answer(vs, vt)
        assert not served.cached
        assert served.response.descriptor.version == graph.version


class TestReadWriteLock:
    def test_readers_share_writers_exclude(self):
        lock = ReadWriteLock()
        active = []
        with lock.read():
            with lock.read():  # two concurrent readers (nested scopes)
                active.append("r2")
        assert active == ["r2"]
        with lock.write():
            active.append("w")
        assert active[-1] == "w"

    def test_writer_blocks_until_readers_drain(self):
        lock = ReadWriteLock()
        order: list[str] = []
        reader_in = threading.Event()
        release_reader = threading.Event()

        def reader():
            with lock.read():
                reader_in.set()
                release_reader.wait(10)
                order.append("reader-out")

        def writer():
            reader_in.wait(10)
            with lock.write():
                order.append("writer-in")

        threads = [threading.Thread(target=reader),
                   threading.Thread(target=writer)]
        for t in threads:
            t.start()
        reader_in.wait(10)
        release_reader.set()
        for t in threads:
            t.join(timeout=10)
        assert order == ["reader-out", "writer-in"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        acquired = threading.Event()

        def writer():
            lock.acquire_write()
            acquired.set()
            lock.release_write()

        t = threading.Thread(target=writer)
        t.start()
        # Give the writer a moment to start waiting, then a new reader
        # must queue behind it (writer preference) until we release.
        for _ in range(1000):
            if lock._writers_waiting:
                break
            threading.Event().wait(0.001)
        got_read = threading.Event()

        def late_reader():
            with lock.read():
                got_read.set()

        r = threading.Thread(target=late_reader)
        r.start()
        assert not got_read.wait(0.05), "late reader jumped a waiting writer"
        lock.release_read()
        t.join(timeout=10)
        r.join(timeout=10)
        assert acquired.is_set() and got_read.is_set()
