"""The asyncio frontend: same wire contract, event-loop concurrency.

Two obligations anchor this battery.  First, **contract parity**: the
async frontend must be indistinguishable from the threaded one on the
wire — byte-identical reply frames for all four methods, the same
``/healthz``/``/metrics`` endpoints, and full interop in both
directions (sync transport → async server, async transport → threaded
server).  Second, the **long-lived-connection defences** the threaded
frontend already has, re-proven against the event loop: slow-loris and
short bodies answered with typed ``E_REQUEST_TIMEOUT`` frames, garbage
bytes on a kept-alive socket answered with a typed
``E_MALFORMED_FRAME`` frame (not a silent reset), over-budget
connections shed with ``Connection: close``, and the keep-alive
request budget honoured.
"""

from __future__ import annotations

import socket
import time

import pytest

from repro.api import codes
from repro.api.client import RemoteClient
from repro.api.envelope import (
    ErrorMessage,
    HelloRequest,
    QueryRequest,
    decode_frame,
    decode_message,
)
from repro.api.transport import AsyncTransport, HttpTransport
from repro.errors import ServiceError
from repro.service.aio import AsyncProofHttpServer
from repro.service.http import ProofHttpServer
from repro.service.server import ProofServer


@pytest.fixture()
def dispatcher(dij):
    return ProofServer(dij, cache_size=64).dispatcher()


def post_raw(host, port, body, *, content_length=None, settle=1.0):
    """POST /rpc with full control over framing; return the raw reply."""
    length = len(body) if content_length is None else content_length
    with socket.create_connection((host, port), timeout=10.0) as sock:
        sock.sendall(
            b"POST /rpc HTTP/1.1\r\n"
            b"Host: test\r\n"
            b"Content-Type: application/octet-stream\r\n"
            + f"Content-Length: {length}\r\n\r\n".encode()
        )
        sock.sendall(body)
        sock.shutdown(socket.SHUT_WR)
        sock.settimeout(settle + 10.0)
        chunks = []
        try:
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        except TimeoutError:
            pass
        return b"".join(chunks)


def http_post(frame: bytes) -> bytes:
    """One well-formed POST /rpc request as raw bytes."""
    return (b"POST /rpc HTTP/1.1\r\nHost: test\r\n"
            b"Content-Type: application/octet-stream\r\n"
            + f"Content-Length: {len(frame)}\r\n\r\n".encode() + frame)


def read_response(sock) -> "tuple[dict, bytes]":
    """Read one HTTP response off *sock*: (lowercased headers, body)."""
    buffer = b""
    while b"\r\n\r\n" not in buffer:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("peer closed before headers completed")
        buffer += chunk
    head, rest = buffer.split(b"\r\n\r\n", 1)
    lines = head.split(b"\r\n")
    headers = {"_status": lines[0].decode("latin-1")}
    for line in lines[1:]:
        name, _, value = line.partition(b":")
        headers[name.strip().decode().lower()] = value.strip().decode()
    length = int(headers["content-length"])
    while len(rest) < length:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("peer closed mid-body")
        rest += chunk
    return headers, rest[:length]


def error_code_of(http_reply: bytes) -> str:
    """Extract the wire error code from a raw HTTP response."""
    frame = http_reply.split(b"\r\n\r\n", 1)[1]
    message = decode_message(decode_frame(frame))
    assert isinstance(message, ErrorMessage)
    return message.code


# ----------------------------------------------------------------------
# Contract parity with the threaded frontend
# ----------------------------------------------------------------------
class TestParity:
    def test_sync_client_full_session(self, dispatcher, signer, workload):
        """The stdlib persistent transport works against the event loop."""
        with AsyncProofHttpServer(dispatcher) as server, \
                HttpTransport(server.url) as transport:
            client = RemoteClient(transport, signer.verify)
            assert client.hello().method == "DIJ"
            for vs, vt in workload[:4]:
                assert client.query(vs, vt).ok
            assert all(r.ok for r in client.query_many(workload[:4]))

    def test_async_transport_against_threaded_server(self, dispatcher,
                                                     signer, workload):
        """And the awaited transport works against the threaded frontend."""
        import asyncio

        from repro.bench.aioclient import AsyncRemoteClient

        with ProofHttpServer(dispatcher) as server:
            async def drive():
                transport = AsyncTransport(server.url)
                client = AsyncRemoteClient(transport, signer.verify)
                try:
                    hello = await client.hello()
                    results = [await client.query(vs, vt)
                               for vs, vt in workload[:3]]
                    batch = await client.query_batch(workload[:3])
                finally:
                    await transport.close()
                return hello, results, batch

            loop = asyncio.new_event_loop()
            try:
                hello, results, batch = loop.run_until_complete(drive())
            finally:
                loop.close()
        assert hello.method == "DIJ"
        assert all(r.ok for r in results)
        assert all(r.ok for r in batch)

    def test_replies_byte_identical_across_frontends(
            self, dij, full, ldm, hyp, workload):
        """Same frames, fresh caches → identical reply bytes, 4 methods."""
        frames = [HelloRequest().to_frame()]
        frames += [QueryRequest(vs, vt).to_frame() for vs, vt in workload[:4]]
        frames += [QueryRequest(*workload[0]).to_frame()]  # a cached repeat
        for method in (dij, full, ldm, hyp):
            replies = {}
            for label, server_cls in (("threaded", ProofHttpServer),
                                      ("async", AsyncProofHttpServer)):
                dispatcher = ProofServer(method, cache_size=64).dispatcher()
                with server_cls(dispatcher) as server, \
                        socket.create_connection(
                            (server.host, server.port), timeout=10.0) as sock:
                    bodies = []
                    for frame in frames:
                        sock.sendall(http_post(frame))
                        _headers, body = read_response(sock)
                        bodies.append(body)
                    replies[label] = bodies
            assert replies["threaded"] == replies["async"], method.name

    def test_healthz_and_metrics(self, dispatcher):
        import json
        import urllib.request

        with AsyncProofHttpServer(dispatcher) as server:
            with urllib.request.urlopen(f"{server.url}/healthz",
                                        timeout=5.0) as reply:
                assert reply.read() == b"ok"
            with urllib.request.urlopen(f"{server.url}/metrics",
                                        timeout=5.0) as reply:
                metrics = json.loads(reply.read())
        assert metrics["requests"] == 0
        assert "hit_rate" in metrics and "cache_capacity" in metrics

    def test_unknown_path_404_and_unknown_verb_501(self, dispatcher):
        with AsyncProofHttpServer(dispatcher) as server:
            with socket.create_connection((server.host, server.port),
                                          timeout=10.0) as sock:
                sock.sendall(b"GET /nope HTTP/1.1\r\nHost: t\r\n\r\n")
                headers, _body = read_response(sock)
                assert "404" in headers["_status"]
            with socket.create_connection((server.host, server.port),
                                          timeout=10.0) as sock:
                sock.sendall(b"PUT /rpc HTTP/1.1\r\nHost: t\r\n"
                             b"Content-Length: 0\r\n\r\n")
                headers, _body = read_response(sock)
                assert "501" in headers["_status"]

    def test_pipelined_requests_one_write(self, dispatcher, workload):
        """Two requests in one segment come back as two in-order replies."""
        first = QueryRequest(*workload[0]).to_frame()
        second = QueryRequest(*workload[1]).to_frame()
        with AsyncProofHttpServer(dispatcher) as server:
            with socket.create_connection((server.host, server.port),
                                          timeout=10.0) as sock:
                sock.sendall(http_post(first) + http_post(second))
                _h1, body1 = read_response(sock)
                _h2, body2 = read_response(sock)
        assert decode_frame(body1).msg_type == decode_frame(body2).msg_type
        # In-order: each reply must answer its own query's frame.
        one = decode_message(decode_frame(body1))
        two = decode_message(decode_frame(body2))
        assert one.response_bytes != two.response_bytes


# ----------------------------------------------------------------------
# Long-lived-connection defences
# ----------------------------------------------------------------------
class TestDefences:
    def test_short_body_gets_typed_error_frame(self, dispatcher, workload):
        frame = QueryRequest(*workload[0]).to_frame()
        with AsyncProofHttpServer(dispatcher) as server:
            reply = post_raw(server.host, server.port, frame[:3],
                             content_length=len(frame))
        assert error_code_of(reply) == codes.E_REQUEST_TIMEOUT

    def test_slow_loris_body_times_out_typed(self, dispatcher, workload):
        frame = QueryRequest(*workload[0]).to_frame()
        with AsyncProofHttpServer(dispatcher, handler_timeout=0.5) as server:
            with socket.create_connection((server.host, server.port),
                                          timeout=10.0) as sock:
                sock.sendall(
                    b"POST /rpc HTTP/1.1\r\nHost: t\r\n"
                    + f"Content-Length: {len(frame)}\r\n\r\n".encode()
                    + frame[:2])  # ...and then nothing, forever
                headers, body = read_response(sock)
        message = decode_message(decode_frame(body))
        assert isinstance(message, ErrorMessage)
        assert message.code == codes.E_REQUEST_TIMEOUT
        assert headers.get("connection") == "close"

    def test_slow_loris_headers_time_out_typed(self, dispatcher):
        with AsyncProofHttpServer(dispatcher, handler_timeout=0.5) as server:
            with socket.create_connection((server.host, server.port),
                                          timeout=10.0) as sock:
                sock.sendall(b"POST /rpc HTTP/1.1\r\nHost: t\r\n")  # stalls
                _headers, body = read_response(sock)
        message = decode_message(decode_frame(body))
        assert isinstance(message, ErrorMessage)
        assert message.code == codes.E_REQUEST_TIMEOUT

    def test_idle_keepalive_closed_silently(self, dispatcher, workload):
        """An idle peer is dropped without a frame — it asked nothing."""
        frame = QueryRequest(*workload[0]).to_frame()
        with AsyncProofHttpServer(dispatcher, handler_timeout=0.5) as server:
            with socket.create_connection((server.host, server.port),
                                          timeout=10.0) as sock:
                sock.sendall(http_post(frame))
                _headers, _body = read_response(sock)  # request 1 is served
                sock.settimeout(10.0)
                assert sock.recv(65536) == b""  # then idle → clean EOF

    def test_garbage_on_kept_alive_socket_typed_then_close(
            self, dispatcher, workload):
        """Non-HTTP bytes after a valid request: typed frame, then EOF."""
        frame = QueryRequest(*workload[0]).to_frame()
        with AsyncProofHttpServer(dispatcher) as server:
            with socket.create_connection((server.host, server.port),
                                          timeout=10.0) as sock:
                sock.sendall(http_post(frame))
                _headers, body = read_response(sock)
                assert decode_message(decode_frame(body))  # served fine
                sock.sendall(b"\x00\xff RSPV garbage not an http request\r\n")
                headers, body = read_response(sock)
                message = decode_message(decode_frame(body))
                assert isinstance(message, ErrorMessage)
                assert message.code == codes.E_MALFORMED_FRAME
                assert headers.get("connection") == "close"
                sock.settimeout(10.0)
                assert sock.recv(65536) == b""

    def test_over_budget_connections_shed(self, dispatcher, workload):
        """Beyond max_connections: full service, but Connection: close."""
        frame = QueryRequest(*workload[0]).to_frame()
        with AsyncProofHttpServer(dispatcher, max_connections=2) as server:
            holders = [socket.create_connection((server.host, server.port),
                                                timeout=10.0)
                       for _ in range(2)]
            try:
                for held in holders:  # make sure both are accepted + served
                    held.sendall(http_post(frame))
                    headers, _body = read_response(held)
                    assert "connection" not in headers
                with socket.create_connection((server.host, server.port),
                                              timeout=10.0) as shed:
                    shed.sendall(http_post(frame))
                    headers, body = read_response(shed)
                    assert headers.get("connection") == "close"
                    # Shed ≠ refused: the reply is a full valid answer.
                    assert not isinstance(
                        decode_message(decode_frame(body)), ErrorMessage)
                    assert shed.recv(65536) == b""
            finally:
                for held in holders:
                    held.close()

    def test_keepalive_budget_closes_after_n_requests(self, dispatcher,
                                                      workload):
        frame = QueryRequest(*workload[0]).to_frame()
        with AsyncProofHttpServer(dispatcher,
                                  max_keepalive_requests=3) as server:
            with socket.create_connection((server.host, server.port),
                                          timeout=10.0) as sock:
                seen_close = False
                for index in range(3):
                    sock.sendall(http_post(frame))
                    headers, _body = read_response(sock)
                    if index < 2:
                        assert "connection" not in headers
                    else:
                        assert headers.get("connection") == "close"
                        seen_close = True
                assert seen_close
                assert sock.recv(65536) == b""

    def test_oversized_body_rejected_413(self, dispatcher):
        from repro.service.http import MAX_REQUEST_BYTES

        with AsyncProofHttpServer(dispatcher) as server:
            with socket.create_connection((server.host, server.port),
                                          timeout=10.0) as sock:
                sock.sendall(
                    b"POST /rpc HTTP/1.1\r\nHost: t\r\n"
                    + f"Content-Length: {MAX_REQUEST_BYTES + 1}\r\n\r\n".encode())
                headers, _body = read_response(sock)
        assert "413" in headers["_status"]

    def test_missing_length_rejected_411(self, dispatcher):
        with AsyncProofHttpServer(dispatcher) as server:
            with socket.create_connection((server.host, server.port),
                                          timeout=10.0) as sock:
                sock.sendall(b"POST /rpc HTTP/1.1\r\nHost: t\r\n\r\n")
                headers, _body = read_response(sock)
        assert "411" in headers["_status"]


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_constructor_validation(self, dispatcher):
        with pytest.raises(ServiceError):
            AsyncProofHttpServer(object())
        for kwargs in ({"handler_timeout": 0.0},
                       {"max_keepalive_requests": -1},
                       {"max_connections": 0},
                       {"dispatch_workers": 0},
                       {"drain_timeout": -1.0}):
            with pytest.raises(ServiceError):
                AsyncProofHttpServer(dispatcher, **kwargs).close()

    def test_port_resolves_before_start(self, dispatcher):
        server = AsyncProofHttpServer(dispatcher)
        try:
            assert server.port > 0
            assert server.url == f"http://127.0.0.1:{server.port}"
        finally:
            server.close()  # never started: must still release the socket

    def test_double_start_rejected(self, dispatcher):
        with AsyncProofHttpServer(dispatcher) as server:
            with pytest.raises(ServiceError):
                server.start()

    def test_close_idempotent(self, dispatcher):
        server = AsyncProofHttpServer(dispatcher).start()
        server.close()
        server.close()

    def test_port_collision_is_typed(self, dispatcher):
        with AsyncProofHttpServer(dispatcher) as server:
            with pytest.raises(ServiceError, match="cannot bind"):
                AsyncProofHttpServer(dispatcher, port=server.port)

    def test_reuse_port_group(self, dij, signer, workload):
        if not hasattr(socket, "SO_REUSEPORT"):
            pytest.skip("platform has no SO_REUSEPORT")
        first = AsyncProofHttpServer(
            ProofServer(dij, cache_size=16).dispatcher(), reuse_port=True)
        second = AsyncProofHttpServer(
            ProofServer(dij, cache_size=16).dispatcher(),
            port=first.port, reuse_port=True)
        with first, second, HttpTransport(first.url) as transport:
            client = RemoteClient(transport, signer.verify)
            assert all(client.query(vs, vt).ok for vs, vt in workload[:3])

    def test_close_drops_idle_connections_fast(self, dispatcher, workload):
        """Shutdown must not wait drain_timeout for merely-open peers."""
        frame = QueryRequest(*workload[0]).to_frame()
        server = AsyncProofHttpServer(dispatcher, drain_timeout=30.0).start()
        idle = socket.create_connection((server.host, server.port),
                                        timeout=10.0)
        try:
            idle.sendall(http_post(frame))
            read_response(idle)  # established + served, now idle
            start = time.monotonic()
            server.close()
            assert time.monotonic() - start < 10.0
        finally:
            idle.close()


# ----------------------------------------------------------------------
# The asyncio client pool
# ----------------------------------------------------------------------
class TestAsyncClientPool:
    def test_pool_drives_both_frontends(self, dij, signer, workload):
        from repro.bench.aioclient import AsyncClientPool

        for server_cls in (ProofHttpServer, AsyncProofHttpServer):
            dispatcher = ProofServer(dij, cache_size=64).dispatcher()
            with server_cls(dispatcher) as server, \
                    AsyncClientPool(server.url, signer.verify,
                                    clients=5) as pool:
                assert pool.hello().method == "DIJ"
                results = pool.run_chunk(workload)
                assert len(results) == len(workload)
                assert all(r.ok for r in results)
                batched = pool.run_chunk(workload, batch_size=3)
                assert all(r.ok for r in batched)

    def test_pool_validation(self, signer):
        from repro.bench.aioclient import AsyncClientPool

        with pytest.raises(ServiceError):
            AsyncClientPool("http://127.0.0.1:1", signer.verify, clients=0)

    def test_pool_closed_is_typed(self, dij, signer):
        from repro.bench.aioclient import AsyncClientPool

        dispatcher = ProofServer(dij, cache_size=16).dispatcher()
        with AsyncProofHttpServer(dispatcher) as server:
            pool = AsyncClientPool(server.url, signer.verify, clients=2)
            pool.close()
            with pytest.raises(ServiceError, match="closed"):
                pool.hello()
