"""Multi-process serving: the SO_REUSEPORT worker pool."""

from __future__ import annotations

import json
import socket
import urllib.request

import pytest

from repro.api.client import RemoteClient
from repro.api.transport import HttpTransport
from repro.errors import ServiceError
from repro.service.metrics import MetricsSnapshot, merge_snapshots
from repro.service.workers import WorkerPool
from repro.store import save_method

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"),
    reason="platform has no SO_REUSEPORT",
)


@pytest.fixture(scope="module")
def dij_artifact(road300, tmp_path_factory):
    from repro.core.dij import DijMethod
    from repro.crypto.signer import NullSigner

    signer = NullSigner()
    method = DijMethod.build(road300, signer)
    path = str(tmp_path_factory.mktemp("pool") / "dij.rspv")
    save_method(method, path)
    return path, signer


class TestWorkerPool:
    def test_two_workers_serve_and_aggregate(self, dij_artifact, road300,
                                             workload):
        path, signer = dij_artifact
        with WorkerPool(path, workers=2, start_timeout=120.0) as pool:
            client = RemoteClient(HttpTransport(pool.url), signer.verify)
            hello = client.hello()
            assert hello.method == "DIJ"
            for vs, vt in workload:
                result = client.query(vs, vt)
                assert result.ok, (result.verdict.reason,
                                   result.verdict.detail)
            with urllib.request.urlopen(pool.url + "/metrics",
                                        timeout=5.0) as reply:
                scraped = json.loads(reply.read())
            assert "cache_capacity" in scraped
        assert len(pool.worker_snapshots) == 2
        assert pool.aggregate.requests >= len(workload)
        # Capacity sums across workers — the aggregate is a fleet view.
        assert pool.aggregate.cache_capacity == 2 * 1024

    def test_update_pushes_refused_without_key(self, dij_artifact, workload):
        from repro.errors import ProtocolError
        from repro.workload.updates import GraphUpdate

        path, signer = dij_artifact
        with WorkerPool(path, workers=1, start_timeout=120.0) as pool:
            client = RemoteClient(HttpTransport(pool.url), signer.verify)
            u, v = workload[0]
            with pytest.raises(ProtocolError) as excinfo:
                client.push_updates(
                    [GraphUpdate("update-weight", u, v, 1.0)])
            assert "updates" in str(excinfo.value).lower()

    def test_rejects_non_artifact(self, tmp_path):
        bogus = tmp_path / "not.rspv"
        bogus.write_bytes(b"nope")
        with pytest.raises(ServiceError):
            WorkerPool(str(bogus), workers=1)

    def test_rejects_zero_workers(self, dij_artifact):
        with pytest.raises(ServiceError):
            WorkerPool(dij_artifact[0], workers=0)


class TestMergeSnapshots:
    def test_counters_sum_and_percentiles_weight(self):
        a = MetricsSnapshot(requests=3, elapsed_seconds=2.0, cache_hits=1,
                            cache_misses=2, proof_bytes=300, p50_ms=1.0,
                            p95_ms=2.0, cache_evictions=1, cache_entries=2,
                            cache_capacity=10)
        b = MetricsSnapshot(requests=1, elapsed_seconds=5.0, cache_hits=0,
                            cache_misses=1, proof_bytes=100, p50_ms=5.0,
                            p95_ms=6.0, cache_invalidations=2,
                            cache_entries=1, cache_capacity=10)
        merged = merge_snapshots([a, b])
        assert merged.requests == 4
        assert merged.elapsed_seconds == 5.0
        assert merged.proof_bytes == 400
        assert merged.cache_evictions == 1
        assert merged.cache_invalidations == 2
        assert merged.cache_entries == 3
        assert merged.cache_capacity == 20
        assert merged.p50_ms == pytest.approx((3 * 1.0 + 1 * 5.0) / 4)

    def test_empty_merge(self):
        assert merge_snapshots([]).requests == 0
