"""Tests for distance vector quantization (Eq. 5 / Lemma 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.landmarks.quantization import (
    QuantizationSpec,
    loose_lower_bound,
    loose_lower_bound_units,
    quantize_vectors,
)


class TestSpec:
    def test_lambda_formula(self):
        vectors = np.array([[0.0, 14.0]])
        spec = QuantizationSpec.for_vectors(vectors, bits=3)
        assert spec.d_max == 14.0
        assert spec.lam == pytest.approx(14.0 / 7.0)

    def test_bits_bounds(self):
        with pytest.raises(GraphError):
            QuantizationSpec.for_vectors(np.array([[1.0]]), bits=0)
        with pytest.raises(GraphError):
            QuantizationSpec.for_vectors(np.array([[1.0]]), bits=33)

    def test_degenerate_all_zero(self):
        spec = QuantizationSpec.for_vectors(np.zeros((2, 3)), bits=4)
        assert spec.lam > 0

    def test_encode_decode_value(self):
        spec = QuantizationSpec(bits=3, d_max=14.0, lam=2.0)
        assert spec.encode_value(3.0) == 2  # round(3/2) = 2
        assert spec.decode_code(2) == 4.0


class TestPaperExample:
    """Figure 6a: Dmax=14, b=3 -> lam=2; vector <3,9> quantizes to <4,10>."""

    def test_figure6a(self):
        vectors = np.array(
            [[2.0, 0.0, 1.0, 3.0, 4.0, 5.0, 6.0, 9.0, 14.0],
             [4.0, 6.0, 7.0, 9.0, 10.0, 1.0, 0.0, 3.0, 8.0]]
        )
        codes, spec = quantize_vectors(vectors, bits=3)
        assert spec.lam == pytest.approx(2.0)
        v4 = codes[:, 3]
        assert spec.decode_code(v4[0]) == 4.0
        assert spec.decode_code(v4[1]) == 10.0
        assert codes.max() == 7  # fits in 3 bits


class TestLemma3:
    def test_codes_fit_in_bits(self):
        rng = np.random.default_rng(5)
        vectors = rng.uniform(0, 5000, size=(6, 100))
        for bits in (4, 8, 12):
            codes, _ = quantize_vectors(vectors, bits)
            assert codes.min() >= 0
            assert codes.max() <= (1 << bits) - 1

    @given(st.integers(min_value=2, max_value=14), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_loose_bound_below_exact_bound(self, bits, seed):
        rng = np.random.default_rng(seed)
        vectors = rng.uniform(0, 1000, size=(5, 30))
        codes, spec = quantize_vectors(vectors, bits)
        for i in (0, 7, 29):
            for j in (3, 15):
                exact = float(np.abs(vectors[:, i] - vectors[:, j]).max())
                loose = loose_lower_bound(codes[:, i], codes[:, j], spec.lam)
                assert loose <= exact + 1e-9

    def test_loose_bound_clipped_at_zero(self):
        codes = np.array([3, 3])
        assert loose_lower_bound(codes, codes, lam=2.0) == 0.0

    def test_units_helper(self):
        assert loose_lower_bound_units(np.array([1, 5]), np.array([4, 4])) == 3
