"""Tests for distance vector compression (Lemma 4)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.synthetic import road_network
from repro.landmarks.compression import (
    compress_exact_greedy,
    compress_leader,
    lemma4_lower_bound,
)
from repro.landmarks.quantization import loose_lower_bound, quantize_vectors
from repro.landmarks.selection import farthest_landmarks
from repro.landmarks.vectors import LandmarkVectors
from repro.order import hilbert_order
from repro.shortestpath.dijkstra import dijkstra


@pytest.fixture(scope="module")
def setup():
    road = road_network(180, seed=31)
    vectors = LandmarkVectors(road, farthest_landmarks(road, 6, seed=0))
    codes, spec = quantize_vectors(vectors.vectors, bits=10)
    return road, vectors, codes, spec


@pytest.mark.parametrize("algorithm", ["exact", "leader"])
class TestInvariants:
    def compress(self, algorithm, road, codes, spec, xi):
        ids = road.node_ids()
        if algorithm == "exact":
            return compress_exact_greedy(ids, codes, spec, xi)
        return compress_leader(ids, codes, spec, xi, scan_order=hilbert_order(road))

    def test_partition(self, algorithm, setup):
        road, _, codes, spec = setup
        comp = self.compress(algorithm, road, codes, spec, xi=200.0)
        ids = set(road.node_ids())
        assert set(comp.codes_of) | set(comp.ref_of) == ids
        assert not set(comp.codes_of) & set(comp.ref_of)

    def test_epsilon_within_xi(self, algorithm, setup):
        road, _, codes, spec = setup
        xi = 150.0
        comp = self.compress(algorithm, road, codes, spec, xi)
        xi_units = int(xi / spec.lam)
        for node, (theta, eps_units) in comp.ref_of.items():
            assert eps_units <= xi_units
            assert theta in comp.codes_of  # representatives are uncompressed
            # eps must equal the actual quantized difference Delta(v, theta).
            idx = {n: i for i, n in enumerate(road.node_ids())}
            actual = int(np.abs(codes[:, idx[node]] - codes[:, idx[theta]]).max())
            assert eps_units == actual

    def test_lemma4_bound_below_loose_bound(self, algorithm, setup):
        road, _, codes, spec = setup
        comp = self.compress(algorithm, road, codes, spec, xi=200.0)
        ids = road.node_ids()
        idx = {n: i for i, n in enumerate(ids)}
        for u in ids[::20]:
            for v in ids[::13]:
                loose = loose_lower_bound(codes[:, idx[u]], codes[:, idx[v]], spec.lam)
                compressed = comp.lower_bound(u, v)
                assert compressed <= loose + 1e-9

    def test_bound_below_true_distance(self, algorithm, setup):
        road, _, codes, spec = setup
        comp = self.compress(algorithm, road, codes, spec, xi=250.0)
        ids = road.node_ids()
        for source in ids[::35]:
            dist = dijkstra(road, source).dist
            for node in ids[::11]:
                assert comp.lower_bound(source, node) <= dist[node] + 1e-9

    def test_zero_xi_compresses_only_identical_vectors(self, algorithm, setup):
        road, _, codes, spec = setup
        comp = self.compress(algorithm, road, codes, spec, xi=0.0)
        idx = {n: i for i, n in enumerate(road.node_ids())}
        for node, (theta, eps) in comp.ref_of.items():
            assert eps == 0
            assert np.array_equal(codes[:, idx[node]], codes[:, idx[theta]])


class TestAlgorithmSpecific:
    def test_larger_xi_compresses_more(self, setup):
        road, _, codes, spec = setup
        ids = road.node_ids()
        small = compress_leader(ids, codes, spec, 50.0)
        large = compress_leader(ids, codes, spec, 500.0)
        assert large.num_compressed >= small.num_compressed

    def test_exact_greedy_not_worse_than_leader(self, setup):
        road, _, codes, spec = setup
        ids = road.node_ids()
        exact = compress_exact_greedy(ids, codes, spec, 200.0)
        leader = compress_leader(ids, codes, spec, 200.0)
        assert exact.num_compressed >= leader.num_compressed

    def test_effective_resolution(self, setup):
        road, _, codes, spec = setup
        comp = compress_leader(road.node_ids(), codes, spec, 200.0)
        some_rep = next(iter(comp.codes_of))
        codes_rep, eps = comp.effective(some_rep)
        assert eps == 0
        if comp.ref_of:
            some_compressed = next(iter(comp.ref_of))
            codes_c, eps_c = comp.effective(some_compressed)
            theta, expected_eps = comp.ref_of[some_compressed]
            assert eps_c == expected_eps
            assert np.array_equal(codes_c, comp.codes_of[theta])

    def test_negative_xi_rejected(self, setup):
        road, _, codes, spec = setup
        with pytest.raises(GraphError):
            compress_leader(road.node_ids(), codes, spec, -1.0)

    def test_bad_scan_order_rejected(self, setup):
        road, _, codes, spec = setup
        with pytest.raises(GraphError):
            compress_leader(road.node_ids(), codes, spec, 10.0, scan_order=[1, 2, 3])

    def test_lemma4_formula(self):
        # distloose(theta_u, theta_v) = max(0, lam*(units-1)); subtract
        # lam*(eps_u + eps_v); clip at zero.
        a = np.array([10, 2])
        b = np.array([4, 2])  # units = 6
        assert lemma4_lower_bound(a, 1, b, 2, lam=2.0) == pytest.approx(
            max(0.0, 2.0 * (6 - 1)) - 2.0 * 3
        )
        assert lemma4_lower_bound(a, 5, b, 5, lam=2.0) == 0.0  # clipped
