"""Tests for landmark selection and the Theorem 1 lower bound."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.synthetic import road_network
from repro.landmarks.selection import farthest_landmarks, random_landmarks, select_landmarks
from repro.landmarks.vectors import LandmarkVectors, exact_lower_bound
from repro.shortestpath.dijkstra import dijkstra


@pytest.fixture(scope="module")
def road():
    return road_network(200, seed=21)


@pytest.fixture(scope="module")
def vectors(road):
    return LandmarkVectors(road, farthest_landmarks(road, 8, seed=0))


class TestSelection:
    def test_random_landmarks(self, road):
        marks = random_landmarks(road, 10, seed=3)
        assert len(marks) == 10
        assert len(set(marks)) == 10
        assert all(road.has_node(m) for m in marks)

    def test_random_deterministic(self, road):
        assert random_landmarks(road, 10, seed=3) == random_landmarks(road, 10, seed=3)

    def test_farthest_spread(self, road):
        # Farthest selection should be better spread than random: its
        # minimum pairwise graph distance should dominate.
        def min_pairwise(marks):
            values = []
            for m in marks:
                dist = dijkstra(road, m).dist
                values.extend(dist[o] for o in marks if o != m)
            return min(values)

        far = farthest_landmarks(road, 6, seed=0)
        rnd = random_landmarks(road, 6, seed=0)
        assert min_pairwise(far) >= min_pairwise(rnd)

    def test_select_dispatch(self, road):
        assert select_landmarks(road, 4, strategy="random", seed=1) == random_landmarks(
            road, 4, seed=1
        )
        with pytest.raises(GraphError):
            select_landmarks(road, 4, strategy="astrology")

    def test_too_many_landmarks_rejected(self, road):
        with pytest.raises(GraphError):
            random_landmarks(road, road.num_nodes + 1)
        with pytest.raises(GraphError):
            farthest_landmarks(road, 0)

    def test_all_nodes_as_landmarks(self, road):
        marks = farthest_landmarks(road, road.num_nodes, seed=0)
        assert sorted(marks) == road.node_ids()


class TestVectors:
    def test_vector_values_match_dijkstra(self, road, vectors):
        for i, landmark in enumerate(vectors.landmarks):
            reference = dijkstra(road, landmark).dist
            for node in road.node_ids()[::25]:
                assert vectors.vectors[i, vectors.index_of[node]] == pytest.approx(
                    reference[node]
                )

    def test_theorem1_lower_bound(self, road, vectors):
        # LB(u, v) <= dist(u, v) for sampled pairs (Theorem 1).
        ids = road.node_ids()
        for source in ids[::40]:
            dist = dijkstra(road, source).dist
            for node in ids[::17]:
                assert vectors.lower_bound(source, node) <= dist[node] + 1e-9

    def test_lower_bound_is_symmetric_and_reflexive(self, road, vectors):
        ids = road.node_ids()
        a, b = ids[0], ids[-1]
        assert vectors.lower_bound(a, b) == pytest.approx(vectors.lower_bound(b, a))
        assert vectors.lower_bound(a, a) == 0.0

    def test_landmark_self_bound_is_exact(self, road, vectors):
        # For a landmark s, LB(s, v) == dist(s, v) exactly.
        landmark = vectors.landmarks[0]
        dist = dijkstra(road, landmark).dist
        for node in road.node_ids()[::20]:
            assert vectors.lower_bound(landmark, node) == pytest.approx(dist[node])

    def test_exact_lower_bound_helper(self):
        assert exact_lower_bound(np.array([1.0, 7.0]), np.array([9.0, 3.0])) == 8.0

    def test_unknown_node_rejected(self, vectors):
        with pytest.raises(GraphError):
            vectors.vector_of(10**9)

    def test_disconnected_rejected(self):
        from repro.graph.graph import SpatialGraph

        g = SpatialGraph()
        g.add_node(1)
        g.add_node(2)
        with pytest.raises(GraphError):
            LandmarkVectors(g, [1])

    def test_paper_figure5_example(self):
        # Figure 5b: Ψ over landmarks {v2, v7}; distLB(v3, v8) = 8.
        psi_v3 = np.array([1.0, 7.0])
        psi_v8 = np.array([9.0, 3.0])
        assert exact_lower_bound(psi_v3, psi_v8) == 8.0
