"""Strict artifact rejection: truncation, bit flips, wrong versions.

Every corrupted variant must be rejected with
:class:`~repro.errors.ArtifactError` and nothing else — artifacts cross
machines, so the loader is an attack surface exactly like the wire
decoders.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import ArtifactError
from repro.store import load_method
from repro.store.pack import ARTIFACT_MAGIC


@pytest.fixture(scope="module")
def artifact_bytes(artifact_paths):
    with open(artifact_paths["LDM"], "rb") as infile:
        return infile.read()


def _expect_rejection(tmp_path, data: bytes, label: str) -> None:
    path = str(tmp_path / "corrupt.rspv")
    with open(path, "wb") as out:
        out.write(data)
    try:
        load_method(path)
    except ArtifactError:
        return
    except Exception as exc:  # noqa: BLE001 — the assertion itself
        pytest.fail(f"{label}: untyped {type(exc).__name__}: {exc}")
    pytest.fail(f"{label}: corrupted artifact was accepted")


class TestTruncation:
    def test_every_prefix_is_rejected(self, artifact_bytes, tmp_path):
        length = len(artifact_bytes)
        cuts = {0, 1, len(ARTIFACT_MAGIC) - 1, len(ARTIFACT_MAGIC),
                20, 50, 200, length // 2, length - 1}
        for cut in sorted(c for c in cuts if c < length):
            _expect_rejection(tmp_path, artifact_bytes[:cut], f"cut@{cut}")

    def test_trailing_garbage_is_rejected(self, artifact_bytes, tmp_path):
        _expect_rejection(tmp_path, artifact_bytes + b"\x00" * 3, "trailing")


class TestBitFlips:
    def test_sampled_flips_everywhere(self, artifact_bytes, tmp_path):
        rng = random.Random(2010)
        length = len(artifact_bytes)
        # Dense coverage of the header, sampled coverage of the body.
        positions = set(range(0, min(length, 400), 7))
        positions.update(rng.randrange(length) for _ in range(120))
        for position in sorted(positions):
            flipped = bytearray(artifact_bytes)
            flipped[position] ^= 1 << rng.randrange(8)
            _expect_rejection(tmp_path, bytes(flipped), f"flip@{position}")


class TestWrongVersionsAndFiles:
    def test_not_an_artifact(self, tmp_path):
        _expect_rejection(tmp_path, b"definitely not an artifact", "garbage")

    def test_empty_file(self, tmp_path):
        _expect_rejection(tmp_path, b"", "empty")

    def test_missing_file_is_typed(self, tmp_path):
        with pytest.raises(ArtifactError):
            load_method(str(tmp_path / "missing.rspv"))

    def test_graph_file_is_not_an_artifact(self, tmp_path, road300):
        from repro.graph.io import write_graph

        path = str(tmp_path / "net.txt")
        write_graph(road300, path)
        with pytest.raises(ArtifactError):
            load_method(path)

    def test_future_format_version(self, artifact_bytes, tmp_path):
        # The varint after the magic is the container format version;
        # the current version encodes as one byte, so bumping that byte
        # crafts a well-formed future-version artifact.
        magic_len = len(ARTIFACT_MAGIC)
        assert artifact_bytes[magic_len] == 1
        data = (artifact_bytes[:magic_len] + b"\x02"
                + artifact_bytes[magic_len + 1:])
        _expect_rejection(tmp_path, data, "future-version")

    def test_random_noise_fuzz(self, tmp_path):
        rng = random.Random(7)
        for size in (1, 8, 64, 300):
            noise = bytes(rng.randrange(256) for _ in range(size))
            _expect_rejection(tmp_path, ARTIFACT_MAGIC + noise, f"noise{size}")
