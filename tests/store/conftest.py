"""Store-test fixtures: built methods and their packed artifacts."""

from __future__ import annotations

import pytest

from repro.core.dij import DijMethod
from repro.core.full import FullMethod
from repro.core.hyp import HypMethod
from repro.core.ldm import LdmMethod
from repro.crypto.signer import NullSigner
from repro.store import save_method
from repro.workload.queries import generate_workload

QUERY_RANGE = 1500.0

BUILDERS = {
    "DIJ": lambda graph, signer: DijMethod.build(graph, signer),
    "FULL": lambda graph, signer: FullMethod.build(graph, signer),
    "LDM": lambda graph, signer: LdmMethod.build(graph, signer, c=16),
    "HYP": lambda graph, signer: HypMethod.build(graph, signer, num_cells=16),
}


@pytest.fixture(scope="package")
def signer():
    return NullSigner()


@pytest.fixture(scope="package")
def workload(road300):
    return list(generate_workload(road300, QUERY_RANGE, count=6, seed=77))


@pytest.fixture(scope="package")
def built_methods(road300, signer):
    """One built method per name, each on its own graph copy.

    Copies keep the roundtrip tests free to mutate (live updates)
    without invalidating the session-scoped graph other tests share.
    """
    return {name: build(road300.copy(), signer)
            for name, build in BUILDERS.items()}


@pytest.fixture(scope="package")
def artifact_paths(built_methods, tmp_path_factory):
    """Packed artifact files, one per method."""
    root = tmp_path_factory.mktemp("artifacts")
    paths = {}
    for name, method in built_methods.items():
        path = root / f"{name.lower()}.rspv"
        save_method(method, str(path))
        paths[name] = str(path)
    return paths
