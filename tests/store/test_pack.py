"""The .rspv container: layout, parameter codec, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ArtifactError
from repro.store import (
    ArtifactReader,
    ArtifactWriter,
    decode_params,
    encode_params,
    save_method,
)
from repro.store.pack import SECTION_ALIGN, file_digest


def _writer(**overrides) -> ArtifactWriter:
    defaults = dict(method="DIJ", graph_version=7, algo_sp="dijkstra",
                    build_params={"fanout": 2}, publish_params={"fanout": 2},
                    descriptor_bytes=b"descriptor-bytes")
    defaults.update(overrides)
    return ArtifactWriter(**defaults)


class TestParamsCodec:
    def test_roundtrip_every_supported_type(self):
        params = {
            "fanout": 2,
            "xi": 50.0,
            "ordering": "hbt",
            "flag": True,
            "landmarks": (3, 1, 4),
            "plan": {10: 3, 7: 1},
        }
        decoded = decode_params(encode_params(params))
        assert decoded == params
        assert isinstance(decoded["landmarks"], tuple)
        assert isinstance(decoded["plan"], dict)

    def test_key_order_does_not_change_bytes(self):
        a = encode_params({"a": 1, "b": 2})
        b = encode_params({"b": 2, "a": 1})
        assert a == b

    def test_unsupported_type_is_typed(self):
        with pytest.raises(ArtifactError):
            encode_params({"bad": object()})

    def test_malformed_bytes_are_typed(self):
        blob = encode_params({"a": 1})
        for cut in range(len(blob)):
            try:
                decode_params(blob[:cut] + b"\xff")
            except ArtifactError:
                continue
            except Exception as exc:  # noqa: BLE001 — the assertion itself
                pytest.fail(f"cut {cut}: untyped {type(exc).__name__}: {exc}")


class TestPackLayout:
    def test_roundtrip_sections(self, tmp_path):
        writer = _writer()
        writer.add_bytes("blob/a", b"hello world")
        writer.add_array("arr/f", np.arange(12, dtype=np.float64).reshape(3, 4))
        writer.add_array("arr/i", np.arange(5, dtype=np.int32))
        path = str(tmp_path / "t.rspv")
        writer.write(path)

        reader = ArtifactReader(path)
        assert reader.method == "DIJ"
        assert reader.graph_version == 7
        assert reader.algo_sp == "dijkstra"
        assert reader.build_params == {"fanout": 2}
        assert reader.descriptor_bytes == b"descriptor-bytes"
        assert reader.bytes("blob/a") == b"hello world"
        np.testing.assert_array_equal(
            reader.array("arr/f"),
            np.arange(12, dtype=np.float64).reshape(3, 4))
        assert reader.array("arr/i").dtype == np.int32

    def test_sections_are_aligned(self, tmp_path):
        writer = _writer()
        writer.add_bytes("a", b"x")  # 1 byte forces padding before the next
        writer.add_array("b", np.arange(3, dtype=np.float64))
        path = str(tmp_path / "t.rspv")
        writer.write(path)
        reader = ArtifactReader(path)
        for info in reader.sections.values():
            assert info.offset % SECTION_ALIGN == 0

    def test_mmap_array_is_copy_on_write(self, tmp_path):
        writer = _writer()
        original = np.arange(6, dtype=np.float64)
        writer.add_array("m", original)
        path = str(tmp_path / "t.rspv")
        writer.write(path)
        reader = ArtifactReader(path, mmap_mode="c")
        arr = reader.array("m")
        arr[0] = 99.0  # private write, must not reach the file
        again = ArtifactReader(path).array("m")
        np.testing.assert_array_equal(again, original)

    def test_eager_mode_returns_writable_arrays(self, tmp_path):
        writer = _writer()
        writer.add_array("m", np.arange(4, dtype=np.int64))
        path = str(tmp_path / "t.rspv")
        writer.write(path)
        arr = ArtifactReader(path, mmap_mode=None).array("m")
        arr[0] = 5  # must not raise

    def test_duplicate_section_refused(self):
        writer = _writer()
        writer.add_bytes("a", b"x")
        with pytest.raises(ArtifactError):
            writer.add_bytes("a", b"y")

    def test_missing_section_is_typed(self, tmp_path):
        writer = _writer()
        path = str(tmp_path / "t.rspv")
        writer.write(path)
        reader = ArtifactReader(path)
        with pytest.raises(ArtifactError):
            reader.bytes("nope")
        with pytest.raises(ArtifactError):
            reader.array("nope")


class TestDeterminism:
    @pytest.mark.parametrize("name", ["DIJ", "FULL", "LDM", "HYP"])
    def test_same_build_packs_byte_identical(self, road300, signer,
                                             tmp_path, name):
        from tests.store.conftest import BUILDERS

        a = BUILDERS[name](road300.copy(), signer)
        b = BUILDERS[name](road300.copy(), signer)
        path_a = str(tmp_path / "a.rspv")
        path_b = str(tmp_path / "b.rspv")
        save_method(a, path_a)
        save_method(b, path_b)
        assert file_digest(path_a) == file_digest(path_b)

    def test_different_graph_changes_digest(self, road300, signer, tmp_path):
        from tests.store.conftest import BUILDERS

        a = BUILDERS["DIJ"](road300.copy(), signer)
        mutated = road300.copy()
        u, v, w = next(iter(mutated.edges()))
        mutated.update_edge_weight(u, v, w * 2)
        b = BUILDERS["DIJ"](mutated, signer)
        path_a = str(tmp_path / "a.rspv")
        path_b = str(tmp_path / "b.rspv")
        save_method(a, path_a)
        save_method(b, path_b)
        assert file_digest(path_a) != file_digest(path_b)
