"""Artifact-loaded methods must be indistinguishable from built ones.

The acceptance bar for the persistence layer: byte-identical
``SignedDescriptor`` and ``QueryResponse`` payloads versus the freshly
built method, for all four methods — before and after live updates —
plus full serving-stack compatibility (ProofServer, wire dispatcher).
"""

from __future__ import annotations

import pytest

from repro.core.method import get_method
from repro.service.server import ProofServer, UpdateRequest
from repro.store import load_method, save_method

METHOD_NAMES = ("DIJ", "FULL", "LDM", "HYP")


@pytest.mark.parametrize("name", METHOD_NAMES)
class TestByteIdentical:
    def test_descriptor_bytes(self, built_methods, artifact_paths, name):
        loaded = load_method(artifact_paths[name])
        assert loaded.descriptor.encode() == \
            built_methods[name].descriptor.encode()

    def test_responses(self, built_methods, artifact_paths, workload, name):
        loaded = load_method(artifact_paths[name])
        built = built_methods[name]
        for vs, vt in workload:
            assert loaded.answer(vs, vt).encode() == \
                built.answer(vs, vt).encode()

    def test_responses_verify(self, artifact_paths, workload, signer, name):
        loaded = load_method(artifact_paths[name])
        verifier = get_method(name)
        for vs, vt in workload:
            result = verifier.verify(vs, vt, loaded.answer(vs, vt),
                                     signer.verify)
            assert result.ok, (result.reason, result.detail)

    def test_eager_load_matches_mmap_load(self, artifact_paths, workload,
                                          name):
        mapped = load_method(artifact_paths[name], mmap=True)
        eager = load_method(artifact_paths[name], mmap=False)
        vs, vt = workload[0]
        assert mapped.answer(vs, vt).encode() == eager.answer(vs, vt).encode()

    def test_load_without_graph_or_signer(self, artifact_paths, name):
        """The artifact is self-contained: no graph file, no signer."""
        loaded = load_method(artifact_paths[name])
        assert loaded.graph.num_nodes > 0
        assert loaded.descriptor.version == loaded.graph.version

    def test_expect_method_guard(self, artifact_paths, name):
        from repro.errors import ArtifactError

        other = "FULL" if name != "FULL" else "DIJ"
        with pytest.raises(ArtifactError):
            load_method(artifact_paths[name], expect_method=other)


@pytest.mark.parametrize("name", METHOD_NAMES)
class TestUpdateComposition:
    """Updates compose with the PR-3 pipeline on artifact-backed methods."""

    def test_update_stays_byte_identical(self, artifact_paths, workload,
                                         signer, tmp_path, name):
        first = load_method(artifact_paths[name])
        second = load_method(artifact_paths[name])
        u, v, w = next(iter(first.graph.edges()))
        report_a = first.update_edge_weight(u, v, w * 1.25, signer)
        report_b = second.update_edge_weight(u, v, w * 1.25, signer)
        assert report_a.mode == report_b.mode
        assert first.descriptor.encode() == second.descriptor.encode()
        assert first.descriptor.version > 0
        for vs, vt in workload:
            assert first.answer(vs, vt).encode() == \
                second.answer(vs, vt).encode()

    def test_repack_after_update_bumps_version(self, artifact_paths, signer,
                                               tmp_path, name):
        """The owner flow: load, absorb updates, re-pack a new version."""
        method = load_method(artifact_paths[name])
        old_version = method.descriptor.version
        u, v, w = next(iter(method.graph.edges()))
        method.update_edge_weight(u, v, w * 1.5, signer)
        repacked = str(tmp_path / "next.rspv")
        save_method(method, repacked)
        fresh = load_method(repacked)
        assert fresh.descriptor.version > old_version
        assert fresh.descriptor.encode() == method.descriptor.encode()


@pytest.mark.parametrize("name", METHOD_NAMES)
class TestServingStack:
    def test_proof_server_from_artifact(self, artifact_paths, workload,
                                        signer, name):
        server = ProofServer.from_artifact(artifact_paths[name])
        verifier = get_method(name)
        vs, vt = workload[0]
        cold = server.answer(vs, vt)
        warm = server.answer(vs, vt)
        assert cold.ok and warm.ok and warm.cached
        assert verifier.verify(vs, vt, warm.response, signer.verify).ok
        snapshot = server.snapshot()
        assert snapshot.requests == 2
        assert snapshot.cache_entries == 1

    def test_server_updates_invalidate_cache(self, artifact_paths, workload,
                                             signer, name):
        server = ProofServer.from_artifact(artifact_paths[name])
        vs, vt = workload[0]
        before = server.answer(vs, vt)
        u, v, w = next(iter(server.method.graph.edges()))
        server.apply_updates(
            [UpdateRequest("update-weight", u, v, w * 1.1)], signer)
        after = server.answer(vs, vt)
        assert not after.cached
        assert after.response.descriptor.version > \
            before.response.descriptor.version

    def test_dispatcher_over_artifact(self, artifact_paths, workload, name):
        from repro.api.client import RemoteClient
        from repro.api.transport import InProcessTransport

        server = ProofServer.from_artifact(artifact_paths[name])
        # A serving box holds no key: a wire update push must be refused.
        dispatcher = server.dispatcher()
        transport = InProcessTransport(dispatcher)

        def accept_any(message, signature):  # trust anchor is out of scope
            return True

        client = RemoteClient(transport, accept_any)
        hello = client.hello()
        assert hello.method == name
        vs, vt = workload[0]
        assert client.query(vs, vt).response_bytes is not None
