"""One-way hash function wrapper.

The paper uses SHA-1 (the standard choice in 2010); we default to it so
that digest sizes — and therefore proof sizes in KBytes — are directly
comparable with the paper's measurements.  SHA-256 is available for
modern deployments; everything downstream only depends on
:attr:`HashFunction.digest_size`.

``"blake3"`` is accepted when the optional `blake3 wheel
<https://pypi.org/project/blake3/>`_ is importable — a much faster
construction-time primitive (the authenticated index hashes millions of
rows at build and re-hashes on every update), with a 32-byte digest so
proof sizes match sha256.  Without the wheel, asking for it raises a
:class:`~repro.errors.CryptoError` naming the dependency; nothing else
in this module changes, and sha1/sha256 digests stay byte-stable.
"""

from __future__ import annotations

import hashlib
from typing import Callable

from repro.errors import CryptoError

_SUPPORTED = {
    "sha1": 20,
    "sha256": 32,
    "sha512": 64,
    "blake3": 32,
}


def _blake3_factory() -> Callable:
    """The ``blake3.blake3`` constructor, or a typed refusal.

    The wheel is a Rust extension we cannot vendor; environments
    without it still get the full sha family, and the error tells the
    caller exactly what to install and what the portable fallback is.
    """
    try:
        import blake3
    except ImportError as exc:
        raise CryptoError(
            "hash 'blake3' needs the optional blake3 wheel "
            "(pip install blake3); sha256 is the portable fallback "
            "with the same 32-byte digest size"
        ) from exc
    return blake3.blake3


class HashFunction:
    """A named secure hash with convenience helpers.

    Instances are cheap and stateless; ``HashFunction("sha1")`` wraps
    :func:`hashlib.sha1`.

    >>> h = HashFunction("sha1")
    >>> h.digest(b"abc").hex()[:8]
    'a9993e36'
    """

    __slots__ = ("name", "digest_size", "factory")

    def __init__(self, name: str = "sha1") -> None:
        if name not in _SUPPORTED:
            raise CryptoError(
                f"unsupported hash {name!r}; choose from {sorted(_SUPPORTED)}"
            )
        self.name = name
        self.digest_size = _SUPPORTED[name]
        #: The raw digest constructor (``hashlib.sha1``,
        #: ``blake3.blake3``, …).  Hot loops hashing millions of items
        #: bind this directly — calling it avoids the Python-level
        #: indirection of :meth:`new`.  blake3 objects satisfy the same
        #: ``ctor(data)`` / ``update`` / ``digest`` surface hashlib
        #: objects do, so downstream code cannot tell them apart.
        self.factory: Callable = (_blake3_factory() if name == "blake3"
                                  else getattr(hashlib, name))

    def digest(self, *messages: bytes) -> bytes:
        """Hash the concatenation of *messages*.

        Concatenation implements the paper's ``H(a ◦ b ◦ ...)`` operator.
        """
        hasher = self.factory()
        for message in messages:
            hasher.update(message)
        return hasher.digest()

    def digest_int(self, *messages: bytes) -> int:
        """Hash and interpret the digest as a big-endian integer."""
        return int.from_bytes(self.digest(*messages), "big")

    def new(self, data: bytes = b""):
        """Return a raw hashlib object for incremental hashing.

        *data*, when given, is hashed immediately (one C call instead
        of a construct-then-update pair — the Merkle hot loops rely on
        this).
        """
        return self.factory(data)

    def __repr__(self) -> str:
        return f"HashFunction({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HashFunction) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("HashFunction", self.name))


def get_hash(name_or_fn: "str | HashFunction") -> HashFunction:
    """Coerce a name or an existing :class:`HashFunction` to an instance."""
    if isinstance(name_or_fn, HashFunction):
        return name_or_fn
    return HashFunction(name_or_fn)
