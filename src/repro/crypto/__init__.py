"""Cryptographic primitives: hash functions and pure-Python RSA signatures.

The paper relies on a one-way hash (SHA-1 in 2010) and a public-key
signature scheme (RSA).  Both are provided here with no dependencies
beyond the standard library: hashing wraps :mod:`hashlib`, and RSA is
implemented from scratch (Miller-Rabin prime generation and full-domain
-hash signatures) in :mod:`repro.crypto.rsa`.
"""

from repro.crypto.hashing import HashFunction, get_hash
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_keypair
from repro.crypto.signer import (
    NullSigner,
    RsaSigner,
    RsaVerifier,
    Signer,
    load_public_key,
    save_public_key,
)

__all__ = [
    "HashFunction",
    "get_hash",
    "RsaKeyPair",
    "RsaPublicKey",
    "generate_keypair",
    "Signer",
    "RsaSigner",
    "RsaVerifier",
    "NullSigner",
    "save_public_key",
    "load_public_key",
]
