"""Prime generation for RSA key pairs.

Implements deterministic trial division over small primes followed by
the Miller-Rabin probabilistic primality test.  A seeded
:class:`random.Random` makes key generation reproducible in tests.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import CryptoError

# Primes below 1000 for cheap pre-filtering of candidates.
_SMALL_PRIMES: list[int] = []


def _sieve(limit: int) -> list[int]:
    flags = bytearray([1]) * (limit + 1)
    flags[0:2] = b"\x00\x00"
    for i in range(2, int(limit**0.5) + 1):
        if flags[i]:
            flags[i * i :: i] = b"\x00" * len(flags[i * i :: i])
    return [i for i, flag in enumerate(flags) if flag]


def small_primes() -> list[int]:
    """Primes below 1000 (memoized)."""
    if not _SMALL_PRIMES:
        _SMALL_PRIMES.extend(_sieve(1000))
    return _SMALL_PRIMES


def is_probable_prime(n: int, rounds: int = 40, rng: Optional[random.Random] = None) -> bool:
    """Miller-Rabin primality test.

    With 40 rounds the error probability is below 2^-80, far beyond what
    this package needs.
    """
    if n < 2:
        return False
    for p in small_primes():
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or random.Random()
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime with exactly *bits* bits.

    The two top bits are forced to 1 so that the product of two such
    primes has exactly ``2 * bits`` bits.
    """
    if bits < 16:
        raise CryptoError(f"prime size too small: {bits} bits")
    for _ in range(100_000):
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate
    raise CryptoError(f"failed to find a {bits}-bit prime")  # pragma: no cover
