"""Pure-Python RSA signatures with full-domain hashing.

The data owner signs Merkle roots (more precisely, a *method
descriptor* digest, see :mod:`repro.core.proofs`); clients verify with
the owner's public key.  The scheme here is textbook RSA over a
full-domain hash: the message digest is expanded with an MGF1-style
counter construction to the width of the modulus, which avoids the
malleability of raw ``pow(digest, d, n)`` on short digests.

This is a from-scratch implementation intended for a research
reproduction: it is correct and adequately hard to forge, but it makes
no claims about side-channel resistance.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.crypto.hashing import HashFunction, get_hash
from repro.crypto.primes import generate_prime
from repro.errors import CryptoError

DEFAULT_KEY_BITS = 1024
_PUBLIC_EXPONENT = 65537


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def modulus_bytes(self) -> int:
        """Size of the modulus (and of every signature) in bytes."""
        return (self.n.bit_length() + 7) // 8


@dataclass(frozen=True)
class RsaKeyPair:
    """An RSA key pair; keep ``d`` private."""

    public: RsaPublicKey
    d: int


def generate_keypair(bits: int = DEFAULT_KEY_BITS, seed: int | None = None) -> RsaKeyPair:
    """Generate an RSA key pair with a *bits*-bit modulus.

    ``seed`` makes generation deterministic (useful in tests); leave it
    ``None`` for an OS-seeded RNG.
    """
    if bits < 256:
        raise CryptoError(f"modulus too small: {bits} bits")
    rng = random.Random(seed) if seed is not None else random.SystemRandom()
    # random.SystemRandom lacks getrandbits determinism concerns; both expose
    # the same interface used by generate_prime.
    while True:
        p = generate_prime(bits // 2, rng)
        q = generate_prime(bits - bits // 2, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if math.gcd(_PUBLIC_EXPONENT, phi) != 1:
            continue
        d = pow(_PUBLIC_EXPONENT, -1, phi)
        return RsaKeyPair(public=RsaPublicKey(n=n, e=_PUBLIC_EXPONENT), d=d)


def _full_domain_hash(message: bytes, n: int, hash_fn: HashFunction) -> int:
    """Expand ``H(message)`` to an integer slightly below *n* (MGF1 style)."""
    target_bytes = (n.bit_length() + 7) // 8
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < target_bytes:
        blocks.append(hash_fn.digest(counter.to_bytes(4, "big"), message))
        counter += 1
    expanded = b"".join(blocks)[:target_bytes]
    # Clear the top byte so the value is guaranteed to be below n.
    value = int.from_bytes(b"\x00" + expanded[1:], "big")
    return value


def sign(message: bytes, keypair: RsaKeyPair, hash_fn: "str | HashFunction" = "sha1") -> bytes:
    """Sign *message* and return a fixed-width signature."""
    hash_fn = get_hash(hash_fn)
    public = keypair.public
    m = _full_domain_hash(message, public.n, hash_fn)
    sig = pow(m, keypair.d, public.n)
    return sig.to_bytes(public.modulus_bytes, "big")


def verify(
    message: bytes,
    signature: bytes,
    public: RsaPublicKey,
    hash_fn: "str | HashFunction" = "sha1",
) -> bool:
    """Check *signature* over *message* against *public*; never raises."""
    hash_fn = get_hash(hash_fn)
    if len(signature) != public.modulus_bytes:
        return False
    sig = int.from_bytes(signature, "big")
    if sig >= public.n:
        return False
    recovered = pow(sig, public.e, public.n)
    expected = _full_domain_hash(message, public.n, hash_fn)
    return recovered == expected
