"""Signer/verifier abstraction used by the verification framework.

The owner signs with a :class:`Signer`; the proof carries the signature
and clients verify against the owner's public key.  :class:`NullSigner`
exists for benchmarks that want to isolate Merkle/search costs from RSA
cost — it still has a nonzero "signature" so size accounting stays
honest (a real deployment always ships one signature per proof).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.crypto import rsa
from repro.crypto.hashing import HashFunction, get_hash
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey


class Signer(ABC):
    """Abstract signature scheme with a public verification side."""

    @abstractmethod
    def sign(self, message: bytes) -> bytes:
        """Produce a signature over *message*."""

    @abstractmethod
    def verify(self, message: bytes, signature: bytes) -> bool:
        """Check a signature; must never raise on malformed input."""

    @property
    @abstractmethod
    def signature_size(self) -> int:
        """Signature size in bytes (used for proof-size accounting)."""


class RsaSigner(Signer):
    """RSA full-domain-hash signer (see :mod:`repro.crypto.rsa`)."""

    def __init__(
        self,
        keypair: RsaKeyPair | None = None,
        *,
        bits: int = rsa.DEFAULT_KEY_BITS,
        seed: int | None = None,
        hash_fn: "str | HashFunction" = "sha1",
    ) -> None:
        self._keypair = keypair or rsa.generate_keypair(bits, seed=seed)
        self._hash = get_hash(hash_fn)

    @property
    def public_key(self) -> RsaPublicKey:
        """The owner's public key, distributed out of band to clients."""
        return self._keypair.public

    def sign(self, message: bytes) -> bytes:
        return rsa.sign(message, self._keypair, self._hash)

    def verify(self, message: bytes, signature: bytes) -> bool:
        return rsa.verify(message, signature, self._keypair.public, self._hash)

    @property
    def signature_size(self) -> int:
        return self._keypair.public.modulus_bytes

    def verifier_for_public_key(self) -> "RsaVerifier":
        """A verify-only view safe to hand to clients."""
        return RsaVerifier(self._keypair.public, self._hash)


class RsaVerifier:
    """Verify-only counterpart of :class:`RsaSigner` (no private key)."""

    def __init__(self, public: RsaPublicKey, hash_fn: "str | HashFunction" = "sha1") -> None:
        self._public = public
        self._hash = get_hash(hash_fn)

    def verify(self, message: bytes, signature: bytes) -> bool:
        return rsa.verify(message, signature, self._public, self._hash)


class NullSigner(Signer):
    """HMAC-free stand-in signer for micro-benchmarks.

    Uses a keyed hash so that honest-vs-tampered tests still work, while
    skipping modular exponentiation.  The "signature" is padded to
    *signature_size* bytes to keep communication-size accounting
    comparable with :class:`RsaSigner`.
    """

    def __init__(self, key: bytes = b"repro-null-signer", signature_size: int = 128) -> None:
        self._key = key
        self._size = signature_size
        self._hash = get_hash("sha256")

    def sign(self, message: bytes) -> bytes:
        mac = self._hash.digest(self._key, message)
        return mac.ljust(self._size, b"\x00")[: self._size]

    def verify(self, message: bytes, signature: bytes) -> bool:
        return signature == self.sign(message)

    @property
    def signature_size(self) -> int:
        return self._size
