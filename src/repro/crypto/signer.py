"""Signer/verifier abstraction used by the verification framework.

The owner signs with a :class:`Signer`; the proof carries the signature
and clients verify against the owner's public key.  :class:`NullSigner`
exists for benchmarks that want to isolate Merkle/search costs from RSA
cost — it still has a nonzero "signature" so size accounting stays
honest (a real deployment always ships one signature per proof).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.crypto import rsa
from repro.crypto.hashing import HashFunction, get_hash
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey
from repro.errors import CryptoError


class Signer(ABC):
    """Abstract signature scheme with a public verification side."""

    @abstractmethod
    def sign(self, message: bytes) -> bytes:
        """Produce a signature over *message*."""

    @abstractmethod
    def verify(self, message: bytes, signature: bytes) -> bool:
        """Check a signature; must never raise on malformed input."""

    @property
    @abstractmethod
    def signature_size(self) -> int:
        """Signature size in bytes (used for proof-size accounting)."""


class RsaSigner(Signer):
    """RSA full-domain-hash signer (see :mod:`repro.crypto.rsa`)."""

    def __init__(
        self,
        keypair: RsaKeyPair | None = None,
        *,
        bits: int = rsa.DEFAULT_KEY_BITS,
        seed: int | None = None,
        hash_fn: "str | HashFunction" = "sha1",
    ) -> None:
        self._keypair = keypair or rsa.generate_keypair(bits, seed=seed)
        self._hash = get_hash(hash_fn)

    @property
    def public_key(self) -> RsaPublicKey:
        """The owner's public key, distributed out of band to clients."""
        return self._keypair.public

    def sign(self, message: bytes) -> bytes:
        return rsa.sign(message, self._keypair, self._hash)

    def verify(self, message: bytes, signature: bytes) -> bool:
        return rsa.verify(message, signature, self._keypair.public, self._hash)

    @property
    def signature_size(self) -> int:
        return self._keypair.public.modulus_bytes

    def verifier_for_public_key(self) -> "RsaVerifier":
        """A verify-only view safe to hand to clients."""
        return RsaVerifier(self._keypair.public, self._hash)


class RsaVerifier:
    """Verify-only counterpart of :class:`RsaSigner` (no private key)."""

    def __init__(self, public: RsaPublicKey, hash_fn: "str | HashFunction" = "sha1") -> None:
        self._public = public
        self._hash = get_hash(hash_fn)

    def verify(self, message: bytes, signature: bytes) -> bool:
        return rsa.verify(message, signature, self._public, self._hash)


def save_public_key(signer: "Signer | RsaVerifier", path: str) -> None:
    """Write a signer's *public* verification material to a text file.

    The file is what a data owner distributes out of band alongside
    the descriptor version: ``repro-spv verify`` loads it to check
    response artifacts without any live Python objects.  Format is one
    whitespace-separated line:

    * ``rsa <hash> <n hex> <e hex>`` — an RSA public key;
    * ``null <key hex> <size>`` — the keyed-hash stub (shared-key MAC,
      only for ``--insecure`` benchmark flows; the "public" file then
      contains the MAC key, which is the stub's documented trade-off).

    No private material is ever written for RSA signers.
    """
    if isinstance(signer, RsaSigner):
        public = signer.public_key
        line = f"rsa {signer._hash.name} {public.n:x} {public.e:x}"
    elif isinstance(signer, RsaVerifier):
        line = f"rsa {signer._hash.name} {signer._public.n:x} {signer._public.e:x}"
    elif isinstance(signer, NullSigner):
        line = f"null {signer._key.hex()} {signer._size}"
    else:
        raise CryptoError(
            f"cannot serialize a public key for {type(signer).__name__}"
        )
    with open(path, "w", encoding="utf-8") as out:
        out.write(line + "\n")


def load_public_key(path: str) -> "RsaVerifier | NullSigner":
    """Load verification material written by :func:`save_public_key`.

    Returns an object with ``verify(message, signature) -> bool`` —
    hand its ``verify`` to a :class:`~repro.core.framework.Client`.
    """
    with open(path, "r", encoding="utf-8") as infile:
        fields = infile.read().split()
    try:
        kind = fields[0]
        if kind == "rsa":
            hash_name, n_hex, e_hex = fields[1:4]
            return RsaVerifier(RsaPublicKey(n=int(n_hex, 16), e=int(e_hex, 16)),
                               hash_fn=hash_name)
        if kind == "null":
            key_hex, size = fields[1:3]
            return NullSigner(bytes.fromhex(key_hex), signature_size=int(size))
    except (IndexError, ValueError) as exc:
        raise CryptoError(f"malformed public key file {path!r}: {exc}") from exc
    raise CryptoError(f"unknown public key kind {kind!r} in {path!r}")


class NullSigner(Signer):
    """HMAC-free stand-in signer for micro-benchmarks.

    Uses a keyed hash so that honest-vs-tampered tests still work, while
    skipping modular exponentiation.  The "signature" is padded to
    *signature_size* bytes to keep communication-size accounting
    comparable with :class:`RsaSigner`.
    """

    def __init__(self, key: bytes = b"repro-null-signer", signature_size: int = 128) -> None:
        self._key = key
        self._size = signature_size
        self._hash = get_hash("sha256")

    def sign(self, message: bytes) -> bytes:
        mac = self._hash.digest(self._key, message)
        return mac.ljust(self._size, b"\x00")[: self._size]

    def verify(self, message: bytes, signature: bytes) -> bool:
        return signature == self.sign(message)

    @property
    def signature_size(self) -> int:
        return self._size
