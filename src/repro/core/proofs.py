"""Proof containers: signed descriptor, tree sections, query response.

A :class:`QueryResponse` is everything the service provider sends back
for one query (Algorithm 1's outputs): the result path, the shortest
path proof ΓS (tuple payloads per authenticated structure), and the
integrity proof ΓT (Merkle hash entries per structure), together with
the owner's *signed descriptor*.

The descriptor binds, under one owner signature, everything a client
must trust a priori: method name, hash function, the method parameters
(e.g. λ for LDM, the grid geometry for HYP), and for every ADS its
name, leaf count, fanout and Merkle root.  The provider cannot alter
any of these without breaking the signature.

Size accounting follows the paper's split:

* ``S-prf`` — the shortest path proof: tuple payloads and their leaf
  positions, plus the reported path itself;
* ``T-prf`` — the integrity proof: Merkle hash entries, the descriptor
  and the signature.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.encoding import Decoder, Encoder
from repro.errors import EncodingError
from repro.merkle.proof import MerkleProofEntry, decode_proof_entries, encode_proof_entries

#: Canonical ADS names used across methods.
NETWORK_TREE = "network"
DISTANCE_TREE = "distance"
DIRECTORY_TREE = "directory"


@dataclass(frozen=True)
class TreeConfig:
    """Signed per-ADS metadata: shape and root digest."""

    name: str
    num_leaves: int
    fanout: int
    root: bytes


@dataclass(frozen=True)
class SignedDescriptor:
    """Owner-signed binding of method, parameters, version and ADS roots.

    ``version`` is the graph mutation counter the descriptor was signed
    at.  It is part of the signed message, so a provider replaying a
    response from before an update cannot hide that the proof speaks
    about a superseded network: a client that has learned the owner's
    current version (out of band, like the public key) rejects any
    older descriptor (see ``min_version`` in
    :func:`repro.core.checks.verify_descriptor`).
    """

    method: str
    hash_name: str
    params: bytes
    trees: tuple[TreeConfig, ...]
    version: int = 0
    signature: bytes = b""

    def message(self) -> bytes:
        """The byte string the owner signs (everything but the signature)."""
        enc = Encoder()
        enc.write_str(self.method).write_str(self.hash_name)
        enc.write_uint(self.version)
        enc.write_bytes(self.params)
        enc.write_uint(len(self.trees))
        for tree in self.trees:
            enc.write_str(tree.name)
            enc.write_uint(tree.num_leaves)
            enc.write_uint(tree.fanout)
            enc.write_bytes(tree.root)
        return enc.getvalue()

    def with_signature(self, signature: bytes) -> "SignedDescriptor":
        """A copy carrying the owner's signature."""
        return SignedDescriptor(self.method, self.hash_name, self.params,
                                self.trees, self.version, signature)

    def tree(self, name: str) -> TreeConfig:
        """Look up an ADS by name."""
        for tree in self.trees:
            if tree.name == name:
                return tree
        raise EncodingError(f"descriptor has no tree {name!r}")

    def has_tree(self, name: str) -> bool:
        """Whether the descriptor includes an ADS called *name*."""
        return any(tree.name == name for tree in self.trees)

    def encode(self) -> bytes:
        """Full encoding including the signature."""
        enc = Encoder()
        enc.write_bytes(self.message())
        enc.write_bytes(self.signature)
        return enc.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "SignedDescriptor":
        """Inverse of :meth:`encode`.

        Strict: raises :class:`~repro.errors.EncodingError` — and only
        that — on truncated, oversized or garbage input.  Descriptors
        arrive over the wire from an untrusted provider, so the decoder
        must never surface a raw ``IndexError``/``struct.error`` (and
        must reject impossible counts before trusting them).
        """
        outer = Decoder(bytes(data))
        message = outer.read_bytes()
        signature = outer.read_bytes()
        outer.expect_end()
        dec = Decoder(message)
        method = dec.read_str()
        hash_name = dec.read_str()
        version = dec.read_uint()
        params = dec.read_bytes()
        trees = tuple(
            TreeConfig(dec.read_str(), dec.read_uint(), dec.read_uint(), dec.read_bytes())
            # A tree config occupies at least four bytes (name length,
            # leaf count, fanout, root length).
            for _ in range(dec.read_count(4))
        )
        dec.expect_end()
        return cls(method, hash_name, params, trees, version, signature)


@dataclass
class TreeSection:
    """ΓS + ΓT material for one authenticated structure.

    ``positions[i]`` is the leaf index of ``payloads[i]``; ``entries``
    are the Merkle cover digests.
    """

    tree: str
    positions: list[int]
    payloads: list[bytes]
    entries: list[MerkleProofEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.positions) != len(self.payloads):
            raise EncodingError(
                f"section {self.tree!r}: {len(self.positions)} positions vs "
                f"{len(self.payloads)} payloads"
            )
        if len(set(self.positions)) != len(self.positions):
            raise EncodingError(f"section {self.tree!r}: duplicate leaf positions")

    def leaf_map(self) -> dict[int, bytes]:
        """``{leaf position: payload}`` for root reconstruction."""
        return dict(zip(self.positions, self.payloads))

    # -- size accounting ------------------------------------------------
    def s_prf_bytes(self) -> int:
        """Bytes attributable to the shortest path proof."""
        enc = Encoder()
        enc.write_uint_seq(self.positions)
        for payload in self.payloads:
            enc.write_bytes(payload)
        return len(enc)

    def t_prf_bytes(self) -> int:
        """Bytes attributable to the integrity proof."""
        enc = Encoder()
        encode_proof_entries(self.entries, enc)
        return len(enc)


@dataclass
class ProofSizes:
    """Communication overhead breakdown (paper Fig. 8a)."""

    s_prf_bytes: int
    t_prf_bytes: int
    path_bytes: int
    s_items: int
    t_items: int

    @property
    def total_bytes(self) -> int:
        """Total communication overhead in bytes."""
        return self.s_prf_bytes + self.t_prf_bytes + self.path_bytes

    @property
    def total_kbytes(self) -> float:
        """Total communication overhead in KBytes."""
        return self.total_bytes / 1024.0


@dataclass
class QueryResponse:
    """The provider's complete answer to a shortest path query."""

    method: str
    source: int
    target: int
    path_nodes: tuple[int, ...]
    path_cost: float
    sections: dict[str, TreeSection]
    descriptor: SignedDescriptor

    def section(self, name: str) -> TreeSection:
        """Fetch a section by ADS name."""
        try:
            return self.sections[name]
        except KeyError:
            raise EncodingError(f"response has no section {name!r}") from None

    # -- wire format ----------------------------------------------------
    def encode(self) -> bytes:
        """Serialize the full response (also the size ground truth)."""
        enc = Encoder()
        enc.write_str(self.method)
        enc.write_uint(self.source).write_uint(self.target)
        enc.write_uint_seq(self.path_nodes)
        enc.write_f64(self.path_cost)
        enc.write_uint(len(self.sections))
        for name in sorted(self.sections):
            section = self.sections[name]
            enc.write_str(name)
            enc.write_uint_seq(section.positions)
            enc.write_uint(len(section.payloads))
            for payload in section.payloads:
                enc.write_bytes(payload)
            encode_proof_entries(section.entries, enc)
        enc.write_bytes(self.descriptor.encode())
        return enc.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "QueryResponse":
        """Inverse of :meth:`encode`.

        This is the client's entire attack surface for response bytes,
        so decoding is strict: every malformation — truncation, counts
        exceeding the bytes present, duplicate sections or positions,
        trailing garbage — raises a typed
        :class:`~repro.errors.EncodingError`; nothing else escapes.
        """
        dec = Decoder(bytes(data))
        method = dec.read_str()
        source = dec.read_uint()
        target = dec.read_uint()
        path_nodes = tuple(dec.read_uint_seq())
        path_cost = dec.read_f64()
        sections: dict[str, TreeSection] = {}
        # A section occupies at least four bytes (name length, positions
        # count, payloads count, entries count).
        for _ in range(dec.read_count(4)):
            name = dec.read_str()
            positions = dec.read_uint_seq()
            payloads = [dec.read_bytes() for _ in range(dec.read_count(1))]
            entries = decode_proof_entries(dec)
            if name in sections:
                raise EncodingError(f"duplicate section {name!r}")
            sections[name] = TreeSection(name, positions, payloads, entries)
        descriptor = SignedDescriptor.decode(dec.read_bytes())
        dec.expect_end()
        return cls(method, source, target, path_nodes, path_cost, sections, descriptor)

    # -- accounting -----------------------------------------------------
    def sizes(self) -> ProofSizes:
        """Communication overhead breakdown (S-prf / T-prf / path)."""
        s_bytes = sum(s.s_prf_bytes() for s in self.sections.values())
        t_bytes = sum(s.t_prf_bytes() for s in self.sections.values())
        t_bytes += len(self.descriptor.encode())
        path_enc = Encoder()
        path_enc.write_uint_seq(self.path_nodes)
        path_enc.write_f64(self.path_cost)
        return ProofSizes(
            s_prf_bytes=s_bytes,
            t_prf_bytes=t_bytes,
            path_bytes=len(path_enc),
            s_items=sum(len(s.payloads) for s in self.sections.values()),
            t_items=sum(len(s.entries) for s in self.sections.values()),
        )
