"""Proof-size estimation model (the paper's stated future work).

The paper closes with: *"A promising future direction is to develop a
model for estimating the proof size for shortest path verification."*
This module implements such a model.  A data owner can use it to pick
a method and parameters *before* paying for hint construction; a
provider can use it for capacity planning.

The model combines

* a **ball profile** — the expected number of nodes within graph
  distance ``r`` of a random source, and the expected hop count of a
  shortest path of length ``r``, both estimated from a handful of
  cheap Dijkstra samples;
* **tuple statistics** — the mean encoded size of Φ(v) per method,
  measured exactly from the graph and the method parameters;
* a **Merkle cover model** — the expected number of ΓT digests for
  disclosing ``k`` of ``n`` leaves arranged in ``ρ`` contiguous-ish
  runs of a proximity-preserving order:
  ``cover ≈ ρ · (f-1) · max(1, log_f(n) - log_f(k/ρ))``.

Accuracy target (validated in the test suite): within a small constant
factor (~2x) of the measured proof size across methods and ranges —
good enough to rank methods and size links, which is what a sizing
model is for.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import MethodError
from repro.graph.graph import SpatialGraph
from repro.graph.tuples import BaseTuple
from repro.shortestpath.dijkstra import dijkstra

#: Digest size for SHA-1; parameterized in the entry points.
_DEFAULT_DIGEST = 20
#: Encoded size of one f64 + one varint id, roughly.
_DISTANCE_TUPLE_BYTES = 13
#: Fixed envelope: descriptor, signature, path ids.
_ENVELOPE_BYTES = 400


@dataclass(frozen=True)
class BallProfile:
    """Sampled distance structure of a graph.

    ``radii``/``ball_sizes`` tabulate the expected metric ball size;
    ``mean_hop_weight`` is the average edge weight along shortest
    paths, used to convert a range into an expected hop count.
    """

    radii: tuple[float, ...]
    ball_sizes: tuple[float, ...]
    mean_hop_weight: float
    num_nodes: int

    @classmethod
    def sample(cls, graph: SpatialGraph, *, num_sources: int = 8,
               seed: int = 0) -> "BallProfile":
        """Estimate the profile from ``num_sources`` full Dijkstra runs."""
        ids = graph.node_ids()
        if not ids:
            raise MethodError("cannot profile an empty graph")
        rng = random.Random(seed)
        sources = [ids[rng.randrange(len(ids))] for _ in range(num_sources)]
        all_sorted: list[list[float]] = []
        hop_weights: list[float] = []
        for source in sources:
            result = dijkstra(graph, source)
            dists = sorted(result.dist.values())
            all_sorted.append(dists)
            # Depth of a handful of far nodes gives the mean hop weight.
            for node in list(result.dist)[-5:]:
                depth = 0
                cursor = node
                while cursor != source:
                    cursor = result.parent[cursor]
                    depth += 1
                if depth:
                    hop_weights.append(result.dist[node] / depth)
        diameter = max(d[-1] for d in all_sorted)
        radii = tuple(diameter * i / 40 for i in range(1, 41))
        sizes = []
        for r in radii:
            counts = [_count_leq(d, r) for d in all_sorted]
            sizes.append(sum(counts) / len(counts))
        mean_hop = sum(hop_weights) / len(hop_weights) if hop_weights else 1.0
        return cls(radii=radii, ball_sizes=tuple(sizes),
                   mean_hop_weight=mean_hop, num_nodes=len(ids))

    def ball(self, radius: float) -> float:
        """Expected number of nodes within *radius* of a random source."""
        if radius <= 0:
            return 1.0
        if radius >= self.radii[-1]:
            return self.ball_sizes[-1]
        # Linear interpolation on the tabulated profile.
        for i, r in enumerate(self.radii):
            if radius <= r:
                if i == 0:
                    return self.ball_sizes[0] * radius / r
                r0, r1 = self.radii[i - 1], r
                s0, s1 = self.ball_sizes[i - 1], self.ball_sizes[i]
                t = (radius - r0) / (r1 - r0)
                return s0 + t * (s1 - s0)
        return self.ball_sizes[-1]  # pragma: no cover

    def path_hops(self, distance: float) -> float:
        """Expected hop count of a shortest path of length *distance*."""
        return max(1.0, distance / self.mean_hop_weight)


def _count_leq(sorted_values: "list[float]", threshold: float) -> int:
    from bisect import bisect_right

    return bisect_right(sorted_values, threshold)


def cover_digests(disclosed: float, runs: float, leaves: int, fanout: int) -> float:
    """Expected ΓT digest count for a clustered disclosure set."""
    if leaves <= 1 or disclosed <= 0:
        return 0.0
    disclosed = min(disclosed, leaves)
    runs = max(1.0, min(runs, disclosed))
    run_len = disclosed / runs
    depth_total = math.log(leaves, fanout)
    depth_within = math.log(max(run_len, 1.0), fanout)
    per_run = (fanout - 1) * max(1.0, depth_total - depth_within)
    return runs * per_run


def mean_tuple_bytes(graph: SpatialGraph, *, sample: int = 200,
                     vector_bytes: float = 0.0, seed: int = 0) -> float:
    """Mean encoded Φ(v) size, plus any per-tuple vector payload."""
    ids = graph.node_ids()
    rng = random.Random(seed)
    chosen = [ids[rng.randrange(len(ids))] for _ in range(min(sample, len(ids)))]
    sizes = [len(BaseTuple.from_graph(graph, v).encode()) for v in chosen]
    return sum(sizes) / len(sizes) + vector_bytes


@dataclass
class ProofSizeModel:
    """Per-method proof size predictions in bytes.

    Build once per (graph, parameters) via :meth:`for_graph`, then call
    :meth:`predict` for any query range.  ``digest`` is the hash size
    in bytes; ``fanout`` the Merkle fanout.
    """

    profile: BallProfile
    phi_bytes: float
    fanout: int
    digest: int
    num_nodes: int
    # LDM: fraction of the Dijkstra ball surviving the A* pruning, and
    # fraction of nodes whose vectors compress away (both calibrated on
    # DCW-like networks with farthest landmarks; see tests).
    ldm_c: int = 100
    ldm_bits: int = 12
    ldm_compression_ratio: float = 0.3
    ldm_pruning: float = 0.12
    # HYP: fraction of a cell's nodes that are border nodes at p=100 on
    # chain-heavy road networks.
    hyp_cells: int = 100
    hyp_border_fraction: float = 0.25

    @classmethod
    def for_graph(cls, graph: SpatialGraph, *, fanout: int = 2,
                  digest: int = _DEFAULT_DIGEST, ldm_c: int = 100,
                  ldm_bits: int = 12, hyp_cells: int = 100,
                  seed: int = 0) -> "ProofSizeModel":
        """Profile *graph* and return a ready model."""
        profile = BallProfile.sample(graph, seed=seed)
        return cls(
            profile=profile,
            phi_bytes=mean_tuple_bytes(graph, seed=seed),
            fanout=fanout,
            digest=digest,
            num_nodes=graph.num_nodes,
            ldm_c=ldm_c,
            ldm_bits=ldm_bits,
            hyp_cells=hyp_cells,
        )

    # ------------------------------------------------------------------
    def _network_cover_bytes(self, disclosed: float, runs: float) -> float:
        return self.digest * cover_digests(disclosed, runs,
                                           self.num_nodes, self.fanout)

    def predict(self, method: str, query_range: float) -> float:
        """Predicted total proof bytes for one query at *query_range*."""
        try:
            fn = {
                "DIJ": self._predict_dij,
                "FULL": self._predict_full,
                "LDM": self._predict_ldm,
                "HYP": self._predict_hyp,
            }[method]
        except KeyError:
            raise MethodError(f"unknown method {method!r}") from None
        return fn(query_range)

    def _predict_dij(self, r: float) -> float:
        ball = self.profile.ball(r)
        # The ball is spatially compact: a proximity-preserving leaf
        # order packs it into roughly sqrt-ball runs.
        runs = max(1.0, math.sqrt(ball))
        return (ball * self.phi_bytes
                + self._network_cover_bytes(ball, runs)
                + _ENVELOPE_BYTES)

    def _predict_full(self, r: float) -> float:
        hops = self.profile.path_hops(r)
        pairs = self.num_nodes * (self.num_nodes - 1) / 2
        dist_cover = self.digest * cover_digests(1, 1, max(2, int(pairs)),
                                                 self.fanout)
        return (hops * self.phi_bytes                      # path tuples
                + self._network_cover_bytes(hops, max(1.0, hops / 4))
                + _DISTANCE_TUPLE_BYTES + dist_cover
                + _ENVELOPE_BYTES)

    def _predict_ldm(self, r: float) -> float:
        cone = max(self.profile.path_hops(r),
                   self.profile.ball(r) * self.ldm_pruning)
        vector_bytes = self.ldm_c * self.ldm_bits / 8
        uncompressed = 1.0 - self.ldm_compression_ratio
        per_tuple = self.phi_bytes + uncompressed * vector_bytes + 6
        runs = max(1.0, math.sqrt(cone))
        return (cone * per_tuple
                + self._network_cover_bytes(cone, runs)
                + _ENVELOPE_BYTES)

    def _predict_hyp(self, r: float) -> float:
        cell_nodes = self.num_nodes / self.hyp_cells
        borders = max(1.0, cell_nodes * self.hyp_border_fraction)
        cross_pairs = borders * borders
        hops = self.profile.path_hops(r)
        intermediate = max(0.0, hops - cell_nodes / 2)
        disclosed = 2 * cell_nodes + intermediate
        total_borders = self.num_nodes * self.hyp_border_fraction
        hyper_leaves = max(2.0, total_borders * (total_borders - 1) / 2)
        hyper_cover = self.digest * cover_digests(
            cross_pairs, cross_pairs, int(hyper_leaves), self.fanout
        )
        return (disclosed * self.phi_bytes
                + cross_pairs * _DISTANCE_TUPLE_BYTES
                + hyper_cover
                + self._network_cover_bytes(disclosed, 2 + intermediate / 4)
                + _ENVELOPE_BYTES)

    def rank(self, query_range: float) -> "list[tuple[str, float]]":
        """Methods sorted by predicted proof size (ascending)."""
        names = ("DIJ", "FULL", "LDM", "HYP")
        return sorted(((n, self.predict(n, query_range)) for n in names),
                      key=lambda pair: pair[1])
