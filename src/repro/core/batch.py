"""Batch proofs: one Merkle cover for many queries.

A navigation provider answers bursts of queries from the same client
(e.g. a delivery fleet's morning dispatch).  The subgraph methods (DIJ,
LDM) disclose overlapping tuple sets for nearby queries, so shipping
one *combined* section — the union of the per-query disclosure sets
under a single Merkle cover — is strictly smaller than concatenating
individual responses whenever the queries overlap at all.

Soundness is unchanged: the union is a superset of every per-query
disclosure set, and both client searches (Lemma 1 Dijkstra, Lemma 2
A*) remain sound on supersets — extra authentic tuples can only be
ignored or confirm the optimum, never manufacture a shorter phantom
path, and the missing-node rules still fire because each query's
required set is contained in the union.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.framework import VerificationResult
from repro.core.method import (
    BATCHABLE_METHODS,
    SignatureVerifier,
    VerificationMethod,
    get_method,
)
from repro.core.proofs import NETWORK_TREE, QueryResponse, SignedDescriptor, TreeSection
from repro.encoding import Decoder, Encoder
from repro.errors import MethodError
from repro.merkle.proof import decode_proof_entries, encode_proof_entries

#: Methods whose ΓS is a subgraph disclosure (where unioning pays).
#: Defined next to the method base class so
#: :attr:`~repro.core.method.VerificationMethod.supports_batching` can
#: share it without a circular import.
BATCHABLE = BATCHABLE_METHODS


@dataclass
class BatchResponse:
    """Provider answer for several queries with one shared ΓT."""

    method: str
    queries: tuple[tuple[int, int], ...]
    paths: tuple[tuple[int, ...], ...]
    costs: tuple[float, ...]
    section: TreeSection
    descriptor: SignedDescriptor

    def response_for(self, index: int) -> QueryResponse:
        """Materialize the *index*-th query as a standalone response.

        All per-query responses share the same (superset) section; see
        the module docstring for why that preserves soundness.
        """
        vs, vt = self.queries[index]
        return QueryResponse(
            method=self.method,
            source=vs,
            target=vt,
            path_nodes=self.paths[index],
            path_cost=self.costs[index],
            sections={NETWORK_TREE: self.section},
            descriptor=self.descriptor,
        )

    # -- wire format ----------------------------------------------------
    def encode(self) -> bytes:
        """Serialize (the ground truth for size accounting)."""
        enc = Encoder()
        enc.write_str(self.method)
        enc.write_uint(len(self.queries))
        for (vs, vt), path, cost in zip(self.queries, self.paths, self.costs):
            enc.write_uint(vs).write_uint(vt)
            enc.write_uint_seq(path)
            enc.write_f64(cost)
        enc.write_uint_seq(self.section.positions)
        enc.write_uint(len(self.section.payloads))
        for payload in self.section.payloads:
            enc.write_bytes(payload)
        encode_proof_entries(self.section.entries, enc)
        enc.write_bytes(self.descriptor.encode())
        return enc.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "BatchResponse":
        """Inverse of :meth:`encode`."""
        dec = Decoder(data)
        method = dec.read_str()
        count = dec.read_uint()
        queries = []
        paths = []
        costs = []
        for _ in range(count):
            queries.append((dec.read_uint(), dec.read_uint()))
            paths.append(tuple(dec.read_uint_seq()))
            costs.append(dec.read_f64())
        positions = dec.read_uint_seq()
        payloads = [dec.read_bytes() for _ in range(dec.read_uint())]
        entries = decode_proof_entries(dec)
        descriptor = SignedDescriptor.decode(dec.read_bytes())
        dec.expect_end()
        return cls(method, tuple(queries), tuple(paths), tuple(costs),
                   TreeSection(NETWORK_TREE, positions, payloads, entries),
                   descriptor)

    @property
    def total_bytes(self) -> int:
        """Wire size of the whole batch."""
        return len(self.encode())


def combine_responses(
    method: VerificationMethod,
    queries: "list[tuple[int, int]]",
    responses: "list[QueryResponse]",
) -> BatchResponse:
    """Union already-computed per-query responses under one Merkle cover.

    Lets a serving layer that has standalone responses in hand (e.g. for
    caching) assemble the combined wire object without re-running the
    per-query searches.
    """
    if method.name not in BATCHABLE:
        raise MethodError(
            f"{method.name} proofs are already near-constant size; batching "
            f"supports the subgraph methods {BATCHABLE}"
        )
    if not queries:
        raise MethodError("empty query batch")
    if len(queries) != len(responses):
        raise MethodError(
            f"{len(queries)} queries vs {len(responses)} responses"
        )
    all_positions: set[int] = set()
    for response in responses:
        all_positions.update(response.section(NETWORK_TREE).positions)
    bundle = method._bundle
    positions = sorted(all_positions)
    order = bundle.order
    payloads = [bundle.payload_of[order[pos]] for pos in positions]
    entries = bundle.tree.prove(positions)
    section = TreeSection(NETWORK_TREE, positions, payloads, entries)
    return BatchResponse(
        method=method.name,
        queries=tuple(queries),
        paths=tuple(r.path_nodes for r in responses),
        costs=tuple(r.path_cost for r in responses),
        section=section,
        descriptor=method.descriptor,
    )


def answer_batch(method: VerificationMethod,
                 queries: "list[tuple[int, int]]") -> BatchResponse:
    """Provider role: answer all *queries* under one combined section."""
    if method.name not in BATCHABLE:
        raise MethodError(
            f"{method.name} proofs are already near-constant size; batching "
            f"supports the subgraph methods {BATCHABLE}"
        )
    if not queries:
        raise MethodError("empty query batch")
    responses = [method.answer(vs, vt) for vs, vt in queries]
    return combine_responses(method, queries, responses)


def verify_batch(batch: BatchResponse,
                 verify_signature: SignatureVerifier, *,
                 min_version: "int | None" = None) -> "list[VerificationResult]":
    """Client role: verify every query in the batch.

    Returns one :class:`VerificationResult` per query, in order.  The
    shared Merkle cover is checked as part of the first verification
    and implicitly revalidated by each (the section object is shared).
    ``min_version`` is the client's freshness floor, exactly as in the
    per-response ``verify``: a replayed pre-update batch is authentic
    byte for byte, so only version pinning rejects it.
    """
    verifier = get_method(batch.method)
    results = []
    for index, (vs, vt) in enumerate(batch.queries):
        response = batch.response_for(index)
        results.append(verifier.verify(vs, vt, response, verify_signature,
                                       min_version=min_version))
    return results
