"""Batch proofs: one Merkle cover for many queries.

A navigation provider answers bursts of queries from the same client
(e.g. a delivery fleet's morning dispatch).  The subgraph methods (DIJ,
LDM) disclose overlapping tuple sets for nearby queries, so shipping
one *combined* section — the union of the per-query disclosure sets
under a single Merkle cover — is strictly smaller than concatenating
individual responses whenever the queries overlap at all.

Soundness is unchanged: the union is a superset of every per-query
disclosure set, and both client searches (Lemma 1 Dijkstra, Lemma 2
A*) remain sound on supersets — extra authentic tuples can only be
ignored or confirm the optimum, never manufacture a shorter phantom
path, and the missing-node rules still fire because each query's
required set is contained in the union.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.framework import VerificationResult
from repro.core.method import (
    BATCHABLE_METHODS,
    SignatureVerifier,
    VerificationMethod,
    get_method,
)
from repro.core.proofs import NETWORK_TREE, QueryResponse, SignedDescriptor, TreeSection
from repro.encoding import Decoder, Encoder
from repro.errors import EncodingError, MethodError
from repro.merkle.multiproof import expand_multi, merge_entries
from repro.merkle.proof import decode_proof_entries, encode_proof_entries

#: Methods whose ΓS is a subgraph disclosure (where unioning pays).
#: Defined next to the method base class so
#: :attr:`~repro.core.method.VerificationMethod.supports_batching` can
#: share it without a circular import.
BATCHABLE = BATCHABLE_METHODS


@dataclass
class BatchResponse:
    """Provider answer for several queries with one shared ΓT."""

    method: str
    queries: tuple[tuple[int, int], ...]
    paths: tuple[tuple[int, ...], ...]
    costs: tuple[float, ...]
    section: TreeSection
    descriptor: SignedDescriptor

    def response_for(self, index: int) -> QueryResponse:
        """Materialize the *index*-th query as a standalone response.

        All per-query responses share the same (superset) section; see
        the module docstring for why that preserves soundness.
        """
        vs, vt = self.queries[index]
        return QueryResponse(
            method=self.method,
            source=vs,
            target=vt,
            path_nodes=self.paths[index],
            path_cost=self.costs[index],
            sections={NETWORK_TREE: self.section},
            descriptor=self.descriptor,
        )

    # -- wire format ----------------------------------------------------
    def encode(self) -> bytes:
        """Serialize (the ground truth for size accounting)."""
        enc = Encoder()
        enc.write_str(self.method)
        enc.write_uint(len(self.queries))
        for (vs, vt), path, cost in zip(self.queries, self.paths, self.costs):
            enc.write_uint(vs).write_uint(vt)
            enc.write_uint_seq(path)
            enc.write_f64(cost)
        enc.write_uint_seq(self.section.positions)
        enc.write_uint(len(self.section.payloads))
        for payload in self.section.payloads:
            enc.write_bytes(payload)
        encode_proof_entries(self.section.entries, enc)
        enc.write_bytes(self.descriptor.encode())
        return enc.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "BatchResponse":
        """Inverse of :meth:`encode`."""
        dec = Decoder(data)
        method = dec.read_str()
        count = dec.read_uint()
        queries = []
        paths = []
        costs = []
        for _ in range(count):
            queries.append((dec.read_uint(), dec.read_uint()))
            paths.append(tuple(dec.read_uint_seq()))
            costs.append(dec.read_f64())
        positions = dec.read_uint_seq()
        payloads = [dec.read_bytes() for _ in range(dec.read_uint())]
        entries = decode_proof_entries(dec)
        descriptor = SignedDescriptor.decode(dec.read_bytes())
        dec.expect_end()
        return cls(method, tuple(queries), tuple(paths), tuple(costs),
                   TreeSection(NETWORK_TREE, positions, payloads, entries),
                   descriptor)

    @property
    def total_bytes(self) -> int:
        """Wire size of the whole batch."""
        return len(self.encode())


def combine_responses(
    method: VerificationMethod,
    queries: "list[tuple[int, int]]",
    responses: "list[QueryResponse]",
) -> BatchResponse:
    """Union already-computed per-query responses under one Merkle cover.

    Lets a serving layer that has standalone responses in hand (e.g. for
    caching) assemble the combined wire object without re-running the
    per-query searches.
    """
    if method.name not in BATCHABLE:
        raise MethodError(
            f"{method.name} proofs are already near-constant size; batching "
            f"supports the subgraph methods {BATCHABLE}"
        )
    if not queries:
        raise MethodError("empty query batch")
    if len(queries) != len(responses):
        raise MethodError(
            f"{len(queries)} queries vs {len(responses)} responses"
        )
    all_positions: set[int] = set()
    for response in responses:
        all_positions.update(response.section(NETWORK_TREE).positions)
    bundle = method._bundle
    positions = sorted(all_positions)
    order = bundle.order
    payloads = [bundle.payload_of[order[pos]] for pos in positions]
    entries = bundle.tree.prove(positions)
    section = TreeSection(NETWORK_TREE, positions, payloads, entries)
    return BatchResponse(
        method=method.name,
        queries=tuple(queries),
        paths=tuple(r.path_nodes for r in responses),
        costs=tuple(r.path_cost for r in responses),
        section=section,
        descriptor=method.descriptor,
    )


def answer_batch(method: VerificationMethod,
                 queries: "list[tuple[int, int]]") -> BatchResponse:
    """Provider role: answer all *queries* under one combined section."""
    if method.name not in BATCHABLE:
        raise MethodError(
            f"{method.name} proofs are already near-constant size; batching "
            f"supports the subgraph methods {BATCHABLE}"
        )
    if not queries:
        raise MethodError("empty query batch")
    responses = [method.answer(vs, vt) for vs, vt in queries]
    return combine_responses(method, queries, responses)


@dataclass
class MultiProofBatch:
    """k query answers sharing one Merkle multiproof per ADS.

    Unlike :class:`BatchResponse` — which hands every query the same
    *superset* section and is therefore limited to the subgraph methods
    whose verification tolerates supersets — a multiproof batch keeps
    each query's exact disclosure set (``query_positions``) and ships
    the deduplicated union material once per tree.  The client expands
    it back into per-query standalone responses that are byte-identical
    to independently served ones
    (:func:`~repro.merkle.multiproof.expand_multi`), so *every* method's
    unchanged per-query ``verify`` applies, FULL's exactly-one-distance-
    tuple check included.
    """

    method: str
    queries: tuple[tuple[int, int], ...]
    paths: tuple[tuple[int, ...], ...]
    costs: tuple[float, ...]
    #: Per query: ``((tree name, leaf positions), ...)`` sorted by name.
    query_positions: tuple[tuple[tuple[str, tuple[int, ...]], ...], ...]
    #: Per tree name: the union disclosure under one shared cover.
    shared: dict[str, TreeSection]
    descriptor: SignedDescriptor

    # -- wire format ----------------------------------------------------
    def encode(self) -> bytes:
        """Serialize (the ground truth for size accounting)."""
        enc = Encoder()
        enc.write_str(self.method)
        enc.write_uint(len(self.queries))
        for index, ((vs, vt), path, cost) in enumerate(
                zip(self.queries, self.paths, self.costs)):
            enc.write_uint(vs).write_uint(vt)
            enc.write_uint_seq(path)
            enc.write_f64(cost)
            trees = self.query_positions[index]
            enc.write_uint(len(trees))
            for name, positions in trees:
                enc.write_str(name)
                enc.write_uint_seq(positions)
        enc.write_uint(len(self.shared))
        for name in sorted(self.shared):
            section = self.shared[name]
            enc.write_str(name)
            enc.write_uint_seq(section.positions)
            enc.write_uint(len(section.payloads))
            for payload in section.payloads:
                enc.write_bytes(payload)
            encode_proof_entries(section.entries, enc)
        enc.write_bytes(self.descriptor.encode())
        return enc.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "MultiProofBatch":
        """Inverse of :meth:`encode`.

        Strict like :meth:`QueryResponse.decode`: the blob arrives from
        an untrusted provider, so every malformation raises a typed
        :class:`~repro.errors.EncodingError`.
        """
        dec = Decoder(bytes(data))
        method = dec.read_str()
        queries = []
        paths = []
        costs = []
        query_positions = []
        # A query occupies at least 12 bytes (vs, vt, path count, eight
        # cost bytes, tree count).
        for _ in range(dec.read_count(12)):
            queries.append((dec.read_uint(), dec.read_uint()))
            paths.append(tuple(dec.read_uint_seq()))
            costs.append(dec.read_f64())
            trees = []
            for _ in range(dec.read_count(2)):
                trees.append((dec.read_str(), tuple(dec.read_uint_seq())))
            query_positions.append(tuple(trees))
        shared: dict[str, TreeSection] = {}
        for _ in range(dec.read_count(4)):
            name = dec.read_str()
            positions = dec.read_uint_seq()
            payloads = [dec.read_bytes() for _ in range(dec.read_count(1))]
            entries = decode_proof_entries(dec)
            if name in shared:
                raise EncodingError(f"duplicate shared section {name!r}")
            shared[name] = TreeSection(name, positions, payloads, entries)
        descriptor = SignedDescriptor.decode(dec.read_bytes())
        dec.expect_end()
        return cls(method, tuple(queries), tuple(paths), tuple(costs),
                   tuple(query_positions), shared, descriptor)

    @property
    def total_bytes(self) -> int:
        """Wire size of the whole batch."""
        return len(self.encode())


def combine_multiproof(
    queries: "list[tuple[int, int]]",
    responses: "list[QueryResponse]",
) -> MultiProofBatch:
    """Fold already-served standalone responses into one multiproof batch.

    Works purely from the responses — no tree access — because the
    union cover is a subset of the union of the per-query covers
    (:func:`~repro.merkle.multiproof.merge_entries`).  That makes it
    usable by any serving layer holding (possibly cached) responses,
    for every method, artifact-loaded ones included.

    Raises :class:`MethodError` when the responses disagree — different
    methods or descriptor versions (a mid-batch update race), payload
    conflicts — in which case the caller falls back to independent
    responses.
    """
    if not queries:
        raise MethodError("empty query batch")
    if len(queries) != len(responses):
        raise MethodError(
            f"{len(queries)} queries vs {len(responses)} responses"
        )
    first = responses[0]
    for (vs, vt), response in zip(queries, responses):
        if (response.source, response.target) != (vs, vt):
            raise MethodError(
                f"response for ({response.source}, {response.target}) "
                f"does not answer query ({vs}, {vt})"
            )
        if response.method != first.method:
            raise MethodError(
                f"mixed methods in batch: {first.method} vs {response.method}"
            )
        if response.descriptor != first.descriptor:
            raise MethodError(
                "responses span different descriptor versions; "
                "cannot share one multiproof"
            )
    descriptor = first.descriptor

    union_positions: dict[str, set] = {}
    payload_at: dict[str, dict[int, bytes]] = {}
    pooled: dict[str, dict[tuple[int, int], bytes]] = {}
    for response in responses:
        for name, section in response.sections.items():
            positions = union_positions.setdefault(name, set())
            payloads = payload_at.setdefault(name, {})
            digests = pooled.setdefault(name, {})
            positions.update(section.positions)
            for position, payload in zip(section.positions, section.payloads):
                known = payloads.get(position)
                if known is not None and known != payload:
                    raise MethodError(
                        f"section {name!r}: conflicting payloads for "
                        f"leaf {position}"
                    )
                payloads[position] = payload
            for entry in section.entries:
                digests[(entry.level, entry.index)] = entry.digest

    shared: dict[str, TreeSection] = {}
    for name, positions in union_positions.items():
        config = descriptor.tree(name)
        union = sorted(positions)
        entries = merge_entries(config.num_leaves, config.fanout,
                                union, pooled[name])
        shared[name] = TreeSection(
            name, union, [payload_at[name][p] for p in union], entries)

    return MultiProofBatch(
        method=first.method,
        queries=tuple(queries),
        paths=tuple(r.path_nodes for r in responses),
        costs=tuple(r.path_cost for r in responses),
        query_positions=tuple(
            tuple((name, tuple(r.sections[name].positions))
                  for name in sorted(r.sections))
            for r in responses
        ),
        shared=shared,
        descriptor=descriptor,
    )


def recover_responses(batch: MultiProofBatch) -> "list[QueryResponse]":
    """Expand a multiproof batch back into standalone responses.

    The client-side inverse of :func:`combine_multiproof`: for each
    tree, the union reconstruction recovers every digest any per-query
    cover needs, and each query gets its exact section back — on an
    honest batch, byte-identical to the independently served response,
    so the per-query ``verify`` path downstream is unchanged.  Tampered
    payloads or shared digests flow into wrong recovered roots and fail
    verification there; *structural* damage (missing digests, covers
    that cannot be recovered) raises a typed
    :class:`~repro.errors.MerkleError` here.
    """
    descriptor = batch.descriptor
    count = len(batch.queries)
    if not (len(batch.paths) == len(batch.costs)
            == len(batch.query_positions) == count):
        raise MethodError("multiproof batch arrays disagree in length")

    # Per tree: which queries disclose it, and with which leaf sets.
    covers_for: dict[str, dict[int, list]] = {}
    for name, section in batch.shared.items():
        users: list[int] = []
        leaf_sets: list[tuple[int, ...]] = []
        for index in range(count):
            for tree_name, positions in batch.query_positions[index]:
                if tree_name == name:
                    users.append(index)
                    leaf_sets.append(positions)
        if not users:
            continue
        config = descriptor.tree(name)
        _root, covers = expand_multi(
            config.num_leaves, config.fanout, descriptor.hash_name,
            section.leaf_map(), section.entries, leaf_sets)
        covers_for[name] = dict(zip(users, covers))

    responses: list[QueryResponse] = []
    for index in range(count):
        vs, vt = batch.queries[index]
        sections: dict[str, TreeSection] = {}
        for name, positions in batch.query_positions[index]:
            shared = batch.shared.get(name)
            if shared is None:
                raise MethodError(
                    f"query {index} references missing shared section {name!r}"
                )
            payload_of = shared.leaf_map()
            try:
                payloads = [payload_of[p] for p in positions]
            except KeyError as exc:
                raise MethodError(
                    f"section {name!r}: query {index} references leaf "
                    f"{exc.args[0]} outside the shared disclosure"
                ) from None
            sections[name] = TreeSection(
                name, list(positions), payloads, covers_for[name][index])
        responses.append(QueryResponse(
            method=batch.method,
            source=vs,
            target=vt,
            path_nodes=batch.paths[index],
            path_cost=batch.costs[index],
            sections=sections,
            descriptor=descriptor,
        ))
    return responses


def verify_batch(batch: BatchResponse,
                 verify_signature: SignatureVerifier, *,
                 min_version: "int | None" = None) -> "list[VerificationResult]":
    """Client role: verify every query in the batch.

    Returns one :class:`VerificationResult` per query, in order.  The
    shared Merkle cover is checked as part of the first verification
    and implicitly revalidated by each (the section object is shared).
    ``min_version`` is the client's freshness floor, exactly as in the
    per-response ``verify``: a replayed pre-update batch is authentic
    byte for byte, so only version pinning rejects it.
    """
    verifier = get_method(batch.method)
    results = []
    for index, (vs, vt) in enumerate(batch.queries):
        response = batch.response_for(index)
        results.append(verifier.verify(vs, vt, response, verify_signature,
                                       min_version=min_version))
    return results
