"""Three-party framework: data owner, service provider, client.

Thin role objects that mirror Figure 2 of the paper, plus the
verification outcome type and the floating point comparison policy
shared by all methods.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.api import codes
from repro.crypto.signer import RsaSigner, Signer
from repro.errors import EncodingError, MethodError
from repro.graph.graph import SpatialGraph

#: Relative/absolute tolerances for distance equality.  Provider and
#: client sum float64 edge weights in different orders, so exact
#: equality is too strict; 1e-9 relative is far below any meaningful
#: weight difference yet far above accumulated rounding error.
REL_TOL = 1e-9
ABS_TOL = 1e-6


def distances_close(a: float, b: float) -> bool:
    """Whether two path distances should be considered equal."""
    return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=ABS_TOL)


def definitely_greater(a: float, b: float) -> bool:
    """Whether ``a > b`` beyond float noise."""
    return a > b + max(ABS_TOL, REL_TOL * max(abs(a), abs(b)))


@dataclass
class VerificationResult:
    """Outcome of client-side verification.

    ``ok`` is the verdict; ``reason`` is a short machine-friendly code
    (e.g. ``"root-mismatch"``), ``detail`` a human-readable expansion.
    Failures are values, not exceptions: a client facing a malicious
    provider needs a verdict, not a stack trace.
    """

    ok: bool
    reason: str = "ok"
    detail: str = ""
    checks: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.ok

    @classmethod
    def success(cls, **checks) -> "VerificationResult":
        """An accepting result, optionally recording check values."""
        return cls(ok=True, checks=checks)

    @classmethod
    def failure(cls, reason: str, detail: str = "") -> "VerificationResult":
        """A rejecting result with a reason code."""
        return cls(ok=False, reason=reason, detail=detail)


class DataOwner:
    """The trusted authority holding the original graph and the keys."""

    def __init__(self, graph: SpatialGraph, signer: "Signer | None" = None) -> None:
        self.graph = graph
        self.signer = signer if signer is not None else RsaSigner()

    def publish(self, method: str = "LDM", **params):
        """Build a verification method instance ready for outsourcing.

        Returns the built :class:`~repro.core.method.VerificationMethod`;
        hand it to a :class:`ServiceProvider`.  Keyword arguments are
        method parameters (``fanout``, ``ordering``, and per-method
        extras such as ``c``/``bits``/``xi`` or ``num_cells``).
        """
        from repro.core.method import get_method

        cls = get_method(method)
        return cls.build(self.graph, self.signer, **params)


class ServiceProvider:
    """The third party answering queries with proofs."""

    def __init__(self, method) -> None:
        self.method = method

    def answer(self, source: int, target: int):
        """Algorithm 1: compute the path, ΓS and ΓT."""
        return self.method.answer(source, target)


class Client:
    """A query client holding only the owner's public key.

    The client is *bytes-first*: the canonical entry point is
    :meth:`verify_bytes`, which takes the provider's response exactly
    as it crossed the wire and never requires — or creates — any
    provider-side object.  :meth:`verify` remains as the historical
    shim and accepts either bytes or an already-decoded
    :class:`~repro.core.proofs.QueryResponse`.

    All rejection paths report reason codes from the shared taxonomy
    (:mod:`repro.api.codes`), the same registry the wire protocol's
    error envelopes draw from.
    """

    def __init__(self, verify_signature,
                 min_descriptor_version: "int | None" = None) -> None:
        """``verify_signature(message, signature) -> bool``.

        Pass ``signer.verify`` or an
        :class:`~repro.crypto.signer.RsaVerifier` bound to the owner's
        public key.  ``min_descriptor_version`` is the freshness floor
        the owner announces alongside the key: when set, any response
        signed under an older graph version is rejected as a
        stale-proof replay (reason ``stale-descriptor``).
        """
        self.verify_signature = verify_signature
        self.min_descriptor_version = min_descriptor_version

    def require_version(self, version: int) -> None:
        """Raise the freshness floor (called after an owner update).

        Monotonic: a late or out-of-order announcement for an older
        version must not re-admit replays the client already rejects.
        """
        current = self.min_descriptor_version or 0
        self.min_descriptor_version = max(current, version)

    def verify_bytes(self, source: int, target: int,
                     data: bytes) -> VerificationResult:
        """Verify a serialized provider response for ``(source, target)``.

        This is the three-party model made literal: *data* is whatever
        arrived over the wire, and undecodable bytes are a verdict
        (reason ``malformed-response``), not an exception — a client
        facing a malicious provider needs an answer either way.
        """
        from repro.core.proofs import QueryResponse

        try:
            response = QueryResponse.decode(data)
        except EncodingError as exc:
            return VerificationResult.failure(
                codes.MALFORMED_RESPONSE,
                f"response bytes do not decode: {exc}",
            )
        return self._verify_decoded(source, target, response)

    def verify(self, source: int, target: int, response) -> VerificationResult:
        """Verify a provider response for the query ``(source, target)``.

        Shim over :meth:`verify_bytes`: *response* may be the raw wire
        bytes or a decoded :class:`~repro.core.proofs.QueryResponse`
        (the pre-wire-API signature, kept for in-process callers).
        """
        if isinstance(response, (bytes, bytearray, memoryview)):
            return self.verify_bytes(source, target, bytes(response))
        return self._verify_decoded(source, target, response)

    def _verify_decoded(self, source: int, target: int,
                        response) -> VerificationResult:
        from repro.core.method import get_method

        try:
            cls = get_method(response.method)
        except MethodError:
            return VerificationResult.failure(
                codes.UNKNOWN_METHOD,
                f"method {response.method!r} is not recognized",
            )
        return cls.verify(source, target, response, self.verify_signature,
                          min_version=self.min_descriptor_version)
