"""Shared client-side verification steps and owner-side tree building.

Every method's ``verify`` runs the same skeleton: check the descriptor
signature, reconstruct each Merkle root from ΓS + ΓT, decode the
extended tuples, and validate the reported path against authenticated
adjacency.  Those steps live here; method files contain only the
method-specific shortest path reasoning.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Callable, Mapping, Type

from repro.api import codes
from repro.core.framework import VerificationResult, distances_close
from repro.core.proofs import NETWORK_TREE, QueryResponse, SignedDescriptor, TreeSection
from repro.crypto.signer import Signer
from repro.errors import EncodingError, MerkleError
from repro.graph.graph import SpatialGraph
from repro.graph.tuples import BaseTuple
from repro.merkle.tree import MerkleTree, reconstruct_root
from repro.order import order_nodes


def verify_descriptor(
    expected_method: str,
    response: QueryResponse,
    verify_signature: Callable[[bytes, bytes], bool],
    *,
    min_version: "int | None" = None,
) -> "VerificationResult | None":
    """Signature, method-name and freshness checks; ``None`` means pass.

    ``min_version`` is the freshness floor: a client that has learned
    the owner's current descriptor version (distributed out of band,
    like the public key) passes it here, and any response whose
    descriptor predates it is rejected as a stale-proof replay — the
    signature is genuine, but it signs a superseded network.
    """
    descriptor = response.descriptor
    if response.method != expected_method or descriptor.method != expected_method:
        return VerificationResult.failure(
            codes.METHOD_MISMATCH,
            f"expected {expected_method}, response says {response.method!r} "
            f"with descriptor {descriptor.method!r}",
        )
    if not verify_signature(descriptor.message(), descriptor.signature):
        return VerificationResult.failure(
            codes.BAD_SIGNATURE, "owner signature on the descriptor does not verify"
        )
    if min_version is not None and descriptor.version < min_version:
        return VerificationResult.failure(
            codes.STALE_DESCRIPTOR,
            f"descriptor version {descriptor.version} predates the required "
            f"minimum {min_version} (stale-proof replay)",
        )
    return None


def verify_section_root(
    descriptor: SignedDescriptor,
    section: TreeSection,
) -> "VerificationResult | None":
    """Reconstruct one ADS root from ΓS + ΓT and compare with the signed root."""
    try:
        config = descriptor.tree(section.tree)
    except EncodingError:
        return VerificationResult.failure(
            codes.UNKNOWN_TREE, f"descriptor does not cover tree {section.tree!r}"
        )
    try:
        root = reconstruct_root(
            config.num_leaves,
            config.fanout,
            descriptor.hash_name,
            section.leaf_map(),
            section.entries,
        )
    except (MerkleError, EncodingError) as exc:
        return VerificationResult.failure(
            codes.MALFORMED_PROOF, f"tree {section.tree!r}: {exc}"
        )
    if root != config.root:
        return VerificationResult.failure(
            codes.ROOT_MISMATCH,
            f"tree {section.tree!r}: reconstructed root does not match the signed root",
        )
    return None


def decode_tuples(section: TreeSection, tuple_cls: Type[BaseTuple]) -> dict[int, BaseTuple]:
    """Decode a section's payloads as extended tuples, keyed by node id.

    Raises :class:`EncodingError` on malformed payloads or duplicate
    node ids (a provider must never present two tuples for one node).
    """
    tuples: dict[int, BaseTuple] = {}
    for payload in section.payloads:
        tup = tuple_cls.decode(payload)
        if tup.node_id in tuples:
            raise EncodingError(f"duplicate extended tuple for node {tup.node_id}")
        tuples[tup.node_id] = tup
    return tuples


def adjacency_weight(tup: BaseTuple, neighbor: int) -> "float | None":
    """Edge weight listed in Φ for *neighbor*, or ``None`` when absent.

    O(log degree): canonical tuples keep Φ sorted by neighbor id, so a
    bisect replaces the old linear scan — long reported paths through
    high-degree hubs verify in O(path · log degree).  For adversarial
    payloads that violate the canonical order the probe may miss an
    entry, which can only *reject* such a response (never accept a
    weight that is not present), so soundness is unaffected.
    """
    adjacency = tup.adjacency
    pos = bisect_left(adjacency, (neighbor,))
    if pos < len(adjacency) and adjacency[pos][0] == neighbor:
        return adjacency[pos][1]
    return None


def check_reported_path(
    source: int,
    target: int,
    response: QueryResponse,
    tuples: Mapping[int, BaseTuple],
) -> "VerificationResult | None":
    """Validate the reported path against authenticated adjacency.

    Checks: endpoints match the query, every path node is covered by an
    authenticated Φ, every consecutive pair is a real edge, and the sum
    of authenticated weights equals the reported cost.
    """
    nodes = response.path_nodes
    if not nodes:
        return VerificationResult.failure(codes.EMPTY_PATH, "response contains no path")
    if nodes[0] != source or nodes[-1] != target:
        return VerificationResult.failure(
            codes.ENDPOINT_MISMATCH,
            f"path runs {nodes[0]} -> {nodes[-1]}, query was {source} -> {target}",
        )
    if len(set(nodes)) != len(nodes):
        return VerificationResult.failure(codes.PATH_CYCLE, "reported path repeats a node")
    cost = 0.0
    for u, v in zip(nodes, nodes[1:]):
        tup = tuples.get(u)
        if tup is None:
            return VerificationResult.failure(
                codes.PATH_NODE_MISSING, f"no authenticated tuple for path node {u}"
            )
        w = adjacency_weight(tup, v)
        if w is None:
            return VerificationResult.failure(
                codes.PHANTOM_EDGE, f"edge ({u}, {v}) is not in the authenticated graph"
            )
        cost += w
    if nodes[-1] not in tuples:
        return VerificationResult.failure(
            codes.PATH_NODE_MISSING, f"no authenticated tuple for path node {nodes[-1]}"
        )
    if not distances_close(cost, response.path_cost):
        return VerificationResult.failure(
            codes.COST_MISMATCH,
            f"authenticated path cost {cost} != reported {response.path_cost}",
        )
    return None


# ----------------------------------------------------------------------
# Owner-side helpers
# ----------------------------------------------------------------------
class NetworkTreeBundle:
    """Owner/provider state for one graph-node Merkle tree.

    Holds the leaf order, each node's leaf position, the encoded Φ
    payloads and the tree itself.  Payloads are kept both id-keyed
    (``payload_of``, the owner-facing view) and as a position-indexed
    array (``payload_at``), so the per-query section assembly sorts
    plain integer positions and indexes a list — no dict-keyed sorting
    on the server cold path.
    """

    __slots__ = ("tree", "order", "position_of", "payload_of", "payload_at",
                 "build_seconds", "ordering", "_tuple_factory")

    def __init__(
        self,
        graph: SpatialGraph,
        tuple_factory: Callable[[int], BaseTuple],
        *,
        ordering: str = "hbt",
        fanout: int = 2,
        hash_name: str = "sha1",
    ) -> None:
        start = time.perf_counter()
        self._tuple_factory = tuple_factory
        self.ordering = ordering
        graph.to_index()  # warm the compiled layout before serving starts
        self.order = order_nodes(graph, ordering)
        #: Leaf payloads by leaf position (the hot, array-indexed view).
        self.payload_at: list[bytes] = [
            tuple_factory(node_id).encode() for node_id in self.order
        ]
        self.payload_of: dict[int, bytes] = dict(zip(self.order, self.payload_at))
        self.position_of = {node_id: i for i, node_id in enumerate(self.order)}
        self.tree = MerkleTree(
            self.payload_at, fanout=fanout, hash_fn=hash_name,
        )
        self.build_seconds = time.perf_counter() - start

    @classmethod
    def from_state(
        cls,
        graph: SpatialGraph,
        tuple_factory: Callable[[int], BaseTuple],
        *,
        ordering: str,
        order: "list[int]",
        payloads: "list[bytes]",
        tree: MerkleTree,
    ) -> "NetworkTreeBundle":
        """Rehydrate a bundle from persisted serve state.

        Installs the leaf order, the encoded Φ payloads and the Merkle
        tree verbatim — nothing is re-encoded or re-hashed, which is
        what makes artifact cold-start cheap.  The *tuple_factory* is
        only exercised by later live updates; serving never calls it.
        Raises :class:`~repro.errors.ArtifactError` when order,
        payloads and tree disagree about the leaf count.
        """
        from repro.errors import ArtifactError

        if not (len(order) == len(payloads) == tree.num_leaves):
            raise ArtifactError(
                f"bundle state disagrees on its leaf count: {len(order)} "
                f"order entries, {len(payloads)} payloads, "
                f"{tree.num_leaves} tree leaves"
            )
        bundle = cls.__new__(cls)
        bundle._tuple_factory = tuple_factory
        bundle.ordering = ordering
        graph.to_index()  # warm the compiled layout before serving starts
        bundle.order = list(order)
        bundle.payload_at = list(payloads)
        bundle.payload_of = dict(zip(bundle.order, bundle.payload_at))
        bundle.position_of = {node_id: i for i, node_id in enumerate(bundle.order)}
        bundle.tree = tree
        bundle.build_seconds = 0.0
        return bundle

    def section_for(self, node_ids) -> TreeSection:
        """ΓS + ΓT section disclosing Φ for *node_ids*."""
        position_of = self.position_of
        positions = sorted({position_of[n] for n in node_ids})
        payload_at = self.payload_at
        payloads = [payload_at[p] for p in positions]
        entries = self.tree.prove(positions)
        return TreeSection(NETWORK_TREE, positions, payloads, entries)

    def refresh_node(self, node_id: int) -> None:
        """Re-encode Φ(node_id) and update its Merkle leaf in place.

        Called by owner-side incremental updates after the node's
        adjacency changed; the caller must re-sign the new root.
        """
        payload = self._tuple_factory(node_id).encode()
        position = self.position_of[node_id]
        self.payload_of[node_id] = payload
        self.payload_at[position] = payload
        self.tree.update_leaf(position, payload)

    def set_tuple_factory(self, tuple_factory: Callable[[int], BaseTuple]) -> None:
        """Swap the Φ encoder (e.g. after LDM hint state changed)."""
        self._tuple_factory = tuple_factory

    def refresh_nodes(self, node_ids) -> tuple[int, bool]:
        """Re-encode Φ for *node_ids* and refresh the tree where changed.

        Returns ``(changed leaf count, whether the tree was rebuilt)``.
        Payloads are compared before hashing, so passing a superset of
        the truly affected nodes only costs the re-encode.
        """
        return self.refresh_payloads({
            node_id: self._tuple_factory(node_id).encode()
            for node_id in sorted(set(node_ids))
        })

    def refresh_payloads(self, payloads) -> tuple[int, bool]:
        """Install pre-encoded Φ payloads and refresh the tree where changed.

        ``payloads`` maps node id to its (canonical) encoding — batch
        encoders hand their output straight in here.  Unchanged
        payloads are skipped; when the changed fraction makes per-leaf
        root-path refreshes more expensive than hashing every level
        once, the tree is rebuilt wholesale from the patched payload
        array (byte-identical either way).
        """
        changed: dict[int, bytes] = {}
        payload_at = self.payload_at
        for node_id in sorted(payloads):
            payload = payloads[node_id]
            position = self.position_of[node_id]
            if payload_at[position] == payload:
                continue
            payload_at[position] = payload
            self.payload_of[node_id] = payload
            changed[position] = payload
        if not changed:
            return 0, False
        if incremental_patch_wins(len(changed), self.tree):
            self.tree.update_leaves(changed)
            return len(changed), False
        self.tree = MerkleTree(payload_at, fanout=self.tree.fanout,
                               hash_fn=self.tree.hash_fn)
        return len(changed), True


def incremental_patch_wins(changed: int, tree: MerkleTree) -> bool:
    """Whether patching *changed* leaves beats rebuilding *tree*.

    Per-leaf refresh hashes the full root path (``fanout`` children per
    level); a rebuild hashes every node once, about
    ``num_leaves · f / (f - 1)`` digests.  The comparison ignores the
    shared-path savings of clustered updates, which only biases toward
    the (always-correct) rebuild.
    """
    fanout = tree.fanout
    height = max(1, tree.num_levels - 1)
    rebuild_hashes = tree.num_leaves * fanout // max(1, fanout - 1)
    return changed * fanout * height <= rebuild_hashes


def sign_descriptor(descriptor: SignedDescriptor, signer: Signer) -> SignedDescriptor:
    """Owner signs the descriptor message."""
    return descriptor.with_signature(signer.sign(descriptor.message()))


def resign_descriptor(
    old: SignedDescriptor,
    signer: Signer,
    *,
    trees,
    version: int,
    params: "bytes | None" = None,
) -> SignedDescriptor:
    """Re-sign a descriptor after an incremental update.

    Carries over the method identity and hash choice; the caller
    supplies the refreshed ADS shapes/roots, the new graph version and
    (when the signed parameters themselves changed, as for LDM's λ)
    the new params blob.
    """
    return sign_descriptor(
        SignedDescriptor(
            method=old.method,
            hash_name=old.hash_name,
            params=old.params if params is None else params,
            trees=tuple(trees),
            version=version,
        ),
        signer,
    )
