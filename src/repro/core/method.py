"""Verification method base class and registry.

A *verification method* bundles the three roles of Figure 2:

* **owner** — :meth:`VerificationMethod.build` constructs the ADS and
  authenticated hints and signs the descriptor (done once, offline);
* **provider** — :meth:`VerificationMethod.answer` runs the shortest
  path search and assembles ``(path, ΓS, ΓT)`` per query;
* **client** — :meth:`VerificationMethod.verify` checks a response
  using only the response bytes, the query, and the owner's public
  key (it never touches the graph).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence, Type

from repro.crypto.signer import Signer
from repro.errors import MethodError
from repro.core.framework import VerificationResult
from repro.core.proofs import QueryResponse, SignedDescriptor
from repro.graph.graph import GraphMutation, SpatialGraph
from repro.shortestpath.path import Path

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.core.state import MethodState

#: ``verify(message, signature) -> bool`` — the client's view of the owner key.
SignatureVerifier = Callable[[bytes, bytes], bool]

#: Methods whose ΓS is a subgraph disclosure, so several queries can share
#: one combined Merkle cover (:mod:`repro.core.batch`).  FULL and HYP
#: proofs are already near-constant size and gain nothing from unioning.
BATCHABLE_METHODS = ("DIJ", "LDM")


@dataclass(frozen=True)
class UpdateReport:
    """Outcome of one :meth:`VerificationMethod.apply_update` call.

    ``mode`` records how the method absorbed the pending mutations:

    * ``"noop"`` — nothing was pending;
    * ``"incremental"`` — only the touched hint tuples were recomputed
      and the affected Merkle leaves patched via ``update_leaf``;
    * ``"partial-rebuild"`` — one ADS was reconstructed wholesale while
      the others were patched (e.g. HYP after the border set changed);
    * ``"full-rebuild"`` — the mutation invalidated the leaf layout
      itself (new nodes, adjacency-dependent ordering), so the method
      was rebuilt from scratch with its original parameters.

    All four modes end in a freshly signed descriptor carrying the new
    graph version; the resulting state is byte-identical to a
    from-scratch build on the mutated graph.
    """

    method: str
    mode: str
    mutations: int
    leaves_patched: int = 0
    trees_rebuilt: int = 0
    seconds: float = 0.0
    version: int = 0


class VerificationMethod(ABC):
    """Base class for DIJ / FULL / LDM / HYP."""

    #: Method name as used in the paper and in descriptors.
    name: str = "?"

    def __init__(self) -> None:
        self._descriptor: SignedDescriptor | None = None
        #: Owner-side hint construction time, excluding the base graph
        #: Merkle tree that every method shares (paper Fig. 8c omits DIJ
        #: because it has no hints).
        self.construction_seconds: float = 0.0
        #: The provider's search algorithm ``algo_sp`` (Algorithm 1 line 1).
        #: The proofs never depend on how the provider found the path.
        self.algo_sp: str = "dijkstra"
        #: Graph version the authenticated structures currently reflect;
        #: :meth:`apply_update` absorbs ``graph.mutations_since(this)``.
        self._synced_version: int = 0
        #: Exact keyword arguments a from-scratch rebuild needs to
        #: reproduce this instance byte for byte (``build`` fills it,
        #: pinning derived choices such as LDM's selected landmarks).
        self._build_params: dict = {}
        #: The user-facing build arguments, *without* the pins — what a
        #: re-publish from scratch would pass (for LDM that re-runs
        #: landmark selection; for the other methods it equals
        #: :attr:`_build_params`).
        self._publish_params: dict = {}

    def _shortest_path(self, source: int, target: int) -> "Path":
        """Run the provider's chosen ``algo_sp``.

        ``dijkstra`` runs on the array kernel over the graph's compiled
        index (the hot path); ``dijkstra-dict`` keeps the original
        dict-of-dicts kernel (reference backend, used by the kernel
        equivalence tests); ``bidirectional`` is the meet-in-the-middle
        variant.  The proofs never depend on the choice.
        """
        from repro.shortestpath.bidirectional import bidirectional_search
        from repro.shortestpath.dijkstra import dijkstra
        from repro.shortestpath.kernel import indexed_dijkstra

        graph = self._graph  # every concrete method holds the graph
        if self.algo_sp == "dijkstra":
            result = indexed_dijkstra(graph.to_index(), source, target=target)
            return result.path_to(target)
        if self.algo_sp == "dijkstra-dict":
            return dijkstra(graph, source, target=target).path_to(target)
        if self.algo_sp == "bidirectional":
            return bidirectional_search(graph, source, target)
        raise MethodError(
            f"unknown provider algorithm {self.algo_sp!r}; "
            f"choose 'dijkstra', 'dijkstra-dict' or 'bidirectional'"
        )

    # ------------------------------------------------------------------
    # live updates
    # ------------------------------------------------------------------
    def update_edge_weight(self, u: int, v: int, weight: float,
                           signer: "Signer") -> UpdateReport:
        """Owner-side convenience: re-weight one edge and re-authenticate.

        Equivalent to ``graph.update_edge_weight(...)`` followed by
        :meth:`apply_update`.  All four methods support it; how much
        work it costs depends on the method (DIJ patches two Merkle
        leaves, the hint-bearing methods re-derive only the distance
        rows the edge can have touched).
        """
        self.graph.update_edge_weight(u, v, weight)
        return self.apply_update(signer)

    def apply_update(self, signer: "Signer") -> UpdateReport:
        """Absorb every graph mutation since the last sync and re-sign.

        Reads the graph changelog past :attr:`_synced_version`, lets
        the concrete method patch its authenticated structures (or
        rebuild them where a mutation's effect is global), and leaves
        the method holding a descriptor signed over the new roots and
        the new graph version.  The post-update state is byte-identical
        to a from-scratch ``build`` on the mutated graph with the same
        (pinned) parameters.
        """
        graph = self.graph
        pending = graph.mutations_since(self._synced_version)
        if not pending:
            return UpdateReport(self.name, "noop", 0,
                                version=self._descriptor.version
                                if self._descriptor else 0)
        start = time.perf_counter()
        mode, leaves_patched, trees_rebuilt = self._apply_mutations(
            pending, signer)
        self._synced_version = graph.version
        return UpdateReport(
            method=self.name,
            mode=mode,
            mutations=len(pending),
            leaves_patched=leaves_patched,
            trees_rebuilt=trees_rebuilt,
            seconds=time.perf_counter() - start,
            version=self.descriptor.version,
        )

    def _apply_mutations(self, mutations: "Sequence[GraphMutation]",
                         signer: "Signer") -> tuple[str, int, int]:
        """Method-specific update path; default is a full rebuild.

        Returns ``(mode, leaves patched, trees rebuilt)``.  Concrete
        methods override this with incremental paths and call
        :meth:`_rebuild` for the cases they cannot patch.
        """
        return self._rebuild(signer)

    def _rebuild(self, signer: "Signer") -> tuple[str, int, int]:
        """From-scratch rebuild on the current graph, in place."""
        fresh = type(self).build(self._graph, signer, **self._build_params)
        self.__dict__.update(fresh.__dict__)
        return "full-rebuild", 0, self._num_trees()

    def _num_trees(self) -> int:
        """How many ADSs the method's descriptor covers."""
        descriptor = self._descriptor
        return len(descriptor.trees) if descriptor is not None else 0

    # ------------------------------------------------------------------
    # build-state vs. serve-state
    # ------------------------------------------------------------------
    def dump_state(self) -> "MethodState":
        """Freeze the serve state for persistence.

        Returns a :class:`~repro.core.state.MethodState` holding the
        signed descriptor, the (pinned) rebuild parameters, the graph
        and the method's section arrays/blobs — everything
        :meth:`load_state` needs to reconstruct a serving-capable
        method on another machine, and nothing it does not (no signer,
        no transient timings).  The :mod:`repro.store` pack writes this
        to the ``.rspv`` artifact format.
        """
        from repro.core.state import MethodState

        state = MethodState(
            method=self.name,
            graph=self.graph,
            graph_version=self.graph.version,
            descriptor=self.descriptor,
            build_params=dict(self._build_params),
            publish_params=dict(self._publish_params),
            algo_sp=self.algo_sp,
        )
        self._dump_sections(state)
        return state

    @classmethod
    def load_state(cls, state: "MethodState") -> "VerificationMethod":
        """Reconstruct a serving-capable method from persisted state.

        The inverse of :meth:`dump_state`: the result answers queries
        (and absorbs :meth:`apply_update` batches) exactly like the
        method that was dumped — byte-identical descriptor and
        responses — without ever holding the signer.  Validation is
        strict and typed (:class:`~repro.errors.ArtifactError`): state
        from disk is untrusted input.
        """
        from repro.errors import ArtifactError

        if state.method != cls.name or state.descriptor.method != cls.name:
            raise ArtifactError(
                f"state is for method {state.method!r} (descriptor "
                f"{state.descriptor.method!r}), loader is {cls.name}"
            )
        if state.graph.version != state.graph_version:
            raise ArtifactError(
                f"graph version {state.graph.version} does not match the "
                f"recorded version {state.graph_version}"
            )
        method = cls._load_sections(state)
        method.algo_sp = state.algo_sp
        method._synced_version = state.graph_version
        method._build_params = dict(state.build_params)
        method._publish_params = dict(state.publish_params)
        return method

    def _dump_sections(self, state: "MethodState") -> None:
        """Method-specific serve-state sections (arrays and blobs)."""
        raise MethodError(f"{self.name} does not implement dump_state")

    @classmethod
    def _load_sections(cls, state: "MethodState") -> "VerificationMethod":
        """Construct the instance from the sections; inverse of
        :meth:`_dump_sections`."""
        raise MethodError(f"{cls.name} does not implement load_state")

    # ------------------------------------------------------------------
    @classmethod
    @abstractmethod
    def build(
        cls,
        graph: SpatialGraph,
        signer: Signer,
        *,
        fanout: int = 2,
        ordering: str = "hbt",
        hash_name: str = "sha1",
        **params,
    ) -> "VerificationMethod":
        """Owner role: construct ADS + hints and sign the descriptor."""

    @abstractmethod
    def answer(self, source: int, target: int, *,
               forced_path: "Path | None" = None) -> QueryResponse:
        """Provider role: compute the path and assemble the proofs.

        ``forced_path`` is an adversarial-testing hook: when given, the
        provider reports that path (and builds proofs around its cost)
        instead of the true shortest path.  Honest providers leave it
        ``None``.
        """

    @classmethod
    @abstractmethod
    def verify(
        cls,
        source: int,
        target: int,
        response: QueryResponse,
        verify_signature: SignatureVerifier,
        *,
        min_version: "int | None" = None,
    ) -> VerificationResult:
        """Client role: accept or reject a response.

        ``min_version`` is the client's freshness floor: responses
        signed under an older graph version are rejected as stale
        replays (see :func:`repro.core.checks.verify_descriptor`).
        """

    # ------------------------------------------------------------------
    @property
    def descriptor(self) -> SignedDescriptor:
        """The signed descriptor produced by :meth:`build`."""
        if self._descriptor is None:
            raise MethodError(f"{self.name}: build() has not completed")
        return self._descriptor

    @property
    def graph(self) -> SpatialGraph:
        """The provider's copy of the outsourced network.

        Exposed so serving layers can observe the graph's mutation
        counter (:attr:`~repro.graph.graph.SpatialGraph.version`) for
        cache invalidation without reaching into private state.
        """
        graph = getattr(self, "_graph", None)
        if graph is None:
            raise MethodError(f"{self.name}: build() has not completed")
        return graph

    @property
    def supports_batching(self) -> bool:
        """Whether :func:`repro.core.batch.answer_batch` accepts this method."""
        return self.name in BATCHABLE_METHODS


class _Stopwatch:
    """Context manager measuring wall-clock seconds."""

    def __enter__(self) -> "_Stopwatch":
        self.seconds = 0.0
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start


METHODS: dict[str, Type[VerificationMethod]] = {}


def register_method(cls: Type[VerificationMethod]) -> Type[VerificationMethod]:
    """Class decorator adding a method to the registry."""
    if cls.name in METHODS:
        raise MethodError(f"duplicate method name {cls.name!r}")
    METHODS[cls.name] = cls
    return cls


def get_method(name: str) -> Type[VerificationMethod]:
    """Registry lookup by paper name (DIJ, FULL, LDM, HYP)."""
    try:
        return METHODS[name]
    except KeyError:
        raise MethodError(
            f"unknown method {name!r}; available: {sorted(METHODS)}"
        ) from None
