"""Verification method base class and registry.

A *verification method* bundles the three roles of Figure 2:

* **owner** — :meth:`VerificationMethod.build` constructs the ADS and
  authenticated hints and signs the descriptor (done once, offline);
* **provider** — :meth:`VerificationMethod.answer` runs the shortest
  path search and assembles ``(path, ΓS, ΓT)`` per query;
* **client** — :meth:`VerificationMethod.verify` checks a response
  using only the response bytes, the query, and the owner's public
  key (it never touches the graph).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Callable, Type

from repro.crypto.signer import Signer
from repro.errors import MethodError
from repro.core.framework import VerificationResult
from repro.core.proofs import QueryResponse, SignedDescriptor
from repro.graph.graph import SpatialGraph
from repro.shortestpath.path import Path

#: ``verify(message, signature) -> bool`` — the client's view of the owner key.
SignatureVerifier = Callable[[bytes, bytes], bool]

#: Methods whose ΓS is a subgraph disclosure, so several queries can share
#: one combined Merkle cover (:mod:`repro.core.batch`).  FULL and HYP
#: proofs are already near-constant size and gain nothing from unioning.
BATCHABLE_METHODS = ("DIJ", "LDM")


class VerificationMethod(ABC):
    """Base class for DIJ / FULL / LDM / HYP."""

    #: Method name as used in the paper and in descriptors.
    name: str = "?"

    def __init__(self) -> None:
        self._descriptor: SignedDescriptor | None = None
        #: Owner-side hint construction time, excluding the base graph
        #: Merkle tree that every method shares (paper Fig. 8c omits DIJ
        #: because it has no hints).
        self.construction_seconds: float = 0.0
        #: The provider's search algorithm ``algo_sp`` (Algorithm 1 line 1).
        #: The proofs never depend on how the provider found the path.
        self.algo_sp: str = "dijkstra"

    def _shortest_path(self, source: int, target: int) -> "Path":
        """Run the provider's chosen ``algo_sp``.

        ``dijkstra`` runs on the array kernel over the graph's compiled
        index (the hot path); ``dijkstra-dict`` keeps the original
        dict-of-dicts kernel (reference backend, used by the kernel
        equivalence tests); ``bidirectional`` is the meet-in-the-middle
        variant.  The proofs never depend on the choice.
        """
        from repro.shortestpath.bidirectional import bidirectional_search
        from repro.shortestpath.dijkstra import dijkstra
        from repro.shortestpath.kernel import indexed_dijkstra

        graph = self._graph  # every concrete method holds the graph
        if self.algo_sp == "dijkstra":
            result = indexed_dijkstra(graph.to_index(), source, target=target)
            return result.path_to(target)
        if self.algo_sp == "dijkstra-dict":
            return dijkstra(graph, source, target=target).path_to(target)
        if self.algo_sp == "bidirectional":
            return bidirectional_search(graph, source, target)
        raise MethodError(
            f"unknown provider algorithm {self.algo_sp!r}; "
            f"choose 'dijkstra', 'dijkstra-dict' or 'bidirectional'"
        )

    def update_edge_weight(self, u: int, v: int, weight: float,
                           signer: "Signer") -> None:
        """Owner-side incremental weight update.

        Only DIJ supports this (its sole ADS is the network Merkle
        tree, refreshable in ``O(log n)`` hashes).  The hint-bearing
        methods must rebuild: a weight change invalidates materialized
        distances, landmark vectors and hyper-edges wholesale.
        """
        raise MethodError(
            f"{self.name} hints depend on global distances; rebuild the "
            f"method after weight changes (only DIJ supports incremental "
            f"updates)"
        )

    # ------------------------------------------------------------------
    @classmethod
    @abstractmethod
    def build(
        cls,
        graph: SpatialGraph,
        signer: Signer,
        *,
        fanout: int = 2,
        ordering: str = "hbt",
        hash_name: str = "sha1",
        **params,
    ) -> "VerificationMethod":
        """Owner role: construct ADS + hints and sign the descriptor."""

    @abstractmethod
    def answer(self, source: int, target: int, *,
               forced_path: "Path | None" = None) -> QueryResponse:
        """Provider role: compute the path and assemble the proofs.

        ``forced_path`` is an adversarial-testing hook: when given, the
        provider reports that path (and builds proofs around its cost)
        instead of the true shortest path.  Honest providers leave it
        ``None``.
        """

    @classmethod
    @abstractmethod
    def verify(
        cls,
        source: int,
        target: int,
        response: QueryResponse,
        verify_signature: SignatureVerifier,
    ) -> VerificationResult:
        """Client role: accept or reject a response."""

    # ------------------------------------------------------------------
    @property
    def descriptor(self) -> SignedDescriptor:
        """The signed descriptor produced by :meth:`build`."""
        if self._descriptor is None:
            raise MethodError(f"{self.name}: build() has not completed")
        return self._descriptor

    @property
    def graph(self) -> SpatialGraph:
        """The provider's copy of the outsourced network.

        Exposed so serving layers can observe the graph's mutation
        counter (:attr:`~repro.graph.graph.SpatialGraph.version`) for
        cache invalidation without reaching into private state.
        """
        graph = getattr(self, "_graph", None)
        if graph is None:
            raise MethodError(f"{self.name}: build() has not completed")
        return graph

    @property
    def supports_batching(self) -> bool:
        """Whether :func:`repro.core.batch.answer_batch` accepts this method."""
        return self.name in BATCHABLE_METHODS


class _Stopwatch:
    """Context manager measuring wall-clock seconds."""

    def __enter__(self) -> "_Stopwatch":
        self.seconds = 0.0
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start


METHODS: dict[str, Type[VerificationMethod]] = {}


def register_method(cls: Type[VerificationMethod]) -> Type[VerificationMethod]:
    """Class decorator adding a method to the registry."""
    if cls.name in METHODS:
        raise MethodError(f"duplicate method name {cls.name!r}")
    METHODS[cls.name] = cls
    return cls


def get_method(name: str) -> Type[VerificationMethod]:
    """Registry lookup by paper name (DIJ, FULL, LDM, HYP)."""
    try:
        return METHODS[name]
    except KeyError:
        raise MethodError(
            f"unknown method {name!r}; available: {sorted(METHODS)}"
        ) from None
