"""FULL — fully materialized distances (paper §IV-B).

The owner materializes ``dist(vi, vj)`` for every node pair and stores
the tuples in a distance Merkle B-tree keyed by ``(vi.id, vj.id)``.
The proof for a query is a single distance tuple plus the sibling
digests along its root path — tiny, but pre-computation is ``O(|V|^3)``
time / ``O(|V|^2)`` space, so FULL only fits small networks.

Implementation notes: the graph is undirected, so only the upper
triangle (``a < b`` by id) is materialized; the leaf index of a pair
is computed arithmetically (triangle ranking over the sorted id list),
which avoids storing millions of key objects.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.checks import (
    NetworkTreeBundle,
    check_reported_path,
    decode_tuples,
    incremental_patch_wins,
    resign_descriptor,
    sign_descriptor,
    verify_descriptor,
    verify_section_root,
)
from repro.core.framework import VerificationResult, distances_close
from repro.core.incremental import (
    affected_sources,
    changed_columns,
    edge_endpoints,
    needs_layout_rebuild,
)
from repro.core.method import SignatureVerifier, VerificationMethod, register_method
from repro.core.state import dump_bundle, load_bundle, load_descriptor_tree
from repro.core.proofs import (
    DISTANCE_TREE,
    NETWORK_TREE,
    QueryResponse,
    SignedDescriptor,
    TreeConfig,
    TreeSection,
)
from repro.crypto.signer import Signer
from repro.errors import (
    ArtifactError,
    EncodingError,
    GraphError,
    MethodError,
    NoPathError,
)
from repro.graph.graph import GraphMutation, SpatialGraph
from repro.graph.tuples import BaseTuple, DistanceTuple, triangle_leaf_digests
from repro.hiti.hyperedges import triangle_index
from repro.merkle.tree import MerkleTree
from repro.shortestpath.bulk import all_pairs_distances, multi_source_distances
from repro.shortestpath.path import Path


@register_method
class FullMethod(VerificationMethod):
    """Fully materialized all-pairs distances."""

    name = "FULL"

    def __init__(self, graph: SpatialGraph, bundle: NetworkTreeBundle,
                 distance_tree: MerkleTree, matrix: np.ndarray,
                 descriptor: SignedDescriptor) -> None:
        super().__init__()
        self._graph = graph
        self._bundle = bundle
        self._distance_tree = distance_tree
        self._matrix = matrix
        self._ids = graph.node_ids()
        self._index_of = {node_id: i for i, node_id in enumerate(self._ids)}
        self._descriptor = descriptor

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: SpatialGraph, signer: Signer, *, fanout: int = 2,
              ordering: str = "hbt", hash_name: str = "sha1",
              all_pairs_method: str = "auto", algo_sp: str = "dijkstra",
              **params) -> "FullMethod":
        if params:
            raise EncodingError(f"FULL takes no extra parameters, got {sorted(params)}")
        if graph.num_nodes < 2:
            raise MethodError("FULL needs at least two nodes")
        bundle = NetworkTreeBundle(
            graph, lambda v: BaseTuple.from_graph(graph, v),
            ordering=ordering, fanout=fanout, hash_name=hash_name,
        )
        start = time.perf_counter()
        matrix = all_pairs_distances(graph, method=all_pairs_method)
        if np.isinf(matrix).any():
            raise GraphError("FULL requires a connected graph")
        ids = graph.node_ids()
        distance_tree = MerkleTree(
            leaf_digests=triangle_leaf_digests(ids, matrix, hash_name),
            fanout=fanout, hash_fn=hash_name,
        )
        construction = time.perf_counter() - start

        descriptor = sign_descriptor(
            SignedDescriptor(
                method=cls.name,
                hash_name=hash_name,
                params=b"",
                trees=(
                    TreeConfig(NETWORK_TREE, bundle.tree.num_leaves, fanout,
                               bundle.tree.root),
                    TreeConfig(DISTANCE_TREE, distance_tree.num_leaves, fanout,
                               distance_tree.root),
                ),
                version=graph.version,
            ),
            signer,
        )
        method = cls(graph, bundle, distance_tree, matrix, descriptor)
        method.construction_seconds = construction
        method.algo_sp = algo_sp
        method._synced_version = graph.version
        method._build_params = dict(fanout=fanout, ordering=ordering,
                                    hash_name=hash_name,
                                    all_pairs_method=all_pairs_method,
                                    algo_sp=algo_sp)
        method._publish_params = method._build_params
        return method

    # ------------------------------------------------------------------
    # serve-state persistence
    # ------------------------------------------------------------------
    def _dump_sections(self, state) -> None:
        dump_bundle(state, self._bundle)
        state.arrays["full/matrix"] = self._matrix
        state.blobs["distance/tree"] = self._distance_tree.dump_state()

    @classmethod
    def _load_sections(cls, state) -> "FullMethod":
        graph = state.graph
        n = graph.num_nodes
        # The matrix section is the serve-state jackpot: the O(|V|^2)
        # all-pairs result maps straight off the artifact (zero-copy,
        # copy-on-write — a later apply_update patches rows privately).
        matrix = state.array("full/matrix", dtype=np.float64, shape=(n, n))
        distance_tree = load_descriptor_tree(state, "distance/tree",
                                             DISTANCE_TREE)
        if distance_tree.num_leaves != n * (n - 1) // 2:
            raise ArtifactError(
                f"distance tree has {distance_tree.num_leaves} leaves; a "
                f"{n}-node FULL method needs {n * (n - 1) // 2}"
            )
        bundle = load_bundle(
            state, lambda v: BaseTuple.from_graph(graph, v))
        return cls(graph, bundle, distance_tree, matrix, state.descriptor)

    # ------------------------------------------------------------------
    def _apply_mutations(self, mutations: "list[GraphMutation]",
                         signer: Signer) -> tuple[str, int, int]:
        """Re-derive only the distance rows the batch can have touched.

        The affected-source filter (:mod:`repro.core.incremental`)
        flags every node whose shortest path forest could involve a
        mutated edge; those rows are recomputed through the same bulk
        backend the build used, so unflagged rows — and therefore the
        untouched triangle leaves — stay bit-identical to a fresh
        all-pairs run.  ``all_pairs_method="floyd-warshall"`` has no
        per-row backend, so it falls back to a full rebuild.
        """
        if needs_layout_rebuild(mutations, self._bundle.ordering):
            return self._rebuild(signer)
        if self._build_params.get("all_pairs_method") == "floyd-warshall":
            return self._rebuild(signer)
        graph = self._graph
        ids = self._ids
        n = len(ids)
        matrix = self._matrix
        affected = affected_sources(matrix, mutations, self._index_of)
        leaves_patched = 0
        trees_rebuilt = 0
        mode = "incremental"
        if affected.size:
            new_rows = multi_source_distances(
                graph, [ids[i] for i in affected.tolist()])
            if np.isinf(new_rows).any():
                raise GraphError("FULL requires a connected graph")
            old_rows = matrix[affected].copy()
            matrix[affected] = new_rows
            changed: list[tuple[int, bytes]] = []
            for k, i in enumerate(affected.tolist()):
                for j in changed_columns(old_rows[k], new_rows[k]).tolist():
                    if j <= i:
                        continue  # leaf (j', i) belongs to row j' < i
                    changed.append((
                        triangle_index(i, j, n),
                        DistanceTuple(ids[i], ids[j],
                                      float(matrix[i, j])).encode(),
                    ))
            if incremental_patch_wins(len(changed), self._distance_tree):
                self._distance_tree.update_leaves(dict(changed))
                leaves_patched += len(changed)
            else:
                fanout = self._distance_tree.fanout
                hash_fn = self._distance_tree.hash_fn
                self._distance_tree = MerkleTree(
                    leaf_digests=triangle_leaf_digests(ids, matrix, hash_fn),
                    fanout=fanout, hash_fn=hash_fn,
                )
                trees_rebuilt += 1
                mode = "partial-rebuild"
        patched, rebuilt = self._bundle.refresh_nodes(edge_endpoints(mutations))
        leaves_patched += patched
        trees_rebuilt += int(rebuilt)
        old = self._descriptor
        fanout = old.tree(NETWORK_TREE).fanout
        self._descriptor = resign_descriptor(
            old, signer,
            trees=(
                TreeConfig(NETWORK_TREE, self._bundle.tree.num_leaves, fanout,
                           self._bundle.tree.root),
                TreeConfig(DISTANCE_TREE, self._distance_tree.num_leaves,
                           old.tree(DISTANCE_TREE).fanout,
                           self._distance_tree.root),
            ),
            version=graph.version,
        )
        return mode, leaves_patched, trees_rebuilt

    # ------------------------------------------------------------------
    def distance_of(self, a: int, b: int) -> float:
        """Materialized ``dist(a, b)``."""
        return float(self._matrix[self._index_of[a], self._index_of[b]])

    def _distance_section(self, a: int, b: int) -> TreeSection:
        i, j = self._index_of[a], self._index_of[b]
        if i > j:
            i, j = j, i
        leaf = triangle_index(i, j, len(self._ids))
        payload = DistanceTuple(self._ids[i], self._ids[j],
                                float(self._matrix[i, j])).encode()
        entries = self._distance_tree.prove([leaf])
        return TreeSection(DISTANCE_TREE, [leaf], [payload], entries)

    def _matrix_path(self, source: int, target: int) -> "Path | None":
        """Reconstruct the shortest path from the materialized matrix.

        FULL already holds every distance, so instead of re-running a
        search the provider walks backwards from the target: an edge
        ``(v, u)`` is on a shortest path iff ``dist(s, v) + w(v, u)``
        equals ``dist(s, u)`` — bit-exactly, because the bulk backend
        accumulated ``dist(s, u)`` as exactly that sum along its
        Dijkstra tree.  Cost is O(path length · degree) against the
        array kernel's full expansion.  Returns ``None`` when no
        predecessor matches exactly (pathological float ties), letting
        the caller fall back to the search kernel.
        """
        index = self._graph.to_index()
        iof = index.index_of
        try:
            si = iof[source]
        except KeyError:
            raise GraphError(f"unknown source node {source}") from None
        try:
            ti = iof[target]
        except KeyError:
            raise GraphError(f"unknown target node {target}") from None
        row = self._matrix[si]
        if not np.isfinite(row[ti]):
            raise NoPathError(source, target)
        indptr, nbrs, wts = index.indptr, index.neighbors, index.weights
        ids = index.ids
        rev: list[int] = [target]
        u = ti
        for _ in range(index.num_nodes):
            if u == si:
                rev.reverse()
                return Path(nodes=tuple(rev), cost=float(row[ti]))
            here = row[u]
            pred = -1
            for k in range(indptr[u], indptr[u + 1]):
                v = nbrs[k]
                if row[v] + wts[k] == here:
                    pred = v
                    break
            if pred < 0:
                return None  # float tie fell apart; use the search kernel
            rev.append(ids[pred])
            u = pred
        return None  # cycle guard tripped (cannot happen on valid data)

    def answer(self, source: int, target: int, *,
               forced_path: "Path | None" = None) -> QueryResponse:
        if source == target:
            raise MethodError("degenerate query: source equals target")
        if forced_path is not None:
            path = forced_path
        elif self.algo_sp == "dijkstra":
            path = self._matrix_path(source, target)
            if path is None:
                path = self._shortest_path(source, target)
        else:
            path = self._shortest_path(source, target)
        sections = {
            NETWORK_TREE: self._bundle.section_for(path.nodes),
            DISTANCE_TREE: self._distance_section(source, target),
        }
        return QueryResponse(
            method=self.name,
            source=source,
            target=target,
            path_nodes=path.nodes,
            path_cost=path.cost,
            sections=sections,
            descriptor=self._descriptor,
        )

    # ------------------------------------------------------------------
    @classmethod
    def verify(cls, source: int, target: int, response: QueryResponse,
               verify_signature: SignatureVerifier, *,
               min_version: "int | None" = None) -> VerificationResult:
        failure = verify_descriptor(cls.name, response, verify_signature,
                                    min_version=min_version)
        if failure is not None:
            return failure
        try:
            net_section = response.section(NETWORK_TREE)
            dist_section = response.section(DISTANCE_TREE)
            tuples = decode_tuples(net_section, BaseTuple)
            if len(dist_section.payloads) != 1:
                return VerificationResult.failure(
                    "malformed-proof",
                    f"expected one distance tuple, got {len(dist_section.payloads)}",
                )
            dist_tuple = DistanceTuple.decode(dist_section.payloads[0])
        except EncodingError as exc:
            return VerificationResult.failure("malformed-proof", str(exc))
        for section in (net_section, dist_section):
            failure = verify_section_root(response.descriptor, section)
            if failure is not None:
                return failure
        if {dist_tuple.a, dist_tuple.b} != {source, target}:
            return VerificationResult.failure(
                "wrong-distance-tuple",
                f"distance tuple covers ({dist_tuple.a}, {dist_tuple.b}), "
                f"query was ({source}, {target})",
            )
        failure = check_reported_path(source, target, response, tuples)
        if failure is not None:
            return failure
        if not distances_close(dist_tuple.distance, response.path_cost):
            return VerificationResult.failure(
                "not-optimal",
                f"materialized distance {dist_tuple.distance} != reported "
                f"path cost {response.path_cost}",
            )
        return VerificationResult.success(distance=dist_tuple.distance)
