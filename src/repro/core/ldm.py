"""LDM — landmark-based verification (paper §V-A).

The owner picks ``c`` landmarks, quantizes every node's landmark
distance vector to ``b`` bits (Lemma 3) and compresses vectors within
threshold ξ (Lemma 4).  The vector information rides inside each
extended tuple Φ(v) (Eq. 4) and is therefore authenticated by the
network Merkle tree.

The proof ΓS is the *A\\* cone* (Lemma 2): every node ``v`` with
``dist(vs, v) + LB(v, vt) <= dist(vs, vt)``, together with the tuples
of its neighbors and of every referenced representative node.  The
client re-runs A\\* over the disclosed subgraph using the same lower
bound.

The quantized/compressed bound is admissible but *not consistent*, so
the client's A\\* allows node re-opening; admissibility alone then
guarantees that the target's first settlement is optimal, and the
Lemma-2 cone covers every node such a search can pop before the target
(each pop's key lower-bounds the optimum, so pops never exceed
``dist(vs, vt)`` while the target is unsettled).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

import numpy as np

from repro.core.checks import (
    NetworkTreeBundle,
    check_reported_path,
    decode_tuples,
    resign_descriptor,
    sign_descriptor,
    verify_descriptor,
    verify_section_root,
)
from repro.core.framework import ABS_TOL, REL_TOL, VerificationResult, distances_close
from repro.core.incremental import (
    affected_sources,
    changed_columns_2d,
    edge_endpoints,
    needs_layout_rebuild,
)
from repro.core.method import SignatureVerifier, VerificationMethod, register_method
from repro.core.proofs import NETWORK_TREE, QueryResponse, SignedDescriptor, TreeConfig
from repro.core.state import dump_bundle, load_bundle
from repro.crypto.signer import Signer
from repro.encoding import Decoder, Encoder, encode_uvarint, pack_codes_rows
from repro.errors import ArtifactError, EncodingError, GraphError
from repro.graph.graph import GraphMutation, SpatialGraph
from repro.graph.tuples import LdmTuple
from repro.landmarks.compression import (
    CompressedVectors,
    apply_compression_plan,
    compress_exact_greedy,
    compress_leader,
    compression_plan,
    lemma4_lower_bound,
)
from repro.landmarks.quantization import QuantizationSpec, quantize_vectors
from repro.landmarks.selection import select_landmarks
from repro.landmarks.vectors import LandmarkVectors
from repro.order import hilbert_order
from repro.shortestpath.bulk import multi_source_distances
from repro.shortestpath.kernel import indexed_ball, indexed_dijkstra
from repro.shortestpath.path import Path


@dataclass(frozen=True)
class LdmParams:
    """Signed LDM parameters (descriptor payload)."""

    landmarks: tuple[int, ...]
    bits: int
    d_max: float
    lam: float
    xi: float

    def encode(self) -> bytes:
        """Canonical encoding."""
        enc = Encoder()
        enc.write_uint_seq(self.landmarks)
        enc.write_uint(self.bits)
        enc.write_f64(self.d_max)
        enc.write_f64(self.lam)
        enc.write_f64(self.xi)
        return enc.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "LdmParams":
        """Inverse of :meth:`encode`."""
        dec = Decoder(data)
        params = cls(
            landmarks=tuple(dec.read_uint_seq()),
            bits=dec.read_uint(),
            d_max=dec.read_f64(),
            lam=dec.read_f64(),
            xi=dec.read_f64(),
        )
        dec.expect_end()
        return params


def _lemma2_margin(distance: float) -> float:
    """Provider-side cone slack: twice the client's comparison margin.

    One shared definition keeps the fused kernel's ball radius and the
    cone-qualification threshold bit-identical.
    """
    return 2 * (REL_TOL * distance + ABS_TOL)


def _make_tuple_factory(graph: SpatialGraph, compressed: CompressedVectors,
                        bits: int):
    """Φ(v) encoder bound to one compression state.

    Shared by ``build`` and ``_apply_mutations`` so the incremental
    path re-encodes tuples exactly as a fresh build would.
    """

    def tuple_factory(node_id: int) -> LdmTuple:
        node = graph.node(node_id)
        adjacency = tuple(sorted(
            (int(v), float(w)) for v, w in graph.neighbors(node_id).items()
        ))
        if node_id in compressed.codes_of:
            return LdmTuple(
                node.id, node.x, node.y, adjacency,
                codes=tuple(int(code) for code in compressed.codes_of[node_id]),
                bits=bits,
            )
        theta, eps_units = compressed.ref_of[node_id]
        return LdmTuple(node.id, node.x, node.y, adjacency,
                        codes=None, ref_id=theta, eps_units=eps_units,
                        bits=bits)

    return tuple_factory


def _varint_len(value: int) -> int:
    """Encoded length of *value* as a varint (delegates to the encoder,
    so the header-splice suffix arithmetic can never drift from the
    wire format)."""
    return len(encode_uvarint(value))


def _encode_changed_payloads(
    bundle: NetworkTreeBundle,
    old_compressed: CompressedVectors,
    compressed: CompressedVectors,
    bits: int,
    changed_nodes,
    endpoints,
    tuple_factory,
) -> "dict[int, bytes]":
    """Batch-encode Φ for the nodes a live update touched.

    Byte-identical to calling ``tuple_factory(node).encode()`` per
    node, but ~10x cheaper on the hot path: for a node whose adjacency
    did not change, the header bytes (id, coords, Φ edge list) are
    spliced straight out of its current payload — the old suffix
    length is computable from the old compression record — and the new
    code vectors are bit-packed in one vectorized pass
    (:func:`repro.encoding.pack_codes_rows`).  Mutated endpoints (and
    any node without a cached payload) fall back to the factory.
    """
    payloads: dict[int, bytes] = {}
    plain_nodes: list[int] = []
    headers: dict[int, bytes] = {}
    bits_prefix = encode_uvarint(bits)
    # Every code vector has the same landmark count, so the suffix of
    # an uncompressed payload has one constant length.
    c = len(next(iter(old_compressed.codes_of.values())))
    plain_suffix = 1 + _varint_len(bits) + _varint_len(c) + (c * bits + 7) // 8
    old_codes_of = old_compressed.codes_of
    old_ref_of = old_compressed.ref_of
    for node_id in sorted(changed_nodes):
        old_payload = bundle.payload_of.get(node_id)
        if node_id in endpoints or old_payload is None:
            payloads[node_id] = tuple_factory(node_id).encode()
            continue
        if node_id in old_codes_of:
            suffix = plain_suffix
        else:
            theta, eps_units = old_ref_of[node_id]
            suffix = 1 + _varint_len(theta) + _varint_len(eps_units)
        header = old_payload[: len(old_payload) - suffix]
        if node_id in compressed.codes_of:
            plain_nodes.append(node_id)
            headers[node_id] = header
        else:
            theta, eps_units = compressed.ref_of[node_id]
            payloads[node_id] = b"".join((
                header, b"\x01",
                encode_uvarint(theta), encode_uvarint(eps_units),
            ))
    if plain_nodes:
        matrix = np.stack([compressed.codes_of[n] for n in plain_nodes])
        count_prefix = encode_uvarint(matrix.shape[1])
        for node_id, stream in zip(plain_nodes,
                                   pack_codes_rows(matrix, bits)):
            payloads[node_id] = b"".join((
                headers[node_id], b"\x00", bits_prefix, count_prefix, stream,
            ))
    return payloads


@register_method
class LdmMethod(VerificationMethod):
    """Landmark-based verification with quantization and compression."""

    name = "LDM"

    def __init__(self, graph: SpatialGraph, bundle: NetworkTreeBundle,
                 compressed: CompressedVectors, params: LdmParams,
                 descriptor: SignedDescriptor, *,
                 effective: "tuple[np.ndarray, np.ndarray] | None" = None,
                 ) -> None:
        super().__init__()
        self._graph = graph
        self._bundle = bundle
        self._compressed = compressed
        self._params = params
        self._descriptor = descriptor
        # Dense effective-vector arrays aligned with the graph index
        # (ascending id order), for vectorized cone selection in
        # :meth:`answer`.  The node set is fixed for the method's life
        # (node additions force a full rebuild), so the alignment is
        # stable; weight updates refresh the arrays in place.  Callers
        # that already hold the arrays (the artifact loader, via
        # ``apply_compression_plan``) pass them in instead of paying
        # the per-node resolution again.
        if effective is None:
            effective = compressed.effective_arrays(graph.node_ids())
        self._eff_codes, self._eff_eps = effective

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: SpatialGraph, signer: Signer, *, fanout: int = 2,
              ordering: str = "hbt", hash_name: str = "sha1",
              c: int = 100, bits: int = 12, xi: float = 50.0,
              landmark_strategy: str = "farthest", compressor: str = "leader",
              seed: int = 0, algo_sp: str = "dijkstra",
              landmarks: "tuple[int, ...] | None" = None,
              d_max: "float | None" = None,
              compression_plan_pin: "dict[int, int] | None" = None,
              **params) -> "LdmMethod":
        """Owner build; the ``landmarks`` / ``d_max`` /
        ``compression_plan_pin`` extras pin the three graph-global
        choices (placement, quantization grid, follower assignment) so
        a rebuild can reproduce an incrementally-updated method byte
        for byte — ``apply_update`` records them in the method's
        rebuild parameters automatically.
        """
        if params:
            raise EncodingError(f"LDM got unknown parameters {sorted(params)}")
        start = time.perf_counter()
        if landmarks is None:
            # Landmark placement is the expensive, graph-global choice;
            # passing an explicit tuple pins it (incremental updates
            # rebuild everything downstream of the vectors but keep the
            # original placement, so a comparison rebuild must too).
            landmarks = select_landmarks(graph, c, strategy=landmark_strategy,
                                         seed=seed)
        else:
            landmarks = sorted(int(v) for v in landmarks)
            for landmark in landmarks:
                if not graph.has_node(landmark):
                    raise GraphError(f"unknown landmark node {landmark}")
        vectors = LandmarkVectors(graph, landmarks)
        spec = None
        if d_max is not None:
            spec = QuantizationSpec(bits=bits, d_max=d_max,
                                    lam=d_max / float((1 << bits) - 1))
        codes, spec = quantize_vectors(vectors.vectors, bits, spec=spec)
        ids = graph.node_ids()
        if compression_plan_pin is not None:
            compressed, _, _ = apply_compression_plan(
                ids, codes, spec, xi, compression_plan_pin)
            plan = dict(compression_plan_pin)
        else:
            if compressor == "leader":
                compressed = compress_leader(ids, codes, spec, xi,
                                             scan_order=hilbert_order(graph))
            elif compressor == "exact":
                compressed = compress_exact_greedy(ids, codes, spec, xi)
            else:
                raise EncodingError(f"unknown compressor {compressor!r}")
            plan = compression_plan(compressed)
        construction = time.perf_counter() - start

        ldm_params = LdmParams(
            landmarks=tuple(landmarks), bits=bits,
            d_max=spec.d_max, lam=spec.lam, xi=xi,
        )
        bundle = NetworkTreeBundle(
            graph, _make_tuple_factory(graph, compressed, bits),
            ordering=ordering, fanout=fanout, hash_name=hash_name,
        )
        descriptor = sign_descriptor(
            SignedDescriptor(
                method=cls.name,
                hash_name=hash_name,
                params=ldm_params.encode(),
                trees=(TreeConfig(NETWORK_TREE, bundle.tree.num_leaves, fanout,
                                  bundle.tree.root),),
                version=graph.version,
            ),
            signer,
        )
        method = cls(graph, bundle, compressed, ldm_params, descriptor)
        method.construction_seconds = construction
        method.algo_sp = algo_sp
        method._synced_version = graph.version
        method._publish_params = dict(
            fanout=fanout, ordering=ordering, hash_name=hash_name,
            c=len(landmarks), bits=bits, xi=xi,
            landmark_strategy=landmark_strategy, compressor=compressor,
            seed=seed, algo_sp=algo_sp,
        )
        method._build_params = dict(
            method._publish_params,
            landmarks=tuple(landmarks), d_max=spec.d_max,
            compression_plan_pin=plan,
        )
        # Update-path state: the exact vectors/codes behind the current
        # hints plus the pinned grid and follower plan.
        method._vectors = vectors.vectors
        method._codes = codes
        method._spec = spec
        method._plan = plan
        return method

    # ------------------------------------------------------------------
    # serve-state persistence
    # ------------------------------------------------------------------
    def _dump_sections(self, state) -> None:
        dump_bundle(state, self._bundle)
        # The exact vectors and quantized codes are the update-path
        # state: a loaded method re-derives the compression from the
        # pinned plan (cheap, vectorized), but absorbing future weight
        # changes needs the true landmark distances to diff against.
        state.arrays["ldm/vectors"] = self._vectors
        state.arrays["ldm/codes"] = self._codes

    @classmethod
    def _load_sections(cls, state) -> "LdmMethod":
        graph = state.graph
        try:
            params = LdmParams.decode(state.descriptor.params)
        except EncodingError as exc:
            raise ArtifactError(
                f"descriptor carries malformed LDM parameters: {exc}"
            ) from exc
        spec = QuantizationSpec(bits=params.bits, d_max=params.d_max,
                                lam=params.lam)
        plan = state.build_params.get("compression_plan_pin")
        if not isinstance(plan, dict):
            raise ArtifactError("build params carry no pinned compression plan")
        ids = graph.node_ids()
        known = set(ids)
        if not (set(plan) | set(plan.values())) <= known:
            raise ArtifactError(
                "pinned compression plan references unknown node ids"
            )
        c, n = len(params.landmarks), len(ids)
        vectors = state.array("ldm/vectors", dtype=np.float64, shape=(c, n))
        codes = state.array("ldm/codes", dtype=np.int32, shape=(c, n))
        # The compression is a pure function of (codes, spec, ξ, plan),
        # so re-deriving it here reproduces the dumped state exactly —
        # including the effective arrays, which come out for free.
        compressed, eff_codes, eff_eps = apply_compression_plan(
            ids, codes, spec, params.xi, plan)
        bundle = load_bundle(
            state, _make_tuple_factory(graph, compressed, params.bits))
        method = cls(graph, bundle, compressed, params, state.descriptor,
                     effective=(eff_codes, eff_eps))
        method._vectors = vectors
        method._codes = codes
        method._spec = spec
        method._plan = dict(plan)
        return method

    # ------------------------------------------------------------------
    def _apply_mutations(self, mutations: "list[GraphMutation]",
                         signer: Signer) -> tuple[str, int, int]:
        """Targeted partial rebuild: the pinned choices stay, the rest
        re-derives.

        Landmark placement, the quantization grid (λ) and the
        compression plan are pinned from the original build — they are
        the expensive or signed graph-global choices.  What a weight
        change can actually move is re-derived narrowly: only the
        landmark rows the batch can have touched re-run through the
        bulk backend, codes re-quantize against the pinned grid
        (vectorized), follower ε values re-measure against their
        pinned representatives, and only the tuples whose encoding
        moved — changed code columns, changed compression records,
        mutated endpoints — re-hash into the network tree.
        Byte-for-byte equivalence is against a rebuild passing the same
        pins (exactly what :meth:`_rebuild` does via
        ``_build_params``).
        """
        if needs_layout_rebuild(mutations, self._bundle.ordering):
            return self._rebuild(signer)
        graph = self._graph
        ids = graph.node_ids()
        landmarks = list(self._params.landmarks)
        # The compiled index's id -> column map matches the vectors'
        # (ascending-id) column order and is version-cached.
        affected = affected_sources(self._vectors, mutations,
                                    graph.to_index().index_of)
        if affected.size:
            new_rows = multi_source_distances(
                graph, [landmarks[i] for i in affected.tolist()])
            if np.isinf(new_rows).any():
                raise GraphError(
                    "graph is disconnected: landmark vectors contain infinite "
                    "distances; restrict to the largest component first"
                )
            self._vectors[affected] = new_rows

        old_codes = self._codes
        old_compressed = self._compressed
        bits = self._params.bits
        codes = old_codes
        if affected.size:
            # Codes re-quantize only where vectors moved; rows outside
            # the affected set are bit-identical by construction.
            new_code_rows, _ = quantize_vectors(
                self._vectors[affected], bits, spec=self._spec)
            codes = old_codes.copy()
            codes[affected] = new_code_rows
        compressed, eff_codes, eff_eps = apply_compression_plan(
            ids, codes, self._spec, self._params.xi, self._plan)

        # Φ(v) changes iff its adjacency, its own code column (when it
        # carries codes) or its compression record moved.
        changed_nodes = edge_endpoints(mutations)
        if affected.size:
            for j in changed_columns_2d(old_codes[affected],
                                        codes[affected]):
                changed_nodes.add(ids[j])
        changed_nodes.update(
            old_compressed.codes_of.keys() ^ compressed.codes_of.keys())
        for node_id in self._plan:
            if old_compressed.ref_of.get(node_id) != compressed.ref_of.get(node_id):
                changed_nodes.add(node_id)

        self._codes = codes
        self._eff_codes, self._eff_eps = eff_codes, eff_eps
        factory = _make_tuple_factory(graph, compressed, bits)
        self._bundle.set_tuple_factory(factory)
        payloads = _encode_changed_payloads(
            self._bundle, old_compressed, compressed, bits,
            changed_nodes, edge_endpoints(mutations), factory)
        self._compressed = compressed
        patched, rebuilt = self._bundle.refresh_payloads(payloads)
        old = self._descriptor
        self._descriptor = resign_descriptor(
            old, signer,
            trees=(TreeConfig(NETWORK_TREE, self._bundle.tree.num_leaves,
                              old.tree(NETWORK_TREE).fanout,
                              self._bundle.tree.root),),
            version=graph.version,
        )
        return "incremental", patched, int(rebuilt)

    # ------------------------------------------------------------------
    def answer(self, source: int, target: int, *,
               forced_path: "Path | None" = None) -> QueryResponse:
        # Lemma 2 cone: server margin is wider than the client's expansion
        # margin so float noise can never make an honest proof incomplete.
        index = self._graph.to_index()
        if forced_path is None and self.algo_sp == "dijkstra":
            # One fused expansion yields the path and the margin ball.
            result = indexed_ball(index, source, target,
                                  margin=_lemma2_margin)
            path = result.path_to(target)
            ball = result
        else:
            path = forced_path if forced_path is not None else \
                self._shortest_path(source, target)
            ball = None
        distance = path.cost
        margin = _lemma2_margin(distance)
        if ball is None:
            ball = indexed_dijkstra(index, source, radius=distance + margin)

        # Vectorized Lemma 4 bound over every settled node: identical
        # float arithmetic to CompressedVectors.lower_bound, one NumPy
        # pass instead of a Python call per node.
        settled = np.fromiter(ball.settled_order, dtype=np.intp,
                              count=len(ball.settled_order))
        dists = np.fromiter((ball.dist[u] for u in ball.settled_order),
                            dtype=np.float64, count=len(ball.settled_order))
        lam = self._params.lam
        t_idx = index.index_of[target]
        units = np.abs(self._eff_codes[settled] - self._eff_codes[t_idx]).max(axis=1)
        loose = np.maximum(0.0, lam * (units - 1))
        lb = np.maximum(0.0, loose - lam * (self._eff_eps[settled]
                                            + self._eff_eps[t_idx]))
        qualifying = settled[dists + lb <= distance + margin]

        ids = index.ids
        indptr = index.indptr
        nbrs = index.neighbors
        include: set[int] = {source, target}
        for u in qualifying.tolist():
            include.add(ids[u])
            for k in range(indptr[u], indptr[u + 1]):
                include.add(ids[nbrs[k]])
        # Every included compressed node drags in its representative,
        # whose vector the client needs to evaluate the bound.
        for v in list(include):
            ref = self._compressed.ref_of.get(v)
            if ref is not None:
                include.add(ref[0])
        section = self._bundle.section_for(include)
        return QueryResponse(
            method=self.name,
            source=source,
            target=target,
            path_nodes=path.nodes,
            path_cost=path.cost,
            sections={NETWORK_TREE: section},
            descriptor=self._descriptor,
        )

    # ------------------------------------------------------------------
    @classmethod
    def verify(cls, source: int, target: int, response: QueryResponse,
               verify_signature: SignatureVerifier, *,
               min_version: "int | None" = None) -> VerificationResult:
        failure = verify_descriptor(cls.name, response, verify_signature,
                                    min_version=min_version)
        if failure is not None:
            return failure
        try:
            params = LdmParams.decode(response.descriptor.params)
            section = response.section(NETWORK_TREE)
            tuples = decode_tuples(section, LdmTuple)
        except EncodingError as exc:
            return VerificationResult.failure("malformed-proof", str(exc))
        failure = verify_section_root(response.descriptor, section)
        if failure is not None:
            return failure
        failure = check_reported_path(source, target, response, tuples)
        if failure is not None:
            return failure

        verdict = _client_astar(source, target, response.path_cost, tuples, params)
        if isinstance(verdict, VerificationResult):
            return verdict
        if not distances_close(verdict, response.path_cost):
            return VerificationResult.failure(
                "not-optimal",
                f"subgraph A* distance {verdict} != reported {response.path_cost}",
            )
        return VerificationResult.success(distance=verdict, subgraph_nodes=len(tuples))


class _BoundEvaluator:
    """Client-side Lemma 4 bound over decoded tuples (with caching)."""

    def __init__(self, tuples: "dict[int, LdmTuple]", params: LdmParams) -> None:
        self._tuples = tuples
        self._params = params
        self._effective: dict[int, tuple[np.ndarray, int]] = {}

    def effective(self, node_id: int) -> "tuple[np.ndarray, int] | None":
        """``(representative codes, ε units)`` or None if unresolvable."""
        cached = self._effective.get(node_id)
        if cached is not None:
            return cached
        tup = self._tuples.get(node_id)
        if tup is None:
            return None
        # The bits field only travels with code-carrying tuples (compressed
        # tuples hold a reference, not codes), so it is checked on whichever
        # tuple actually supplies the vector.
        if tup.is_compressed:
            rep = self._tuples.get(tup.ref_id)
            if rep is None or rep.is_compressed or rep.bits != self._params.bits:
                return None
            resolved = (np.asarray(rep.codes, dtype=np.int64), tup.eps_units)
        else:
            if tup.bits != self._params.bits:
                return None
            resolved = (np.asarray(tup.codes, dtype=np.int64), 0)
        self._effective[node_id] = resolved
        return resolved

    def lower_bound(self, u_eff: "tuple[np.ndarray, int]",
                    v_eff: "tuple[np.ndarray, int]") -> float:
        """Lemma 4 bound between two resolved nodes."""
        return lemma4_lower_bound(u_eff[0], u_eff[1], v_eff[0], v_eff[1],
                                  self._params.lam)


def _client_astar(source: int, target: int, reported: float,
                  tuples: "dict[int, LdmTuple]",
                  params: LdmParams) -> "float | VerificationResult":
    """Validity-checked A* (with re-opening) over the disclosed subgraph."""
    if source not in tuples:
        return VerificationResult.failure("source-missing",
                                          f"no tuple for source node {source}")
    if target not in tuples:
        return VerificationResult.failure("target-missing",
                                          f"no tuple for target node {target}")
    bounds = _BoundEvaluator(tuples, params)
    target_eff = bounds.effective(target)
    if target_eff is None:
        return VerificationResult.failure(
            "missing-representative", f"cannot resolve vector of target {target}"
        )
    margin = reported + REL_TOL * reported + ABS_TOL

    source_eff = bounds.effective(source)
    if source_eff is None:
        return VerificationResult.failure(
            "missing-representative", f"cannot resolve vector of source {source}"
        )
    best: dict[int, float] = {source: 0.0}
    heap: list[tuple[float, float, int]] = [
        (bounds.lower_bound(source_eff, target_eff), 0.0, source)
    ]
    while heap:
        key, g, u = heapq.heappop(heap)
        if g > best.get(u, float("inf")):
            continue  # superseded by a re-opening
        if u == target:
            return g
        if key > margin:
            return VerificationResult.failure(
                "not-optimal",
                f"every remaining route exceeds the reported distance {reported}",
            )
        for v, w in tuples[u].adjacency:
            nd = g + w
            if v not in tuples:
                return VerificationResult.failure(
                    "incomplete-subgraph",
                    f"neighbor {v} of expanded node {u} was not disclosed",
                )
            if nd >= best.get(v, float("inf")):
                continue
            v_eff = bounds.effective(v)
            if v_eff is None:
                return VerificationResult.failure(
                    "missing-representative",
                    f"cannot resolve vector of node {v}",
                )
            best[v] = nd
            heapq.heappush(heap, (nd + bounds.lower_bound(v_eff, target_eff), nd, v))
    return VerificationResult.failure(
        "target-unreachable",
        f"target {target} is unreachable in the disclosed subgraph",
    )
