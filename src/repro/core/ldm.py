"""LDM — landmark-based verification (paper §V-A).

The owner picks ``c`` landmarks, quantizes every node's landmark
distance vector to ``b`` bits (Lemma 3) and compresses vectors within
threshold ξ (Lemma 4).  The vector information rides inside each
extended tuple Φ(v) (Eq. 4) and is therefore authenticated by the
network Merkle tree.

The proof ΓS is the *A\\* cone* (Lemma 2): every node ``v`` with
``dist(vs, v) + LB(v, vt) <= dist(vs, vt)``, together with the tuples
of its neighbors and of every referenced representative node.  The
client re-runs A\\* over the disclosed subgraph using the same lower
bound.

The quantized/compressed bound is admissible but *not consistent*, so
the client's A\\* allows node re-opening; admissibility alone then
guarantees that the target's first settlement is optimal, and the
Lemma-2 cone covers every node such a search can pop before the target
(each pop's key lower-bounds the optimum, so pops never exceed
``dist(vs, vt)`` while the target is unsettled).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

import numpy as np

from repro.core.checks import (
    NetworkTreeBundle,
    check_reported_path,
    decode_tuples,
    sign_descriptor,
    verify_descriptor,
    verify_section_root,
)
from repro.core.framework import ABS_TOL, REL_TOL, VerificationResult, distances_close
from repro.core.method import SignatureVerifier, VerificationMethod, register_method
from repro.core.proofs import NETWORK_TREE, QueryResponse, SignedDescriptor, TreeConfig
from repro.crypto.signer import Signer
from repro.encoding import Decoder, Encoder
from repro.errors import EncodingError
from repro.graph.graph import SpatialGraph
from repro.graph.tuples import LdmTuple
from repro.landmarks.compression import (
    CompressedVectors,
    compress_exact_greedy,
    compress_leader,
    lemma4_lower_bound,
)
from repro.landmarks.quantization import quantize_vectors
from repro.landmarks.selection import select_landmarks
from repro.landmarks.vectors import LandmarkVectors
from repro.order import hilbert_order
from repro.shortestpath.kernel import indexed_ball, indexed_dijkstra
from repro.shortestpath.path import Path


@dataclass(frozen=True)
class LdmParams:
    """Signed LDM parameters (descriptor payload)."""

    landmarks: tuple[int, ...]
    bits: int
    d_max: float
    lam: float
    xi: float

    def encode(self) -> bytes:
        """Canonical encoding."""
        enc = Encoder()
        enc.write_uint_seq(self.landmarks)
        enc.write_uint(self.bits)
        enc.write_f64(self.d_max)
        enc.write_f64(self.lam)
        enc.write_f64(self.xi)
        return enc.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "LdmParams":
        """Inverse of :meth:`encode`."""
        dec = Decoder(data)
        params = cls(
            landmarks=tuple(dec.read_uint_seq()),
            bits=dec.read_uint(),
            d_max=dec.read_f64(),
            lam=dec.read_f64(),
            xi=dec.read_f64(),
        )
        dec.expect_end()
        return params


def _lemma2_margin(distance: float) -> float:
    """Provider-side cone slack: twice the client's comparison margin.

    One shared definition keeps the fused kernel's ball radius and the
    cone-qualification threshold bit-identical.
    """
    return 2 * (REL_TOL * distance + ABS_TOL)


@register_method
class LdmMethod(VerificationMethod):
    """Landmark-based verification with quantization and compression."""

    name = "LDM"

    def __init__(self, graph: SpatialGraph, bundle: NetworkTreeBundle,
                 compressed: CompressedVectors, params: LdmParams,
                 descriptor: SignedDescriptor) -> None:
        super().__init__()
        self._graph = graph
        self._bundle = bundle
        self._compressed = compressed
        self._params = params
        self._descriptor = descriptor
        # Dense effective-vector arrays aligned with the graph index
        # (ascending id order), for vectorized cone selection in
        # :meth:`answer`.  LDM never mutates the graph (no incremental
        # updates), so the alignment is stable for the method's life.
        self._eff_codes, self._eff_eps = compressed.effective_arrays(
            graph.node_ids()
        )

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: SpatialGraph, signer: Signer, *, fanout: int = 2,
              ordering: str = "hbt", hash_name: str = "sha1",
              c: int = 100, bits: int = 12, xi: float = 50.0,
              landmark_strategy: str = "farthest", compressor: str = "leader",
              seed: int = 0, algo_sp: str = "dijkstra",
              **params) -> "LdmMethod":
        if params:
            raise EncodingError(f"LDM got unknown parameters {sorted(params)}")
        start = time.perf_counter()
        landmarks = select_landmarks(graph, c, strategy=landmark_strategy, seed=seed)
        vectors = LandmarkVectors(graph, landmarks)
        codes, spec = quantize_vectors(vectors.vectors, bits)
        ids = graph.node_ids()
        if compressor == "leader":
            compressed = compress_leader(ids, codes, spec, xi,
                                         scan_order=hilbert_order(graph))
        elif compressor == "exact":
            compressed = compress_exact_greedy(ids, codes, spec, xi)
        else:
            raise EncodingError(f"unknown compressor {compressor!r}")
        construction = time.perf_counter() - start

        ldm_params = LdmParams(
            landmarks=tuple(landmarks), bits=bits,
            d_max=spec.d_max, lam=spec.lam, xi=xi,
        )

        def tuple_factory(node_id: int) -> LdmTuple:
            node = graph.node(node_id)
            adjacency = tuple(sorted(
                (int(v), float(w)) for v, w in graph.neighbors(node_id).items()
            ))
            if node_id in compressed.codes_of:
                return LdmTuple(
                    node.id, node.x, node.y, adjacency,
                    codes=tuple(int(code) for code in compressed.codes_of[node_id]),
                    bits=bits,
                )
            theta, eps_units = compressed.ref_of[node_id]
            return LdmTuple(node.id, node.x, node.y, adjacency,
                            codes=None, ref_id=theta, eps_units=eps_units, bits=bits)

        bundle = NetworkTreeBundle(graph, tuple_factory, ordering=ordering,
                                   fanout=fanout, hash_name=hash_name)
        descriptor = sign_descriptor(
            SignedDescriptor(
                method=cls.name,
                hash_name=hash_name,
                params=ldm_params.encode(),
                trees=(TreeConfig(NETWORK_TREE, bundle.tree.num_leaves, fanout,
                                  bundle.tree.root),),
            ),
            signer,
        )
        method = cls(graph, bundle, compressed, ldm_params, descriptor)
        method.construction_seconds = construction
        method.algo_sp = algo_sp
        return method

    # ------------------------------------------------------------------
    def answer(self, source: int, target: int, *,
               forced_path: "Path | None" = None) -> QueryResponse:
        # Lemma 2 cone: server margin is wider than the client's expansion
        # margin so float noise can never make an honest proof incomplete.
        index = self._graph.to_index()
        if forced_path is None and self.algo_sp == "dijkstra":
            # One fused expansion yields the path and the margin ball.
            result = indexed_ball(index, source, target,
                                  margin=_lemma2_margin)
            path = result.path_to(target)
            ball = result
        else:
            path = forced_path if forced_path is not None else \
                self._shortest_path(source, target)
            ball = None
        distance = path.cost
        margin = _lemma2_margin(distance)
        if ball is None:
            ball = indexed_dijkstra(index, source, radius=distance + margin)

        # Vectorized Lemma 4 bound over every settled node: identical
        # float arithmetic to CompressedVectors.lower_bound, one NumPy
        # pass instead of a Python call per node.
        settled = np.fromiter(ball.settled_order, dtype=np.intp,
                              count=len(ball.settled_order))
        dists = np.fromiter((ball.dist[u] for u in ball.settled_order),
                            dtype=np.float64, count=len(ball.settled_order))
        lam = self._params.lam
        t_idx = index.index_of[target]
        units = np.abs(self._eff_codes[settled] - self._eff_codes[t_idx]).max(axis=1)
        loose = np.maximum(0.0, lam * (units - 1))
        lb = np.maximum(0.0, loose - lam * (self._eff_eps[settled]
                                            + self._eff_eps[t_idx]))
        qualifying = settled[dists + lb <= distance + margin]

        ids = index.ids
        indptr = index.indptr
        nbrs = index.neighbors
        include: set[int] = {source, target}
        for u in qualifying.tolist():
            include.add(ids[u])
            for k in range(indptr[u], indptr[u + 1]):
                include.add(ids[nbrs[k]])
        # Every included compressed node drags in its representative,
        # whose vector the client needs to evaluate the bound.
        for v in list(include):
            ref = self._compressed.ref_of.get(v)
            if ref is not None:
                include.add(ref[0])
        section = self._bundle.section_for(include)
        return QueryResponse(
            method=self.name,
            source=source,
            target=target,
            path_nodes=path.nodes,
            path_cost=path.cost,
            sections={NETWORK_TREE: section},
            descriptor=self._descriptor,
        )

    # ------------------------------------------------------------------
    @classmethod
    def verify(cls, source: int, target: int, response: QueryResponse,
               verify_signature: SignatureVerifier) -> VerificationResult:
        failure = verify_descriptor(cls.name, response, verify_signature)
        if failure is not None:
            return failure
        try:
            params = LdmParams.decode(response.descriptor.params)
            section = response.section(NETWORK_TREE)
            tuples = decode_tuples(section, LdmTuple)
        except EncodingError as exc:
            return VerificationResult.failure("malformed-proof", str(exc))
        failure = verify_section_root(response.descriptor, section)
        if failure is not None:
            return failure
        failure = check_reported_path(source, target, response, tuples)
        if failure is not None:
            return failure

        verdict = _client_astar(source, target, response.path_cost, tuples, params)
        if isinstance(verdict, VerificationResult):
            return verdict
        if not distances_close(verdict, response.path_cost):
            return VerificationResult.failure(
                "not-optimal",
                f"subgraph A* distance {verdict} != reported {response.path_cost}",
            )
        return VerificationResult.success(distance=verdict, subgraph_nodes=len(tuples))


class _BoundEvaluator:
    """Client-side Lemma 4 bound over decoded tuples (with caching)."""

    def __init__(self, tuples: "dict[int, LdmTuple]", params: LdmParams) -> None:
        self._tuples = tuples
        self._params = params
        self._effective: dict[int, tuple[np.ndarray, int]] = {}

    def effective(self, node_id: int) -> "tuple[np.ndarray, int] | None":
        """``(representative codes, ε units)`` or None if unresolvable."""
        cached = self._effective.get(node_id)
        if cached is not None:
            return cached
        tup = self._tuples.get(node_id)
        if tup is None:
            return None
        # The bits field only travels with code-carrying tuples (compressed
        # tuples hold a reference, not codes), so it is checked on whichever
        # tuple actually supplies the vector.
        if tup.is_compressed:
            rep = self._tuples.get(tup.ref_id)
            if rep is None or rep.is_compressed or rep.bits != self._params.bits:
                return None
            resolved = (np.asarray(rep.codes, dtype=np.int64), tup.eps_units)
        else:
            if tup.bits != self._params.bits:
                return None
            resolved = (np.asarray(tup.codes, dtype=np.int64), 0)
        self._effective[node_id] = resolved
        return resolved

    def lower_bound(self, u_eff: "tuple[np.ndarray, int]",
                    v_eff: "tuple[np.ndarray, int]") -> float:
        """Lemma 4 bound between two resolved nodes."""
        return lemma4_lower_bound(u_eff[0], u_eff[1], v_eff[0], v_eff[1],
                                  self._params.lam)


def _client_astar(source: int, target: int, reported: float,
                  tuples: "dict[int, LdmTuple]",
                  params: LdmParams) -> "float | VerificationResult":
    """Validity-checked A* (with re-opening) over the disclosed subgraph."""
    if source not in tuples:
        return VerificationResult.failure("source-missing",
                                          f"no tuple for source node {source}")
    if target not in tuples:
        return VerificationResult.failure("target-missing",
                                          f"no tuple for target node {target}")
    bounds = _BoundEvaluator(tuples, params)
    target_eff = bounds.effective(target)
    if target_eff is None:
        return VerificationResult.failure(
            "missing-representative", f"cannot resolve vector of target {target}"
        )
    margin = reported + REL_TOL * reported + ABS_TOL

    source_eff = bounds.effective(source)
    if source_eff is None:
        return VerificationResult.failure(
            "missing-representative", f"cannot resolve vector of source {source}"
        )
    best: dict[int, float] = {source: 0.0}
    heap: list[tuple[float, float, int]] = [
        (bounds.lower_bound(source_eff, target_eff), 0.0, source)
    ]
    while heap:
        key, g, u = heapq.heappop(heap)
        if g > best.get(u, float("inf")):
            continue  # superseded by a re-opening
        if u == target:
            return g
        if key > margin:
            return VerificationResult.failure(
                "not-optimal",
                f"every remaining route exceeds the reported distance {reported}",
            )
        for v, w in tuples[u].adjacency:
            nd = g + w
            if v not in tuples:
                return VerificationResult.failure(
                    "incomplete-subgraph",
                    f"neighbor {v} of expanded node {u} was not disclosed",
                )
            if nd >= best.get(v, float("inf")):
                continue
            v_eff = bounds.effective(v)
            if v_eff is None:
                return VerificationResult.failure(
                    "missing-representative",
                    f"cannot resolve vector of node {v}",
                )
            best[v] = nd
            heapq.heappush(heap, (nd + bounds.lower_bound(v_eff, target_eff), nd, v))
    return VerificationResult.failure(
        "target-unreachable",
        f"target {target} is unreachable in the disclosed subgraph",
    )
