"""The paper's contribution: authenticated shortest path verification.

Four methods spanning the precomputation / proof-size trade-off:

* :class:`~repro.core.dij.DijMethod` — no hints, Dijkstra-ball subgraph proof;
* :class:`~repro.core.full.FullMethod` — all-pairs distance Merkle B-tree;
* :class:`~repro.core.ldm.LdmMethod` — quantized + compressed landmark vectors;
* :class:`~repro.core.hyp.HypMethod` — HiTi grid with hyper-edge distances.

Use the three-party roles for the full workflow::

    owner = DataOwner(graph)
    method = owner.publish("LDM", c=100)
    provider = ServiceProvider(method)
    client = Client(owner.signer.verify)

    response = provider.answer(vs, vt)
    result = client.verify(vs, vt, response)
    assert result.ok
"""

from repro.core import adversary
from repro.core.dij import DijMethod
from repro.core.framework import Client, DataOwner, ServiceProvider, VerificationResult
from repro.core.full import FullMethod
from repro.core.hyp import HypMethod
from repro.core.ldm import LdmMethod, LdmParams
from repro.core.method import METHODS, UpdateReport, VerificationMethod, get_method
from repro.core.proofs import (
    DIRECTORY_TREE,
    DISTANCE_TREE,
    NETWORK_TREE,
    ProofSizes,
    QueryResponse,
    SignedDescriptor,
    TreeConfig,
    TreeSection,
)

__all__ = [
    "DataOwner",
    "ServiceProvider",
    "Client",
    "VerificationResult",
    "VerificationMethod",
    "UpdateReport",
    "METHODS",
    "get_method",
    "DijMethod",
    "FullMethod",
    "LdmMethod",
    "LdmParams",
    "HypMethod",
    "QueryResponse",
    "SignedDescriptor",
    "TreeConfig",
    "TreeSection",
    "ProofSizes",
    "NETWORK_TREE",
    "DISTANCE_TREE",
    "DIRECTORY_TREE",
    "adversary",
]
