"""Malicious service provider models.

Each function takes an honest setup (a built method) or an honest
response and produces a *tampered* response exercising one attack from
the paper's threat model.  Used by the test suite and the
``malicious_server`` example to demonstrate that every attack is
rejected by client verification.

Attacks
-------
``suboptimal_path``
    Report a genuine but longer path, with proofs generated around it
    (the "profit-motivated provider" scenario).
``tamper_weight``
    Rewrite an edge weight inside a disclosed tuple without updating
    the Merkle material (the "compromised server" scenario).
``drop_tuple``
    Remove one tuple from ΓS and patch ΓT with its digest so the root
    still reconstructs — the exact attack §IV-A warns about.
``forge_distance``
    Rewrite the FULL/HYP distance tuple's value.
``strip_signature`` / ``wrong_target``
    Protocol-level mangling.
``replay_stale_root``
    Freshness attack: replay a response whose descriptor was signed
    before an owner update.  Every byte is authentic — only version
    pinning (the client's ``min_version`` freshness floor) catches it.
"""

from __future__ import annotations

import copy

from repro.core.method import VerificationMethod
from repro.core.proofs import DISTANCE_TREE, NETWORK_TREE, QueryResponse
from repro.crypto.hashing import get_hash
from repro.encoding import Decoder, Encoder
from repro.errors import MethodError
from repro.graph.graph import SpatialGraph
from repro.graph.tuples import BaseTuple
from repro.merkle.proof import MerkleProofEntry
from repro.merkle.tree import leaf_digest
from repro.shortestpath.dijkstra import dijkstra
from repro.shortestpath.path import Path


def suboptimal_path(method: VerificationMethod, graph: SpatialGraph,
                    source: int, target: int) -> QueryResponse:
    """Answer with a genuine but non-shortest path, proofs included.

    The detour is found by deleting one edge of the true shortest path
    and re-searching; the provider then builds its proofs around the
    longer path, exactly as a profit-motivated provider would.
    Raises :class:`MethodError` if the network offers no detour.
    """
    honest = dijkstra(graph, source, target=target).path_to(target)
    if honest.num_edges == 0:
        raise MethodError("degenerate query: source equals target")
    working = graph.copy()
    for u, v in honest.edges():
        working.remove_edge(u, v)
        alt = dijkstra(working, source, target=target)
        working.add_edge(u, v, graph.weight(u, v))
        if target in alt.dist and alt.dist[target] > honest.cost * (1 + 1e-9):
            detour_nodes = alt.path_to(target).nodes
            detour = Path.from_nodes(graph, detour_nodes)
            return method.answer(source, target, forced_path=detour)
    raise MethodError(
        f"no strictly longer alternative path between {source} and {target}"
    )


def _rewrite_first_adjacency_weight(payload: bytes, delta: float) -> bytes:
    """Decode a tuple payload, perturb its first edge weight, re-encode.

    Works for every tuple flavor because the adjacency block is shared:
    the payload prefix up to the adjacency list is copied verbatim.
    """
    dec = Decoder(payload)
    node_id = dec.read_uint()
    x = dec.read_f64()
    y = dec.read_f64()
    count = dec.read_uint()
    if count == 0:
        raise MethodError(f"node {node_id} has no edges to tamper with")
    adjacency = [(dec.read_uint(), dec.read_f64()) for _ in range(count)]
    tail = dec.read_raw(dec.remaining)
    adjacency[0] = (adjacency[0][0], adjacency[0][1] + delta)
    enc = Encoder()
    enc.write_uint(node_id).write_f64(x).write_f64(y)
    enc.write_uint(count)
    for nbr, w in adjacency:
        enc.write_uint(nbr).write_f64(w)
    enc.write_raw(tail)
    return enc.getvalue()


def tamper_weight(response: QueryResponse, *, delta: float = 1.0) -> QueryResponse:
    """Corrupt one edge weight in the first disclosed network tuple."""
    tampered = copy.deepcopy(response)
    section = tampered.section(NETWORK_TREE)
    for i, payload in enumerate(section.payloads):
        try:
            section.payloads[i] = _rewrite_first_adjacency_weight(payload, delta)
            return tampered
        except MethodError:
            continue
    raise MethodError("no tuple with edges found to tamper with")


def drop_tuple(response: QueryResponse, *, keep: "set[int] | None" = None) -> QueryResponse:
    """§IV-A attack: remove a ΓS tuple, patch ΓT with its digest.

    The Merkle root still reconstructs, so only the shortest-path
    validity check can catch this.  ``keep`` lists node ids that must
    stay (by default the reported path, so the attack targets the
    search's evidence rather than the path itself).
    """
    tampered = copy.deepcopy(response)
    section = tampered.section(NETWORK_TREE)
    keep = set(response.path_nodes) if keep is None else keep
    hash_fn = get_hash(response.descriptor.hash_name)
    fanout = response.descriptor.tree(NETWORK_TREE).fanout
    positions = set(section.positions)
    for i, payload in enumerate(section.payloads):
        node_id = BaseTuple._decode_header(Decoder(payload))[0]
        if node_id in keep:
            continue
        position = section.positions[i]
        # The patched ΓT must stay structurally canonical: after removal
        # the Merkle cover emits the bare leaf digest only when another
        # leaf of the same sibling group is still disclosed.
        group = range((position // fanout) * fanout, (position // fanout + 1) * fanout)
        if not any(p in positions and p != position for p in group):
            continue
        digest = leaf_digest(payload, hash_fn)
        del section.positions[i]
        del section.payloads[i]
        section.entries.append(MerkleProofEntry(0, position, digest))
        return tampered
    raise MethodError("no droppable tuple with a disclosed sibling leaf")


def forge_distance(response: QueryResponse, *, delta: float = -1.0) -> QueryResponse:
    """Rewrite the value inside the first disclosed distance tuple."""
    tampered = copy.deepcopy(response)
    section = tampered.section(DISTANCE_TREE)
    dec = Decoder(section.payloads[0])
    a = dec.read_uint()
    b = dec.read_uint()
    dist = dec.read_f64()
    enc = Encoder().write_uint(a).write_uint(b).write_f64(dist + delta)
    section.payloads[0] = enc.getvalue()
    return tampered


def strip_signature(response: QueryResponse) -> QueryResponse:
    """Replace the descriptor signature with zeros."""
    tampered = copy.deepcopy(response)
    descriptor = tampered.descriptor
    tampered.descriptor = descriptor.with_signature(b"\x00" * len(descriptor.signature))
    return tampered


def inflate_cost(response: QueryResponse, *, factor: float = 1.5) -> QueryResponse:
    """Claim a larger path cost without changing anything else."""
    tampered = copy.deepcopy(response)
    tampered.path_cost = response.path_cost * factor
    return tampered


def replay_stale_root(stale_response: QueryResponse) -> QueryResponse:
    """Freshness attack: replay a pre-update response verbatim.

    The provider answers today's query with a proof generated before
    the owner's last update — perhaps the update re-priced the road the
    provider profits from.  Everything in the replayed response is
    *authentic*: the tuples match the old Merkle roots and the old
    descriptor carries a genuine owner signature, so tamper detection
    cannot reject it.  What gives it away is the descriptor's signed
    ``version``: a client that pins the owner's current version (the
    ``min_version`` freshness floor, distributed out of band like the
    public key) rejects the replay with ``stale-descriptor``.
    """
    return copy.deepcopy(stale_response)
