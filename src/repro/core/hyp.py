"""HYP — hyper-graph verification (paper §V-B).

The owner tiles the network into ``p`` grid cells, marks border nodes,
and materializes a hyper-edge ``W*(b1, b2) = dist(b1, b2)`` for every
pair of border nodes (footnote 1) in a distance Merkle B-tree.  Each
extended tuple Φ(v) carries the node's cell id and border flag
(Eq. 7).

The proof has two parts, combined into one response:

* **coarse proof** — Φ of every node in the source and target cells,
  plus the hyper-edges between the two cells' border sets (all pairs
  inside the union when the two cells coincide).  By Theorem 2 the
  shortest path distance on this coarse graph equals ``dist(vs, vt)``.
* **fine proof** — Φ of the nodes the reported path crosses in
  intermediate cells, letting the client re-add the path's edge
  weights and match them against the coarse distance.

A third tiny ADS, the *cell directory*, maps each cell to its sorted
member list so the client can detect withheld cell members (see
DESIGN.md §3 — the paper leaves this completeness check implicit).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.checks import (
    NetworkTreeBundle,
    check_reported_path,
    decode_tuples,
    incremental_patch_wins,
    resign_descriptor,
    sign_descriptor,
    verify_descriptor,
    verify_section_root,
)
from repro.core.framework import VerificationResult, distances_close
from repro.core.incremental import (
    affected_sources,
    edge_endpoints,
    needs_layout_rebuild,
)
from repro.core.method import SignatureVerifier, VerificationMethod, register_method
from repro.core.state import dump_bundle, load_bundle, load_descriptor_tree
from repro.core.proofs import (
    DIRECTORY_TREE,
    DISTANCE_TREE,
    NETWORK_TREE,
    QueryResponse,
    SignedDescriptor,
    TreeConfig,
    TreeSection,
)
from repro.crypto.signer import Signer
from repro.errors import ArtifactError, EncodingError, GraphError, MethodError
from repro.graph.graph import GraphMutation, SpatialGraph
from repro.graph.tuples import (
    CellDirectoryTuple,
    DistanceTuple,
    HypTuple,
    triangle_leaf_digests,
)
from repro.hiti.coarse import build_coarse_graph
from repro.hiti.hyperedges import HyperEdgeSet, compute_hyperedges, triangle_index
from repro.hiti.partition import GridPartition, GridSpec
from repro.merkle.tree import MerkleTree
from repro.shortestpath.bulk import multi_source_distances
from repro.shortestpath.dijkstra import dijkstra
from repro.shortestpath.path import Path


def _make_tuple_factory(graph: SpatialGraph, partition: GridPartition):
    """Φ(v) encoder bound to one partition state (Eq. 7).

    Shared by ``build`` and the update path so incremental
    re-authentication re-encodes tuples exactly as a fresh build would.
    """

    def tuple_factory(node_id: int) -> HypTuple:
        node = graph.node(node_id)
        adjacency = tuple(sorted(
            (int(v), float(w)) for v, w in graph.neighbors(node_id).items()
        ))
        return HypTuple(node.id, node.x, node.y, adjacency,
                        cell_id=partition.cell(node_id),
                        is_border=partition.is_border(node_id))

    return tuple_factory


@register_method
class HypMethod(VerificationMethod):
    """Hyper-graph verification over a 2-level HiTi grid."""

    name = "HYP"

    def __init__(self, graph: SpatialGraph, bundle: NetworkTreeBundle,
                 partition: GridPartition, hyper: HyperEdgeSet,
                 distance_tree: MerkleTree, directory_tree: MerkleTree,
                 directory_payloads: "dict[int, tuple[int, bytes]]",
                 descriptor: SignedDescriptor) -> None:
        super().__init__()
        self._graph = graph
        self._bundle = bundle
        self._partition = partition
        self._hyper = hyper
        self._distance_tree = distance_tree
        self._directory_tree = directory_tree
        #: cell id -> (leaf position, payload)
        self._directory_payloads = directory_payloads
        self._descriptor = descriptor

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: SpatialGraph, signer: Signer, *, fanout: int = 2,
              ordering: str = "hbt", hash_name: str = "sha1",
              num_cells: int = 100, algo_sp: str = "dijkstra",
              **params) -> "HypMethod":
        if params:
            raise EncodingError(f"HYP got unknown parameters {sorted(params)}")
        start = time.perf_counter()
        partition = GridPartition(graph, num_cells)
        hyper = compute_hyperedges(graph, partition.all_borders())
        distance_tree = MerkleTree(
            leaf_digests=triangle_leaf_digests(hyper.borders, hyper.distances,
                                               hash_name),
            fanout=fanout, hash_fn=hash_name,
        )
        directory_payloads: dict[int, tuple[int, bytes]] = {}
        payload_list: list[bytes] = []
        for position, cell in enumerate(partition.occupied_cells):
            payload = CellDirectoryTuple(
                cell, tuple(partition.members_of(cell))
            ).encode()
            directory_payloads[cell] = (position, payload)
            payload_list.append(payload)
        directory_tree = MerkleTree(payload_list, fanout=fanout, hash_fn=hash_name)
        construction = time.perf_counter() - start

        bundle = NetworkTreeBundle(graph, _make_tuple_factory(graph, partition),
                                   ordering=ordering, fanout=fanout,
                                   hash_name=hash_name)
        descriptor = sign_descriptor(
            SignedDescriptor(
                method=cls.name,
                hash_name=hash_name,
                params=partition.spec.encode(),
                trees=(
                    TreeConfig(NETWORK_TREE, bundle.tree.num_leaves, fanout,
                               bundle.tree.root),
                    TreeConfig(DISTANCE_TREE, distance_tree.num_leaves, fanout,
                               distance_tree.root),
                    TreeConfig(DIRECTORY_TREE, directory_tree.num_leaves, fanout,
                               directory_tree.root),
                ),
                version=graph.version,
            ),
            signer,
        )
        method = cls(graph, bundle, partition, hyper, distance_tree,
                     directory_tree, directory_payloads, descriptor)
        method.construction_seconds = construction
        method.algo_sp = algo_sp
        method._synced_version = graph.version
        method._build_params = dict(fanout=fanout, ordering=ordering,
                                    hash_name=hash_name, num_cells=num_cells,
                                    algo_sp=algo_sp)
        method._publish_params = method._build_params
        return method

    # ------------------------------------------------------------------
    # serve-state persistence
    # ------------------------------------------------------------------
    def _dump_sections(self, state) -> None:
        if self._hyper.source_rows is None:
            raise MethodError(
                "HYP method with an externally built hyper layer has no "
                "source rows to persist; rebuild from the graph first"
            )
        dump_bundle(state, self._bundle)
        # The grid partition and the cell directory are deterministic
        # functions of the graph; only the border multi-source rows —
        # the dominant construction cost — need to travel.  The (B, B)
        # hyper-edge matrix is re-sliced from them on load with the
        # exact symmetrization the build uses, so it stays bit-identical
        # without its own section.
        state.arrays["hyp/source_rows"] = self._hyper.source_rows
        state.blobs["distance/tree"] = self._distance_tree.dump_state()
        state.blobs["directory/tree"] = self._directory_tree.dump_state()

    @classmethod
    def _load_sections(cls, state) -> "HypMethod":
        graph = state.graph
        num_cells = state.build_params.get("num_cells")
        if not isinstance(num_cells, int):
            raise ArtifactError("build params carry no cell count")
        try:
            partition = GridPartition(graph, num_cells)
        except GraphError as exc:
            raise ArtifactError(f"cannot re-partition the graph: {exc}") from exc
        borders = partition.all_borders()
        if not borders:
            raise ArtifactError("rehydrated partition has no border nodes")
        source_rows = state.array("hyp/source_rows", dtype=np.float64,
                                  shape=(len(borders), graph.num_nodes))
        col_of = graph.to_index().index_of
        sliced = source_rows[:, [col_of[b] for b in borders]]
        hyper = HyperEdgeSet(borders, np.minimum(sliced, sliced.T),
                             source_rows=source_rows)
        distance_tree = load_descriptor_tree(state, "distance/tree",
                                             DISTANCE_TREE)
        if distance_tree.num_leaves != hyper.num_pairs:
            raise ArtifactError(
                f"distance tree has {distance_tree.num_leaves} leaves for "
                f"{hyper.num_pairs} hyper-edge pairs"
            )
        directory_payloads: dict[int, tuple[int, bytes]] = {}
        for position, cell in enumerate(partition.occupied_cells):
            payload = CellDirectoryTuple(
                cell, tuple(partition.members_of(cell))
            ).encode()
            directory_payloads[cell] = (position, payload)
        directory_tree = load_descriptor_tree(state, "directory/tree",
                                              DIRECTORY_TREE)
        if directory_tree.num_leaves != len(directory_payloads):
            raise ArtifactError(
                f"directory tree has {directory_tree.num_leaves} leaves for "
                f"{len(directory_payloads)} occupied cells"
            )
        bundle = load_bundle(state, _make_tuple_factory(graph, partition))
        return cls(graph, bundle, partition, hyper, distance_tree,
                   directory_tree, directory_payloads, state.descriptor)

    # ------------------------------------------------------------------
    def _border_flags_moved(self, mutations: "list[GraphMutation]") -> bool:
        """Whether the batch flipped any endpoint's border status.

        Only structural mutations can: a node is a border node iff some
        neighbor lives in another cell, and the batch only changed the
        neighbor sets of its endpoints.
        """
        partition = self._partition
        for node_id in edge_endpoints(mutations):
            cell = partition.cell(node_id)
            is_border = any(
                partition.cell(nbr) != cell
                for nbr in self._graph.neighbors(node_id)
            )
            if is_border != partition.is_border(node_id):
                return True
        return False

    def _apply_mutations(self, mutations: "list[GraphMutation]",
                         signer: Signer) -> tuple[str, int, int]:
        """Re-derive only the hyper-edge rows the batch can have touched.

        The grid partition depends on coordinates alone and the cell
        directory on membership alone, so both survive any edge
        mutation.  Weight changes leave the border set intact: the
        affected-source filter picks the border nodes whose shortest
        path forests could cross a mutated edge, their raw rows are
        re-run through the bulk backend, and the re-symmetrized pairs
        that moved are patched into the distance tree.  A structural
        mutation that flips a border flag changes the hyper-edge *set*
        itself, so the hyper layer is reconstructed wholesale while the
        partition, directory tree and untouched Φ leaves are kept —
        the targeted partial rebuild.
        """
        if needs_layout_rebuild(mutations, self._bundle.ordering):
            return self._rebuild(signer)
        if self._hyper.source_rows is None:  # externally-built hyper layer
            return self._rebuild(signer)
        graph = self._graph
        old = self._descriptor
        fanout = old.tree(DISTANCE_TREE).fanout
        hash_fn = self._distance_tree.hash_fn
        leaves_patched = 0
        trees_rebuilt = 0
        mode = "incremental"

        if self._border_flags_moved(mutations):
            # Border set changed: same grid, new hyper layer.  Build
            # everything before committing any of it, so a rejected
            # mutation (e.g. a disconnecting removal raising inside
            # compute_hyperedges) leaves the method untouched and the
            # caller free to roll the graph back.
            partition = GridPartition(graph, self._partition.spec.num_cells)
            flag_flips = {
                node_id for node_id, flag in partition.border_flags.items()
                if flag != self._partition.border_flags[node_id]
            }
            hyper = compute_hyperedges(graph, partition.all_borders())
            distance_tree = MerkleTree(
                leaf_digests=triangle_leaf_digests(
                    hyper.borders, hyper.distances, hash_fn),
                fanout=fanout, hash_fn=hash_fn,
            )
            self._partition = partition
            self._hyper = hyper
            self._distance_tree = distance_tree
            bundle = self._bundle
            bundle.set_tuple_factory(_make_tuple_factory(graph, partition))
            patched, rebuilt = bundle.refresh_nodes(
                flag_flips | edge_endpoints(mutations))
            leaves_patched += patched
            trees_rebuilt += 1 + int(rebuilt)
            mode = "partial-rebuild"
        else:
            hyper = self._hyper
            # The compiled index's id -> column map is exactly the
            # bulk-row column order (ascending ids) and version-cached.
            col_of = graph.to_index().index_of
            affected = affected_sources(hyper.source_rows, mutations, col_of)
            if affected.size:
                new_rows = multi_source_distances(
                    graph, [hyper.borders[i] for i in affected.tolist()])
                border_cols = [col_of[b] for b in hyper.borders]
                # Reject before touching method state: unaffected rows
                # are finite, so a disconnected border pair can only
                # show up in the recomputed rows' border columns.
                if np.isinf(new_rows[:, border_cols]).any():
                    raise GraphError(
                        "disconnected border pair; HYP requires a connected graph")
                hyper.source_rows[affected] = new_rows
                sliced = hyper.source_rows[:, border_cols]
                symmetric = np.minimum(sliced, sliced.T)
                changed: list[tuple[int, bytes]] = []
                n_borders = len(hyper.borders)
                moved_rows, moved_cols = np.nonzero(
                    hyper.distances != symmetric)
                for i, j in zip(moved_rows.tolist(), moved_cols.tolist()):
                    if i >= j:
                        continue
                    changed.append((
                        triangle_index(i, j, n_borders),
                        DistanceTuple(hyper.borders[i], hyper.borders[j],
                                      float(symmetric[i, j])).encode(),
                    ))
                hyper.distances = symmetric
                if incremental_patch_wins(len(changed), self._distance_tree):
                    self._distance_tree.update_leaves(dict(changed))
                    leaves_patched += len(changed)
                else:
                    self._distance_tree = MerkleTree(
                        leaf_digests=triangle_leaf_digests(
                            hyper.borders, symmetric, hash_fn),
                        fanout=fanout, hash_fn=hash_fn,
                    )
                    trees_rebuilt += 1
                    mode = "partial-rebuild"
            patched, rebuilt = self._bundle.refresh_nodes(
                edge_endpoints(mutations))
            leaves_patched += patched
            trees_rebuilt += int(rebuilt)

        self._descriptor = resign_descriptor(
            old, signer,
            trees=(
                TreeConfig(NETWORK_TREE, self._bundle.tree.num_leaves,
                           old.tree(NETWORK_TREE).fanout,
                           self._bundle.tree.root),
                TreeConfig(DISTANCE_TREE, self._distance_tree.num_leaves,
                           fanout, self._distance_tree.root),
                TreeConfig(DIRECTORY_TREE, self._directory_tree.num_leaves,
                           old.tree(DIRECTORY_TREE).fanout,
                           self._directory_tree.root),
            ),
            version=graph.version,
        )
        return mode, leaves_patched, trees_rebuilt

    # ------------------------------------------------------------------
    @staticmethod
    def expected_pairs(borders_s: "list[int]", borders_t: "list[int]",
                       same_cell: bool) -> "set[tuple[int, int]]":
        """The hyper-edge pairs a proof must disclose (unordered, a < b)."""
        pairs: set[tuple[int, int]] = set()
        if same_cell:
            borders = sorted(set(borders_s))
            for i, a in enumerate(borders):
                for b in borders[i + 1:]:
                    pairs.add((a, b))
        else:
            for a in borders_s:
                for b in borders_t:
                    pairs.add((min(a, b), max(a, b)))
        return pairs

    def answer(self, source: int, target: int, *,
               forced_path: "Path | None" = None) -> QueryResponse:
        if forced_path is None:
            path = self._shortest_path(source, target)
        else:
            path = forced_path
        cell_s = self._partition.cell(source)
        cell_t = self._partition.cell(target)
        members = set(self._partition.members_of(cell_s))
        members.update(self._partition.members_of(cell_t))

        network_nodes = members | set(path.nodes)
        network_section = self._bundle.section_for(network_nodes)

        borders_s = self._partition.borders_of(cell_s)
        borders_t = self._partition.borders_of(cell_t)
        pairs = self.expected_pairs(borders_s, borders_t, cell_s == cell_t)
        positions = sorted(self._hyper.pair_index(a, b) for a, b in pairs)
        pair_at = {self._hyper.pair_index(a, b): (a, b) for a, b in pairs}
        payloads = [
            DistanceTuple(*pair_at[pos],
                          self._hyper.weight(*pair_at[pos])).encode()
            for pos in positions
        ]
        sections = {NETWORK_TREE: network_section}
        if positions:
            sections[DISTANCE_TREE] = TreeSection(
                DISTANCE_TREE, positions, payloads,
                self._distance_tree.prove(positions),
            )
        dir_cells = sorted({cell_s, cell_t})
        dir_positions = [self._directory_payloads[c][0] for c in dir_cells]
        dir_payloads = [self._directory_payloads[c][1] for c in dir_cells]
        sections[DIRECTORY_TREE] = TreeSection(
            DIRECTORY_TREE, dir_positions, dir_payloads,
            self._directory_tree.prove(dir_positions),
        )
        return QueryResponse(
            method=self.name,
            source=source,
            target=target,
            path_nodes=path.nodes,
            path_cost=path.cost,
            sections=sections,
            descriptor=self._descriptor,
        )

    # ------------------------------------------------------------------
    @classmethod
    def verify(cls, source: int, target: int, response: QueryResponse,
               verify_signature: SignatureVerifier, *,
               min_version: "int | None" = None) -> VerificationResult:
        failure = verify_descriptor(cls.name, response, verify_signature,
                                    min_version=min_version)
        if failure is not None:
            return failure
        try:
            GridSpec.decode(response.descriptor.params)  # structural sanity
            net_section = response.section(NETWORK_TREE)
            dir_section = response.section(DIRECTORY_TREE)
            tuples = decode_tuples(net_section, HypTuple)
            directories = [CellDirectoryTuple.decode(p) for p in dir_section.payloads]
            hyper_tuples: list[DistanceTuple] = []
            if DISTANCE_TREE in response.sections:
                dist_section = response.section(DISTANCE_TREE)
                hyper_tuples = [DistanceTuple.decode(p) for p in dist_section.payloads]
        except EncodingError as exc:
            return VerificationResult.failure("malformed-proof", str(exc))

        for section in response.sections.values():
            failure = verify_section_root(response.descriptor, section)
            if failure is not None:
                return failure

        if source not in tuples or target not in tuples:
            return VerificationResult.failure(
                "endpoint-missing", "no authenticated tuple for source or target"
            )
        cell_s = tuples[source].cell_id
        cell_t = tuples[target].cell_id

        # --- cell directory completeness -----------------------------
        directory_cells = {d.cell_id for d in directories}
        if directory_cells != {cell_s, cell_t}:
            return VerificationResult.failure(
                "directory-mismatch",
                f"directories cover cells {sorted(directory_cells)}, "
                f"expected {sorted({cell_s, cell_t})}",
            )
        cell_members: dict[int, set[int]] = {}
        for directory in directories:
            cell_members[directory.cell_id] = set(directory.member_ids)
            provided = {
                node_id for node_id, tup in tuples.items()
                if tup.cell_id == directory.cell_id
            }
            if provided != set(directory.member_ids):
                return VerificationResult.failure(
                    "incomplete-cell",
                    f"cell {directory.cell_id}: disclosed members do not match "
                    f"the authenticated directory",
                )

        # --- hyper-edge completeness ----------------------------------
        borders_s = sorted(v for v in cell_members[cell_s] if tuples[v].is_border)
        borders_t = sorted(v for v in cell_members[cell_t] if tuples[v].is_border)
        expected = cls.expected_pairs(borders_s, borders_t, cell_s == cell_t)
        weight_of: dict[tuple[int, int], float] = {}
        for tup in hyper_tuples:
            key = (min(tup.a, tup.b), max(tup.a, tup.b))
            if key in weight_of:
                return VerificationResult.failure(
                    "malformed-proof", f"duplicate hyper-edge tuple for {key}"
                )
            weight_of[key] = tup.distance
        missing = expected - set(weight_of)
        if missing:
            return VerificationResult.failure(
                "incomplete-hyperedges",
                f"{len(missing)} required hyper-edges are undisclosed "
                f"(e.g. {sorted(missing)[0]})",
            )

        # --- coarse graph search (Theorem 2) --------------------------
        cell_tuples = {
            node_id: tup for node_id, tup in tuples.items()
            if tup.cell_id in (cell_s, cell_t)
        }
        coarse = build_coarse_graph(
            cell_tuples,
            [(a, b, weight_of[(a, b)]) for a, b in expected],
        )
        result = dijkstra(coarse, source, target=target)
        if target not in result.dist:
            return VerificationResult.failure(
                "target-unreachable",
                "target is unreachable in the coarse proof graph",
            )
        coarse_distance = result.dist[target]

        # --- fine proof: the reported path itself ----------------------
        failure = check_reported_path(source, target, response, tuples)
        if failure is not None:
            return failure
        if not distances_close(coarse_distance, response.path_cost):
            return VerificationResult.failure(
                "not-optimal",
                f"coarse graph distance {coarse_distance} != reported "
                f"path cost {response.path_cost}",
            )
        return VerificationResult.success(
            distance=coarse_distance,
            coarse_nodes=coarse.num_nodes,
            hyper_edges=len(expected),
        )
