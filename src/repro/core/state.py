"""Build-state vs. serve-state: the methods' persistence surface.

The paper's owner builds and signs **once, offline**; everything a
provider needs afterwards is the *serve state* — the signed descriptor,
the authenticated structures and the per-method answer tables — none
of which requires the signer, and none of which should be recomputed
on every process start.  :class:`MethodState` is that serve state as a
plain in-memory container: named numpy arrays and byte blobs plus the
common metadata every method shares.

``VerificationMethod.dump_state`` fills one of these from a built
method; ``load_state`` reconstructs a serving-capable method from it.
The container stays file-format-agnostic on purpose: the
:mod:`repro.store` pack maps it to and from the on-disk ``.rspv``
layout, and tests can round-trip through it without touching a disk.

Validation here raises :class:`~repro.errors.ArtifactError` only —
state arriving from disk is untrusted input, and the loader's contract
is typed rejection, never a stray ``KeyError``/``ValueError``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ArtifactError
from repro.merkle.tree import MerkleTree

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.core.checks import NetworkTreeBundle
    from repro.core.proofs import SignedDescriptor
    from repro.graph.graph import SpatialGraph


@dataclass
class MethodState:
    """Everything needed to reconstruct a serving-capable method.

    ``graph`` is the provider's copy of the network (live on dump, a
    rehydrated :class:`~repro.graph.graph.SpatialGraph` fast-forwarded
    to ``graph_version`` on load).  ``arrays`` holds numpy sections
    (zero-copy mmap views on load), ``blobs`` raw byte sections.
    ``build_params`` carries the pinned rebuild arguments,
    ``publish_params`` the user-facing ones — exactly the split
    :meth:`~repro.core.method.VerificationMethod.build` records.
    """

    method: str
    graph: "SpatialGraph"
    graph_version: int
    descriptor: "SignedDescriptor"
    build_params: dict
    publish_params: dict
    algo_sp: str
    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    blobs: dict[str, bytes] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def array(self, name: str, *, dtype=None,
              shape: "tuple | None" = None) -> np.ndarray:
        """Fetch an array section, validating dtype/shape when given."""
        arr = self.arrays.get(name)
        if arr is None:
            raise ArtifactError(f"artifact is missing array section {name!r}")
        if dtype is not None and arr.dtype != np.dtype(dtype):
            raise ArtifactError(
                f"section {name!r} has dtype {arr.dtype}, expected {np.dtype(dtype)}"
            )
        if shape is not None and tuple(arr.shape) != tuple(shape):
            raise ArtifactError(
                f"section {name!r} has shape {tuple(arr.shape)}, "
                f"expected {tuple(shape)}"
            )
        return arr

    def blob(self, name: str) -> bytes:
        """Fetch a byte-blob section."""
        data = self.blobs.get(name)
        if data is None:
            raise ArtifactError(f"artifact is missing byte section {name!r}")
        return data


# ----------------------------------------------------------------------
# Shared section helpers
# ----------------------------------------------------------------------
def join_payloads(payloads: "list[bytes]") -> "tuple[bytes, np.ndarray]":
    """Concatenate payloads into ``(blob, offsets)``.

    ``offsets`` has ``len(payloads) + 1`` entries; payload ``i`` is
    ``blob[offsets[i]:offsets[i + 1]]``.
    """
    offsets = np.zeros(len(payloads) + 1, dtype=np.uint64)
    if payloads:
        offsets[1:] = np.cumsum([len(p) for p in payloads])
    return b"".join(payloads), offsets


def split_payloads(blob: bytes, offsets: np.ndarray) -> "list[bytes]":
    """Inverse of :func:`join_payloads`, with strict bounds checking."""
    if offsets.ndim != 1 or offsets.size == 0:
        raise ArtifactError("payload offset table must be a non-empty vector")
    ends = offsets.astype(np.int64, copy=False)
    if ends[0] != 0 or np.any(np.diff(ends) < 0) or int(ends[-1]) != len(blob):
        raise ArtifactError(
            "payload offsets are not a monotone cover of the payload blob"
        )
    blob = bytes(blob)
    bounds = ends.tolist()
    return [blob[bounds[i]:bounds[i + 1]] for i in range(len(bounds) - 1)]


def dump_bundle(state: MethodState, bundle: "NetworkTreeBundle",
                prefix: str = "network") -> None:
    """Serialize a network-tree bundle into *state* sections.

    Payloads are stored verbatim (they are the hash inputs — re-encoding
    them on load would cost the one thing the artifact exists to skip)
    and the tree as its flat level-order digest array.
    """
    blob, offsets = join_payloads(bundle.payload_at)
    state.arrays[f"{prefix}/order"] = np.asarray(bundle.order, dtype=np.int64)
    state.arrays[f"{prefix}/payload_offsets"] = offsets
    state.blobs[f"{prefix}/payloads"] = blob
    state.blobs[f"{prefix}/tree"] = bundle.tree.dump_state()


def load_bundle(state: MethodState, tuple_factory,
                prefix: str = "network") -> "NetworkTreeBundle":
    """Reconstruct a network-tree bundle from *state* sections.

    Strict: the leaf order must be a permutation of the graph's node
    ids, payload count and tree shape must agree with the signed
    descriptor, and the rehydrated root must equal the signed root —
    any mismatch is an :class:`ArtifactError`.
    """
    from repro.core.checks import NetworkTreeBundle
    from repro.core.proofs import NETWORK_TREE

    config = state.descriptor.tree(NETWORK_TREE)
    tree = _load_tree(state, f"{prefix}/tree", config, state.descriptor.hash_name)
    order = state.array(f"{prefix}/order", dtype=np.int64).tolist()
    offsets = state.array(f"{prefix}/payload_offsets", dtype=np.uint64,
                          shape=(len(order) + 1,))
    payloads = split_payloads(state.blob(f"{prefix}/payloads"), offsets)
    if len(order) != config.num_leaves:
        raise ArtifactError(
            f"bundle has {len(order)} leaves, descriptor says {config.num_leaves}"
        )
    if sorted(order) != state.graph.node_ids():
        raise ArtifactError(
            "bundle leaf order is not a permutation of the graph's node ids"
        )
    ordering = state.build_params.get("ordering")
    if not isinstance(ordering, str):
        raise ArtifactError("build params carry no leaf ordering")
    return NetworkTreeBundle.from_state(
        state.graph, tuple_factory, ordering=ordering,
        order=order, payloads=payloads, tree=tree,
    )


def _load_tree(state: MethodState, section: str, config,
               hash_name: str) -> MerkleTree:
    """Rehydrate one ADS tree and cross-check it against its signed shape."""
    from repro.errors import MerkleError

    try:
        tree = MerkleTree.load_state(
            state.blob(section), num_leaves=config.num_leaves,
            fanout=config.fanout, hash_fn=hash_name,
        )
    except MerkleError as exc:
        raise ArtifactError(f"section {section!r}: {exc}") from exc
    if tree.root != config.root:
        raise ArtifactError(
            f"section {section!r}: rehydrated root does not match the "
            f"signed root for tree {config.name!r}"
        )
    return tree


def load_descriptor_tree(state: MethodState, section: str,
                         tree_name: str) -> MerkleTree:
    """Rehydrate the ADS called *tree_name* from the *section* blob."""
    from repro.errors import EncodingError

    try:
        config = state.descriptor.tree(tree_name)
    except EncodingError as exc:
        raise ArtifactError(str(exc)) from exc
    return _load_tree(state, section, config, state.descriptor.hash_name)
