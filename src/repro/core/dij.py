"""DIJ — Dijkstra subgraph verification (paper §IV-A).

No authenticated hints.  The proof ΓS is the *Dijkstra ball*: the
extended tuple of every node within ``dist(vs, vt)`` of the source
(Lemma 1).  The client re-runs Dijkstra on the disclosed subgraph; the
proof is valid only if every node the search needs is present, which
is what defeats the tuple-dropping attack described in the paper.
"""

from __future__ import annotations

import heapq

from repro.core.checks import (
    NetworkTreeBundle,
    check_reported_path,
    decode_tuples,
    resign_descriptor,
    sign_descriptor,
    verify_descriptor,
    verify_section_root,
)
from repro.core.framework import REL_TOL, VerificationResult, distances_close
from repro.core.incremental import edge_endpoints, needs_layout_rebuild
from repro.core.method import SignatureVerifier, VerificationMethod, register_method
from repro.core.state import dump_bundle, load_bundle
from repro.core.proofs import NETWORK_TREE, QueryResponse, SignedDescriptor, TreeConfig
from repro.crypto.signer import Signer
from repro.errors import EncodingError, NoPathError
from repro.graph.graph import GraphMutation, SpatialGraph
from repro.graph.tuples import BaseTuple
from repro.shortestpath.kernel import indexed_ball, indexed_dijkstra
from repro.shortestpath.path import Path


@register_method
class DijMethod(VerificationMethod):
    """Dijkstra subgraph verification (no pre-computation)."""

    name = "DIJ"

    def __init__(self, graph: SpatialGraph, bundle: NetworkTreeBundle,
                 descriptor: SignedDescriptor) -> None:
        super().__init__()
        self._graph = graph
        self._bundle = bundle
        self._descriptor = descriptor

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: SpatialGraph, signer: Signer, *, fanout: int = 2,
              ordering: str = "hbt", hash_name: str = "sha1",
              algo_sp: str = "dijkstra", **params) -> "DijMethod":
        if params:
            raise EncodingError(f"DIJ takes no extra parameters, got {sorted(params)}")
        bundle = NetworkTreeBundle(
            graph, lambda v: BaseTuple.from_graph(graph, v),
            ordering=ordering, fanout=fanout, hash_name=hash_name,
        )
        descriptor = sign_descriptor(
            SignedDescriptor(
                method=cls.name,
                hash_name=hash_name,
                params=b"",
                trees=(TreeConfig(NETWORK_TREE, bundle.tree.num_leaves, fanout,
                                  bundle.tree.root),),
                version=graph.version,
            ),
            signer,
        )
        method = cls(graph, bundle, descriptor)
        method.construction_seconds = 0.0  # DIJ pre-computes no hints
        method.algo_sp = algo_sp
        method._synced_version = graph.version
        method._build_params = dict(fanout=fanout, ordering=ordering,
                                    hash_name=hash_name, algo_sp=algo_sp)
        method._publish_params = method._build_params
        return method

    # ------------------------------------------------------------------
    # serve-state persistence
    # ------------------------------------------------------------------
    def _dump_sections(self, state) -> None:
        dump_bundle(state, self._bundle)

    @classmethod
    def _load_sections(cls, state) -> "DijMethod":
        graph = state.graph
        bundle = load_bundle(
            state, lambda v: BaseTuple.from_graph(graph, v))
        return cls(graph, bundle, state.descriptor)

    # ------------------------------------------------------------------
    def _apply_mutations(self, mutations: "list[GraphMutation]",
                         signer: Signer) -> tuple[str, int, int]:
        """Patch the endpoint leaves and re-sign — ``O(log |V|)`` hashes.

        DIJ's only ADS is the network Merkle tree and its hints are the
        adjacency lists themselves, so an edge mutation touches exactly
        the two endpoint tuples.  Previously issued responses remain
        verifiable only against the old descriptor — clients pin the
        version they trust.
        """
        if needs_layout_rebuild(mutations, self._bundle.ordering):
            return self._rebuild(signer)
        patched, rebuilt = self._bundle.refresh_nodes(edge_endpoints(mutations))
        old = self._descriptor
        self._descriptor = resign_descriptor(
            old, signer,
            trees=(TreeConfig(NETWORK_TREE, self._bundle.tree.num_leaves,
                              old.tree(NETWORK_TREE).fanout,
                              self._bundle.tree.root),),
            version=self._graph.version,
        )
        return "incremental", patched, int(rebuilt)

    # ------------------------------------------------------------------
    def answer(self, source: int, target: int, *,
               forced_path: "Path | None" = None) -> QueryResponse:
        if forced_path is None and self.algo_sp == "dijkstra":
            # Hot path: one fused kernel expansion yields both the
            # shortest path and the Lemma-1 ball.
            result = indexed_ball(self._graph.to_index(), source, target)
            path = result.path_to(target)  # NoPathError if unreachable
            ball_ids = result.settled_ids()
        else:
            path = forced_path if forced_path is not None else \
                self._shortest_path(source, target)
            ball = indexed_dijkstra(self._graph.to_index(), source,
                                    radius=path.cost)
            ball_ids = ball.settled_ids()
        section = self._bundle.section_for(ball_ids)
        return QueryResponse(
            method=self.name,
            source=source,
            target=target,
            path_nodes=path.nodes,
            path_cost=path.cost,
            sections={NETWORK_TREE: section},
            descriptor=self._descriptor,
        )

    # ------------------------------------------------------------------
    @classmethod
    def verify(cls, source: int, target: int, response: QueryResponse,
               verify_signature: SignatureVerifier, *,
               min_version: "int | None" = None) -> VerificationResult:
        failure = verify_descriptor(cls.name, response, verify_signature,
                                    min_version=min_version)
        if failure is not None:
            return failure
        try:
            section = response.section(NETWORK_TREE)
            tuples = decode_tuples(section, BaseTuple)
        except EncodingError as exc:
            return VerificationResult.failure("malformed-proof", str(exc))
        failure = verify_section_root(response.descriptor, section)
        if failure is not None:
            return failure
        failure = check_reported_path(source, target, response, tuples)
        if failure is not None:
            return failure

        reported = response.path_cost
        verdict = _client_dijkstra(source, target, reported, tuples)
        if isinstance(verdict, VerificationResult):
            return verdict
        computed = verdict
        if not distances_close(computed, reported):
            return VerificationResult.failure(
                "not-optimal",
                f"subgraph shortest distance {computed} != reported {reported}",
            )
        return VerificationResult.success(distance=computed, subgraph_nodes=len(tuples))


def _client_dijkstra(source: int, target: int, reported: float,
                     tuples: "dict[int, BaseTuple]") -> "float | VerificationResult":
    """Validity-checked Dijkstra over the disclosed subgraph (Lemma 1).

    The proof is invalid (and the function returns a failure) if a node
    the search needs — reachable within the reported distance — has no
    disclosed tuple.  Relaxations beyond the reported distance may
    legitimately point at undisclosed nodes (Lemma 1 only covers the
    ball of radius ``dist(vs, vt)``).
    """
    if source not in tuples:
        return VerificationResult.failure("source-missing",
                                          f"no tuple for source node {source}")
    margin = reported * (1 + REL_TOL) + 1e-9
    dist: dict[int, float] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    best = {source: 0.0}
    while heap:
        d, u = heapq.heappop(heap)
        if u in dist:
            continue
        dist[u] = d
        if u == target:
            return d
        for v, w in tuples[u].adjacency:
            if v in dist:
                continue
            nd = d + w
            if v not in tuples:
                if nd <= margin:
                    return VerificationResult.failure(
                        "incomplete-subgraph",
                        f"node {v} at distance {nd} <= {reported} was not disclosed",
                    )
                continue  # legitimately outside the Lemma-1 ball
            known = best.get(v)
            if known is None or nd < known:
                best[v] = nd
                heapq.heappush(heap, (nd, v))
    return VerificationResult.failure(
        "target-unreachable",
        f"target {target} is unreachable in the disclosed subgraph",
    )
