"""Shared machinery for incremental hint re-authentication.

The hint-bearing methods (FULL, LDM, HYP) all materialize *distance
rows*: ``dist(s, ·)`` for every source in some set (all nodes, the
landmarks, the border nodes).  A single edge mutation leaves most of
those rows untouched — on a road network a re-weighted street segment
only moves distances for sources whose shortest paths actually crossed
it.  :func:`affected_sources` computes a sound superset of the rows a
batch of mutations can have changed, so ``apply_update`` re-runs the
bulk Dijkstra backend only for those sources and patches only the
Merkle leaves whose payloads really moved.

Soundness of the filter (why unflagged rows cannot have changed):

* *weight increase / edge removal* — a row can only change if the old
  shortest path forest from that source used the edge, which requires
  the edge to be **tight**: ``dist(s, v) == dist(s, u) + w_old`` (or
  symmetrically).  The bulk backend computed ``dist(s, v)`` as exactly
  that float sum when it routed through the edge, so an equality test
  with a small widening margin catches every tight source.
* *weight decrease / edge insertion* — a row can only change if the
  new edge **improves** some distance; following the first mutated
  edge on any improved path shows the improvement is visible at the
  edge itself against the old row: ``dist(s, u) + w_new < dist(s, v)``
  (or symmetrically).
* *batches* — the union of per-mutation criteria, each evaluated
  against the pre-batch rows, still covers every changed row: any
  cascade of changes starts at some mutated edge where one of the two
  tests fires against the old values.

The margins only ever widen the superset (recomputing an unchanged row
is wasted work, never wrong), and recomputed rows come from the same
per-source bulk backend a from-scratch build would use, so the patched
state stays byte-identical to a full rebuild.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.graph.graph import (
    ADD_EDGE,
    ADD_NODE,
    REMOVE_EDGE,
    UPDATE_WEIGHT,
    GraphMutation,
)

#: Widening margins for the tight/improving tests.  Relative to the
#: framework's distance tolerances they are generous; the only cost of
#: widening is recomputing a few extra (unchanged) rows.
_REL = 1e-9
_ABS = 1e-6


def _margin(values: np.ndarray) -> np.ndarray:
    return _REL * np.abs(values) + _ABS


def affected_sources(
    matrix: np.ndarray,
    mutations: Sequence[GraphMutation],
    index_of: Mapping[int, int],
) -> np.ndarray:
    """Rows of *matrix* that *mutations* can have changed.

    ``matrix`` is an ``(R, n)`` distance array whose columns follow
    ``graph.node_ids()`` order (``index_of`` maps node id to column);
    rows belong to an arbitrary source set.  Returns the sorted row
    indices matching the tight/improving criteria above.  ``add-node``
    mutations are the caller's problem (they change the column space)
    and raise.
    """
    mask = np.zeros(matrix.shape[0], dtype=bool)
    for mutation in mutations:
        if mutation.kind == ADD_NODE:
            raise ValueError("add-node changes the column space; rebuild instead")
        du = matrix[:, index_of[mutation.u]]
        dv = matrix[:, index_of[mutation.v]]
        if mutation.kind in (UPDATE_WEIGHT, REMOVE_EDGE):
            w_old = mutation.old_weight
            gap = np.abs(du - dv)
            mask |= np.abs(gap - w_old) <= _margin(gap) + _margin(
                np.asarray(w_old))
        if mutation.kind in (UPDATE_WEIGHT, ADD_EDGE):
            w_new = mutation.weight
            slack = _margin(du) + _margin(np.asarray(w_new))
            mask |= (du + w_new <= dv + slack) | (dv + w_new <= du + slack)
    return np.nonzero(mask)[0]


def changed_columns(old_row: np.ndarray, new_row: np.ndarray) -> np.ndarray:
    """Column indices where a recomputed row differs bit-for-bit."""
    return np.nonzero(old_row != new_row)[0]


def changed_columns_2d(old: np.ndarray, new: np.ndarray) -> list[int]:
    """Columns of a ``(rows, n)`` array where any entry differs."""
    return np.nonzero((old != new).any(axis=0))[0].tolist()


def edge_endpoints(mutations: Sequence[GraphMutation]) -> set[int]:
    """Node ids whose adjacency list (and hence Φ) the batch touched."""
    endpoints: set[int] = set()
    for mutation in mutations:
        if mutation.kind == ADD_NODE:
            endpoints.add(mutation.u)
        else:
            endpoints.add(mutation.u)
            endpoints.add(mutation.v)
    return endpoints


def needs_layout_rebuild(mutations: Sequence[GraphMutation],
                         ordering: str) -> bool:
    """Whether the batch invalidates the Merkle leaf layout itself.

    New nodes always do (the leaf set changes).  Edge insertions and
    removals do only under adjacency-dependent orderings (bfs/dfs),
    whose permutation a from-scratch build would recompute differently;
    the coordinate-based orderings (hbt, kd, rand) are stable.
    """
    if any(m.kind == ADD_NODE for m in mutations):
        return True
    if ordering in ("bfs", "dfs"):
        return any(m.kind in (ADD_EDGE, REMOVE_EDGE) for m in mutations)
    return False
