"""Shortest path computation.

Pure-Python single-query algorithms (Dijkstra, A*, bidirectional
Dijkstra) used by providers and clients, plus NumPy/SciPy bulk backends
(Floyd-Warshall, multi-source Dijkstra) used by the data owner when
materializing authenticated hints.
"""

from repro.shortestpath.astar import astar
from repro.shortestpath.bidirectional import bidirectional_search
from repro.shortestpath.bulk import all_pairs_distances, multi_source_distances
from repro.shortestpath.dijkstra import SearchResult, dijkstra, shortest_path
from repro.shortestpath.floyd_warshall import floyd_warshall
from repro.shortestpath.path import Path

__all__ = [
    "Path",
    "SearchResult",
    "dijkstra",
    "shortest_path",
    "astar",
    "bidirectional_search",
    "floyd_warshall",
    "all_pairs_distances",
    "multi_source_distances",
]
