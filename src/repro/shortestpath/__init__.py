"""Shortest path computation.

Pure-Python single-query algorithms (Dijkstra, A*, bidirectional
Dijkstra) used by clients, the array Dijkstra kernel over the compiled
graph index (:mod:`repro.shortestpath.kernel`) used by providers, plus
NumPy/SciPy bulk backends (Floyd-Warshall, multi-source Dijkstra) used
by the data owner when materializing authenticated hints.
"""

from repro.shortestpath.astar import astar
from repro.shortestpath.bidirectional import bidirectional_search
from repro.shortestpath.bulk import all_pairs_distances, multi_source_distances
from repro.shortestpath.dijkstra import SearchResult, dijkstra, shortest_path
from repro.shortestpath.floyd_warshall import floyd_warshall
from repro.shortestpath.kernel import (
    IndexedSearchResult,
    indexed_ball,
    indexed_dijkstra,
    indexed_multi_source,
    indexed_shortest_path,
)
from repro.shortestpath.path import Path

__all__ = [
    "Path",
    "SearchResult",
    "IndexedSearchResult",
    "dijkstra",
    "shortest_path",
    "indexed_ball",
    "indexed_dijkstra",
    "indexed_shortest_path",
    "indexed_multi_source",
    "astar",
    "bidirectional_search",
    "floyd_warshall",
    "all_pairs_distances",
    "multi_source_distances",
]
