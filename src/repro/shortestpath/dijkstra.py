"""Dijkstra's algorithm with early termination and radius expansion.

Both stopping modes the paper needs are supported:

* *target* — stop as soon as the target is settled (provider answering
  a query);
* *radius* — settle **every** node whose distance is at most the
  radius (the DIJ subgraph proof of Lemma 1 needs exactly the set
  ``{v : dist(vs, v) <= dist(vs, vt)}``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import GraphError, NoPathError
from repro.graph.graph import SpatialGraph
from repro.shortestpath.path import Path


@dataclass
class SearchResult:
    """Outcome of a Dijkstra expansion from one source.

    ``dist`` maps every *settled* node to its exact shortest path
    distance; ``parent`` supports path reconstruction.
    """

    source: int
    dist: dict[int, float] = field(default_factory=dict)
    parent: dict[int, int] = field(default_factory=dict)

    def path_to(self, target: int) -> Path:
        """Reconstruct the shortest path from the source to *target*."""
        if target not in self.dist:
            raise NoPathError(self.source, target)
        nodes = [target]
        while nodes[-1] != self.source:
            nodes.append(self.parent[nodes[-1]])
        nodes.reverse()
        return Path(nodes=tuple(nodes), cost=self.dist[target])


def dijkstra(
    graph: SpatialGraph,
    source: int,
    *,
    target: "int | None" = None,
    radius: "float | None" = None,
) -> SearchResult:
    """Run Dijkstra from *source*.

    * With *target*: stops when the target is settled.
    * With *radius*: settles every node at distance <= radius, then
      stops (*radius* takes precedence over *target* for stopping).
    * With neither: settles the whole connected component.
    """
    if not graph.has_node(source):
        raise GraphError(f"unknown source node {source}")
    if target is not None and not graph.has_node(target):
        raise GraphError(f"unknown target node {target}")

    result = SearchResult(source=source)
    dist = result.dist
    parent = result.parent
    heap: list[tuple[float, int]] = [(0.0, source)]
    best: dict[int, float] = {source: 0.0}

    while heap:
        d, u = heapq.heappop(heap)
        if u in dist:
            continue  # stale entry
        if radius is not None and d > radius:
            break
        dist[u] = d
        if u == target and radius is None:
            break
        for v, w in graph.neighbors(u).items():
            if v in dist:
                continue
            nd = d + w
            known = best.get(v)
            if known is None or nd < known:
                best[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return result


def shortest_path(graph: SpatialGraph, source: int, target: int) -> Path:
    """The shortest path between two nodes (raises :class:`NoPathError`)."""
    result = dijkstra(graph, source, target=target)
    return result.path_to(target)
