"""Array-based Dijkstra kernel over a compiled :class:`GraphIndex`.

This is the provider's hot path.  The dict kernel in
:mod:`repro.shortestpath.dijkstra` pays a method call, a mapping-proxy
wrapper and a dict-items iterator per expanded node, plus hashed dict
lookups per relaxed edge; this kernel runs over the flat
``indptr`` / ``neighbors`` / ``weights`` arrays with list indexing
only.  Semantics are identical (see
``tests/shortestpath/test_kernel_equivalence.py``):

* *target* mode — stop as soon as the target is settled;
* *radius* mode — settle every node with ``dist <= radius`` (radius
  takes precedence over target for stopping);
* neither — settle the whole connected component;
* heap ties break on node order, and node index order equals node id
  order, so tie-breaking matches the dict kernel too.

A *multi-source* mode (:func:`indexed_multi_source`) serves owner-side
construction when SciPy is unavailable; with SciPy present,
:mod:`repro.shortestpath.bulk` prefers the C implementation over the
same compiled arrays.
"""

from __future__ import annotations

import heapq
from math import inf

from repro.errors import GraphError, NoPathError
from repro.graph.index import GraphIndex
from repro.shortestpath.path import Path

__all__ = [
    "IndexedSearchResult",
    "indexed_ball",
    "indexed_dijkstra",
    "indexed_multi_source",
    "indexed_shortest_path",
]


class IndexedSearchResult:
    """Outcome of one indexed Dijkstra expansion.

    Distances and parents are arrays keyed by node *index*;
    ``settled_order`` lists settled indices in settlement order.  The
    id-keyed adapters (:meth:`distances`, :meth:`settled_ids`,
    :meth:`path_to`) make the result a drop-in replacement for the dict
    kernel's :class:`~repro.shortestpath.dijkstra.SearchResult`.
    """

    __slots__ = ("index", "source", "dist", "parent", "settled_order")

    def __init__(self, index: GraphIndex, source: int, dist: "list[float]",
                 parent: "list[int]", settled_order: "list[int]") -> None:
        self.index = index
        self.source = source
        #: Settled distance per node index (``inf`` when unsettled).
        self.dist = dist
        #: Predecessor node index per node index (-1 at the source/unreached).
        self.parent = parent
        #: Node indices in settlement order.
        self.settled_order = settled_order

    # -- id-keyed adapters ---------------------------------------------
    def settled_ids(self) -> "list[int]":
        """Ids of all settled nodes, in settlement order."""
        ids = self.index.ids
        return [ids[i] for i in self.settled_order]

    def settled_items(self) -> "list[tuple[int, float]]":
        """``(node id, distance)`` for all settled nodes, in settle order."""
        ids = self.index.ids
        dist = self.dist
        return [(ids[i], dist[i]) for i in self.settled_order]

    def distances(self) -> "dict[int, float]":
        """Id-keyed settled-distance mapping (dict-kernel compatible)."""
        return dict(self.settled_items())

    def dist_of(self, node_id: int) -> "float | None":
        """Settled distance of *node_id*, or ``None`` when unsettled."""
        d = self.dist[self.index.index(node_id)]
        return None if d == inf else d

    def path_to(self, target: int) -> Path:
        """Reconstruct the shortest path from the source to *target*."""
        t = self.index.index(target)
        if self.dist[t] == inf:
            raise NoPathError(self.source, target)
        ids = self.index.ids
        parent = self.parent
        nodes = [ids[t]]
        u = t
        while ids[u] != self.source:
            u = parent[u]
            nodes.append(ids[u])
        nodes.reverse()
        return Path(nodes=tuple(nodes), cost=self.dist[t])


def indexed_dijkstra(
    index: GraphIndex,
    source: int,
    *,
    target: "int | None" = None,
    radius: "float | None" = None,
) -> IndexedSearchResult:
    """Run Dijkstra from *source* over the compiled arrays.

    Mirrors :func:`repro.shortestpath.dijkstra.dijkstra` exactly: with
    *target* it stops when the target is settled; with *radius* it
    settles every node at distance <= radius (radius takes precedence
    for stopping); with neither it settles the component.
    """
    try:
        s = index.index_of[source]
    except KeyError:
        raise GraphError(f"unknown source node {source}") from None
    t = -1
    if target is not None:
        try:
            t = index.index_of[target]
        except KeyError:
            raise GraphError(f"unknown target node {target}") from None

    n = index.num_nodes
    indptr = index.indptr
    nbrs = index.neighbors
    wts = index.weights
    dist = [inf] * n
    best = [inf] * n
    parent = [-1] * n
    settled = bytearray(n)
    order: list[int] = []

    best[s] = 0.0
    heap: list[tuple[float, int]] = [(0.0, s)]
    pop = heapq.heappop
    push = heapq.heappush
    bounded = radius is not None

    while heap:
        d, u = pop(heap)
        if settled[u]:
            continue  # stale entry
        if bounded and d > radius:
            break
        settled[u] = 1
        dist[u] = d
        order.append(u)
        if u == t and not bounded:
            break
        for k in range(indptr[u], indptr[u + 1]):
            v = nbrs[k]
            if settled[v]:
                continue
            nd = d + wts[k]
            if nd < best[v]:
                best[v] = nd
                parent[v] = u
                push(heap, (nd, v))
    return IndexedSearchResult(index, source, dist, parent, order)


def indexed_shortest_path(index: GraphIndex, source: int, target: int) -> Path:
    """Shortest path between two nodes (raises :class:`NoPathError`)."""
    return indexed_dijkstra(index, source, target=target).path_to(target)


def indexed_ball(
    index: GraphIndex,
    source: int,
    target: int,
    *,
    margin=None,
) -> IndexedSearchResult:
    """One fused expansion: settle *target*, then fill the Lemma-1 ball.

    Equivalent to a target-mode run followed by a radius-mode run with
    ``radius = dist(source, target) + margin(dist)`` (*margin* is an
    optional callable evaluated once, when the target settles; without
    it the radius is the target distance itself) — the proof methods
    need both the path and the ball, and the two runs share their
    entire prefix, so fusing them halves the provider's search cost.
    Identical output is guaranteed because the heap/relaxation sequence
    matches the separate runs step for step: parents of settled nodes
    are frozen, so the path is the target-run's path, and the settled
    set is the radius-run's ball.

    When the target is unreachable, the returned result leaves it
    unsettled (``path_to`` raises :class:`NoPathError`), matching the
    unbounded kernel.
    """
    try:
        s = index.index_of[source]
    except KeyError:
        raise GraphError(f"unknown source node {source}") from None
    try:
        t = index.index_of[target]
    except KeyError:
        raise GraphError(f"unknown target node {target}") from None

    n = index.num_nodes
    indptr = index.indptr
    nbrs = index.neighbors
    wts = index.weights
    dist = [inf] * n
    best = [inf] * n
    parent = [-1] * n
    settled = bytearray(n)
    order: list[int] = []

    best[s] = 0.0
    heap: list[tuple[float, int]] = [(0.0, s)]
    pop = heapq.heappop
    push = heapq.heappush
    radius = inf

    while heap:
        d, u = pop(heap)
        if settled[u]:
            continue  # stale entry
        if d > radius:
            break
        settled[u] = 1
        dist[u] = d
        order.append(u)
        if u == t:
            radius = d + margin(d) if margin is not None else d
        for k in range(indptr[u], indptr[u + 1]):
            v = nbrs[k]
            if settled[v]:
                continue
            nd = d + wts[k]
            if nd < best[v]:
                best[v] = nd
                parent[v] = u
                push(heap, (nd, v))
    return IndexedSearchResult(index, source, dist, parent, order)


def indexed_multi_source(index: GraphIndex, sources: "list[int]"):
    """Distances from each source to every node, as a dense array.

    Pure-Python fallback for
    :func:`repro.shortestpath.bulk.multi_source_distances`: returns a
    ``(len(sources), |V|)`` float64 NumPy array in index (== ascending
    id) order, with ``inf`` for unreachable nodes.
    """
    import numpy as np

    out = np.empty((len(sources), index.num_nodes))
    for row, source in enumerate(sources):
        if source not in index.index_of:
            raise GraphError(f"unknown source node {source}")
        result = indexed_dijkstra(index, source)
        out[row] = result.dist
    return out
