"""Path value object."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GraphError
from repro.graph.graph import SpatialGraph


@dataclass(frozen=True)
class Path:
    """A path ``v_z0, v_z1, ..., v_zk`` with its total cost.

    ``cost`` is the sum of edge weights along the path (the paper's
    ``dist(P)``).  Construct with :meth:`from_nodes` to have the cost
    computed and the edges validated against a graph.
    """

    nodes: tuple[int, ...]
    cost: float

    @classmethod
    def from_nodes(cls, graph: SpatialGraph, nodes: "list[int] | tuple[int, ...]") -> "Path":
        """Build a path from a node sequence, validating every edge."""
        nodes = tuple(nodes)
        if not nodes:
            raise GraphError("a path needs at least one node")
        cost = 0.0
        for u, v in zip(nodes, nodes[1:]):
            cost += graph.weight(u, v)  # raises if the edge is absent
        return cls(nodes=nodes, cost=cost)

    @property
    def source(self) -> int:
        """First node."""
        return self.nodes[0]

    @property
    def target(self) -> int:
        """Last node."""
        return self.nodes[-1]

    @property
    def num_edges(self) -> int:
        """Number of edges on the path."""
        return len(self.nodes) - 1

    def edges(self):
        """Iterate consecutive ``(u, v)`` pairs."""
        return zip(self.nodes, self.nodes[1:])

    def __len__(self) -> int:
        return len(self.nodes)
