"""Bulk distance computation over the compiled graph index.

The data owner's hint construction is distance-heavy: FULL needs all
pairs, LDM needs one single-source tree per landmark, HYP one per
border node.  All three funnel through these two functions so that the
construction-time *ratios* reported by the benchmarks reflect the same
backend (DESIGN.md §3).

Both functions run over :meth:`SpatialGraph.to_index`'s CSR arrays.
With SciPy present (the normal case) the C ``csgraph`` routines consume
the cached :class:`scipy.sparse.csr_matrix` built from those arrays —
and because the matrix is symmetric by construction, they run with
``directed=True``, which skips csgraph's undirected edge-doubling pass
and is measurably faster with identical results.  Without SciPy, the
pure-Python array kernel (:mod:`repro.shortestpath.kernel`) computes
the same distances, so owner-side construction keeps working on
minimal installs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import SpatialGraph
from repro.shortestpath.kernel import indexed_multi_source

try:
    from scipy.sparse.csgraph import dijkstra as csgraph_dijkstra
    from scipy.sparse.csgraph import floyd_warshall as csgraph_floyd_warshall

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised on minimal installs
    HAVE_SCIPY = False


def multi_source_distances(graph: SpatialGraph, sources: Sequence[int]) -> np.ndarray:
    """Distances from each source to every node.

    Returns a ``(len(sources), |V|)`` float64 array; columns follow
    ``graph.node_ids()`` order; unreachable entries are ``inf``.
    """
    index = graph.to_index()
    try:
        rows = [index.index_of[s] for s in sources]
    except KeyError as exc:
        raise GraphError(f"unknown source node {exc.args[0]}") from None
    if not rows:
        return np.empty((0, index.num_nodes))
    if not HAVE_SCIPY:
        return indexed_multi_source(index, list(sources))
    return csgraph_dijkstra(index.csr_matrix(), directed=True, indices=rows)


def all_pairs_distances(graph: SpatialGraph, *, method: str = "auto") -> np.ndarray:
    """All-pairs distance matrix in ``graph.node_ids()`` order.

    ``method``:

    * ``"auto"`` — Dijkstra from every node (fastest on sparse road
      networks);
    * ``"floyd-warshall"`` — SciPy's dense Floyd-Warshall, matching the
      paper's prescribed algorithm at ``O(|V|^3)``.
    """
    index = graph.to_index()
    if method == "auto":
        if not HAVE_SCIPY:
            return indexed_multi_source(index, index.ids)
        return csgraph_dijkstra(index.csr_matrix(), directed=True)
    if method == "floyd-warshall":
        if not HAVE_SCIPY:
            raise GraphError("floyd-warshall requires scipy; use method='auto'")
        return csgraph_floyd_warshall(index.csr_matrix(), directed=True)
    raise GraphError(f"unknown all-pairs method {method!r}")
