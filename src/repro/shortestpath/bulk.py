"""Bulk distance computation via SciPy sparse graph routines.

The data owner's hint construction is distance-heavy: FULL needs all
pairs, LDM needs one single-source tree per landmark, HYP one per
border node.  All three funnel through these two functions so that the
construction-time *ratios* reported by the benchmarks reflect the same
backend (DESIGN.md §3).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.sparse.csgraph import dijkstra as csgraph_dijkstra
from scipy.sparse.csgraph import floyd_warshall as csgraph_floyd_warshall

from repro.errors import GraphError
from repro.graph.graph import SpatialGraph


def multi_source_distances(graph: SpatialGraph, sources: Sequence[int]) -> np.ndarray:
    """Distances from each source to every node.

    Returns a ``(len(sources), |V|)`` float64 array; columns follow
    ``graph.node_ids()`` order; unreachable entries are ``inf``.
    """
    matrix, ids, index_of = graph.to_csr()
    try:
        rows = [index_of[s] for s in sources]
    except KeyError as exc:
        raise GraphError(f"unknown source node {exc.args[0]}") from None
    if not rows:
        return np.empty((0, len(ids)))
    return csgraph_dijkstra(matrix, directed=False, indices=rows)


def all_pairs_distances(graph: SpatialGraph, *, method: str = "auto") -> np.ndarray:
    """All-pairs distance matrix in ``graph.node_ids()`` order.

    ``method``:

    * ``"auto"`` — Dijkstra from every node (fastest on sparse road
      networks);
    * ``"floyd-warshall"`` — SciPy's dense Floyd-Warshall, matching the
      paper's prescribed algorithm at ``O(|V|^3)``.
    """
    matrix, ids, _ = graph.to_csr()
    if method == "auto":
        return csgraph_dijkstra(matrix, directed=False)
    if method == "floyd-warshall":
        return csgraph_floyd_warshall(matrix, directed=False)
    raise GraphError(f"unknown all-pairs method {method!r}")
