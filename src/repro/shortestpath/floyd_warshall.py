"""Pure-Python Floyd-Warshall (the paper's FULL precomputation, §IV-B).

This is the textbook ``O(|V|^3)`` algorithm the paper prescribes for
FULL.  It is used directly on small graphs and in tests; at benchmark
scale the owner uses :func:`repro.shortestpath.bulk.all_pairs_distances`
(SciPy) instead, which computes identical values faster — see DESIGN.md
§3 for why that substitution is legitimate.
"""

from __future__ import annotations

from repro.graph.graph import SpatialGraph

INF = float("inf")


def floyd_warshall(graph: SpatialGraph) -> "tuple[list[list[float]], list[int]]":
    """All-pairs shortest path distances.

    Returns ``(matrix, ids)`` where ``matrix[i][j]`` is the distance
    between ``ids[i]`` and ``ids[j]`` (``inf`` when disconnected).
    """
    ids = graph.node_ids()
    index_of = {node_id: i for i, node_id in enumerate(ids)}
    n = len(ids)
    dist = [[INF] * n for _ in range(n)]
    for i in range(n):
        dist[i][i] = 0.0
    for u, v, w in graph.edges():
        i, j = index_of[u], index_of[v]
        if w < dist[i][j]:
            dist[i][j] = w
            dist[j][i] = w
    for k in range(n):
        row_k = dist[k]
        for i in range(n):
            dik = dist[i][k]
            if dik == INF:
                continue
            row_i = dist[i]
            for j in range(n):
                alt = dik + row_k[j]
                if alt < row_i[j]:
                    row_i[j] = alt
    return dist, ids
