"""Bidirectional Dijkstra (paper §II-C, [24]).

Two expansions run concurrently from the source and the target; the
search stops once the sum of the two frontier keys can no longer beat
the best meeting point.  On road networks this roughly halves the
search space; the service provider may use it as its ``algo_sp``.
"""

from __future__ import annotations

import heapq

from repro.errors import GraphError, NoPathError
from repro.graph.graph import SpatialGraph
from repro.shortestpath.path import Path


def bidirectional_search(graph: SpatialGraph, source: int, target: int) -> Path:
    """Shortest path via simultaneous forward/backward Dijkstra."""
    if not graph.has_node(source):
        raise GraphError(f"unknown source node {source}")
    if not graph.has_node(target):
        raise GraphError(f"unknown target node {target}")
    if source == target:
        return Path(nodes=(source,), cost=0.0)

    dist = ({source: 0.0}, {target: 0.0})
    settled: tuple[set[int], set[int]] = (set(), set())
    parent: tuple[dict[int, int], dict[int, int]] = ({}, {})
    heaps = ([(0.0, source)], [(0.0, target)])

    best_cost = float("inf")
    meeting = -1

    while heaps[0] and heaps[1]:
        # Heap tops lower-bound all future settlements on each side, so
        # once their sum cannot beat the best meeting point, stop.
        if heaps[0][0][0] + heaps[1][0][0] >= best_cost:
            break
        # Expand the side with the smaller frontier key.
        side = 0 if heaps[0][0][0] <= heaps[1][0][0] else 1
        d, u = heapq.heappop(heaps[side])
        if u in settled[side]:
            continue
        settled[side].add(u)
        for v, w in graph.neighbors(u).items():
            nd = d + w
            known = dist[side].get(v)
            if (known is None or nd < known) and v not in settled[side]:
                dist[side][v] = nd
                parent[side][v] = u
                heapq.heappush(heaps[side], (nd, v))
            other = dist[1 - side].get(v)
            if other is not None:
                total = nd + other
                if total < best_cost:
                    best_cost = total
                    meeting = v

    if meeting < 0:
        raise NoPathError(source, target)

    forward_nodes = [meeting]
    while forward_nodes[-1] != source:
        forward_nodes.append(parent[0][forward_nodes[-1]])
    forward_nodes.reverse()
    backward_nodes = []
    node = meeting
    while node != target:
        node = parent[1][node]
        backward_nodes.append(node)
    return Path(nodes=tuple(forward_nodes + backward_nodes), cost=best_cost)
