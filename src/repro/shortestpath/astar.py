"""A* search with a pluggable lower bound.

The paper's A* (§II-C) differs from Dijkstra only in that each heap key
is increased by a lower bound ``LB(v, vt)`` on the remaining distance.
With a *consistent* bound (the landmark bound of Theorem 1 is
consistent) the first settlement of the target is optimal.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import GraphError, NoPathError
from repro.graph.graph import SpatialGraph
from repro.shortestpath.path import Path


def astar(
    graph: SpatialGraph,
    source: int,
    target: int,
    lower_bound: Callable[[int], float],
) -> Path:
    """Shortest path from *source* to *target* guided by *lower_bound*.

    ``lower_bound(v)`` must return a value <= the true graph distance
    from ``v`` to *target* (Theorem 1 guarantees this for landmark
    bounds).  Raises :class:`NoPathError` when the target is
    unreachable.
    """
    if not graph.has_node(source):
        raise GraphError(f"unknown source node {source}")
    if not graph.has_node(target):
        raise GraphError(f"unknown target node {target}")

    dist: dict[int, float] = {}
    parent: dict[int, int] = {}
    best: dict[int, float] = {source: 0.0}
    heap: list[tuple[float, float, int]] = [(lower_bound(source), 0.0, source)]

    while heap:
        _, d, u = heapq.heappop(heap)
        if u in dist:
            continue
        dist[u] = d
        if u == target:
            nodes = [target]
            while nodes[-1] != source:
                nodes.append(parent[nodes[-1]])
            nodes.reverse()
            return Path(nodes=tuple(nodes), cost=d)
        for v, w in graph.neighbors(u).items():
            if v in dist:
                continue
            nd = d + w
            known = best.get(v)
            if known is None or nd < known:
                best[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd + lower_bound(v), nd, v))
    raise NoPathError(source, target)
