"""The ``.rspv`` pack: a versioned binary container for serve state.

Layout (all integers are the canonical varints of
:mod:`repro.encoding` unless marked *raw*)::

    +----------+---------+------------------+-------------------+
    | magic    | format  | header sha-256   | header blob        |
    | 8 bytes  | varint  | 32 bytes raw     | varint len + body  |
    +----------+---------+------------------+-------------------+
    | padding to a 64-byte boundary                              |
    | section 0 bytes ... padding ... section 1 bytes ...        |
    +------------------------------------------------------------+

The header blob carries the method name, the graph version, the
(encoded) build/publish parameter maps, the owner-signed descriptor
verbatim, and the section table: per section a name, a kind (``bytes``
or a numpy dtype string), a shape, a *raw* 8-byte offset/length pair
and a SHA-256 digest.  Every section starts on a 64-byte boundary so
numeric sections can be consumed zero-copy as aligned numpy views of
the mapped file.

Integrity is layered: the header digest catches any flip in the
metadata (a tampered section length can therefore never be trusted),
the per-section digests catch flips in the data, and the signed
descriptor inside the header ties the whole artifact to the owner's
key.  :class:`ArtifactReader` verifies the first two by default; the
third is the client protocol's job, exactly as for a live service.

Raw offsets/lengths are fixed-width on purpose: the header's byte
length is then independent of where the sections land, so the writer
lays the file out in a single deterministic pass — byte-identical
output for identical state, which is what makes artifact digests a
meaningful build fingerprint.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import struct
from dataclasses import dataclass

import numpy as np

from repro.encoding import Decoder, Encoder, encode_uvarint
from repro.errors import ArtifactError, EncodingError

#: Leading artifact bytes ("RSPV PacK", versioned separately from the
#: wire protocol's frame magic).
ARTIFACT_MAGIC = b"RSPVPK\x00\x01"

#: Container format version; bump on breaking layout changes.
ARTIFACT_VERSION = 1

#: Section alignment: one cache line covers every numpy dtype this
#: package stores, and keeps mapped views alignment-safe.
SECTION_ALIGN = 64

#: Section kind tag for raw byte blobs (anything else is a numpy
#: dtype string such as ``"<f8"``).
KIND_BYTES = "bytes"

_U64 = struct.Struct(">Q")

#: numpy dtypes a pack may carry; an open-ended dtype string from an
#: untrusted file must not reach ``np.dtype`` unfiltered.
_ALLOWED_DTYPES = ("<f8", "<f4", "<i8", "<i4", "<u8", "<u4", "|u1", "|i1")


@dataclass(frozen=True)
class SectionInfo:
    """One section-table entry."""

    name: str
    kind: str
    shape: tuple[int, ...]
    offset: int
    length: int
    digest: bytes


def _digest(view) -> bytes:
    return hashlib.sha256(view).digest()


def _dtype_for(kind: str, name: str) -> np.dtype:
    if kind not in _ALLOWED_DTYPES:
        raise ArtifactError(f"section {name!r} has unsupported kind {kind!r}")
    return np.dtype(kind)


# ----------------------------------------------------------------------
# Parameter maps
# ----------------------------------------------------------------------
_P_INT = 0
_P_FLOAT = 1
_P_STR = 2
_P_BOOL = 3
_P_INT_SEQ = 4
_P_INT_MAP = 5

#: Parameter value shapes the methods actually record; anything else in
#: a params dict is a programming error surfaced at pack time.


def encode_params(params: dict) -> bytes:
    """Canonical encoding of a build/publish parameter map.

    Keys are sorted, so the encoding — and therefore the artifact
    digest — is independent of dict construction order.
    """
    enc = Encoder()
    enc.write_uint(len(params))
    for key in sorted(params):
        if not isinstance(key, str):
            raise ArtifactError(f"parameter keys must be strings, got {key!r}")
        value = params[key]
        enc.write_str(key)
        # bool before int: bool is an int subclass.
        if isinstance(value, bool):
            enc.write_uint(_P_BOOL).write_bool(value)
        elif isinstance(value, int):
            enc.write_uint(_P_INT).write_int(value)
        elif isinstance(value, float):
            enc.write_uint(_P_FLOAT).write_f64(value)
        elif isinstance(value, str):
            enc.write_uint(_P_STR).write_str(value)
        elif isinstance(value, (tuple, list)) and \
                all(isinstance(v, int) for v in value):
            enc.write_uint(_P_INT_SEQ).write_uint_seq(value)
        elif isinstance(value, dict) and \
                all(isinstance(k, int) and isinstance(v, int)
                    for k, v in value.items()):
            enc.write_uint(_P_INT_MAP).write_uint(len(value))
            for k in sorted(value):
                enc.write_int(k).write_int(value[k])
        else:
            raise ArtifactError(
                f"parameter {key!r} has unsupported type {type(value).__name__}"
            )
    return enc.getvalue()


def decode_params(data: bytes) -> dict:
    """Inverse of :func:`encode_params`; strict and typed."""
    try:
        dec = Decoder(bytes(data))
        params: dict = {}
        for _ in range(dec.read_count(2)):
            key = dec.read_str()
            if key in params:
                raise ArtifactError(f"duplicate parameter {key!r}")
            tag = dec.read_uint()
            if tag == _P_BOOL:
                params[key] = dec.read_bool()
            elif tag == _P_INT:
                params[key] = dec.read_int()
            elif tag == _P_FLOAT:
                params[key] = dec.read_f64()
            elif tag == _P_STR:
                params[key] = dec.read_str()
            elif tag == _P_INT_SEQ:
                params[key] = tuple(dec.read_uint_seq())
            elif tag == _P_INT_MAP:
                entries = [(dec.read_int(), dec.read_int())
                           for _ in range(dec.read_count(2))]
                params[key] = dict(entries)
            else:
                raise ArtifactError(f"unknown parameter tag {tag}")
        dec.expect_end()
        return params
    except EncodingError as exc:
        raise ArtifactError(f"malformed parameter map: {exc}") from exc


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
class ArtifactWriter:
    """Assemble and write one ``.rspv`` pack.

    Sections are laid out in insertion order; the write is a pure
    function of the supplied content, so re-packing identical state
    yields a byte-identical file.
    """

    def __init__(self, *, method: str, graph_version: int, algo_sp: str,
                 build_params: dict, publish_params: dict,
                 descriptor_bytes: bytes) -> None:
        self.method = method
        self.graph_version = graph_version
        self.algo_sp = algo_sp
        self.build_params_blob = encode_params(build_params)
        self.publish_params_blob = encode_params(publish_params)
        self.descriptor_bytes = bytes(descriptor_bytes)
        self._sections: list[tuple[str, str, tuple[int, ...], bytes]] = []
        self._names: set[str] = set()

    def _add(self, name: str, kind: str, shape: tuple[int, ...],
             data: bytes) -> None:
        if name in self._names:
            raise ArtifactError(f"duplicate section {name!r}")
        self._names.add(name)
        self._sections.append((name, kind, shape, data))

    def add_bytes(self, name: str, data: bytes) -> None:
        """Add a raw byte-blob section."""
        data = bytes(data)
        self._add(name, KIND_BYTES, (len(data),), data)

    def add_array(self, name: str, array: np.ndarray) -> None:
        """Add a numpy section (stored C-contiguous, little-endian)."""
        array = np.ascontiguousarray(array)
        kind = array.dtype.newbyteorder("<").str if array.dtype.byteorder == ">" \
            else array.dtype.str
        if kind not in _ALLOWED_DTYPES:
            raise ArtifactError(
                f"section {name!r}: dtype {array.dtype} is not packable"
            )
        data = np.ascontiguousarray(array, dtype=np.dtype(kind)).tobytes()
        self._add(name, kind, tuple(int(s) for s in array.shape), data)

    # ------------------------------------------------------------------
    def _header(self, infos: "list[SectionInfo]") -> bytes:
        enc = Encoder()
        enc.write_str(self.method)
        enc.write_uint(self.graph_version)
        enc.write_str(self.algo_sp)
        enc.write_bytes(self.build_params_blob)
        enc.write_bytes(self.publish_params_blob)
        enc.write_bytes(self.descriptor_bytes)
        enc.write_uint(len(infos))
        for info in infos:
            enc.write_str(info.name)
            enc.write_str(info.kind)
            enc.write_uint_seq(info.shape)
            enc.write_raw(_U64.pack(info.offset))
            enc.write_raw(_U64.pack(info.length))
            enc.write_raw(info.digest)
        return enc.getvalue()

    def write(self, path: str) -> None:
        """Write the pack atomically (temp file + rename)."""
        # Raw 8-byte offsets keep the header length independent of the
        # section positions, so one dry run with zero offsets sizes it.
        dry = [
            SectionInfo(name, kind, shape, 0, len(data), _digest(data))
            for name, kind, shape, data in self._sections
        ]
        header = self._header(dry)
        prefix_len = (len(ARTIFACT_MAGIC)
                      + len(Encoder().write_uint(ARTIFACT_VERSION).getvalue())
                      + hashlib.sha256().digest_size
                      + len(Encoder().write_bytes(header).getvalue()))
        offset = _align(prefix_len)
        infos: list[SectionInfo] = []
        for entry, info in zip(self._sections, dry):
            infos.append(SectionInfo(info.name, info.kind, info.shape,
                                     offset, info.length, info.digest))
            offset = _align(offset + info.length)
        header = self._header(infos)

        tmp = f"{path}.tmp"
        with open(tmp, "wb") as out:
            out.write(ARTIFACT_MAGIC)
            out.write(Encoder().write_uint(ARTIFACT_VERSION).getvalue())
            out.write(_digest(header))
            out.write(Encoder().write_bytes(header).getvalue())
            pos = prefix_len
            for (name, kind, shape, data), info in zip(self._sections, infos):
                out.write(b"\x00" * (info.offset - pos))
                out.write(data)
                pos = info.offset + info.length
        os.replace(tmp, path)


def _align(offset: int) -> int:
    return (offset + SECTION_ALIGN - 1) // SECTION_ALIGN * SECTION_ALIGN


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------
class ArtifactReader:
    """Open, validate and expose one ``.rspv`` pack.

    ``mmap_mode="c"`` (the default) maps the file copy-on-write:
    :meth:`array` views are zero-copy and writable, but writes stay
    private to the process — exactly what ``apply_update`` on an
    artifact-backed method needs.  ``mmap_mode=None`` reads the file
    into memory instead (no open file handle retained by views).

    The reader object must outlive any arrays it handed out when
    mapped; :func:`repro.store.load_method` keeps it referenced from
    the loaded method for that reason.
    """

    def __init__(self, path: str, *, verify: bool = True,
                 mmap_mode: "str | None" = "c") -> None:
        self.path = path
        try:
            with open(path, "rb") as infile:
                if mmap_mode is None:
                    self._buffer = infile.read()
                elif mmap_mode == "c":
                    self._buffer = mmap.mmap(infile.fileno(), 0,
                                             access=mmap.ACCESS_COPY)
                else:
                    raise ArtifactError(
                        f"unknown mmap_mode {mmap_mode!r}; use 'c' or None"
                    )
        except OSError as exc:
            raise ArtifactError(f"cannot open artifact {path!r}: {exc}") from exc
        except ValueError as exc:  # zero-length file cannot be mapped
            raise ArtifactError(f"artifact {path!r} is empty") from exc
        self._parse(verify=verify)

    # ------------------------------------------------------------------
    def _parse(self, *, verify: bool) -> None:
        data = self._buffer
        magic_len = len(ARTIFACT_MAGIC)
        if len(data) < magic_len or bytes(data[:magic_len]) != ARTIFACT_MAGIC:
            raise ArtifactError(f"{self.path!r} is not a .rspv artifact")
        try:
            dec = Decoder(data)
            dec.read_raw(magic_len)
            version = dec.read_uint()
            if version != ARTIFACT_VERSION:
                raise ArtifactError(
                    f"artifact format version {version} is not supported "
                    f"(this build reads version {ARTIFACT_VERSION})"
                )
            header_digest = dec.read_raw(hashlib.sha256().digest_size)
            header = dec.read_bytes()
        except EncodingError as exc:
            raise ArtifactError(f"truncated artifact header: {exc}") from exc
        if _digest(header) != header_digest:
            raise ArtifactError(
                "artifact header digest mismatch (corrupted or tampered file)"
            )
        try:
            hdec = Decoder(header)
            self.method = hdec.read_str()
            self.graph_version = hdec.read_uint()
            self.algo_sp = hdec.read_str()
            self.build_params = decode_params(hdec.read_bytes())
            self.publish_params = decode_params(hdec.read_bytes())
            self.descriptor_bytes = hdec.read_bytes()
            sections: list[SectionInfo] = []
            for _ in range(hdec.read_count(4)):
                name = hdec.read_str()
                kind = hdec.read_str()
                shape = tuple(hdec.read_uint_seq())
                offset = _U64.unpack(hdec.read_raw(8))[0]
                length = _U64.unpack(hdec.read_raw(8))[0]
                digest = hdec.read_raw(hashlib.sha256().digest_size)
                sections.append(SectionInfo(name, kind, shape, offset,
                                            length, digest))
            hdec.expect_end()
        except EncodingError as exc:
            raise ArtifactError(f"malformed artifact header: {exc}") from exc

        self._payload_start = (magic_len + len(encode_uvarint(version))
                               + hashlib.sha256().digest_size
                               + len(encode_uvarint(len(header))) + len(header))
        self.sections: dict[str, SectionInfo] = {}
        previous_end = 0
        for info in sections:
            if info.name in self.sections:
                raise ArtifactError(f"duplicate section {info.name!r}")
            if info.offset % SECTION_ALIGN:
                raise ArtifactError(
                    f"section {info.name!r} is not {SECTION_ALIGN}-byte aligned"
                )
            if info.offset < previous_end or \
                    info.offset + info.length > len(data):
                raise ArtifactError(
                    f"section {info.name!r} does not fit the file "
                    f"(offset {info.offset}, length {info.length}, "
                    f"file {len(data)} bytes)"
                )
            if info.kind != KIND_BYTES:
                expected = _expected_length(info)
                if info.length != expected:
                    raise ArtifactError(
                        f"section {info.name!r}: length {info.length} does "
                        f"not match kind {info.kind!r} shape {info.shape} "
                        f"({expected} bytes)"
                    )
            elif info.shape != (info.length,):
                raise ArtifactError(
                    f"byte section {info.name!r} declares shape {info.shape} "
                    f"for {info.length} bytes"
                )
            previous_end = info.offset + info.length
            self.sections[info.name] = info
        if verify:
            self.verify_sections()

    def verify_sections(self) -> None:
        """Check every section digest (reads the whole file once).

        Also checks that the inter-section padding is zero and that the
        file ends exactly where the last section does — padding and
        tails are outside every digest, so without this a flipped
        padding bit (or appended garbage) would go unnoticed.
        """
        view = memoryview(self._buffer)
        try:
            position = self._payload_start
            for info in self.sections.values():
                if view[position:info.offset].tobytes().strip(b"\x00"):
                    raise ArtifactError(
                        f"non-zero padding before section {info.name!r}"
                    )
                if _digest(view[info.offset:info.offset + info.length]) \
                        != info.digest:
                    raise ArtifactError(
                        f"section {info.name!r} digest mismatch (corrupted "
                        f"or tampered artifact)"
                    )
                position = info.offset + info.length
            if position != len(view):
                raise ArtifactError(
                    f"{len(view) - position} trailing bytes after the last "
                    f"section"
                )
        finally:
            view.release()

    # ------------------------------------------------------------------
    def _info(self, name: str) -> SectionInfo:
        info = self.sections.get(name)
        if info is None:
            raise ArtifactError(f"artifact has no section {name!r}")
        return info

    def bytes(self, name: str) -> bytes:
        """A byte-blob section's content (copied out of the map)."""
        info = self._info(name)
        if info.kind != KIND_BYTES:
            raise ArtifactError(f"section {name!r} is an array, not bytes")
        return bytes(self._buffer[info.offset:info.offset + info.length])

    def array(self, name: str) -> np.ndarray:
        """A numpy section as a view of the mapped file (zero-copy)."""
        info = self._info(name)
        if info.kind == KIND_BYTES:
            raise ArtifactError(f"section {name!r} is bytes, not an array")
        dtype = _dtype_for(info.kind, name)
        count = int(np.prod(info.shape, dtype=np.int64)) if info.shape else 1
        arr = np.frombuffer(self._buffer, dtype=dtype, count=count,
                            offset=info.offset)
        if not arr.flags.writeable:
            # Eager (non-mmap) mode reads into an immutable bytes
            # buffer; hand out a private writable copy so update paths
            # behave identically to the copy-on-write mapping.
            arr = arr.copy()
        return arr.reshape(info.shape)

    def close(self) -> None:
        """Release the mapping.  Invalidates any arrays handed out."""
        if isinstance(self._buffer, mmap.mmap):
            self._buffer.close()
        self._buffer = b""


def _expected_length(info: SectionInfo) -> int:
    itemsize = _dtype_for(info.kind, info.name).itemsize
    return int(np.prod(info.shape, dtype=np.int64)) * itemsize if info.shape \
        else itemsize


def file_digest(path: str) -> bytes:
    """SHA-256 of the artifact file — the build fingerprint the
    determinism guarantee is stated over."""
    digest = hashlib.sha256()
    try:
        with open(path, "rb") as infile:
            while chunk := infile.read(1 << 20):
                digest.update(chunk)
    except OSError as exc:
        raise ArtifactError(f"cannot read artifact {path!r}: {exc}") from exc
    return digest.digest()
