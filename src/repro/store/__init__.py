"""Persistent authenticated artifacts: build once, serve anywhere.

The paper's owner constructs and signs the ADS **once, offline**; this
package makes that lifecycle literal.  :func:`save_method` freezes a
built :class:`~repro.core.method.VerificationMethod` into a versioned
binary artifact (the ``.rspv`` pack: header + section table + signed
descriptor + build params + per-ADS sections), and :func:`load_method`
reconstructs a serving-capable method from it — without the graph file,
without the signer, and with the big numeric sections (distance
matrices, landmark vectors) mapped copy-on-write straight off the file
so N serving processes share one page-cached copy.

Typical deployment::

    # signer box, once
    method = DataOwner(graph).publish("LDM", c=100)
    save_method(method, "de.ldm.rspv")

    # each serving box, at boot
    server = ProofServer(load_method("de.ldm.rspv"))

Loading is strict: truncation, bit flips (every section is
checksummed), format-version mismatches and internally inconsistent
state all raise :class:`~repro.errors.ArtifactError` — never anything
untyped.
"""

from repro.store.artifact import (
    ArtifactInfo,
    artifact_info,
    is_artifact,
    load_method,
    save_method,
)
from repro.store.pack import (
    ARTIFACT_MAGIC,
    ARTIFACT_VERSION,
    ArtifactReader,
    ArtifactWriter,
    SectionInfo,
    decode_params,
    encode_params,
)

__all__ = [
    "ARTIFACT_MAGIC",
    "ARTIFACT_VERSION",
    "ArtifactInfo",
    "ArtifactReader",
    "ArtifactWriter",
    "SectionInfo",
    "artifact_info",
    "decode_params",
    "encode_params",
    "is_artifact",
    "load_method",
    "save_method",
]
