"""Method-level artifact operations: save, load, inspect.

:func:`save_method` maps a method's
:class:`~repro.core.state.MethodState` onto the ``.rspv`` pack —
graph sections first (node coordinates and edge arrays, enough to
rehydrate the provider's :class:`~repro.graph.graph.SpatialGraph`
without the original input file), then the per-method sections.
:func:`load_method` is the inverse and returns a serving-capable
method whose descriptor and responses are byte-identical to the dumped
method's.

The rehydrated graph is fast-forwarded to the signed graph version
(:meth:`~repro.graph.graph.SpatialGraph.advance_version_to`), so the
loaded method plugs into every existing consumer unchanged: the proof
cache keys on the same version, ``apply_update`` absorbs future owner
mutations incrementally, and a re-``pack`` after updates emits the next
artifact version for the PR-4 wire descriptor flow to announce.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.method import VerificationMethod, get_method
from repro.core.proofs import SignedDescriptor
from repro.core.state import MethodState
from repro.errors import ArtifactError, EncodingError, MethodError
from repro.graph.graph import SpatialGraph
from repro.store.pack import (
    ARTIFACT_MAGIC,
    ArtifactReader,
    ArtifactWriter,
    KIND_BYTES,
    SectionInfo,
    file_digest,
)


def save_method(method: VerificationMethod, path: str) -> None:
    """Freeze a built method into one ``.rspv`` artifact file.

    Pure function of the method's state: packing the same build twice
    yields byte-identical files (see :func:`artifact_info` for the
    digest).  The signer is not involved — the descriptor inside the
    pack is the one signed at build/update time.
    """
    state = method.dump_state()
    writer = ArtifactWriter(
        method=state.method,
        graph_version=state.graph_version,
        algo_sp=state.algo_sp,
        build_params=state.build_params,
        publish_params=state.publish_params,
        descriptor_bytes=state.descriptor.encode(),
    )
    for name, array in _graph_sections(state.graph).items():
        writer.add_array(name, array)
    for name, array in state.arrays.items():
        writer.add_array(name, array)
    for name, blob in state.blobs.items():
        writer.add_bytes(name, blob)
    writer.write(path)


def load_method(path: str, *, expect_method: "str | None" = None,
                mmap: bool = True, verify: bool = True) -> VerificationMethod:
    """Reconstruct a serving-capable method from an artifact.

    ``mmap=True`` (default) maps the numeric sections copy-on-write —
    cold start touches almost none of the big sections, and N worker
    processes loading the same file share one page-cached copy.
    ``verify=True`` checks every section digest up front; disabling it
    is only sensible for files this very process just wrote.

    Raises :class:`~repro.errors.ArtifactError` — and only that — for
    any corrupted, truncated, tampered or incompatible artifact.
    """
    reader = ArtifactReader(path, verify=verify,
                            mmap_mode="c" if mmap else None)
    if expect_method is not None and reader.method != expect_method:
        raise ArtifactError(
            f"artifact serves method {reader.method!r}, expected "
            f"{expect_method!r}"
        )
    try:
        cls = get_method(reader.method)
    except MethodError as exc:
        raise ArtifactError(str(exc)) from exc
    try:
        descriptor = SignedDescriptor.decode(reader.descriptor_bytes)
    except EncodingError as exc:
        raise ArtifactError(f"artifact descriptor does not decode: {exc}") from exc
    graph = _restore_graph(reader)
    state = MethodState(
        method=reader.method,
        graph=graph,
        graph_version=reader.graph_version,
        descriptor=descriptor,
        build_params=reader.build_params,
        publish_params=reader.publish_params,
        algo_sp=reader.algo_sp,
        arrays={name: reader.array(name) for name, info in
                reader.sections.items()
                if info.kind != KIND_BYTES and not name.startswith("graph/")},
        blobs={name: reader.bytes(name) for name, info in
               reader.sections.items() if info.kind == KIND_BYTES},
    )
    method = cls.load_state(state)
    # Mapped sections borrow the reader's buffer; pin it to the method
    # so the mapping lives exactly as long as the views into it.
    method._artifact_reader = reader
    return method


# ----------------------------------------------------------------------
# Graph sections
# ----------------------------------------------------------------------
def _graph_sections(graph: SpatialGraph) -> "dict[str, np.ndarray]":
    """The graph as six aligned arrays (ascending ids, sorted edges)."""
    nodes = list(graph.nodes())
    edges = list(graph.edges())
    return {
        "graph/ids": np.array([n.id for n in nodes], dtype=np.int64),
        "graph/x": np.array([n.x for n in nodes], dtype=np.float64),
        "graph/y": np.array([n.y for n in nodes], dtype=np.float64),
        "graph/edge_u": np.array([e[0] for e in edges], dtype=np.int64),
        "graph/edge_v": np.array([e[1] for e in edges], dtype=np.int64),
        "graph/edge_w": np.array([e[2] for e in edges], dtype=np.float64),
    }


def _restore_graph(reader: ArtifactReader) -> SpatialGraph:
    """Rehydrate the provider's graph at the signed version.

    Validation is vectorized (the node/edge arrays are the canonical
    ascending layout :func:`_graph_sections` wrote, so checking
    monotonicity checks uniqueness and ordering at once), and the
    graph is then bulk-installed through
    :meth:`~repro.graph.graph.SpatialGraph.from_parts` — the
    per-operation ``add_edge`` path would dominate artifact cold-start
    on large networks.
    """
    ids = reader.array("graph/ids")
    xs = reader.array("graph/x")
    ys = reader.array("graph/y")
    eu = reader.array("graph/edge_u")
    ev = reader.array("graph/edge_v")
    ew = reader.array("graph/edge_w")
    if not (ids.ndim == xs.ndim == ys.ndim == 1
            and ids.shape == xs.shape == ys.shape):
        raise ArtifactError("graph node sections disagree on their shape")
    if not (eu.ndim == ev.ndim == ew.ndim == 1
            and eu.shape == ev.shape == ew.shape):
        raise ArtifactError("graph edge sections disagree on their shape")
    if ids.size == 0:
        raise ArtifactError("artifact graph has no nodes")
    if ids.size > 1 and not np.all(np.diff(ids) > 0):
        raise ArtifactError("graph node ids are not strictly increasing")
    if not (np.isfinite(xs).all() and np.isfinite(ys).all()):
        raise ArtifactError("graph coordinates are not finite")
    if eu.size:
        if not np.all(eu < ev):
            raise ArtifactError(
                "graph edges are not in canonical (u < v) form"
            )
        if not (np.isin(eu, ids).all() and np.isin(ev, ids).all()):
            raise ArtifactError("graph edge references an unknown node")
        if not np.isfinite(ew).all() or np.any(ew < 0):
            raise ArtifactError("graph edge weights are not finite and >= 0")
        # Strict lexicographic (u, v) order implies uniqueness; compared
        # component-wise — a combined u*span+v key would overflow int64
        # for large (e.g. OSM-style) node ids.
        du, dv = np.diff(eu), np.diff(ev)
        if not np.all((du > 0) | ((du == 0) & (dv > 0))):
            raise ArtifactError(
                "graph edges are not strictly sorted (duplicate edge?)"
            )
    return SpatialGraph.from_parts(
        zip(ids.tolist(), xs.tolist(), ys.tolist()),
        zip(eu.tolist(), ev.tolist(), ew.tolist()),
        version=reader.graph_version,
    )


# ----------------------------------------------------------------------
# Inspection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArtifactInfo:
    """What ``repro-spv info`` prints for an artifact file."""

    path: str
    method: str
    graph_version: int
    descriptor_version: int
    hash_name: str
    algo_sp: str
    content_digest: bytes
    tree_roots: tuple[tuple[str, bytes], ...]
    sections: tuple[SectionInfo, ...]

    @property
    def total_bytes(self) -> int:
        """Sum of section payload sizes (excluding header/padding)."""
        return sum(info.length for info in self.sections)


def is_artifact(path: str) -> bool:
    """Whether *path* starts with the ``.rspv`` magic (cheap sniff)."""
    try:
        with open(path, "rb") as infile:
            return infile.read(len(ARTIFACT_MAGIC)) == ARTIFACT_MAGIC
    except OSError:
        return False


def artifact_info(path: str, *, verify: bool = True) -> ArtifactInfo:
    """Parse an artifact's header (and optionally verify its sections)."""
    reader = ArtifactReader(path, verify=verify, mmap_mode="c")
    try:
        try:
            descriptor = SignedDescriptor.decode(reader.descriptor_bytes)
        except EncodingError as exc:
            raise ArtifactError(
                f"artifact descriptor does not decode: {exc}"
            ) from exc
        return ArtifactInfo(
            path=path,
            method=reader.method,
            graph_version=reader.graph_version,
            descriptor_version=descriptor.version,
            hash_name=descriptor.hash_name,
            algo_sp=reader.algo_sp,
            content_digest=file_digest(path),
            tree_roots=tuple((t.name, t.root) for t in descriptor.trees),
            sections=tuple(reader.sections.values()),
        )
    finally:
        reader.close()
