"""Coarse graph assembly for HYP verification.

The coarse graph ``G_coarse`` (paper §V-B) contains the full subgraphs
of the source and target cells plus hyper-edges connecting their
border nodes.  By Theorem 2 its shortest path distance equals the true
``dist(vs, vt)``.  Both the provider (when forming the proof) and the
client (when re-searching the proof) use this builder, which keeps the
two sides byte-for-byte consistent.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.graph.graph import SpatialGraph
from repro.graph.tuples import HypTuple


def build_coarse_graph(
    cell_tuples: "Mapping[int, HypTuple]",
    hyper_edges: "Iterable[tuple[int, int, float]]",
) -> SpatialGraph:
    """Assemble ``G_coarse`` from cell tuples and hyper-edge weights.

    * ``cell_tuples`` — Φ(v) for every node of the source and target
      cells, keyed by node id;
    * ``hyper_edges`` — ``(a, b, W*)`` triples between border nodes.

    Real edges are added only when **both** endpoints are present
    (edges leaving the two cells are represented by hyper-edges).
    When a real edge and a hyper-edge connect the same pair, the
    smaller weight wins (the hyper-edge weight is the true distance,
    hence never larger than any single edge).
    """
    coarse = SpatialGraph()
    for tup in cell_tuples.values():
        coarse.add_node(tup.node_id, tup.x, tup.y)
    for tup in cell_tuples.values():
        for nbr, w in tup.adjacency:
            if nbr in cell_tuples and tup.node_id < nbr:
                coarse.add_edge(tup.node_id, nbr, w)
    for a, b, w in hyper_edges:
        if a == b:
            continue
        if coarse.has_edge(a, b):
            if w < coarse.weight(a, b):
                coarse.remove_edge(a, b)
                coarse.add_edge(a, b, w)
        else:
            coarse.add_edge(a, b, w)
    return coarse
