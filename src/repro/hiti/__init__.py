"""HiTi-style grid hierarchy for the HYP method (paper §V-B).

The coordinate space is tiled into ``p`` grid cells; a node adjacent to
a node of another cell is a *border* node; hyper-edges between border
nodes carry the exact shortest path distance ``W*(b1, b2)``.
Following the paper's footnote 1, hyper-edges are materialized for
*any* pair of border nodes, not only same-cell pairs.
"""

from repro.hiti.partition import GridPartition, GridSpec
from repro.hiti.hyperedges import HyperEdgeSet, compute_hyperedges
from repro.hiti.coarse import build_coarse_graph

__all__ = [
    "GridSpec",
    "GridPartition",
    "HyperEdgeSet",
    "compute_hyperedges",
    "build_coarse_graph",
]
