"""Hyper-edge materialization: exact distances between border nodes.

Following the paper's footnote 1, the owner materializes a hyper-edge
``E*(b1, b2)`` with weight ``W*(b1, b2) = dist(b1, b2)`` for **every**
unordered pair of border nodes.  The pairs are laid out in the
canonical upper-triangle order of the sorted border list, which gives
each pair a computable index in the distance Merkle B-tree without
storing a key array.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import SpatialGraph
from repro.shortestpath.bulk import multi_source_distances


def triangle_index(i: int, j: int, n: int) -> int:
    """Rank of pair ``(i, j)`` (``i < j``) in upper-triangle order."""
    if not 0 <= i < j < n:
        raise GraphError(f"invalid pair ({i}, {j}) for n={n}")
    return i * n - (i * (i + 1)) // 2 + (j - i - 1)


def triangle_size(n: int) -> int:
    """Number of unordered pairs over *n* items."""
    return n * (n - 1) // 2


class HyperEdgeSet:
    """All-pairs border distances with triangle indexing.

    ``distances[i, j]`` is the exact graph distance between
    ``borders[i]`` and ``borders[j]``.  ``source_rows`` optionally
    keeps the raw per-border multi-source rows over *every* node
    (pre-slicing, pre-symmetrization): incremental updates need them
    both to decide which borders a mutated edge can have affected and
    to re-symmetrize after recomputing only those rows.
    """

    __slots__ = ("borders", "position_of", "distances", "source_rows")

    def __init__(self, borders: "list[int]", distances: np.ndarray,
                 source_rows: "np.ndarray | None" = None) -> None:
        if distances.shape != (len(borders), len(borders)):
            raise GraphError(
                f"distance matrix shape {distances.shape} does not match "
                f"{len(borders)} border nodes"
            )
        self.borders = list(borders)
        self.position_of = {b: i for i, b in enumerate(borders)}
        self.distances = distances
        self.source_rows = source_rows

    @property
    def num_borders(self) -> int:
        """Number of border nodes."""
        return len(self.borders)

    @property
    def num_pairs(self) -> int:
        """Number of materialized hyper-edges."""
        return triangle_size(len(self.borders))

    def weight(self, a: int, b: int) -> float:
        """``W*(a, b)`` for two border node ids."""
        try:
            return float(self.distances[self.position_of[a], self.position_of[b]])
        except KeyError as exc:
            raise GraphError(f"node {exc.args[0]} is not a border node") from None

    def pair_index(self, a: int, b: int) -> int:
        """Leaf index of the hyper-edge tuple for ``{a, b}``."""
        i, j = self.position_of[a], self.position_of[b]
        if i > j:
            i, j = j, i
        return triangle_index(i, j, len(self.borders))

    def iter_pairs(self):
        """Yield ``(a, b, W*(a, b))`` in triangle (leaf) order."""
        borders = self.borders
        n = len(borders)
        for i in range(n):
            row = self.distances[i]
            for j in range(i + 1, n):
                yield borders[i], borders[j], float(row[j])


def compute_hyperedges(graph: SpatialGraph, borders: "list[int]") -> HyperEdgeSet:
    """Materialize hyper-edges (one multi-source Dijkstra per border).

    This is the dominant cost of HYP construction (paper Fig. 13b).
    Raises if some pair is disconnected — HYP, like the paper, assumes
    a connected network.
    """
    if not borders:
        raise GraphError("no border nodes: use at least 2x2 cells on a connected graph")
    borders = sorted(borders)
    all_dist = multi_source_distances(graph, borders)  # (B, |V|)
    _, ids, index_of = graph.to_csr()
    cols = [index_of[b] for b in borders]
    matrix = all_dist[:, cols]
    if np.isinf(matrix).any():
        raise GraphError("disconnected border pair; HYP requires a connected graph")
    # Runs from different sources agree only up to float rounding;
    # symmetrize so W*(a, b) is one well-defined value.
    matrix = np.minimum(matrix, matrix.T)
    return HyperEdgeSet(borders, matrix, source_rows=all_dist)
