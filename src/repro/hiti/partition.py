"""Grid partition of a spatial graph and border-node detection."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.encoding import Decoder, Encoder
from repro.errors import GraphError
from repro.graph.graph import SpatialGraph


@dataclass(frozen=True)
class GridSpec:
    """Geometry of the HiTi grid; part of the signed method descriptor.

    Cells are numbered row-major: ``cell = row * nx + col``.
    """

    min_x: float
    min_y: float
    cell_w: float
    cell_h: float
    nx: int
    ny: int

    @property
    def num_cells(self) -> int:
        """Total number of cells ``p``."""
        return self.nx * self.ny

    def cell_of(self, x: float, y: float) -> int:
        """Cell id for a coordinate (clamped to the grid edges)."""
        col = int((x - self.min_x) / self.cell_w) if self.cell_w > 0 else 0
        row = int((y - self.min_y) / self.cell_h) if self.cell_h > 0 else 0
        col = min(max(col, 0), self.nx - 1)
        row = min(max(row, 0), self.ny - 1)
        return row * self.nx + col

    def encode(self) -> bytes:
        """Canonical encoding (embedded in the HYP descriptor)."""
        return (
            Encoder()
            .write_f64(self.min_x)
            .write_f64(self.min_y)
            .write_f64(self.cell_w)
            .write_f64(self.cell_h)
            .write_uint(self.nx)
            .write_uint(self.ny)
            .getvalue()
        )

    @classmethod
    def decode(cls, data: bytes) -> "GridSpec":
        """Inverse of :meth:`encode`."""
        dec = Decoder(data)
        spec = cls(dec.read_f64(), dec.read_f64(), dec.read_f64(), dec.read_f64(),
                   dec.read_uint(), dec.read_uint())
        dec.expect_end()
        return spec


class GridPartition:
    """Assignment of graph nodes to grid cells, with border detection.

    A node ``v`` in cell ``C`` is a *border* node iff some neighbor of
    ``v`` lies in a different cell (paper §V-B).
    """

    __slots__ = ("spec", "cell_of_node", "members", "border_flags")

    def __init__(self, graph: SpatialGraph, num_cells: int) -> None:
        side = round(math.sqrt(num_cells))
        if side * side != num_cells or side < 1:
            raise GraphError(
                f"num_cells must be a perfect square (paper uses 25..625), got {num_cells}"
            )
        min_x, min_y, max_x, max_y = graph.bounding_box()
        # Nudge the extent so max-coordinate nodes fall inside the last cell.
        width = (max_x - min_x) or 1.0
        height = (max_y - min_y) or 1.0
        self.spec = GridSpec(
            min_x=min_x,
            min_y=min_y,
            cell_w=width / side * (1 + 1e-12),
            cell_h=height / side * (1 + 1e-12),
            nx=side,
            ny=side,
        )
        # Vectorized assignment over the compiled index (ascending id
        # order): same float divisions, truncation and clamping as
        # ``GridSpec.cell_of`` element-wise, so the cells are identical
        # to the per-node path — this is a hot step of both HYP
        # construction and artifact cold-start.
        index = graph.to_index()
        ids = index.ids
        xs = np.fromiter((graph.node(i).x for i in ids), dtype=np.float64,
                         count=len(ids))
        ys = np.fromiter((graph.node(i).y for i in ids), dtype=np.float64,
                         count=len(ids))
        spec = self.spec
        if spec.cell_w > 0:
            cols = ((xs - spec.min_x) / spec.cell_w).astype(np.int64)
        else:
            cols = np.zeros(len(ids), dtype=np.int64)
        if spec.cell_h > 0:
            rows = ((ys - spec.min_y) / spec.cell_h).astype(np.int64)
        else:
            rows = np.zeros(len(ids), dtype=np.int64)
        np.clip(cols, 0, spec.nx - 1, out=cols)
        np.clip(rows, 0, spec.ny - 1, out=rows)
        cells = rows * spec.nx + cols

        self.cell_of_node: dict[int, int] = dict(zip(ids, cells.tolist()))
        self.members: dict[int, list[int]] = {}
        for node_id, cell in self.cell_of_node.items():
            self.members.setdefault(cell, []).append(node_id)
        for member_list in self.members.values():
            member_list.sort()

        # A node is a border node iff some neighbor's cell differs.
        # ``diff`` flags the crossing arcs; mapping each one back to
        # its source node through the CSR row pointers replaces the
        # per-node neighbor scan.
        indptr = np.asarray(index.indptr, dtype=np.int64)
        neighbors = np.asarray(index.neighbors, dtype=np.int64)
        degrees = np.diff(indptr)
        diff = cells[neighbors] != np.repeat(cells, degrees)
        flags = np.zeros(len(ids), dtype=bool)
        crossing = np.flatnonzero(diff)
        if crossing.size:
            owners = np.searchsorted(indptr, crossing, side="right") - 1
            flags[owners] = True
        self.border_flags: dict[int, bool] = dict(zip(ids, flags.tolist()))

    def cell(self, node_id: int) -> int:
        """Cell id of a node."""
        return self.cell_of_node[node_id]

    def is_border(self, node_id: int) -> bool:
        """Whether the node touches another cell."""
        return self.border_flags[node_id]

    def members_of(self, cell: int) -> list[int]:
        """Sorted node ids of a cell (empty list for an empty cell)."""
        return self.members.get(cell, [])

    def borders_of(self, cell: int) -> list[int]:
        """Sorted border node ids of a cell."""
        return [v for v in self.members_of(cell) if self.border_flags[v]]

    def all_borders(self) -> list[int]:
        """Sorted list of every border node in the graph."""
        return sorted(v for v, flag in self.border_flags.items() if flag)

    @property
    def occupied_cells(self) -> list[int]:
        """Cells that contain at least one node, ascending."""
        return sorted(self.members)
