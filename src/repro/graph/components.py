"""Connectivity utilities (iterative, recursion-free)."""

from __future__ import annotations

from repro.graph.graph import SpatialGraph


def connected_components(graph: SpatialGraph) -> list[set[int]]:
    """Connected components as sets of node ids, largest first."""
    seen: set[int] = set()
    components: list[set[int]] = []
    for start in graph.node_ids():
        if start in seen:
            continue
        component = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for v in graph.neighbors(u):
                if v not in component:
                    component.add(v)
                    stack.append(v)
        seen |= component
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def largest_component(graph: SpatialGraph) -> SpatialGraph:
    """The induced subgraph on the largest connected component."""
    components = connected_components(graph)
    if not components:
        return SpatialGraph()
    if len(components) == 1:
        return graph
    return graph.subgraph(components[0])


def is_connected(graph: SpatialGraph) -> bool:
    """True when the graph has exactly one connected component."""
    if graph.num_nodes == 0:
        return True
    return len(connected_components(graph)) == 1
