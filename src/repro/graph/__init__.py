"""Weighted spatial graph substrate.

The paper models a road network as an undirected graph ``G = (V, E, W)``
whose nodes carry coordinates (used by the Hilbert/kd orderings and by
the HiTi grid) and whose edge weights are arbitrary non-negative costs
(distance, travel time, tolls — explicitly *not* assumed Euclidean).
"""

from repro.graph.components import connected_components, is_connected, largest_component
from repro.graph.graph import GraphMutation, Node, SpatialGraph
from repro.graph.index import GraphIndex, build_graph_index
from repro.graph.synthetic import grid_network, random_geometric_network, road_network
from repro.graph.tuples import BaseTuple, DistanceTuple, HypTuple, LdmTuple

__all__ = [
    "Node",
    "SpatialGraph",
    "GraphMutation",
    "GraphIndex",
    "build_graph_index",
    "BaseTuple",
    "LdmTuple",
    "HypTuple",
    "DistanceTuple",
    "grid_network",
    "road_network",
    "random_geometric_network",
    "connected_components",
    "largest_component",
    "is_connected",
]
