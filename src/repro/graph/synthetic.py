"""Synthetic spatial road networks.

The paper evaluates on four Digital Chart of the World road networks
that are no longer distributed.  The :func:`road_network` generator
reproduces their structural fingerprint:

* nodes normalized to a ``[0, canvas]^2`` square (paper: 10,000);
* edge/node ratio ~ 1.05 — DCW graphs are dominated by degree-2
  polyline chains, which we obtain by building a sparse *junction*
  graph on a jittered grid and then subdividing each junction edge
  into several chain segments;
* edge weights = Euclidean segment length x a per-edge congestion
  factor, so weights correlate with, but do not equal, Euclidean
  distance (the paper explicitly targets non-Euclidean weights).

Two simpler generators support tests: :func:`grid_network` (regular
lattice with unit weights, exact distances easy to reason about) and
:func:`random_geometric_network`.
"""

from __future__ import annotations

import math
import random

from repro.errors import GraphError
from repro.graph.components import largest_component
from repro.graph.graph import SpatialGraph


def grid_network(rows: int, cols: int, *, spacing: float = 1.0,
                 weight: float = 1.0) -> SpatialGraph:
    """A ``rows x cols`` lattice with constant edge weights.

    Node ids are ``r * cols + c``; coordinates are ``(c, r) * spacing``.
    """
    if rows < 1 or cols < 1:
        raise GraphError("grid must have at least one row and column")
    graph = SpatialGraph()
    for r in range(rows):
        for c in range(cols):
            graph.add_node(r * cols + c, c * spacing, r * spacing)
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                graph.add_edge(node, node + 1, weight)
            if r + 1 < rows:
                graph.add_edge(node, node + cols, weight)
    return graph


def random_geometric_network(n_nodes: int, radius: float, *, seed: int = 0,
                             canvas: float = 10_000.0) -> SpatialGraph:
    """Uniform random nodes, edges between pairs within *radius*.

    Returns the largest connected component, so the result may have
    fewer than *n_nodes* nodes.  Edge weights are Euclidean lengths.
    """
    rng = random.Random(seed)
    graph = SpatialGraph()
    points: list[tuple[float, float]] = []
    for node_id in range(n_nodes):
        x, y = rng.uniform(0, canvas), rng.uniform(0, canvas)
        points.append((x, y))
        graph.add_node(node_id, x, y)
    # Cell binning: only compare points in neighboring bins.
    bins: dict[tuple[int, int], list[int]] = {}
    for node_id, (x, y) in enumerate(points):
        bins.setdefault((int(x // radius), int(y // radius)), []).append(node_id)
    for (bx, by), members in bins.items():
        candidates: list[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                candidates.extend(bins.get((bx + dx, by + dy), []))
        for u in members:
            ux, uy = points[u]
            for v in candidates:
                if v <= u:
                    continue
                vx, vy = points[v]
                dist = math.hypot(ux - vx, uy - vy)
                if dist <= radius and dist > 0:
                    graph.add_edge(u, v, dist)
    return largest_component(graph)


def road_network(n_nodes: int, *, seed: int = 0, canvas: float = 10_000.0,
                 extra_edge_fraction: float = 0.30,
                 mean_subdivision: float = 4.0,
                 congestion: tuple[float, float] = (1.0, 1.4)) -> SpatialGraph:
    """DCW-style synthetic road network with ~*n_nodes* nodes.

    Construction:

    1. Place ``J ~ n_nodes / (mean_subdivision * (1 + f) - f)`` junctions
       on a jittered ``g x g`` grid over the canvas (``f`` is
       *extra_edge_fraction*); this yields an edge/node ratio of about
       1.05 after subdivision, matching the DCW datasets.
    2. Connect junctions with a random spanning tree over the grid
       4-neighborhood (guarantees connectivity) plus ``f * J`` extra
       grid edges (creates alternative routes, hence non-trivial
       shortest path structure).
    3. Subdivide every junction edge into ``k`` segments (k random with
       the requested mean), inserting chain nodes with slight lateral
       jitter — the degree-2 polylines characteristic of road data.
    4. Weight each segment by its Euclidean length times a per-road
       congestion factor drawn uniformly from *congestion*.

    The node count is approximate (within a few percent); the exact
    value is ``graph.num_nodes``.
    """
    if n_nodes < 9:
        raise GraphError(f"road_network needs n_nodes >= 9, got {n_nodes}")
    rng = random.Random(seed)
    f = extra_edge_fraction
    m = mean_subdivision
    # nodes-after = J + E_j*(m-1), edges_j = (1+f)*J  =>  J = n / (1 + (1+f)(m-1))
    n_junctions = max(4, round(n_nodes / (1.0 + (1.0 + f) * (m - 1.0))))
    grid = max(2, round(math.sqrt(n_junctions)))
    n_junctions = grid * grid

    graph = SpatialGraph()
    cell = canvas / grid
    jitter = 0.30 * cell
    positions: dict[int, tuple[float, float]] = {}
    for r in range(grid):
        for c in range(grid):
            junction = r * grid + c
            x = min(canvas, max(0.0, (c + 0.5) * cell + rng.uniform(-jitter, jitter)))
            y = min(canvas, max(0.0, (r + 0.5) * cell + rng.uniform(-jitter, jitter)))
            positions[junction] = (x, y)
            graph.add_node(junction, x, y)

    # Candidate edges: grid 4-neighborhood.
    candidates: list[tuple[int, int]] = []
    for r in range(grid):
        for c in range(grid):
            junction = r * grid + c
            if c + 1 < grid:
                candidates.append((junction, junction + 1))
            if r + 1 < grid:
                candidates.append((junction, junction + grid))
    rng.shuffle(candidates)

    # Random spanning tree via union-find, then extra edges.
    parent = list(range(n_junctions))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    junction_edges: list[tuple[int, int]] = []
    leftovers: list[tuple[int, int]] = []
    for u, v in candidates:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            junction_edges.append((u, v))
        else:
            leftovers.append((u, v))
    extra = min(len(leftovers), round(f * n_junctions))
    junction_edges.extend(leftovers[:extra])

    # Subdivide each junction edge into chains of degree-2 nodes.
    next_id = n_junctions
    for u, v in junction_edges:
        (ux, uy), (vx, vy) = positions[u], positions[v]
        k = max(1, round(rng.gauss(m, m / 3.0)))
        factor = rng.uniform(*congestion)
        prev = u
        length = math.hypot(vx - ux, vy - uy)
        lateral = 0.05 * length
        for step in range(1, k):
            t = step / k
            px = ux + t * (vx - ux) + rng.uniform(-lateral, lateral)
            py = uy + t * (vy - uy) + rng.uniform(-lateral, lateral)
            px = min(canvas, max(0.0, px))
            py = min(canvas, max(0.0, py))
            graph.add_node(next_id, px, py)
            graph.add_edge(prev, next_id,
                           max(1e-9, graph.euclidean(prev, next_id)) * factor)
            prev = next_id
            next_id += 1
        graph.add_edge(prev, v, max(1e-9, graph.euclidean(prev, v)) * factor)
    return graph
