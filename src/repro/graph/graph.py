"""Undirected weighted spatial graph.

This is the substrate every other subsystem builds on: orderings walk
it, Merkle trees authenticate its extended tuples, shortest path
algorithms search it, and the HiTi partition tiles its coordinate
space.

Design notes
------------
* Adjacency is a ``dict[int, dict[int, float]]`` — node id to
  ``{neighbor id: weight}``.  Road networks are sparse (|E| ~ |V|), so
  hash maps beat matrices by orders of magnitude in memory.
* Hot paths never walk the dicts: :meth:`SpatialGraph.to_index`
  compiles the adjacency into contiguous CSR-style arrays
  (:class:`~repro.graph.index.GraphIndex`) that the array Dijkstra
  kernel and the SciPy bulk backends consume directly.
* Bulk distance computations (all-pairs for FULL, multi-source for
  LDM/HYP construction) go through :meth:`SpatialGraph.to_csr`, which
  exports a cached :class:`scipy.sparse.csr_matrix` plus the id <->
  index maps (derived from the same index snapshot).
* Mutation bumps an internal version counter that invalidates the
  index and CSR caches, so callers can freely interleave edits and
  exports.
* Every mutation is also appended to a :class:`GraphMutation`
  changelog, so owner-side incremental re-authentication
  (:meth:`repro.core.method.VerificationMethod.apply_update`) can
  replay exactly the edits it has not yet absorbed instead of
  diffing the whole graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from types import MappingProxyType
from typing import Iterable, Iterator, Mapping

from repro.errors import GraphError
from repro.graph.index import GraphIndex, build_graph_index


#: Changelog mutation kinds.
ADD_NODE = "add-node"
ADD_EDGE = "add-edge"
UPDATE_WEIGHT = "update-weight"
REMOVE_EDGE = "remove-edge"

#: Mutation kinds that change the adjacency *structure* (not just a
#: weight).  Adjacency-dependent leaf orderings (bfs/dfs) are only
#: stable across weight changes, so incremental re-authentication
#: checks pending mutations against this set.
TOPOLOGY_KINDS = frozenset({ADD_NODE, ADD_EDGE, REMOVE_EDGE})


@dataclass(frozen=True, slots=True)
class GraphMutation:
    """One changelog entry: what changed and the version it produced.

    ``old_weight`` carries the pre-mutation weight for
    ``update-weight`` / ``remove-edge`` entries (``nan`` otherwise);
    incremental re-authentication needs it to decide which distances a
    weight change can possibly have touched.
    """

    kind: str
    u: int
    v: int = -1
    weight: float = math.nan
    old_weight: float = math.nan
    version: int = 0

    @property
    def endpoints(self) -> tuple[int, int]:
        """``(u, v)`` for edge mutations."""
        return (self.u, self.v)


@dataclass(frozen=True, slots=True)
class Node:
    """A graph node: identifier plus planar coordinates.

    For non-spatial graphs the paper substitutes nulls for coordinates;
    here use ``0.0`` and pick a non-spatial ordering (bfs/dfs/random).
    """

    id: int
    x: float
    y: float


class SpatialGraph:
    """Undirected weighted graph with node coordinates.

    >>> g = SpatialGraph()
    >>> g.add_node(1, 0.0, 0.0); g.add_node(2, 3.0, 4.0)
    >>> g.add_edge(1, 2, 5.0)
    >>> g.weight(1, 2)
    5.0
    """

    __slots__ = ("_nodes", "_adj", "_num_edges", "_version", "_csr_cache",
                 "_index_cache", "_changelog", "_changelog_base")

    def __init__(self) -> None:
        self._nodes: dict[int, Node] = {}
        self._adj: dict[int, dict[int, float]] = {}
        self._num_edges = 0
        self._version = 0
        self._csr_cache: tuple[int, object] | None = None
        self._index_cache: tuple[int, GraphIndex] | None = None
        self._changelog: list[GraphMutation] = []
        #: Version of the oldest retained changelog entry minus one —
        #: entries before it were dropped by :meth:`trim_changelog`.
        self._changelog_base = 0

    def _record(self, kind: str, u: int, v: int = -1,
                weight: float = math.nan,
                old_weight: float = math.nan) -> None:
        """Bump the version and append the matching changelog entry."""
        self._version += 1
        self._changelog.append(GraphMutation(
            kind, u, v, weight, old_weight, self._version,
        ))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: int, x: float = 0.0, y: float = 0.0) -> None:
        """Add a node; re-adding an existing id with new coords is an error."""
        if node_id in self._nodes:
            existing = self._nodes[node_id]
            if existing.x != x or existing.y != y:
                raise GraphError(
                    f"node {node_id} already exists at ({existing.x}, {existing.y})"
                )
            return
        self._nodes[node_id] = Node(node_id, float(x), float(y))
        self._adj[node_id] = {}
        self._record(ADD_NODE, node_id)

    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Add an undirected edge; both endpoints must already exist.

        Re-adding an existing edge overwrites its weight and is logged
        as an ``update-weight`` mutation (not a structural change).
        """
        if u == v:
            raise GraphError(f"self-loop on node {u} is not allowed")
        if u not in self._nodes or v not in self._nodes:
            missing = u if u not in self._nodes else v
            raise GraphError(f"edge ({u}, {v}) references unknown node {missing}")
        weight = float(weight)
        if weight < 0 or math.isnan(weight) or math.isinf(weight):
            raise GraphError(f"edge ({u}, {v}) has invalid weight {weight}")
        old = self._adj[u].get(v)
        if old is None:
            self._num_edges += 1
            self._adj[u][v] = weight
            self._adj[v][u] = weight
            self._record(ADD_EDGE, u, v, weight)
            return
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self._record(UPDATE_WEIGHT, u, v, weight, old)

    def update_edge_weight(self, u: int, v: int, weight: float) -> None:
        """Re-weight an *existing* undirected edge.

        The explicit live-update entry point: unlike :meth:`add_edge`
        it refuses to create the edge, so a typo'd node pair fails
        loudly instead of silently growing the network.
        """
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u}, {v}) does not exist")
        weight = float(weight)
        if weight < 0 or math.isnan(weight) or math.isinf(weight):
            raise GraphError(f"edge ({u}, {v}) has invalid weight {weight}")
        old = self._adj[u][v]
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self._record(UPDATE_WEIGHT, u, v, weight, old)

    def remove_edge(self, u: int, v: int) -> None:
        """Remove an undirected edge (closures, tamper/ablation tooling)."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u}, {v}) does not exist")
        old = self._adj[u][v]
        del self._adj[u][v]
        del self._adj[v][u]
        self._num_edges -= 1
        self._record(REMOVE_EDGE, u, v, math.nan, old)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_node(self, node_id: int) -> bool:
        """True if *node_id* is in the graph."""
        return node_id in self._nodes

    def has_edge(self, u: int, v: int) -> bool:
        """True if the undirected edge (u, v) exists."""
        return u in self._adj and v in self._adj[u]

    def node(self, node_id: int) -> Node:
        """The :class:`Node` record for *node_id*."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphError(f"unknown node {node_id}") from None

    def weight(self, u: int, v: int) -> float:
        """Weight of edge (u, v)."""
        try:
            return self._adj[u][v]
        except KeyError:
            raise GraphError(f"edge ({u}, {v}) does not exist") from None

    def neighbors(self, node_id: int) -> Mapping[int, float]:
        """Read-only view of ``{neighbor: weight}`` for *node_id*.

        The view is a :class:`types.MappingProxyType`: mutating it
        raises ``TypeError``, so callers cannot corrupt the adjacency
        (or bypass the version counter) through a leaked reference.
        """
        try:
            return MappingProxyType(self._adj[node_id])
        except KeyError:
            raise GraphError(f"unknown node {node_id}") from None

    def degree(self, node_id: int) -> int:
        """Number of incident edges."""
        try:
            return len(self._adj[node_id])
        except KeyError:
            raise GraphError(f"unknown node {node_id}") from None

    @property
    def version(self) -> int:
        """Monotonic mutation counter.

        Every structural change (node/edge add or remove) bumps it, so
        derived caches — the CSR export here, proof caches in
        :mod:`repro.service` — can detect staleness with one integer
        comparison.
        """
        return self._version

    @property
    def changelog(self) -> tuple[GraphMutation, ...]:
        """The retained mutation history, oldest first."""
        return tuple(self._changelog)

    def mutations_since(self, version: int) -> tuple[GraphMutation, ...]:
        """Mutations applied after the graph was at *version*.

        Every version bump appends exactly one changelog entry, so the
        slice is an O(1) index, not a scan.  Raises when *version* is
        ahead of the graph or behind the retained history (entries
        dropped by :meth:`trim_changelog`).
        """
        if not self._changelog_base <= version <= self._version:
            raise GraphError(
                f"version {version} outside the retained changelog "
                f"[{self._changelog_base}, {self._version}]"
            )
        return tuple(self._changelog[version - self._changelog_base:])

    def trim_changelog(self, before_version: int) -> None:
        """Drop changelog entries at or below *before_version*.

        A long-lived owner absorbing a steady update stream calls this
        with the version every consumer has already synced past
        (:class:`~repro.service.server.ProofServer` does so after each
        successful update batch), keeping memory flat.  Trimming never
        touches the graph itself; it only limits how far back
        :meth:`mutations_since` and :meth:`rollback_to` can reach.
        """
        before_version = min(before_version, self._version)
        if before_version <= self._changelog_base:
            return
        del self._changelog[: before_version - self._changelog_base]
        self._changelog_base = before_version

    @classmethod
    def from_parts(
        cls,
        nodes: "Iterable[tuple[int, float, float]]",
        edges: "Iterable[tuple[int, int, float]]",
        *,
        version: int = 0,
    ) -> "SpatialGraph":
        """Bulk-construct from pre-validated parts (the rehydration path).

        Installs nodes and undirected edges directly into the adjacency
        maps — no per-operation validation, no changelog entries — and
        starts the mutation counter at *version* with an empty retained
        history, exactly as :meth:`advance_version_to` would leave it.

        **Trusted callers only**: the caller guarantees unique node
        ids, edges between existing distinct nodes, no duplicates, and
        finite non-negative weights (the artifact loader checks all of
        this vectorized before calling).  Feeding unchecked data here
        bypasses the invariants :meth:`add_edge` enforces.
        """
        graph = cls()
        nodes_map = graph._nodes
        adjacency = graph._adj
        for node_id, x, y in nodes:
            nodes_map[node_id] = Node(node_id, x, y)
            adjacency[node_id] = {}
        count = 0
        for u, v, w in edges:
            adjacency[u][v] = w
            adjacency[v][u] = w
            count += 1
        graph._num_edges = count
        graph._version = version
        graph._changelog_base = version
        return graph

    def advance_version_to(self, version: int) -> None:
        """Fast-forward the mutation counter to *version* and seal history.

        Used when rehydrating a graph whose authenticated structures
        were signed at *version* on another machine (the
        :mod:`repro.store` artifact path): the reconstruction's own
        add-node/add-edge mutations are construction noise, not owner
        edits, so the changelog is cleared and the counter jumps to the
        signed version.  From there the graph behaves exactly like the
        original — new mutations append past *version* and
        :meth:`mutations_since` replays only genuine owner edits.
        Derived caches are dropped (they were keyed to the construction
        counter).  Rewinding is refused: version numbers are the
        freshness ordering clients rely on.
        """
        if version < self._version:
            raise GraphError(
                f"cannot rewind version from {self._version} to {version}"
            )
        self._version = version
        self._changelog.clear()
        self._changelog_base = version
        self._csr_cache = None
        self._index_cache = None

    def rollback_to(self, version: int) -> None:
        """Inverse-apply retained mutations back to the state at *version*.

        Restores nodes/edges/weights as of *version* by applying each
        newer edge mutation in reverse (the changelog records old
        weights).  The version counter keeps moving forward — a
        rollback is itself a sequence of mutations, so caches and
        derived structures invalidate normally.  Node additions have
        no inverse and raise.
        """
        for mutation in reversed(self.mutations_since(version)):
            if mutation.kind == UPDATE_WEIGHT:
                self.update_edge_weight(mutation.u, mutation.v,
                                        mutation.old_weight)
            elif mutation.kind == ADD_EDGE:
                self.remove_edge(mutation.u, mutation.v)
            elif mutation.kind == REMOVE_EDGE:
                self.add_edge(mutation.u, mutation.v, mutation.old_weight)
            else:
                raise GraphError(
                    f"cannot roll back mutation kind {mutation.kind!r}"
                )

    @property
    def num_nodes(self) -> int:
        """|V|."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """|E| (each undirected edge counted once)."""
        return self._num_edges

    def node_ids(self) -> list[int]:
        """Sorted list of node ids."""
        return sorted(self._nodes)

    def nodes(self) -> Iterator[Node]:
        """Iterate nodes in ascending id order."""
        for node_id in self.node_ids():
            yield self._nodes[node_id]

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate undirected edges once each, as ``(u, v, w)`` with u < v."""
        for u in self.node_ids():
            for v, w in sorted(self._adj[u].items()):
                if u < v:
                    yield (u, v, w)

    def bounding_box(self) -> tuple[float, float, float, float]:
        """``(min_x, min_y, max_x, max_y)`` over all node coordinates."""
        if not self._nodes:
            raise GraphError("bounding box of an empty graph")
        xs = [n.x for n in self._nodes.values()]
        ys = [n.y for n in self._nodes.values()]
        return (min(xs), min(ys), max(xs), max(ys))

    def euclidean(self, u: int, v: int) -> float:
        """Euclidean distance between the coordinates of two nodes."""
        a, b = self.node(u), self.node(v)
        return math.hypot(a.x - b.x, a.y - b.y)

    # ------------------------------------------------------------------
    # derived structures
    # ------------------------------------------------------------------
    def subgraph(self, node_ids: Iterable[int]) -> "SpatialGraph":
        """Induced subgraph on *node_ids* (edges with both endpoints kept)."""
        keep = set(node_ids)
        sub = SpatialGraph()
        for node_id in keep:
            node = self.node(node_id)
            sub.add_node(node.id, node.x, node.y)
        for node_id in keep:
            for nbr, w in self._adj[node_id].items():
                if nbr in keep and node_id < nbr:
                    sub.add_edge(node_id, nbr, w)
        return sub

    def copy(self) -> "SpatialGraph":
        """Deep copy."""
        return self.subgraph(self._nodes)

    def to_index(self) -> GraphIndex:
        """Compile the adjacency into a :class:`GraphIndex` snapshot.

        Contiguous ``indptr`` / ``neighbors`` / ``weights`` arrays plus
        the id <-> index maps, in ascending id order with each node's
        neighbor run sorted by id.  Cached until the graph is mutated,
        so repeated hot-path queries share one compiled layout.
        """
        if self._index_cache is not None and self._index_cache[0] == self._version:
            return self._index_cache[1]
        index = None
        if self._index_cache is not None and \
                self._index_cache[0] >= self._changelog_base:
            cached_version, cached = self._index_cache
            pending = self._changelog[cached_version - self._changelog_base:]
            if pending and all(m.kind == UPDATE_WEIGHT for m in pending):
                # Weight-only drift: topology arrays are still valid, so
                # patch a shared-topology sibling instead of recompiling
                # (identical output; the live-update hot path).
                index = cached.with_updated_weights(
                    (m.u, m.v, m.weight) for m in pending
                )
        if index is None:
            index = build_graph_index(self._adj)
        self._index_cache = (self._version, index)
        return index

    def to_csr(self):
        """Export ``(matrix, ids, index_of)`` for scipy bulk algorithms.

        * ``matrix`` — symmetric :class:`scipy.sparse.csr_matrix` of weights;
        * ``ids`` — node id for each matrix row (ascending id order);
        * ``index_of`` — inverse map ``{node id: row}``.

        The export is cached until the graph is mutated and is derived
        from :meth:`to_index`, so the two caches describe the same
        snapshot.
        """
        if self._csr_cache is not None and self._csr_cache[0] == self._version:
            return self._csr_cache[1]
        index = self.to_index()
        result = (index.csr_matrix(), index.ids, index.index_of)
        self._csr_cache = (self._version, result)
        return result

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check internal invariants; raises :class:`GraphError` on breach."""
        edge_count = 0
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if self._adj.get(v, {}).get(u) != w:
                    raise GraphError(f"asymmetric adjacency on edge ({u}, {v})")
                if w < 0:
                    raise GraphError(f"negative weight on edge ({u}, {v})")
                edge_count += 1
        if edge_count != 2 * self._num_edges:
            raise GraphError(
                f"edge count mismatch: counted {edge_count // 2}, stored {self._num_edges}"
            )

    def __repr__(self) -> str:
        return f"SpatialGraph(|V|={self.num_nodes}, |E|={self.num_edges})"

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes
