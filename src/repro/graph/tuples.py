"""Extended tuples Φ(v) and distance tuples.

The *extended tuple* is the unit of authentication in every method: it
packages a node's attributes together with its full adjacency list, so
that a client holding an authenticated Φ(v) knows *all* edges incident
to v (Eq. 1 in the paper).  LDM extends it with the (quantized,
possibly compressed) landmark vector (Eq. 4); HYP extends it with the
cell id and border flag (Eq. 7).

Distance tuples ``<a, b, dist(a, b)>`` are the leaves of the distance
Merkle B-trees used by FULL and HYP.

All tuples encode canonically via :mod:`repro.encoding`, with adjacency
sorted by neighbor id, so owner, provider and client always derive the
same digests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.encoding import Decoder, Encoder
from repro.errors import EncodingError
from repro.graph.graph import SpatialGraph


def _canonical_adjacency(neighbors: Mapping[int, float]) -> tuple[tuple[int, float], ...]:
    return tuple(sorted((int(v), float(w)) for v, w in neighbors.items()))


@dataclass(frozen=True)
class BaseTuple:
    """Φ(v) = <id, x, y, {<v', W(v, v')>}> — Eq. (1)."""

    node_id: int
    x: float
    y: float
    adjacency: tuple[tuple[int, float], ...]

    @classmethod
    def from_graph(cls, graph: SpatialGraph, node_id: int) -> "BaseTuple":
        """Build Φ(v) for *node_id* directly from the graph."""
        node = graph.node(node_id)
        return cls(node.id, node.x, node.y, _canonical_adjacency(graph.neighbors(node_id)))

    def _encode_header(self, enc: Encoder) -> None:
        enc.write_uint(self.node_id).write_f64(self.x).write_f64(self.y)
        enc.write_uint(len(self.adjacency))
        for nbr, w in self.adjacency:
            enc.write_uint(nbr).write_f64(w)

    def encode(self) -> bytes:
        """Canonical byte encoding (hash input and proof payload)."""
        enc = Encoder()
        self._encode_header(enc)
        return enc.getvalue()

    @staticmethod
    def _decode_header(dec: Decoder) -> tuple[int, float, float, tuple[tuple[int, float], ...]]:
        node_id = dec.read_uint()
        x = dec.read_f64()
        y = dec.read_f64()
        count = dec.read_uint()
        adjacency = tuple((dec.read_uint(), dec.read_f64()) for _ in range(count))
        return node_id, x, y, adjacency

    @classmethod
    def decode(cls, data: bytes) -> "BaseTuple":
        """Inverse of :meth:`encode`."""
        dec = Decoder(data)
        tup = cls(*cls._decode_header(dec))
        dec.expect_end()
        return tup


@dataclass(frozen=True)
class LdmTuple(BaseTuple):
    """Φ(v) with landmark vector information — Eq. (4).

    Exactly one of the following holds:

    * *uncompressed*: ``codes`` carries the b-bit quantized landmark
      distance codes and ``ref_id is None``;
    * *compressed*: ``codes is None`` and ``(ref_id, eps_units)`` names
      the representative θ and the compression error ε expressed in
      integer multiples of the quantization step λ (ε is a max of
      absolute differences of quantized values, hence always a multiple
      of λ).
    """

    codes: tuple[int, ...] | None = None
    ref_id: int | None = None
    eps_units: int | None = None
    bits: int = 12

    def __post_init__(self) -> None:
        compressed = self.ref_id is not None
        if compressed == (self.codes is not None):
            raise EncodingError("LdmTuple must carry either codes or a reference")
        if compressed and self.eps_units is None:
            raise EncodingError("compressed LdmTuple needs eps_units")

    @property
    def is_compressed(self) -> bool:
        """True when this node's vector is represented by another node's."""
        return self.ref_id is not None

    def encode(self) -> bytes:
        enc = Encoder()
        self._encode_header(enc)
        if self.is_compressed:
            enc.write_bool(True)
            enc.write_uint(self.ref_id)
            enc.write_uint(self.eps_units)
        else:
            enc.write_bool(False)
            enc.write_uint(self.bits)
            enc.write_packed_codes(self.codes, self.bits)
        return enc.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "LdmTuple":
        dec = Decoder(data)
        node_id, x, y, adjacency = cls._decode_header(dec)
        if dec.read_bool():
            tup = cls(node_id, x, y, adjacency,
                      codes=None, ref_id=dec.read_uint(), eps_units=dec.read_uint())
        else:
            bits = dec.read_uint()
            codes = tuple(dec.read_packed_codes(bits))
            tup = cls(node_id, x, y, adjacency, codes=codes, bits=bits)
        dec.expect_end()
        return tup


@dataclass(frozen=True)
class HypTuple(BaseTuple):
    """Φ(v) with HiTi cell information — Eq. (7)."""

    cell_id: int = 0
    is_border: bool = False

    def encode(self) -> bytes:
        enc = Encoder()
        self._encode_header(enc)
        enc.write_uint(self.cell_id)
        enc.write_bool(self.is_border)
        return enc.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "HypTuple":
        dec = Decoder(data)
        node_id, x, y, adjacency = cls._decode_header(dec)
        tup = cls(node_id, x, y, adjacency,
                  cell_id=dec.read_uint(), is_border=dec.read_bool())
        dec.expect_end()
        return tup


@dataclass(frozen=True, order=True)
class DistanceTuple:
    """Materialized distance entry ``<a, b, dist(a, b)>``.

    The composite key ``(a, b)`` orders the leaves of distance Merkle
    B-trees (FULL stores all node pairs; HYP stores border-node pairs
    with ``a < b`` since the graph is undirected).
    """

    a: int
    b: int
    distance: float = field(compare=False)

    @property
    def key(self) -> tuple[int, int]:
        """The B-tree composite key."""
        return (self.a, self.b)

    def encode(self) -> bytes:
        """Canonical byte encoding."""
        return (
            Encoder()
            .write_uint(self.a)
            .write_uint(self.b)
            .write_f64(self.distance)
            .getvalue()
        )

    @classmethod
    def decode(cls, data: bytes) -> "DistanceTuple":
        """Inverse of :meth:`encode`."""
        dec = Decoder(data)
        tup = cls(dec.read_uint(), dec.read_uint(), dec.read_f64())
        dec.expect_end()
        return tup


@dataclass(frozen=True)
class CellDirectoryTuple:
    """HYP cell directory entry: ``<cell id, sorted member node ids>``.

    This is the soundness-completing ADS described in DESIGN.md §3: it
    lets a client confirm that the provider disclosed *every* node of
    the source/target cells in the coarse proof.
    """

    cell_id: int
    member_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        if tuple(sorted(self.member_ids)) != tuple(self.member_ids):
            raise EncodingError("cell directory members must be sorted")

    def encode(self) -> bytes:
        """Canonical byte encoding."""
        enc = Encoder().write_uint(self.cell_id)
        enc.write_uint_seq(self.member_ids)
        return enc.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "CellDirectoryTuple":
        """Inverse of :meth:`encode`."""
        dec = Decoder(data)
        tup = cls(dec.read_uint(), tuple(dec.read_uint_seq()))
        dec.expect_end()
        return tup
