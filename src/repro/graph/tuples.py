"""Extended tuples Φ(v) and distance tuples.

The *extended tuple* is the unit of authentication in every method: it
packages a node's attributes together with its full adjacency list, so
that a client holding an authenticated Φ(v) knows *all* edges incident
to v (Eq. 1 in the paper).  LDM extends it with the (quantized,
possibly compressed) landmark vector (Eq. 4); HYP extends it with the
cell id and border flag (Eq. 7).

Distance tuples ``<a, b, dist(a, b)>`` are the leaves of the distance
Merkle B-trees used by FULL and HYP.

All tuples encode canonically via :mod:`repro.encoding`, with adjacency
sorted by neighbor id, so owner, provider and client always derive the
same digests.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Mapping

from repro.encoding import Decoder, Encoder
from repro.errors import EncodingError
from repro.graph.graph import SpatialGraph


def _canonical_adjacency(neighbors: Mapping[int, float]) -> tuple[tuple[int, float], ...]:
    return tuple(sorted((int(v), float(w)) for v, w in neighbors.items()))


@dataclass(frozen=True)
class BaseTuple:
    """Φ(v) = <id, x, y, {<v', W(v, v')>}> — Eq. (1)."""

    node_id: int
    x: float
    y: float
    adjacency: tuple[tuple[int, float], ...]

    @classmethod
    def from_graph(cls, graph: SpatialGraph, node_id: int) -> "BaseTuple":
        """Build Φ(v) for *node_id* directly from the graph."""
        node = graph.node(node_id)
        return cls(node.id, node.x, node.y, _canonical_adjacency(graph.neighbors(node_id)))

    def _encode_header(self, enc: Encoder) -> None:
        enc.write_uint(self.node_id).write_f64(self.x).write_f64(self.y)
        enc.write_uint(len(self.adjacency))
        for nbr, w in self.adjacency:
            enc.write_uint(nbr).write_f64(w)

    def encode(self) -> bytes:
        """Canonical byte encoding (hash input and proof payload)."""
        enc = Encoder()
        self._encode_header(enc)
        return enc.getvalue()

    @staticmethod
    def _decode_header(dec: Decoder) -> tuple[int, float, float, tuple[tuple[int, float], ...]]:
        node_id = dec.read_uint()
        x = dec.read_f64()
        y = dec.read_f64()
        count = dec.read_uint()
        adjacency = tuple((dec.read_uint(), dec.read_f64()) for _ in range(count))
        return node_id, x, y, adjacency

    @classmethod
    def decode(cls, data: bytes) -> "BaseTuple":
        """Inverse of :meth:`encode`."""
        dec = Decoder(data)
        tup = cls(*cls._decode_header(dec))
        dec.expect_end()
        return tup


@dataclass(frozen=True)
class LdmTuple(BaseTuple):
    """Φ(v) with landmark vector information — Eq. (4).

    Exactly one of the following holds:

    * *uncompressed*: ``codes`` carries the b-bit quantized landmark
      distance codes and ``ref_id is None``;
    * *compressed*: ``codes is None`` and ``(ref_id, eps_units)`` names
      the representative θ and the compression error ε expressed in
      integer multiples of the quantization step λ (ε is a max of
      absolute differences of quantized values, hence always a multiple
      of λ).
    """

    codes: tuple[int, ...] | None = None
    ref_id: int | None = None
    eps_units: int | None = None
    bits: int = 12

    def __post_init__(self) -> None:
        compressed = self.ref_id is not None
        if compressed == (self.codes is not None):
            raise EncodingError("LdmTuple must carry either codes or a reference")
        if compressed and self.eps_units is None:
            raise EncodingError("compressed LdmTuple needs eps_units")

    @property
    def is_compressed(self) -> bool:
        """True when this node's vector is represented by another node's."""
        return self.ref_id is not None

    def encode(self) -> bytes:
        enc = Encoder()
        self._encode_header(enc)
        if self.is_compressed:
            enc.write_bool(True)
            enc.write_uint(self.ref_id)
            enc.write_uint(self.eps_units)
        else:
            enc.write_bool(False)
            enc.write_uint(self.bits)
            enc.write_packed_codes(self.codes, self.bits)
        return enc.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "LdmTuple":
        dec = Decoder(data)
        node_id, x, y, adjacency = cls._decode_header(dec)
        if dec.read_bool():
            tup = cls(node_id, x, y, adjacency,
                      codes=None, ref_id=dec.read_uint(), eps_units=dec.read_uint())
        else:
            bits = dec.read_uint()
            codes = tuple(dec.read_packed_codes(bits))
            tup = cls(node_id, x, y, adjacency, codes=codes, bits=bits)
        dec.expect_end()
        return tup


@dataclass(frozen=True)
class HypTuple(BaseTuple):
    """Φ(v) with HiTi cell information — Eq. (7)."""

    cell_id: int = 0
    is_border: bool = False

    def encode(self) -> bytes:
        enc = Encoder()
        self._encode_header(enc)
        enc.write_uint(self.cell_id)
        enc.write_bool(self.is_border)
        return enc.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "HypTuple":
        dec = Decoder(data)
        node_id, x, y, adjacency = cls._decode_header(dec)
        tup = cls(node_id, x, y, adjacency,
                  cell_id=dec.read_uint(), is_border=dec.read_bool())
        dec.expect_end()
        return tup


@dataclass(frozen=True, order=True)
class DistanceTuple:
    """Materialized distance entry ``<a, b, dist(a, b)>``.

    The composite key ``(a, b)`` orders the leaves of distance Merkle
    B-trees (FULL stores all node pairs; HYP stores border-node pairs
    with ``a < b`` since the graph is undirected).
    """

    a: int
    b: int
    distance: float = field(compare=False)

    @property
    def key(self) -> tuple[int, int]:
        """The B-tree composite key."""
        return (self.a, self.b)

    def encode(self) -> bytes:
        """Canonical byte encoding."""
        return (
            Encoder()
            .write_uint(self.a)
            .write_uint(self.b)
            .write_f64(self.distance)
            .getvalue()
        )

    @classmethod
    def decode(cls, data: bytes) -> "DistanceTuple":
        """Inverse of :meth:`encode`."""
        dec = Decoder(data)
        tup = cls(dec.read_uint(), dec.read_uint(), dec.read_f64())
        dec.expect_end()
        return tup


def triangle_leaf_digests(ids: "list[int]", matrix, hash_fn) -> bytes:
    """Contiguous Merkle leaf digests over the triangle payloads.

    Equivalent to hashing each :func:`iter_triangle_payloads` payload
    with :func:`repro.merkle.tree.leaf_digest` — feed the result to
    ``MerkleTree(leaf_digests=...)``.  This is the owner's hottest
    construction loop (FULL hashes |V|²/2 of these), so the tagged
    payloads are assembled with vectorized byte writes: ids are sorted,
    hence their varint lengths are non-decreasing, and within one
    (row, varint-length) segment every payload has the same width —
    one NumPy buffer holds the whole segment and each leaf costs a
    single slice and hash call, no per-leaf concatenation.
    """
    import numpy as np

    from repro.crypto.hashing import get_hash
    from repro.encoding import encode_uvarint
    from repro.merkle.tree import _LEAF_TAG

    factory = get_hash(hash_fn).factory
    prefixes = [encode_uvarint(node_id) for node_id in ids]
    n = len(ids)
    ids_arr = np.asarray(ids, dtype=np.int64)
    #: varint length per id — non-decreasing because ids are ascending.
    plens = np.array([len(p) for p in prefixes], dtype=np.int64)
    rows: list[bytes] = []
    for i in range(n):
        if i + 1 >= n:
            break
        tagged = np.frombuffer(_LEAF_TAG + prefixes[i], dtype=np.uint8)
        lt = len(tagged)
        packed = np.ascontiguousarray(matrix[i, i + 1 :], dtype=">f8")
        weight_bytes = packed.view(np.uint8).reshape(n - i - 1, 8)
        start = i + 1
        while start < n:
            length = int(plens[start])
            end = int(np.searchsorted(plens, length, side="right"))
            seg_ids = ids_arr[start:end]
            m = end - start
            width = lt + length + 8
            arr = np.empty((m, width), dtype=np.uint8)
            arr[:, :lt] = tagged
            for p in range(length):  # LEB128: low 7-bit group first
                group = (seg_ids >> (7 * p)) & 0x7F
                arr[:, lt + p] = group | 0x80 if p < length - 1 else group
            arr[:, lt + length :] = weight_bytes[start - i - 1 : end - i - 1]
            buf = arr.tobytes()
            rows.append(b"".join([
                factory(chunk).digest()
                for (chunk,) in struct.iter_unpack(f"{width}s", buf)
            ]))
            start = end
    return b"".join(rows)


def iter_triangle_payloads(ids: "list[int]", matrix):
    """Yield ``DistanceTuple(ids[i], ids[j], matrix[i, j]).encode()`` for
    the upper triangle (``i < j``), in triangle (leaf) order.

    Batch form of the per-tuple encoder for the FULL and HYP distance
    Merkle trees, which hash millions of these leaves: the per-id
    varint prefixes are computed once and each row's distances are
    packed to big-endian float64 in one NumPy call, so the per-leaf
    Python work is a single bytes concatenation.  Output is
    byte-identical to calling :meth:`DistanceTuple.encode` per pair.
    """
    import numpy as np

    from repro.encoding import encode_uvarint

    prefixes = [encode_uvarint(node_id) for node_id in ids]
    n = len(ids)
    for i in range(n):
        pa = prefixes[i]
        packed = np.ascontiguousarray(matrix[i, i + 1 :], dtype=">f8").tobytes()
        base = -8 * (i + 1)
        for j in range(i + 1, n):
            k = base + 8 * j
            yield pa + prefixes[j] + packed[k : k + 8]


@dataclass(frozen=True)
class CellDirectoryTuple:
    """HYP cell directory entry: ``<cell id, sorted member node ids>``.

    This is the soundness-completing ADS described in DESIGN.md §3: it
    lets a client confirm that the provider disclosed *every* node of
    the source/target cells in the coarse proof.
    """

    cell_id: int
    member_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        if tuple(sorted(self.member_ids)) != tuple(self.member_ids):
            raise EncodingError("cell directory members must be sorted")

    def encode(self) -> bytes:
        """Canonical byte encoding."""
        enc = Encoder().write_uint(self.cell_id)
        enc.write_uint_seq(self.member_ids)
        return enc.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "CellDirectoryTuple":
        """Inverse of :meth:`encode`."""
        dec = Decoder(data)
        tup = cls(dec.read_uint(), tuple(dec.read_uint_seq()))
        dec.expect_end()
        return tup
