"""Graph serialization: native text format and DIMACS reader.

The native format is line-oriented and self-contained::

    # comment
    v <id> <x> <y>
    e <u> <v> <weight>

The DIMACS shortest-path format (``.gr`` graph + ``.co`` coordinates),
used by the 9th DIMACS implementation challenge road networks, is also
supported so that users with access to real road data can plug it in
directly.
"""

from __future__ import annotations

import os
from typing import TextIO

from repro.errors import GraphError
from repro.graph.graph import SpatialGraph


def write_graph(graph: SpatialGraph, path: "str | os.PathLike") -> None:
    """Write *graph* in the native text format."""
    with open(path, "w", encoding="utf-8") as out:
        out.write(f"# repro graph |V|={graph.num_nodes} |E|={graph.num_edges}\n")
        for node in graph.nodes():
            out.write(f"v {node.id} {node.x!r} {node.y!r}\n")
        for u, v, w in graph.edges():
            out.write(f"e {u} {v} {w!r}\n")


def read_graph(path: "str | os.PathLike") -> SpatialGraph:
    """Read a graph written by :func:`write_graph`."""
    graph = SpatialGraph()
    with open(path, "r", encoding="utf-8") as infile:
        for lineno, line in enumerate(infile, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            try:
                if parts[0] == "v" and len(parts) == 4:
                    graph.add_node(int(parts[1]), float(parts[2]), float(parts[3]))
                elif parts[0] == "e" and len(parts) == 4:
                    graph.add_edge(int(parts[1]), int(parts[2]), float(parts[3]))
                else:
                    raise GraphError(f"{path}:{lineno}: unrecognized line {line!r}")
            except ValueError as exc:
                raise GraphError(f"{path}:{lineno}: {exc}") from exc
    return graph


def read_dimacs(gr_path: "str | os.PathLike",
                co_path: "str | os.PathLike | None" = None) -> SpatialGraph:
    """Read a DIMACS ``.gr`` file (and optional ``.co`` coordinates).

    Duplicate arcs keep the smallest weight; arcs are treated as
    undirected edges, matching the paper's road network model.
    """
    graph = SpatialGraph()
    coords: dict[int, tuple[float, float]] = {}
    if co_path is not None:
        with open(co_path, "r", encoding="utf-8") as infile:
            for line in infile:
                parts = line.split()
                if parts and parts[0] == "v":
                    coords[int(parts[1])] = (float(parts[2]), float(parts[3]))

    pending: list[tuple[int, int, float]] = []
    declared_nodes = 0
    with open(gr_path, "r", encoding="utf-8") as infile:
        for line in infile:
            parts = line.split()
            if not parts or parts[0] == "c":
                continue
            if parts[0] == "p":
                declared_nodes = int(parts[2])
            elif parts[0] == "a":
                pending.append((int(parts[1]), int(parts[2]), float(parts[3])))

    for node_id in range(1, declared_nodes + 1):
        x, y = coords.get(node_id, (0.0, 0.0))
        graph.add_node(node_id, x, y)
    for u, v, w in pending:
        if u == v:
            continue
        if graph.has_edge(u, v):
            if w < graph.weight(u, v):
                graph.remove_edge(u, v)
                graph.add_edge(u, v, w)
        else:
            graph.add_edge(u, v, w)
    return graph


def write_workload(queries: "list[tuple[int, int]]", out: TextIO) -> None:
    """Write one ``source target`` pair per line."""
    for vs, vt in queries:
        out.write(f"{vs} {vt}\n")


def read_workload(infile: TextIO) -> "list[tuple[int, int]]":
    """Inverse of :func:`write_workload`."""
    queries = []
    for lineno, line in enumerate(infile, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            vs, vt = line.split()
            queries.append((int(vs), int(vt)))
        except ValueError:
            raise GraphError(
                f"workload line {lineno}: expected 'source target', got {line!r}"
            ) from None
    return queries
