"""Compiled adjacency layout: contiguous CSR-style arrays.

The dict-of-dicts adjacency in :class:`~repro.graph.graph.SpatialGraph`
is the right structure for mutation, but every hot-path consumer — the
provider's Dijkstra ball, the owner's bulk distance runs, the SciPy
export — pays dictionary overhead per edge visit.  :class:`GraphIndex`
freezes the adjacency into three flat arrays (the classic CSR layout)::

    indptr[i] .. indptr[i+1]   slice of `neighbors` / `weights` for node i
    neighbors[k]               neighbor *index* (not id)
    weights[k]                 edge weight

plus the id <-> index maps.  Nodes are laid out in ascending id order
and each node's neighbor run is sorted by neighbor id, so every derived
structure (canonical tuples, SciPy matrices, search results) is
deterministic.

Arrays are plain Python lists, which CPython indexes faster than NumPy
scalars inside interpreted loops; NumPy views for vectorized consumers
are derived lazily and cached.  Instances are immutable snapshots —
:meth:`SpatialGraph.to_index` caches one per graph version and rebuilds
on mutation, exactly like the CSR export.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.errors import GraphError


class GraphIndex:
    """Immutable CSR-style snapshot of a :class:`SpatialGraph` adjacency."""

    __slots__ = ("ids", "index_of", "indptr", "neighbors", "weights",
                 "_np_cache", "_csr_cache")

    def __init__(self, ids: "list[int]", index_of: "dict[int, int]",
                 indptr: "list[int]", neighbors: "list[int]",
                 weights: "list[float]") -> None:
        self.ids = ids
        self.index_of = index_of
        self.indptr = indptr
        self.neighbors = neighbors
        self.weights = weights
        self._np_cache = None
        self._csr_cache = None

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """|V|."""
        return len(self.ids)

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs (2·|E| for an undirected graph)."""
        return len(self.neighbors)

    def degree(self, index: int) -> int:
        """Out-degree of the node at *index*."""
        return self.indptr[index + 1] - self.indptr[index]

    def index(self, node_id: int) -> int:
        """Index of *node_id*; raises :class:`GraphError` when unknown."""
        try:
            return self.index_of[node_id]
        except KeyError:
            raise GraphError(f"unknown node {node_id}") from None

    # ------------------------------------------------------------------
    def numpy_arrays(self):
        """``(indptr, neighbors, weights)`` as NumPy arrays (cached)."""
        if self._np_cache is None:
            import numpy as np

            self._np_cache = (
                np.asarray(self.indptr, dtype=np.int64),
                np.asarray(self.neighbors, dtype=np.int64),
                np.asarray(self.weights, dtype=np.float64),
            )
        return self._np_cache

    def with_updated_weights(self, edges) -> "GraphIndex":
        """A sibling snapshot with re-weighted edges, topology shared.

        *edges* yields ``(u id, v id, weight)``.  Weight-only mutations
        leave ``ids`` / ``indptr`` / ``neighbors`` untouched, so the
        new snapshot shares them and only copies the weights array —
        this is the live-update fast path behind
        :meth:`SpatialGraph.to_index`, identical to a full recompile.
        Raises :class:`GraphError` when an edge does not exist.
        """
        weights = list(self.weights)
        indptr, neighbors = self.indptr, self.neighbors
        for u, v, weight in edges:
            iu, iv = self.index(u), self.index(v)
            for a, b in ((iu, iv), (iv, iu)):
                lo, hi = indptr[a], indptr[a + 1]
                # Neighbor runs are sorted by neighbor index (= id order).
                slot = bisect_left(neighbors, b, lo, hi)
                if slot >= hi or neighbors[slot] != b:
                    raise GraphError(f"edge ({u}, {v}) is not in the index")
                weights[slot] = float(weight)
        return GraphIndex(self.ids, self.index_of, indptr, neighbors, weights)

    def csr_matrix(self):
        """SciPy CSR matrix of weights in index order (cached).

        Built directly from the native CSR triple — no COO round trip,
        no duplicate summing, no Python-level edge loop.
        """
        if self._csr_cache is None:
            from scipy.sparse import csr_matrix

            indptr, neighbors, weights = self.numpy_arrays()
            n = self.num_nodes
            self._csr_cache = csr_matrix(
                (weights, neighbors, indptr), shape=(n, n)
            )
        return self._csr_cache


def build_graph_index(adj: "dict[int, dict[int, float]]") -> GraphIndex:
    """Compile a dict-of-dicts adjacency into a :class:`GraphIndex`."""
    ids = sorted(adj)
    index_of = {node_id: i for i, node_id in enumerate(ids)}
    indptr = [0] * (len(ids) + 1)
    neighbors: list[int] = []
    weights: list[float] = []
    for i, node_id in enumerate(ids):
        row = adj[node_id]
        for v in sorted(row):
            neighbors.append(index_of[v])
            weights.append(row[v])
        indptr[i + 1] = len(neighbors)
    return GraphIndex(ids, index_of, indptr, neighbors, weights)
