"""Landmark selection strategies.

The paper defers to Goldberg & Harrelson [26] for concrete strategies;
we implement the two standard ones:

* ``random`` — uniform sample (cheap, weaker bounds);
* ``farthest`` — greedy 2-approximate k-center: repeatedly add the
  node farthest from the current landmark set.  Produces well-spread
  landmarks and noticeably tighter lower bounds, and is the default.
"""

from __future__ import annotations

import random

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import SpatialGraph
from repro.shortestpath.bulk import multi_source_distances


def random_landmarks(graph: SpatialGraph, c: int, *, seed: int = 0) -> list[int]:
    """Uniformly sample *c* landmarks."""
    ids = graph.node_ids()
    if c < 1 or c > len(ids):
        raise GraphError(f"cannot pick {c} landmarks from {len(ids)} nodes")
    return sorted(random.Random(seed).sample(ids, c))


def farthest_landmarks(graph: SpatialGraph, c: int, *, seed: int = 0) -> list[int]:
    """Greedy farthest-point landmark selection.

    Starts from the node farthest from a random seed node (so the
    first landmark is on the graph's periphery), then iteratively adds
    the node maximizing the minimum distance to the chosen set.
    """
    ids = graph.node_ids()
    if c < 1 or c > len(ids):
        raise GraphError(f"cannot pick {c} landmarks from {len(ids)} nodes")
    rng = random.Random(seed)
    start = ids[rng.randrange(len(ids))]
    dist = multi_source_distances(graph, [start])[0]
    dist = np.where(np.isinf(dist), -1.0, dist)
    chosen = [ids[int(np.argmax(dist))]]
    min_dist = multi_source_distances(graph, chosen)[0]
    while len(chosen) < c:
        candidate_pos = int(np.argmax(np.where(np.isinf(min_dist), -1.0, min_dist)))
        candidate = ids[candidate_pos]
        if candidate in chosen:  # graph smaller than c or disconnected remainder
            remaining = [i for i in ids if i not in set(chosen)]
            chosen.extend(remaining[: c - len(chosen)])
            break
        chosen.append(candidate)
        min_dist = np.minimum(min_dist, multi_source_distances(graph, [candidate])[0])
    return sorted(chosen)


_STRATEGIES = {
    "random": random_landmarks,
    "farthest": farthest_landmarks,
}


def select_landmarks(graph: SpatialGraph, c: int, *, strategy: str = "farthest",
                     seed: int = 0) -> list[int]:
    """Select *c* landmarks by a named strategy."""
    try:
        fn = _STRATEGIES[strategy]
    except KeyError:
        raise GraphError(
            f"unknown landmark strategy {strategy!r}; choose from {sorted(_STRATEGIES)}"
        ) from None
    return fn(graph, c, seed=seed)
