"""Exact landmark distance vectors and the Theorem 1 lower bound."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import SpatialGraph
from repro.shortestpath.bulk import multi_source_distances


class LandmarkVectors:
    """Exact per-node landmark distance vectors Ψ(v) (Eq. 2).

    ``vectors`` is a ``(c, |V|)`` float64 array: row ``i`` holds
    ``dist(s_i, v)`` for every node ``v`` in ``graph.node_ids()``
    order.
    """

    __slots__ = ("landmarks", "ids", "index_of", "vectors")

    def __init__(self, graph: SpatialGraph, landmarks: Sequence[int]) -> None:
        if not landmarks:
            raise GraphError("need at least one landmark")
        self.landmarks = tuple(landmarks)
        self.vectors = multi_source_distances(graph, list(landmarks))
        if np.isinf(self.vectors).any():
            raise GraphError(
                "graph is disconnected: landmark vectors contain infinite "
                "distances; restrict to the largest component first"
            )
        self.ids = graph.node_ids()
        self.index_of = {node_id: i for i, node_id in enumerate(self.ids)}

    @property
    def c(self) -> int:
        """Number of landmarks."""
        return len(self.landmarks)

    def vector_of(self, node_id: int) -> np.ndarray:
        """Ψ(v): the node's distance to every landmark."""
        try:
            return self.vectors[:, self.index_of[node_id]]
        except KeyError:
            raise GraphError(f"unknown node {node_id}") from None

    def lower_bound(self, u: int, v: int) -> float:
        """Theorem 1: ``max_i |dist(s_i, u) - dist(s_i, v)| <= dist(u, v)``."""
        return float(np.abs(self.vector_of(u) - self.vector_of(v)).max())


def exact_lower_bound(vec_u: np.ndarray, vec_v: np.ndarray) -> float:
    """Theorem 1 bound from two raw vectors."""
    return float(np.abs(vec_u - vec_v).max())
