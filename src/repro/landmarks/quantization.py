"""Quantization of landmark distance vectors (paper Eq. 5, Lemma 3).

Each landmark distance is replaced by a ``b``-bit code::

    λ = D_max / (2^b - 1)
    code(d) = round(d / λ)            (an integer in [0, 2^b - 1])
    dist_b(d) = λ * code(d)

Lemma 3: the *loose* lower bound computed from codes,

    max(0, λ * (max_i |code_i(u) - code_i(v)| - 1)),

never exceeds the exact Theorem-1 bound, so A* correctness is
preserved while each vector shrinks from ``8c`` bytes to ``ceil(bc/8)``
bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError


@dataclass(frozen=True)
class QuantizationSpec:
    """Parameters shared by owner, provider and client.

    ``lam`` is the paper's λ = ``d_max / (2^b - 1)``.  The spec is part
    of the signed method descriptor, so a provider cannot lie about λ.
    """

    bits: int
    d_max: float
    lam: float

    @classmethod
    def for_vectors(cls, vectors: np.ndarray, bits: int) -> "QuantizationSpec":
        """Derive the spec from the exact distance vectors."""
        if bits < 1 or bits > 32:
            raise GraphError(f"quantization bits must be in [1, 32], got {bits}")
        d_max = float(vectors.max()) if vectors.size else 0.0
        if d_max <= 0.0:
            d_max = 1.0  # degenerate single-node graph; any λ works
        lam = d_max / float((1 << bits) - 1)
        return cls(bits=bits, d_max=d_max, lam=lam)

    def encode_value(self, distance: float) -> int:
        """Quantize one distance to its code (round half up, as in Fig. 6a)."""
        return int(distance / self.lam + 0.5)

    def decode_code(self, code: int) -> float:
        """``dist_b`` for a code (Eq. 5)."""
        return self.lam * code


def quantize_vectors(
    vectors: np.ndarray,
    bits: int,
    *,
    spec: "QuantizationSpec | None" = None,
) -> "tuple[np.ndarray, QuantizationSpec]":
    """Quantize a ``(c, n)`` distance matrix to integer codes.

    Returns ``(codes, spec)`` where ``codes`` is an ``(c, n)`` int32
    array of values in ``[0, 2^bits - 1]``.  Passing an explicit *spec*
    pins the grid (the live-update path does: λ is part of the signed
    parameters, so it must not drift with every re-weight); distances
    beyond the pinned ``d_max`` saturate at the top code, which only
    *under*-estimates them — the Lemma 3 bound stays admissible, merely
    looser, until the owner re-publishes with a fresh grid.
    """
    if spec is None:
        spec = QuantizationSpec.for_vectors(vectors, bits)
    elif spec.bits != bits:
        raise GraphError(f"spec is {spec.bits}-bit, requested {bits}")
    # Round half *up* (the paper's Fig. 6a quantizes 9/2 to 5, not to the
    # even 4 that banker's rounding would give).  |d - dist_b| <= lam/2
    # holds either way, which is all Lemma 3 needs.  The clip is a no-op
    # when the spec was derived from these vectors.
    codes = np.floor(vectors / spec.lam + 0.5).astype(np.int32)
    np.clip(codes, 0, (1 << bits) - 1, out=codes)
    return codes, spec


def loose_lower_bound_units(codes_u: np.ndarray, codes_v: np.ndarray) -> int:
    """``max_i |code_i(u) - code_i(v)|`` in λ units (the paper's Δ/λ)."""
    return int(np.abs(codes_u - codes_v).max())


def loose_lower_bound(codes_u: np.ndarray, codes_v: np.ndarray, lam: float) -> float:
    """Lemma 3's ``dist^loose_LB`` from two code vectors."""
    return max(0.0, lam * (loose_lower_bound_units(codes_u, codes_v) - 1))
