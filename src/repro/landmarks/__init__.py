"""Landmark distance machinery for the LDM method (paper §V-A).

Pipeline: select ``c`` landmarks -> compute per-node distance vectors
Ψ(v) (Eq. 2) -> quantize each entry to ``b`` bits (Eq. 5, Lemma 3) ->
compress vectors within threshold ξ (Lemma 4).  The result per node is
either a quantized code vector or a ``(θ, ε)`` reference to a
representative node.
"""

from repro.landmarks.compression import CompressedVectors, compress_exact_greedy, compress_leader
from repro.landmarks.quantization import QuantizationSpec, quantize_vectors
from repro.landmarks.selection import farthest_landmarks, random_landmarks, select_landmarks
from repro.landmarks.vectors import LandmarkVectors, exact_lower_bound

__all__ = [
    "select_landmarks",
    "random_landmarks",
    "farthest_landmarks",
    "LandmarkVectors",
    "exact_lower_bound",
    "QuantizationSpec",
    "quantize_vectors",
    "CompressedVectors",
    "compress_exact_greedy",
    "compress_leader",
]
