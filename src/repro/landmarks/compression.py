"""Compression of quantized distance vectors (paper §V-A, Lemma 4).

A node ``v`` may be *compressed*: instead of storing its code vector it
stores a reference node ``v.θ`` and a compression error
``v.ε = Δ(v, v.θ)``, where ``Δ(u, w) = max_i |dist_b(s_i, u) -
dist_b(s_i, w)|``.  The owner guarantees ``ε <= ξ``.  Lemma 4 then
gives a valid (looser) lower bound from the representatives' vectors::

    dist^loose_LB(v.θ, v'.θ) - (v.ε + v'.ε)  <=  dist^loose_LB(v, v')

Two construction algorithms are provided:

* :func:`compress_exact_greedy` — the paper's algorithm: each round
  picks the representative covering the most uncompressed nodes.
  Quadratic per round; intended for small/medium graphs.
* :func:`compress_leader` — a vectorized first-fit scan in Hilbert
  order: a node joins the first existing representative within ξ, else
  becomes a representative.  Near-linear; used at benchmark scale.

Both guarantee the ``ε <= ξ`` invariant that Lemma 4's soundness rests
on; they differ only in how many nodes end up compressed.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError
from repro.landmarks.quantization import QuantizationSpec


def lemma4_lower_bound(
    codes_u: np.ndarray,
    eps_units_u: int,
    codes_v: np.ndarray,
    eps_units_v: int,
    lam: float,
) -> float:
    """Lemma 4 lower bound from two *representative* code vectors.

    ``codes_*`` are the (quantized) vectors of the nodes' representatives
    (a node acting as its own representative has ε = 0).  The provider
    and the client both call this exact function, so their pruning
    decisions agree bit for bit.
    """
    units = int(np.abs(codes_u - codes_v).max())
    loose = max(0.0, lam * (units - 1))
    return max(0.0, loose - lam * (eps_units_u + eps_units_v))


@dataclass
class CompressedVectors:
    """Output of vector compression.

    For every node id exactly one holds:

    * ``node_id in codes_of`` — the node keeps its own quantized code
      vector (it is a representative or was left uncompressed);
    * ``node_id in ref_of`` — the node is compressed; the value is
      ``(θ id, ε in λ units)``.
    """

    spec: QuantizationSpec
    codes_of: dict[int, np.ndarray] = field(default_factory=dict)
    ref_of: dict[int, tuple[int, int]] = field(default_factory=dict)

    @property
    def num_compressed(self) -> int:
        """How many nodes reference a representative."""
        return len(self.ref_of)

    def effective(self, node_id: int) -> "tuple[np.ndarray, int]":
        """``(representative codes, ε units)`` for any node.

        Uncompressed nodes are their own representative with ε = 0.
        """
        if node_id in self.codes_of:
            return self.codes_of[node_id], 0
        theta, eps_units = self.ref_of[node_id]
        return self.codes_of[theta], eps_units

    def lower_bound(self, u: int, v: int) -> float:
        """Lemma 4 lower bound on ``dist(u, v)`` (clipped at zero)."""
        codes_u, eps_u = self.effective(u)
        codes_v, eps_v = self.effective(v)
        return lemma4_lower_bound(codes_u, eps_u, codes_v, eps_v, self.spec.lam)

    def effective_arrays(self, ids: "list[int]") -> "tuple[np.ndarray, np.ndarray]":
        """Dense ``(codes, eps_units)`` arrays aligned with *ids*.

        ``codes`` is ``(len(ids), c)`` int64 (each row the node's
        representative vector), ``eps_units`` is ``(len(ids),)`` int64.
        This is the batch form of :meth:`effective` for vectorized
        bound evaluation over many nodes at once (the provider's
        Lemma-2 cone selection); values match :meth:`lower_bound`
        bit for bit.
        """
        c = len(next(iter(self.codes_of.values())))
        codes = np.empty((len(ids), c), dtype=np.int64)
        eps_units = np.empty(len(ids), dtype=np.int64)
        for i, node_id in enumerate(ids):
            row, eps = self.effective(node_id)
            codes[i] = row
            eps_units[i] = eps
        return codes, eps_units


def _xi_units(xi: float, spec: QuantizationSpec) -> int:
    if xi < 0:
        raise GraphError(f"compression threshold must be >= 0, got {xi}")
    return int(xi / spec.lam) if spec.lam > 0 else 0


def compress_exact_greedy(
    ids: "list[int]",
    codes: np.ndarray,
    spec: QuantizationSpec,
    xi: float,
) -> CompressedVectors:
    """The paper's greedy: maximize coverage per representative.

    ``codes`` is the ``(c, n)`` int32 matrix aligned with ``ids``.
    Each round computes, for every remaining candidate, how many
    remaining nodes lie within ξ (in Δ terms), picks the best, and
    assigns.  Stops when no representative can cover anyone but
    itself.
    """
    xi_units = _xi_units(xi, spec)
    n = len(ids)
    result = CompressedVectors(spec=spec)
    remaining = np.arange(n)
    cols = codes.T  # (n, c) for row-wise access

    while remaining.size > 1:
        sub = cols[remaining]  # (m, c)
        # Pairwise Chebyshev distances among remaining nodes, in units.
        diff = np.abs(sub[:, None, :] - sub[None, :, :]).max(axis=2)
        coverage = (diff <= xi_units).sum(axis=1)
        best = int(np.argmax(coverage))
        if int(coverage[best]) <= 1:
            break
        rep_pos = int(remaining[best])
        rep_id = ids[rep_pos]
        result.codes_of[rep_id] = cols[rep_pos]
        member_mask = diff[best] <= xi_units
        for local_idx in np.nonzero(member_mask)[0]:
            pos = int(remaining[local_idx])
            if pos == rep_pos:
                continue
            result.ref_of[ids[pos]] = (rep_id, int(diff[best][local_idx]))
        remaining = remaining[~member_mask]

    for pos in remaining:
        pos = int(pos)
        result.codes_of[ids[pos]] = cols[pos]
    return result


def compression_plan(compressed: CompressedVectors) -> "dict[int, int]":
    """The follower → representative assignment behind a compression.

    The *plan* is the scan's expensive output; the ε values are cheap
    functions of the current codes.  Pinning the plan (like pinning the
    landmark set) lets the live-update path refresh a compression in a
    few vectorized operations — see :func:`apply_compression_plan`.
    """
    return {node_id: theta for node_id, (theta, _) in compressed.ref_of.items()}


def apply_compression_plan(
    ids: "list[int]",
    codes: np.ndarray,
    spec: QuantizationSpec,
    xi: float,
    plan: "dict[int, int]",
) -> "tuple[CompressedVectors, np.ndarray, np.ndarray]":
    """Re-derive a compression from a pinned plan and fresh codes.

    Every planned follower is re-measured against its representative:
    within ξ it stays compressed with the recomputed (honest) ε; drifted
    beyond ξ it is *promoted* to carrying its own codes, so the ε ≤ ξ
    invariant Lemma 4 rests on holds unconditionally.  Promoted nodes do
    not become representatives for anyone else, so the result is a pure
    function of ``(ids, codes, spec, xi, plan)`` — a rebuild given the
    same plan reproduces it byte for byte.  On the codes that produced
    the plan, the output equals the original scan's output exactly.

    Returns ``(compressed, eff_codes, eff_eps)`` where the ``eff_*``
    arrays equal ``compressed.effective_arrays(ids)`` (computed here
    for free from the plan's index arrays).
    """
    xi_units = _xi_units(xi, spec)
    cols = np.ascontiguousarray(codes.T)
    index_of = {node_id: i for i, node_id in enumerate(ids)}
    result = CompressedVectors(spec=spec)
    eff_codes = cols.astype(np.int64)
    eff_eps = np.zeros(len(ids), dtype=np.int64)
    planned = sorted(plan)
    if planned:
        follower_idx = np.fromiter((index_of[f] for f in planned),
                                   dtype=np.intp, count=len(planned))
        rep_idx = np.fromiter((index_of[plan[f]] for f in planned),
                              dtype=np.intp, count=len(planned))
        deltas = np.abs(cols[follower_idx] - cols[rep_idx]).max(axis=1)
        kept = deltas <= xi_units
        for k, follower in enumerate(planned):
            if kept[k]:
                result.ref_of[follower] = (plan[follower], int(deltas[k]))
            else:
                result.codes_of[follower] = cols[follower_idx[k]]
        eff_codes[follower_idx[kept]] = cols[rep_idx[kept]]
        eff_eps[follower_idx[kept]] = deltas[kept]
    in_plan = set(plan)
    for i, node_id in enumerate(ids):
        if node_id not in in_plan:
            result.codes_of[node_id] = cols[i]
    return result, eff_codes, eff_eps


def compress_leader(
    ids: "list[int]",
    codes: np.ndarray,
    spec: QuantizationSpec,
    xi: float,
    scan_order: "list[int] | None" = None,
) -> CompressedVectors:
    """First-fit leader compression (benchmark-scale variant).

    Scans nodes (by default in the given order; pass a proximity-
    preserving order such as Hilbert for better compression).  A node
    joins the existing representative with the smallest Δ if that Δ is
    within ξ; otherwise it becomes a new representative.
    """
    xi_units = _xi_units(xi, spec)
    result = CompressedVectors(spec=spec)
    index_of = {node_id: i for i, node_id in enumerate(ids)}
    order = scan_order if scan_order is not None else list(ids)
    if sorted(order) != sorted(ids):
        raise GraphError("scan_order must be a permutation of ids")

    cols = np.ascontiguousarray(codes.T)  # (n, c)
    c = cols.shape[1]
    rep_ids: list[int] = []
    # Growable representative matrix (doubling capacity) so each new
    # representative is an O(1) amortized append, not a full copy.
    capacity = 16
    rep_matrix = np.empty((capacity, c), dtype=cols.dtype)

    # Probe pruning: Chebyshev Δ over any single dimension lower-bounds
    # the full Δ, so representatives outside ``[v - ξ, v + ξ]`` on a
    # probe dimension cannot be within ξ.  Keeping representatives in a
    # list sorted by (probe value, creation index) turns the filter
    # into two bisects — zero NumPy dispatches for the common case of
    # an empty window.  Exactness: if the true argmin Δ* is within ξ,
    # every representative with Δ == Δ* is inside the window (its probe
    # Δ <= Δ* <= ξ), and evaluating candidates in creation order keeps
    # the full scan's first-minimum tie-breaking.
    probe_dim = int(np.argmax(codes.var(axis=1)))
    window: list[tuple[int, int]] = []  # (probe value, creation index)
    high = 1 << 60

    for node_id in order:
        row = cols[index_of[node_id]]
        base = int(row[probe_dim])
        lo = bisect_left(window, (base - xi_units, -1))
        hi = bisect_right(window, (base + xi_units, high))
        if hi > lo:
            candidates = sorted(entry[1] for entry in window[lo:hi])
            deltas = np.abs(rep_matrix[candidates] - row).max(axis=1)
            best = int(np.argmin(deltas))
            if int(deltas[best]) <= xi_units:
                result.ref_of[node_id] = (
                    rep_ids[candidates[best]], int(deltas[best])
                )
                continue
        count = len(rep_ids)
        if count == capacity:
            capacity *= 2
            grown = np.empty((capacity, c), dtype=cols.dtype)
            grown[:count] = rep_matrix[:count]
            rep_matrix = grown
        rep_matrix[count] = row
        rep_ids.append(node_id)
        insort(window, (base, count))
        result.codes_of[node_id] = row
    return result
