"""Experiment harness: build methods, run workloads, render tables."""

from repro.bench.aioclient import AsyncClientPool, AsyncRemoteClient
from repro.bench.harness import MethodRun, build_method, run_workload
from repro.bench.profile import (
    BenchRecord,
    compare_records,
    load_record,
    profile_method,
    write_record,
)
from repro.bench.reporting import ResultsLog, format_table
from repro.bench.serving import LoadtestPass, LoadtestReport, run_loadtest
from repro.bench.slo import (
    PhaseReport,
    SloPolicy,
    SloReport,
    check_slo,
    load_slo_policy,
    run_slo_soak,
)

__all__ = [
    "AsyncClientPool",
    "AsyncRemoteClient",
    "MethodRun",
    "build_method",
    "run_workload",
    "BenchRecord",
    "profile_method",
    "write_record",
    "load_record",
    "compare_records",
    "ResultsLog",
    "format_table",
    "LoadtestPass",
    "LoadtestReport",
    "run_loadtest",
    "PhaseReport",
    "SloPolicy",
    "SloReport",
    "check_slo",
    "load_slo_policy",
    "run_slo_soak",
]
