"""Experiment harness: build methods, run workloads, render tables."""

from repro.bench.harness import MethodRun, build_method, run_workload
from repro.bench.reporting import ResultsLog, format_table
from repro.bench.serving import LoadtestPass, LoadtestReport, run_loadtest

__all__ = [
    "MethodRun",
    "build_method",
    "run_workload",
    "ResultsLog",
    "format_table",
    "LoadtestPass",
    "LoadtestReport",
    "run_loadtest",
]
