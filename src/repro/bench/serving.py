"""Load-testing harness for the proof-serving layer.

Replays one workload through a :class:`~repro.service.server.ProofServer`
several times against a single server instance: pass 1 runs against a
cold cache, later passes replay the identical queries against the warm
cache.  Every served response — cached or freshly proved — is verified
by a real client, so a passing load test is also an end-to-end
soundness check of the serving layer.

With ``updates_per_pass`` the harness becomes update-aware: each pass
interleaves that many owner re-weights (seeded, drawn fresh against
the live graph) between equal-sized query chunks, and every chunk is
verified under the descriptor version it was served at — so the run
also exercises incremental re-authentication, versioned cache
invalidation and the client's freshness floor end to end.

Shared by ``repro-spv loadtest`` and ``benchmarks/test_serving.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.method import SignatureVerifier, VerificationMethod, get_method
from repro.crypto.signer import Signer
from repro.errors import ServiceError
from repro.service.cache import DEFAULT_CAPACITY
from repro.service.metrics import MetricsSnapshot
from repro.service.server import ProofServer
from repro.workload.updates import UPDATE_WEIGHT, generate_update_workload


@dataclass(frozen=True)
class LoadtestPass:
    """One replay of the workload: metrics plus verification outcomes."""

    label: str
    snapshot: MetricsSnapshot
    verified: int
    failures: tuple[str, ...]

    @property
    def all_verified(self) -> bool:
        """Whether the client accepted every served response."""
        return not self.failures


@dataclass(frozen=True)
class LoadtestReport:
    """Cold-versus-warm comparison over all passes."""

    method: str
    num_queries: int
    passes: tuple[LoadtestPass, ...]

    @property
    def cold(self) -> LoadtestPass:
        """The first (cold-cache) pass."""
        return self.passes[0]

    @property
    def warm(self) -> LoadtestPass:
        """The last (fully warm) pass."""
        return self.passes[-1]

    @property
    def speedup(self) -> float:
        """Warm QPS over cold QPS."""
        cold_qps = self.cold.snapshot.qps
        return self.warm.snapshot.qps / cold_qps if cold_qps else 0.0

    @property
    def all_verified(self) -> bool:
        """Whether every pass verified completely."""
        return all(p.all_verified for p in self.passes)

    def table_rows(self) -> "list[list[object]]":
        """Rows for :func:`repro.bench.reporting.format_table`."""
        rows = []
        for p in self.passes:
            s = p.snapshot
            rows.append([
                p.label, s.requests, s.qps, s.p50_ms, s.p95_ms,
                100.0 * s.hit_rate, s.proof_kbytes,
                s.updates, s.update_ms_mean,
                "ok" if p.all_verified else f"{len(p.failures)} FAILED",
            ])
        return rows

    #: Header matching :meth:`table_rows`.
    TABLE_HEADERS = ("pass", "requests", "QPS", "p50 ms", "p95 ms",
                     "hit %", "proof KB", "updates", "upd ms", "verified")


def run_loadtest(
    method: VerificationMethod,
    queries: "list[tuple[int, int]]",
    verify_signature: SignatureVerifier,
    *,
    passes: int = 2,
    cache_size: int = DEFAULT_CAPACITY,
    coalesce: bool = True,
    workers: int = 1,
    updates_per_pass: int = 0,
    update_signer: "Signer | None" = None,
    update_seed: int = 2010,
) -> LoadtestReport:
    """Replay *queries* ``passes`` times through one server.

    ``workers > 1`` serves each pass on a thread pool (which disables
    coalescing — the pool answers queries independently); otherwise
    bursts coalesce through the combined-cover batch path when the
    method supports it.  ``updates_per_pass > 0`` interleaves that many
    owner re-weights through every pass (``update_signer`` required);
    each query chunk is then verified with the descriptor version it
    was served under as the freshness floor, so a stale replay would
    fail the load test.
    """
    if passes < 2:
        raise ServiceError(f"need a cold and a warm pass; got passes={passes}")
    if not queries:
        raise ServiceError("empty load-test workload")
    if updates_per_pass < 0:
        raise ServiceError(f"updates_per_pass must be >= 0, got {updates_per_pass}")
    if updates_per_pass and update_signer is None:
        raise ServiceError("updates_per_pass needs an update_signer to re-sign")
    verifier = get_method(method.name)
    server = ProofServer(method, cache_size=cache_size, max_workers=workers)

    def serve(chunk: "list[tuple[int, int]]"):
        if workers > 1:
            return server.answer_concurrent(chunk)
        return server.answer_many(chunk, coalesce=coalesce)

    results: list[LoadtestPass] = []
    for index in range(passes):
        label = "cold" if index == 0 else f"warm{index}"
        server.reset_metrics()
        failures: list[str] = []
        served_count = 0

        def verify_chunk(chunk, served, min_version) -> None:
            nonlocal served_count
            served_count += len(served)
            for (vs, vt), item in zip(chunk, served):
                if not item.ok:
                    failures.append(f"({vs},{vt}): error {item.error}")
                    continue
                result = verifier.verify(vs, vt, item.response,
                                         verify_signature,
                                         min_version=min_version)
                if not result.ok:
                    failures.append(
                        f"({vs},{vt}): {result.reason} {result.detail}")

        if updates_per_pass:
            updates = list(generate_update_workload(
                method.graph, updates_per_pass,
                seed=update_seed + index, kinds=(UPDATE_WEIGHT,),
            ))
            # updates_per_pass + 1 chunks, updates between them.
            step = -(-len(queries) // (updates_per_pass + 1))
            chunks = [queries[i:i + step]
                      for i in range(0, len(queries), step)]
            for ci, chunk in enumerate(chunks):
                floor = server.descriptor_version
                verify_chunk(chunk, serve(chunk), floor)
                if ci < len(updates):
                    server.apply_updates([updates[ci]], update_signer)
            # Fewer chunks than planned (tiny workloads): apply the rest.
            for update in updates[len(chunks):]:
                server.apply_updates([update], update_signer)
        else:
            verify_chunk(queries, serve(queries), None)

        results.append(LoadtestPass(
            label=label,
            snapshot=server.snapshot(),
            verified=served_count - len(failures),
            failures=tuple(failures),
        ))
    return LoadtestReport(
        method=method.name,
        num_queries=len(queries),
        passes=tuple(results),
    )
