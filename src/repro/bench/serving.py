"""Load-testing harness for the proof-serving layer.

Replays one workload through a :class:`~repro.service.server.ProofServer`
several times against a single server instance: pass 1 runs against a
cold cache, later passes replay the identical queries against the warm
cache.  Every served response — cached or freshly proved — is verified
by a real client, so a passing load test is also an end-to-end
soundness check of the serving layer.

Shared by ``repro-spv loadtest`` and ``benchmarks/test_serving.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.method import SignatureVerifier, VerificationMethod, get_method
from repro.errors import ServiceError
from repro.service.cache import DEFAULT_CAPACITY
from repro.service.metrics import MetricsSnapshot
from repro.service.server import ProofServer


@dataclass(frozen=True)
class LoadtestPass:
    """One replay of the workload: metrics plus verification outcomes."""

    label: str
    snapshot: MetricsSnapshot
    verified: int
    failures: tuple[str, ...]

    @property
    def all_verified(self) -> bool:
        """Whether the client accepted every served response."""
        return not self.failures


@dataclass(frozen=True)
class LoadtestReport:
    """Cold-versus-warm comparison over all passes."""

    method: str
    num_queries: int
    passes: tuple[LoadtestPass, ...]

    @property
    def cold(self) -> LoadtestPass:
        """The first (cold-cache) pass."""
        return self.passes[0]

    @property
    def warm(self) -> LoadtestPass:
        """The last (fully warm) pass."""
        return self.passes[-1]

    @property
    def speedup(self) -> float:
        """Warm QPS over cold QPS."""
        cold_qps = self.cold.snapshot.qps
        return self.warm.snapshot.qps / cold_qps if cold_qps else 0.0

    @property
    def all_verified(self) -> bool:
        """Whether every pass verified completely."""
        return all(p.all_verified for p in self.passes)

    def table_rows(self) -> "list[list[object]]":
        """Rows for :func:`repro.bench.reporting.format_table`."""
        rows = []
        for p in self.passes:
            s = p.snapshot
            rows.append([
                p.label, s.requests, s.qps, s.p50_ms, s.p95_ms,
                100.0 * s.hit_rate, s.proof_kbytes,
                "ok" if p.all_verified else f"{len(p.failures)} FAILED",
            ])
        return rows

    #: Header matching :meth:`table_rows`.
    TABLE_HEADERS = ("pass", "requests", "QPS", "p50 ms", "p95 ms",
                     "hit %", "proof KB", "verified")


def run_loadtest(
    method: VerificationMethod,
    queries: "list[tuple[int, int]]",
    verify_signature: SignatureVerifier,
    *,
    passes: int = 2,
    cache_size: int = DEFAULT_CAPACITY,
    coalesce: bool = True,
    workers: int = 1,
) -> LoadtestReport:
    """Replay *queries* ``passes`` times through one server.

    ``workers > 1`` serves each pass on a thread pool (which disables
    coalescing — the pool answers queries independently); otherwise
    bursts coalesce through the combined-cover batch path when the
    method supports it.
    """
    if passes < 2:
        raise ServiceError(f"need a cold and a warm pass; got passes={passes}")
    if not queries:
        raise ServiceError("empty load-test workload")
    verifier = get_method(method.name)
    server = ProofServer(method, cache_size=cache_size, max_workers=workers)
    results: list[LoadtestPass] = []
    for index in range(passes):
        label = "cold" if index == 0 else f"warm{index}"
        server.reset_metrics()
        if workers > 1:
            served = server.answer_concurrent(queries)
        else:
            served = server.answer_many(queries, coalesce=coalesce)
        snapshot = server.snapshot()
        failures = []
        for (vs, vt), item in zip(queries, served):
            if not item.ok:
                failures.append(f"({vs},{vt}): error {item.error}")
                continue
            result = verifier.verify(vs, vt, item.response, verify_signature)
            if not result.ok:
                failures.append(f"({vs},{vt}): {result.reason} {result.detail}")
        results.append(LoadtestPass(
            label=label,
            snapshot=snapshot,
            verified=len(served) - len(failures),
            failures=tuple(failures),
        ))
    return LoadtestReport(
        method=method.name,
        num_queries=len(queries),
        passes=tuple(results),
    )
